//! # mpls-rbpc — Restoration by Path Concatenation
//!
//! Facade crate for the reproduction of *"Restoration by Path Concatenation:
//! Fast Recovery of MPLS Paths"* (Afek, Bremler-Barr, Cohen, Kaplan, Merritt,
//! PODC 2001).
//!
//! Re-exports the crate family under stable module names:
//!
//! * [`graph`] — the network multigraph, failure views, Dijkstra machinery;
//! * [`mpls`] — the MPLS data/control-plane simulator (ILM/FEC tables,
//!   label stacks, LSP signaling, packet forwarding);
//! * [`core`] — the paper's contribution: base-path oracles, path
//!   decomposition, source-router and local RBPC;
//! * [`topo`] — topology generators, including the paper's adversarial
//!   constructions;
//! * [`eval`] — the experiment harness regenerating the paper's tables and
//!   figures;
//! * [`sim`] — restoration-latency simulation (failure detection,
//!   link-state flooding, per-scheme outage windows);
//! * [`obs`] — std-only observability: metrics, structured events, and
//!   causal restoration traces with Perfetto export.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use rbpc_core as core;
pub use rbpc_eval as eval;
pub use rbpc_graph as graph;
pub use rbpc_mpls as mpls;
pub use rbpc_obs as obs;
pub use rbpc_sim as sim;
pub use rbpc_topo as topo;
