#!/usr/bin/env bash
# Offline pre-PR gate: formatting, lints, the full test suite, and the
# no-default-features build proving instrumentation compiles to no-ops.
# Everything here runs without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

if [[ "${SKIP_LINT:-0}" = "1" ]]; then
    echo "== rbpc-lint skipped (SKIP_LINT=1)"
else
    echo "== rbpc-lint (line rules + token rules, JSON report, baseline diff)"
    # Build first so the timing guard below measures the analyzer, not rustc.
    cargo build -q -p rbpc-lint
    lint_json=$(mktemp /tmp/rbpc-lint-report.XXXXXX.json)
    lint_out=$(mktemp /tmp/rbpc-lint-out.XXXXXX)
    lint_start=$(date +%s%N)
    # The committed crates/lint/lint-baseline.json is picked up by default;
    # any finding not in it (or any unjustified entry) fails the gate here.
    if ! target/debug/rbpc-lint . --json "$lint_json" | tee "$lint_out"; then
        echo "rbpc-lint: new findings (or broken baseline) — fix them or baseline with a justification" >&2
        rm -f "$lint_json" "$lint_out"
        exit 1
    fi
    lint_elapsed_ms=$(( ($(date +%s%N) - lint_start) / 1000000 ))
    # Surface the machine-readable counters for CI log scrapers.
    grep -o 'lint\.findings\.[a-z.-]*=[0-9]*' "$lint_out" | sed 's/^/   /'
    echo "   lint.elapsed_ms=${lint_elapsed_ms} (report: kept at $lint_json)"
    # Timing guard: the analyzer must stay interactive (< 5 s on the repo).
    if (( lint_elapsed_ms >= 5000 )); then
        echo "rbpc-lint: took ${lint_elapsed_ms} ms (>= 5000 ms budget) — profile the analyzer" >&2
        exit 1
    fi
    rm -f "$lint_out"
fi

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace"
cargo test --workspace -q

echo "== cargo doc --workspace (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== cargo test -p rbpc-core --no-default-features (obs compiled out)"
cargo test -p rbpc-core --no-default-features -q

echo "== cargo build --workspace --no-default-features (tracing compiled out)"
cargo build --workspace --no-default-features -q

echo "== cargo build -p rbpc-obs --no-default-features (obs-net stub compiles)"
cargo build -p rbpc-obs --no-default-features -q

echo "== rbpc-eval loadtest --smoke (live-telemetry end-to-end)"
cargo run -q -p rbpc-eval -- loadtest --smoke --out /tmp/rbpc-loadtest-smoke.jsonl
rm -f /tmp/rbpc-loadtest-smoke.jsonl

echo "== rbpc-eval replay (golden incident: plan hashes must reproduce)"
cargo run -q -p rbpc-eval -- replay crates/eval/tests/golden/incident-smoke.jsonl

echo "== CSR / parallel determinism property test (release, 2-thread runs included)"
cargo test --release --test csr_parallel -q

echo "== batched SPT kernel property test (release: bit-identical to scalar across masks/batches/threads)"
cargo test --release --test spt_batch -q

echo "== sharded-store property test (release: bit-identical to dense at 1/2/8 threads)"
cargo test --release -p rbpc-core --test sharded_store -q

echo "== rbpc-eval paper-scale --smoke (sharded store end-to-end + incident replay)"
cargo build -q --release -p rbpc-eval
target/release/rbpc-eval paper-scale --smoke \
    --out /tmp/rbpc-paperscale-smoke.jsonl \
    --incident-out /tmp/rbpc-paperscale-incident.jsonl
target/release/rbpc-eval replay /tmp/rbpc-paperscale-incident.jsonl
rm -f /tmp/rbpc-paperscale-smoke.jsonl /tmp/rbpc-paperscale-incident.jsonl

if [[ "${SKIP_BENCH_GATE:-0}" = "1" ]]; then
    echo "== bench gate skipped (SKIP_BENCH_GATE=1)"
else
    echo "== bench gate (scripts/bench_gate.sh)"
    scripts/bench_gate.sh
fi

echo "OK: all checks passed"
