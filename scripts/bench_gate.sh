#!/usr/bin/env bash
# Perf-regression gate: run the benchmark suite with JSONL output and
# compare the fresh medians against the committed baseline.
#
#   scripts/bench_gate.sh                 # run gate against bench/baseline.json
#   REFRESH_BASELINE=1 scripts/bench_gate.sh   # re-record the baseline too
#
# Tunables (environment):
#   BENCH_TARGETS   space-separated [[bench]] targets to run
#                   (default: a fast subset — the full suite takes minutes)
#   BENCH_TOLERANCE allowed relative median growth (default 0.75 = +75%,
#                   generous so shared-runner noise doesn't flake the gate)
#   BENCH_OUT       fresh results file (default BENCH_rbpc.json)
#   BASELINE        committed baseline (default bench/baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_TARGETS=${BENCH_TARGETS:-"dijkstra decompose table1 spt_repair csr_dijkstra spt_batch par_provision flight_recorder"}
BENCH_TOLERANCE=${BENCH_TOLERANCE:-0.75}
BENCH_OUT=${BENCH_OUT:-BENCH_rbpc.json}
BASELINE=${BASELINE:-bench/baseline.json}

# Bench binaries run with their package dir as CWD, so hand them an
# absolute path or the JSONL lands in crates/bench/.
case "$BENCH_OUT" in
    /*) ;;
    *) BENCH_OUT="$PWD/$BENCH_OUT" ;;
esac

rm -f "$BENCH_OUT"
for target in $BENCH_TARGETS; do
    echo "== cargo bench --bench $target"
    cargo bench -p rbpc-bench --bench "$target" -- --json "$BENCH_OUT"
done

if [[ ! -s "$BENCH_OUT" ]]; then
    echo "error: $BENCH_OUT is empty — did the bench targets run?" >&2
    exit 2
fi

if [[ "${REFRESH_BASELINE:-0}" = "1" ]]; then
    mkdir -p "$(dirname "$BASELINE")"
    cp "$BENCH_OUT" "$BASELINE"
    echo "refreshed $BASELINE from $BENCH_OUT"
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "error: no baseline at $BASELINE" >&2
    echo "record one with: REFRESH_BASELINE=1 scripts/bench_gate.sh" >&2
    exit 2
fi

# The headline claim of the dynamic-SPT engine: a single-edge repair on
# the 5000-node power-law graph beats a full rebuild by at least 5x.
# bench-gate skips the rule (with a note) when spt_repair wasn't run.
SPT_SPEEDUP="spt_repair/powerlaw_5000/repair_single_edge,spt_repair/powerlaw_5000/full_tree,5.0"

# The CSR core's claim: a flat-array full tree on the 5000-node power-law
# graph beats the Vec<Vec> adjacency by at least 1.3x.
CSR_SPEEDUP="csr_dijkstra/powerlaw_5000/full_tree,dijkstra/powerlaw_5000/full_tree,1.3"

# The flight recorder's claim: the always-on black box costs nothing you
# can measure — a restore with the ring installed stays within ~5% of one
# without it. Shared-runner jitter on a ~6µs/iter bench is itself a few
# percent even at 60 samples, so the gate floor carries noise headroom
# (same spirit as BENCH_TOLERANCE): min(off)/min(on) >= 0.90.
RECORDER_OVERHEAD="flight_recorder/isp_200/restore_on,flight_recorder/isp_200/restore_off,0.90"

# The batched SPT kernel's claim: a 32-source provisioning batch through
# `full_tree_batch` (slim compacted edges, decrease-key frontier, packed
# records) beats the scalar per-source `full_tree` loop by at least 1.3x
# on both gated topologies. Both rows are single-threaded, so unlike the
# par_provision rules below this ratio is core-count independent and
# needs no nproc gate — it must hold even on a 1-core runner (min_ns
# comparison filters scheduler noise).
BATCH_SPEEDUP_POWERLAW="spt_batch/powerlaw_5000/batched,spt_batch/powerlaw_5000/scalar,1.3"
BATCH_SPEEDUP_GNM="spt_batch/gnm_1000/batched,spt_batch/gnm_1000/scalar,1.3"

# The parallel engine's claim: above the serial cutoff (isp_200 is below
# it and now runs inline at every thread count), an 8-thread all-sources
# batch on the 5000-node power-law graph beats the 1-thread one by at
# least 2x. Only meaningful with 8+ real cores, so the rule is gated on
# nproc (bench-gate would skip it anyway if the rows were absent, but on
# a small box the rows exist and the ratio is ~1).
PAR_SPEEDUP=()
if [[ "$(nproc)" -ge 8 ]]; then
    PAR_SPEEDUP=(--speedup "par_provision/powerlaw_5000/threads_8,par_provision/powerlaw_5000/threads_1,2.0")
    # The sharded store's claim: whole-map provisioning (prefetching 128
    # sources shard by shard at >=5k nodes) parallelizes too — 8T beats
    # 1T by at least 2x. Same nproc gate as above.
    PAR_SPEEDUP+=(--speedup "par_provision/sharded/powerlaw_5000/threads_8,par_provision/sharded/powerlaw_5000/threads_1,2.0")
else
    echo "note: <8 cores ($(nproc)) — skipping the par_provision 8-thread speedup rules"
fi

echo "== bench-gate --baseline $BASELINE --current $BENCH_OUT --tolerance $BENCH_TOLERANCE"
cargo run -q -p rbpc-bench --bin bench-gate --release -- \
    --baseline "$BASELINE" --current "$BENCH_OUT" --tolerance "$BENCH_TOLERANCE" \
    --speedup "$SPT_SPEEDUP" --speedup "$CSR_SPEEDUP" --speedup "$RECORDER_OVERHEAD" \
    --speedup "$BATCH_SPEEDUP_POWERLAW" --speedup "$BATCH_SPEEDUP_GNM" \
    "${PAR_SPEEDUP[@]}"
