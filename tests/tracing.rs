//! Cross-crate tracing test: inject a multi-link failure, restore every
//! affected LSP, and check that the collected spans reassemble into one
//! well-formed trace per restoration — correctly nested, spanning at least
//! four categories — and that the Chrome export parses and round-trips.
//!
//! The span collector is process-global, so the whole scenario lives in a
//! single `#[test]` (this file is its own test binary, isolated from other
//! integration tests).

#![cfg(feature = "obs")]

use mpls_rbpc::core::{BasePathOracle, DenseBasePaths};
use mpls_rbpc::graph::{CostModel, FailureSet, Metric, NodeId};
use mpls_rbpc::obs::json::JsonValue;
use mpls_rbpc::obs::{self, json, TraceTree, Value};
use mpls_rbpc::sim::{outage_under, LatencyModel, Scheme};
use mpls_rbpc::topo::gnm_connected;

#[test]
fn multi_failure_traces_are_wellformed() {
    let graph = gnm_connected(40, 110, 9, 11);
    let oracle = DenseBasePaths::build(graph.clone(), CostModel::new(Metric::Weighted, 11));
    let pairs = mpls_rbpc::eval::sample_pairs(&graph, 30, 11);

    // Fail the middle link of the first two distinct sampled LSPs.
    let mut failures = FailureSet::new();
    for &(s, t) in &pairs {
        if failures.failed_edge_count() >= 2 {
            break;
        }
        let path = oracle.base_path(s, t).expect("connected by construction");
        failures.fail_edge(path.edges()[path.hop_count() / 2]);
    }
    assert_eq!(failures.failed_edge_count(), 2);

    let affected: Vec<(NodeId, NodeId, _)> = pairs
        .iter()
        .copied()
        .filter_map(|(s, t)| {
            let path = oracle.base_path(s, t)?;
            let hit = path
                .edges()
                .iter()
                .copied()
                .find(|&e| failures.edge_failed(e))?;
            Some((s, t, hit))
        })
        .collect();
    assert!(
        affected.len() >= 2,
        "scenario must break several LSPs, got {}",
        affected.len()
    );

    let model = LatencyModel::default();
    obs::start_tracing();
    let mut restored = 0usize;
    for &(s, t, hit) in &affected {
        if outage_under(&oracle, &model, s, t, hit, &failures, Scheme::Hybrid).is_ok() {
            restored += 1;
        }
    }
    let spans = obs::stop_tracing();
    assert!(
        restored >= 2,
        "expected several restorations, got {restored}"
    );

    // One parent trace per restored LSP; every span belongs to exactly one.
    let trees = TraceTree::build(&spans);
    assert_eq!(trees.len(), restored, "one trace per restoration");
    assert_eq!(
        trees.iter().map(TraceTree::span_count).sum::<usize>(),
        spans.len(),
        "every span appears in exactly one tree"
    );
    for tree in &trees {
        let root = &tree.root.record;
        assert_eq!(root.name, "outage");
        assert_eq!(root.cat, "restore");
        assert!(root.parent.is_none());
        assert_eq!(root.attr("scheme"), Some(&Value::Str("hybrid".into())));
        assert_eq!(root.attr("k_failures"), Some(&Value::U64(2)));
        assert!(root.attr("restored_at_us").is_some());
        assert!(!tree.root.children.is_empty());

        // Nesting is consistent: children share the trace, reference their
        // parent, and fit inside its wall-clock window.
        fn check(node: &mpls_rbpc::obs::TraceNode) {
            for child in &node.children {
                assert_eq!(child.record.trace, node.record.trace);
                assert_eq!(child.record.parent, Some(node.record.span));
                assert!(child.record.start_ns >= node.record.start_ns);
                assert!(
                    child.record.start_ns + child.record.dur_ns
                        <= node.record.start_ns + node.record.dur_ns + 1_000,
                    "child must end within its parent (1us slack)"
                );
                check(child);
            }
        }
        check(&tree.root);

        // Each restoration's trace spans at least four categories.
        let mut cats: Vec<&str> = Vec::new();
        fn collect<'a>(node: &'a mpls_rbpc::obs::TraceNode, cats: &mut Vec<&'a str>) {
            if !cats.contains(&node.record.cat) {
                cats.push(node.record.cat);
            }
            for child in &node.children {
                collect(child, cats);
            }
        }
        collect(&tree.root, &mut cats);
        assert!(
            cats.len() >= 4,
            "trace {} has categories {cats:?}",
            tree.trace.value()
        );
        for expected in ["restore", "flood", "lookup"] {
            assert!(cats.contains(&expected), "missing {expected} in {cats:?}");
        }
        assert!(
            cats.contains(&"splice") || cats.contains(&"rewrite"),
            "restoration must rewrite tables: {cats:?}"
        );
    }

    // The Chrome export is valid JSON and survives a round trip.
    let exported = obs::chrome_trace_json(&spans);
    let parsed = json::parse(&exported).expect("valid trace_event JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents");
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .count();
    let metadata = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
        .count();
    assert_eq!(complete, spans.len());
    assert_eq!(metadata, trees.len(), "one named row per trace");
    let reprinted = parsed.to_string();
    assert_eq!(json::parse(&reprinted).unwrap(), parsed);
}
