//! Integration: route families (§1's QoS subnets) across topology styles
//! — hierarchical ISP and flat Waxman — restored from one failure feed.

use mpls_rbpc::core::{FamilySet, RouteFamily};
use mpls_rbpc::graph::{is_connected, CostModel, FailureSet, Metric, NodeId};
use mpls_rbpc::topo::{isp_topology, waxman, IspParams, WaxmanParams};

#[test]
fn families_on_isp_share_one_failure_feed() {
    let isp = isp_topology(
        IspParams {
            pops: 10,
            core_routers: 8,
            ..IspParams::default()
        },
        13,
    );
    let g = &isp.graph;
    let model = CostModel::new(Metric::Weighted, 13);
    let set = FamilySet::new()
        .with(RouteFamily::new("all", g, model, |_, _| true))
        .with(RouteFamily::new("backbone", g, model, |_, rec| {
            rec.weight <= 4
        }));

    let (s, t) = (isp.core[0], isp.core[4]);
    // Fail every backbone link on the backbone family's path; both
    // families must restore, each within its own subnet.
    let base = set.families()[1].base_path(s, t).unwrap();
    for &failed in base.edges() {
        let failures = FailureSet::of_edge(failed);
        let results = set.restore_all(s, t, &failures);
        for (name, r) in results {
            let r = r.unwrap_or_else(|e| panic!("family {name}: {e}"));
            assert!(!r.backup.contains_edge(failed), "family {name}");
            if name == "backbone" {
                for &e in r.backup.edges() {
                    assert!(g.weight(e) <= 4, "backbone family left its subnet");
                }
            }
        }
    }
}

#[test]
fn families_on_waxman_distance_classes() {
    // On a geometric graph, "short links only" is a natural family
    // (weight = quantized distance).
    let g = waxman(
        WaxmanParams {
            nodes: 60,
            beta: 0.4,
            ..WaxmanParams::default()
        },
        21,
    );
    assert!(is_connected(&g));
    let model = CostModel::new(Metric::Weighted, 21);
    let short = RouteFamily::new("short-links", &g, model, |_, rec| rec.weight <= 40);
    let all = RouteFamily::new("all", &g, model, |_, _| true);

    let mut compared = 0;
    for t in 1..60usize {
        let (s, t) = (NodeId::new(0), NodeId::new(t));
        let Some(restricted) = short.base_path(s, t) else {
            continue; // the short-link family may be disconnected
        };
        let full = all.base_path(s, t).unwrap();
        // The restricted route can never be cheaper.
        assert!(
            restricted.cost(&g, &model).base >= full.cost(&g, &model).base,
            "{s}->{t}"
        );
        compared += 1;
    }
    assert!(
        compared >= 10,
        "only {compared} pairs connected in the family"
    );
}

#[test]
fn family_restorations_obey_theorem_bounds_everywhere() {
    let g = waxman(
        WaxmanParams {
            nodes: 50,
            beta: 0.5,
            ..WaxmanParams::default()
        },
        5,
    );
    let model = CostModel::new(Metric::Weighted, 5);
    let family = RouteFamily::new("all", &g, model, |_, _| true);
    let mut events = 0;
    for t in (5..50usize).step_by(7) {
        let (s, t) = (NodeId::new(0), NodeId::new(t));
        let Some(base) = family.base_path(s, t) else {
            continue;
        };
        for &e in base.edges() {
            let failures = FailureSet::of_edge(e);
            let Ok(r) = family.restore(s, t, &failures) else {
                continue;
            };
            events += 1;
            // k = 1: at most 3 components, at most 1 raw edge.
            assert!(r.concatenation.len() <= 3);
            assert!(r.concatenation.raw_edge_count() <= 1);
        }
    }
    assert!(events >= 10);
}
