//! Determinism property test for the batched multi-source SPT kernel:
//! on every suite topology family, [`CsrGraph::full_tree_batch`] must be
//! **bit-identical** to the scalar per-source loop
//! ([`CsrGraph::full_tree_masked`]) — same perturbed distances, same
//! parents, same hop counts — across failure masks (none, edges, edges +
//! a node), batch sizes {1, 7, 64}, *one reused scratch across all of
//! them*, and thread counts {1, 2, 8} through
//! [`par_all_sources_csr`] (whose workers run the batch kernel). A
//! large-weight family pins the indexed 4-ary heap discipline, which the
//! unit- and small-weight eval topologies never reach; the kernel's
//! frontier accounting invariants (pops ≡ settles, pushes ≡ settles for
//! a connected healthy batch) are asserted on the way.
//!
//! `scripts/check.sh` runs this suite in release mode, where
//! `debug_assert!` compiles out — the assertions here are the ones that
//! must hold in the binaries users actually run.

use mpls_rbpc::graph::{
    par_all_sources_csr, CostModel, CsrGraph, DetRng, DijkstraScratch, EdgeId, FailureMask,
    FailureSet, Graph, Metric, NodeId, SptBatchScratch,
};
use mpls_rbpc::topo::{
    gnm_connected, internet_like_scaled, isp_topology, waxman, IspParams, WaxmanParams,
};

const BATCH_SIZES: [usize; 3] = [1, 7, 64];
const THREADS: [usize; 3] = [1, 2, 8];

/// `k` sources spread over the node range (deduplicated by spread).
fn sample_sources(n: usize, k: usize) -> Vec<NodeId> {
    (0..k.min(n))
        .map(|i| NodeId::new(i * n / k.min(n)))
        .collect()
}

/// A random failure set: a few edges plus (optionally) one node,
/// mirroring the paper's single-failure scenarios.
fn random_failures(graph: &Graph, rng: &mut DetRng, fail_node: bool) -> FailureSet {
    let mut set = FailureSet::new();
    let m = graph.edge_count();
    for _ in 0..5 {
        set.fail_edge(EdgeId::new(rng.gen_range(0..m)));
    }
    if fail_node && graph.node_count() > 2 {
        set.fail_node(NodeId::new(1 + rng.gen_range(0..graph.node_count() - 1)));
    }
    set
}

/// The core property: for every mask × batch size × thread count, the
/// batched kernel reproduces the scalar trees bit for bit, through one
/// scratch reused across every configuration.
fn assert_batch_matches_scalar(name: &str, graph: &Graph, metric: Metric, seed: u64) {
    let model = CostModel::new(metric, seed);
    let csr = CsrGraph::new(graph, &model);
    let n = csr.node_count();
    let mut scalar = DijkstraScratch::new(n);
    // One scratch across masks, batch sizes, and families-of-sources:
    // epoch reuse is part of the property under test.
    let mut batch = SptBatchScratch::new(0);

    let mut rng = DetRng::seed_from_u64(seed ^ 0xBA7C4);
    let masks: Vec<Option<FailureMask>> = vec![
        None,
        Some(FailureMask::from_set(
            &csr,
            &random_failures(graph, &mut rng, false),
        )),
        Some(FailureMask::from_set(
            &csr,
            &random_failures(graph, &mut rng, true),
        )),
    ];

    for (mi, mask) in masks.iter().enumerate() {
        for &k in &BATCH_SIZES {
            let sources = sample_sources(n, k);
            let want: Vec<_> = sources
                .iter()
                .map(|&s| csr.full_tree_masked(s, mask.as_ref(), &mut scalar))
                .collect();
            let pops_before = batch.heap_pops();
            let settled_before = batch.settled_total();
            let got = csr.full_tree_batch(&sources, mask.as_ref(), &mut batch);
            assert_eq!(
                got, want,
                "{name}: batch diverged (mask {mi}, batch {k}, seed {seed})"
            );
            for (tree, &s) in got.iter().zip(&sources) {
                assert_eq!(
                    csr.validate_tree(tree, mask.as_ref()),
                    Ok(()),
                    "{name}: tree invariants at source {s:?} (mask {mi}, seed {seed})"
                );
            }
            assert_eq!(
                batch.heap_pops() - pops_before,
                batch.settled_total() - settled_before,
                "{name}: a decrease-key frontier pops exactly once per settle"
            );

            // The parallel engine's workers run the same kernel.
            for threads in THREADS {
                let (trees, stats) = par_all_sources_csr(&csr, mask.as_ref(), &sources, threads);
                assert_eq!(
                    trees, want,
                    "{name}: parallel batch diverged ({threads} threads, mask {mi}, seed {seed})"
                );
                assert_eq!(
                    stats.total_heap_pops(),
                    stats.total_settled(),
                    "{name}: parallel frontier accounting ({threads} threads, seed {seed})"
                );
            }
        }
    }
}

#[test]
fn isp_family_matches_scalar() {
    let graph = isp_topology(IspParams::default(), 31).graph;
    assert_batch_matches_scalar("isp", &graph, Metric::Weighted, 1);
    assert_batch_matches_scalar("isp", &graph, Metric::Unweighted, 2);
}

#[test]
fn gnm_family_matches_scalar() {
    let graph = gnm_connected(400, 1_100, 20, 32);
    assert_batch_matches_scalar("gnm_400", &graph, Metric::Weighted, 4);
}

#[test]
fn powerlaw_family_matches_scalar() {
    // Unit weights: pins the level-synchronous two-queue discipline.
    let graph = internet_like_scaled(1_000, 33);
    assert_batch_matches_scalar("powerlaw_1000", &graph, Metric::Weighted, 5);
    assert_batch_matches_scalar("powerlaw_1000", &graph, Metric::Unweighted, 6);
}

#[test]
fn waxman_family_matches_scalar() {
    // Distance weights in 1..=100: pins the Dial bucket-ring discipline.
    let graph = waxman(WaxmanParams::default(), 34);
    assert_batch_matches_scalar("waxman_300", &graph, Metric::Weighted, 7);
}

#[test]
fn heavy_weight_family_pins_heap_discipline() {
    // Base weights far above the bucket ceiling: the indexed 4-ary heap
    // runs, which no eval topology reaches.
    let mut graph = Graph::new(500);
    let mut rng = DetRng::seed_from_u64(35);
    while graph.edge_count() < 1_500 {
        let a = rng.gen_range(0..500usize);
        let b = rng.gen_range(0..500usize);
        if a != b {
            graph
                .add_edge(a, b, 1 + rng.gen_range(0..1_000_000u32))
                .expect("valid random edge");
        }
    }
    assert_batch_matches_scalar("heavy_500", &graph, Metric::Weighted, 8);
}
