//! Determinism property test for the CSR core and the parallel
//! provisioning engine: on every suite topology family, the trees produced
//! by [`CsrGraph`] + scratch Dijkstra and by [`par_all_sources`] at thread
//! counts {1, 2, 8} must be **bit-identical** to the sequential
//! [`shortest_path_tree`] over the `Vec<Vec>` adjacency — same perturbed
//! distances, same parents, same hop counts — with and without random
//! failure sets. Every CSR graph and tree built here must also pass the
//! structural validators ([`CsrGraph::validate`] /
//! [`CsrGraph::validate_tree`]), so the invariant layer is exercised in
//! release builds where `debug_assert!` compiles out. Uses the in-tree
//! [`DetRng`], so it runs in offline builds.
//!
//! `scripts/check.sh` runs this suite as the release-mode determinism
//! gate (its thread loops include the 2-thread configuration the CI box
//! can actually exercise). Families below
//! [`PAR_SERIAL_CUTOFF`](mpls_rbpc::graph::PAR_SERIAL_CUTOFF) nodes
//! collapse to the inline path by design; `powerlaw_1000` sits at the
//! cutoff and carries the genuinely-parallel coverage.

use mpls_rbpc::graph::{
    par_all_sources, par_all_sources_csr, shortest_path_tree, CostModel, CsrGraph, DetRng,
    DijkstraScratch, FailureMask, FailureSet, Graph, Metric, NodeId,
};
use mpls_rbpc::topo::{
    gnm_connected, internet_like_scaled, isp_topology, waxman, IspParams, WaxmanParams,
};

const THREADS: [usize; 3] = [1, 2, 8];

/// Samples `k` distinct-ish sources spread over the node range.
fn sample_sources(n: usize, k: usize) -> Vec<NodeId> {
    (0..k.min(n))
        .map(|i| NodeId::new(i * n / k.min(n)))
        .collect()
}

/// A random failure set: a few edges plus (optionally) one non-source
/// node, mirroring the paper's single-node-failure scenarios.
fn random_failures(graph: &Graph, rng: &mut DetRng, fail_node: bool) -> FailureSet {
    let mut set = FailureSet::new();
    let m = graph.edge_count();
    for _ in 0..5 {
        set.fail_edge(mpls_rbpc::graph::EdgeId::new(rng.gen_range(0..m)));
    }
    if fail_node && graph.node_count() > 2 {
        set.fail_node(NodeId::new(1 + rng.gen_range(0..graph.node_count() - 1)));
    }
    set
}

/// The core property: sequential `shortest_path_tree`, CSR scratch
/// Dijkstra, and `par_all_sources` at every thread count all agree
/// exactly, healthy and under failures.
fn assert_family_deterministic(name: &str, graph: &Graph, metric: Metric, seed: u64) {
    let model = CostModel::new(metric, seed);
    let sources = sample_sources(graph.node_count(), 12);

    // Healthy graph.
    let want: Vec<_> = sources
        .iter()
        .map(|&s| shortest_path_tree(graph, &model, s))
        .collect();
    let csr = CsrGraph::new(graph, &model);
    // Structural invariants hold on every family (direct calls, not
    // `debug_assert!`: check.sh runs this suite in release mode).
    assert_eq!(
        csr.validate(),
        Ok(()),
        "{name}: CSR invariants, seed {seed}"
    );
    let mut scratch = DijkstraScratch::new(graph.node_count());
    for (i, &s) in sources.iter().enumerate() {
        let tree = csr.full_tree(s, &mut scratch);
        assert_eq!(
            csr.validate_tree(&tree, None),
            Ok(()),
            "{name}: tree invariants at source {s:?}, seed {seed}"
        );
        assert_eq!(
            tree, want[i],
            "{name}: CSR tree diverged at source {s:?}, seed {seed}"
        );
    }
    for threads in THREADS {
        let (trees, _) = par_all_sources(graph, &model, &sources, threads);
        assert_eq!(
            trees, want,
            "{name}: parallel batch diverged at {threads} threads, seed {seed}"
        );
    }

    // Under random failure sets (edges, and edges + a node).
    let mut rng = DetRng::seed_from_u64(seed ^ 0xF00D);
    for fail_node in [false, true] {
        let failures = random_failures(graph, &mut rng, fail_node);
        let sources: Vec<_> = sources
            .iter()
            .copied()
            .filter(|&s| !failures.node_failed(s))
            .collect();
        let view = failures.view(graph);
        let want: Vec<_> = sources
            .iter()
            .map(|&s| shortest_path_tree(&view, &model, s))
            .collect();
        let mask = FailureMask::from_set(&csr, &failures);
        for (i, &s) in sources.iter().enumerate() {
            let tree = csr.full_tree_masked(s, Some(&mask), &mut scratch);
            assert_eq!(
                csr.validate_tree(&tree, Some(&mask)),
                Ok(()),
                "{name}: masked tree invariants at source {s:?}, seed {seed}"
            );
            assert_eq!(
                tree, want[i],
                "{name}: masked CSR tree diverged at source {s:?}, seed {seed}"
            );
        }
        for threads in THREADS {
            let (trees, _) = par_all_sources_csr(&csr, Some(&mask), &sources, threads);
            assert_eq!(
                trees, want,
                "{name}: masked parallel batch diverged at {threads} threads, seed {seed}"
            );
        }
    }
}

#[test]
fn isp_family_is_deterministic() {
    let graph = isp_topology(IspParams::default(), 31).graph;
    for seed in [1, 2] {
        assert_family_deterministic("isp", &graph, Metric::Weighted, seed);
    }
    assert_family_deterministic("isp", &graph, Metric::Unweighted, 3);
}

#[test]
fn gnm_family_is_deterministic() {
    let graph = gnm_connected(400, 1_100, 20, 32);
    assert_family_deterministic("gnm_400", &graph, Metric::Weighted, 4);
    assert_family_deterministic("gnm_400", &graph, Metric::Unweighted, 5);
}

#[test]
fn powerlaw_family_is_deterministic() {
    let graph = internet_like_scaled(1_000, 33);
    assert_family_deterministic("powerlaw_1000", &graph, Metric::Unweighted, 6);
}

#[test]
fn waxman_family_is_deterministic() {
    let graph = waxman(
        WaxmanParams {
            nodes: 300,
            ..WaxmanParams::default()
        },
        34,
    );
    assert_family_deterministic("waxman_300", &graph, Metric::Weighted, 7);
}

/// Reusing one scratch arena across families and failure states must not
/// leak state between runs (the epoch stamps are doing their job).
#[test]
fn scratch_reuse_across_families_stays_exact() {
    let graphs = [
        isp_topology(IspParams::default(), 41).graph,
        gnm_connected(150, 360, 15, 42),
        waxman(
            WaxmanParams {
                nodes: 120,
                ..WaxmanParams::default()
            },
            43,
        ),
    ];
    let mut scratch = DijkstraScratch::new(1); // grows on demand
    for (gi, graph) in graphs.iter().enumerate() {
        let model = CostModel::new(Metric::Weighted, 9 + gi as u64);
        let csr = CsrGraph::new(graph, &model);
        for &s in &sample_sources(graph.node_count(), 6) {
            assert_eq!(
                csr.full_tree(s, &mut scratch),
                shortest_path_tree(graph, &model, s),
                "graph {gi}, source {s:?}"
            );
        }
    }
    assert!(scratch.runs() >= 18);
}
