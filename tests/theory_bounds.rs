//! Integration tests for the paper's theoretical results, across the
//! topology and core crates.

use mpls_rbpc::core::theory::{all_edges_are_shortest, min_shortest_path_cover};
use mpls_rbpc::core::{
    greedy_decompose, optimal_decompose, BasePathOracle, DenseBasePaths, Restorer,
};
use mpls_rbpc::graph::{shortest_path, CostModel, DetRng, FailureSet, Metric, NodeId};
use mpls_rbpc::topo::{comb, cycle, gnm_connected, parallel_chain, two_hop_star, weighted_tight};

/// Theorem 1 over many random unweighted graphs and failure sizes: the new
/// shortest path is a concatenation of at most k+1 original shortest paths.
#[test]
fn theorem1_randomized_sweep() {
    let mut rng = DetRng::seed_from_u64(100);
    for trial in 0..40 {
        let n = rng.gen_range(10..40usize);
        let m = rng.gen_range(n + 4..3 * n);
        let g = gnm_connected(n, m, 1, trial);
        let model = CostModel::new(Metric::Unweighted, trial);
        let oracle = DenseBasePaths::build(g.clone(), model);
        let s = NodeId::new(0);
        let t = NodeId::new(n - 1);
        let base = oracle.base_path(s, t).expect("connected");
        for k in 1..=base.hop_count().min(4) {
            let failures = FailureSet::of_edges(base.edges()[..k].iter().copied());
            let view = failures.view(&g);
            let Some(backup) = shortest_path(&view, &model, s, t) else {
                continue;
            };
            let cover = min_shortest_path_cover(&oracle, &backup);
            assert!(
                cover.within_theorem1(k),
                "trial {trial} n {n} k {k}: {cover:?}"
            );
        }
    }
}

/// Theorem 2 over random weighted graphs: k+1 shortest paths plus k edges.
#[test]
fn theorem2_randomized_sweep() {
    let mut rng = DetRng::seed_from_u64(200);
    for trial in 0..40 {
        let n = rng.gen_range(10..40usize);
        let m = rng.gen_range(n + 4..3 * n);
        let g = gnm_connected(n, m, 30, 1000 + trial);
        let model = CostModel::new(Metric::Weighted, trial);
        let oracle = DenseBasePaths::build(g.clone(), model);
        let s = NodeId::new(1 % n);
        let t = NodeId::new(n - 1);
        let base = oracle.base_path(s, t).expect("connected");
        for k in 1..=base.hop_count().min(4) {
            let failures = FailureSet::of_edges(base.edges()[..k].iter().copied());
            let view = failures.view(&g);
            let Some(backup) = shortest_path(&view, &model, s, t) else {
                continue;
            };
            let cover = min_shortest_path_cover(&oracle, &backup);
            assert!(
                cover.within_theorem2(k),
                "trial {trial} n {n} k {k}: {cover:?}"
            );
        }
    }
}

/// Theorem 3 (operational form): with the padded single-path base set, the
/// greedy decomposition restores with at most k+1 base paths and k raw
/// edges — on random graphs with parallel edges mixed in.
#[test]
fn theorem3_base_set_bound_with_parallel_edges() {
    for seed in 0..25u64 {
        let mut g = gnm_connected(20, 40, 8, seed);
        // Sprinkle parallel twins to stress raw-edge handling.
        let mut rng = DetRng::seed_from_u64(seed);
        for _ in 0..6 {
            let e = rbpc_graph::EdgeId::new(rng.gen_range(0..40usize));
            let (u, v) = g.endpoints(e);
            let w = g.weight(e);
            g.add_edge(u, v, w).unwrap();
        }
        let model = CostModel::new(Metric::Weighted, seed);
        let oracle = DenseBasePaths::build(g.clone(), model);
        let restorer = Restorer::new(&oracle);
        let (s, t) = (NodeId::new(3), NodeId::new(17));
        let base = oracle.base_path(s, t).expect("connected");
        for k in 1..=base.hop_count().min(3) {
            let failures = FailureSet::of_edges(base.edges()[..k].iter().copied());
            match restorer.restore(s, t, &failures) {
                Ok(r) => {
                    assert!(
                        r.concatenation.len() <= 2 * k + 1,
                        "seed {seed} k {k}: {:?}",
                        r.concatenation
                    );
                    assert!(
                        r.concatenation.raw_edge_count() <= k,
                        "seed {seed} k {k}: {:?}",
                        r.concatenation
                    );
                }
                Err(_) => continue,
            }
        }
    }
}

/// The comb makes Theorem 1 exactly tight for every k.
#[test]
fn comb_tightness_full_range() {
    for k in 1..=10 {
        let c = comb(k);
        let model = CostModel::new(Metric::Unweighted, 3);
        let oracle = DenseBasePaths::build(c.graph.clone(), model);
        let failures = FailureSet::of_edges(c.spine_edges.iter().copied());
        let view = failures.view(&c.graph);
        let backup = shortest_path(&view, &model, c.s, c.t).unwrap();
        assert_eq!(
            min_shortest_path_cover(&oracle, &backup).path_segments,
            k + 1
        );
        assert_eq!(greedy_decompose(&oracle, &backup).len(), k + 1);
    }
}

/// The weighted chain makes Theorem 2 exactly tight for every k.
#[test]
fn weighted_tight_full_range() {
    for k in 1..=8 {
        let w = weighted_tight(k);
        let model = CostModel::new(Metric::Weighted, 5);
        let oracle = DenseBasePaths::build(w.graph.clone(), model);
        let failures = FailureSet::of_edges(w.cheap_edges.iter().copied());
        let view = failures.view(&w.graph);
        let backup = shortest_path(&view, &model, w.s, w.t).unwrap();
        let cover = min_shortest_path_cover(&oracle, &backup);
        assert_eq!((cover.path_segments, cover.edge_segments), (k + 1, k));
    }
}

/// Figure 4: a single router failure on the two-hop star needs Ω(n) pieces.
#[test]
fn star_router_failure_scales_linearly() {
    for n in [6, 10, 20, 40] {
        let star = two_hop_star(n);
        let model = CostModel::new(Metric::Unweighted, 0);
        let oracle = DenseBasePaths::build(star.graph.clone(), model);
        let failures = FailureSet::of_nodes([star.hub.index()]);
        let view = failures.view(&star.graph);
        let backup = shortest_path(&view, &model, star.s, star.t).unwrap();
        let cover = min_shortest_path_cover(&oracle, &backup);
        assert!(
            cover.total() >= (n - 2) / 2,
            "n {n}: {cover:?} below the paper's lower bound"
        );
    }
}

/// The 4-cycle: with any single-path base set, some single failure forces a
/// third component (the paper's negative answer for undirected unweighted
/// base sets). We verify it for our padded base set.
#[test]
fn cycle4_needs_three_components_for_some_failure() {
    let g = cycle(4);
    let model = CostModel::new(Metric::Unweighted, 11);
    let oracle = DenseBasePaths::build(g.clone(), model);
    let restorer = Restorer::new(&oracle);
    let mut worst = 0;
    for e in g.edge_ids() {
        let failures = FailureSet::of_edge(e);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                if let Ok(r) = restorer.restore(s, t, &failures) {
                    worst = worst.max(r.pc_length());
                }
            }
        }
    }
    assert_eq!(worst, 3, "some failure must force 3 components on C4");
}

/// The parallel chain: padding-chosen base sets pay the extra edges; the
/// restoration still stays within the Theorem 3 bound.
#[test]
fn parallel_chain_within_theorem3() {
    for k in 1..=4 {
        let p = parallel_chain(k);
        let model = CostModel::new(Metric::Unweighted, 7);
        let oracle = DenseBasePaths::build(p.graph.clone(), model);
        let restorer = Restorer::new(&oracle);
        let s = NodeId::new(0);
        let t = NodeId::new(2 * k + 1);
        // Fail the canonical edge at alternating positions.
        let mut failures = FailureSet::new();
        let base = oracle.base_path(s, t).unwrap();
        for (i, &e) in base.edges().iter().enumerate() {
            if i % 2 == 1 && failures.failed_edge_count() < k {
                failures.fail_edge(e);
            }
        }
        let kk = failures.failed_edge_count();
        let r = restorer.restore(s, t, &failures).unwrap();
        assert!(r.concatenation.len() <= 2 * kk + 1);
        assert!(r.concatenation.raw_edge_count() <= kk);
    }
}

/// Greedy and optimal decomposition agree on segment counts across many
/// random single-failure scenarios (greedy optimality).
#[test]
fn greedy_matches_optimal_broadly() {
    for seed in 0..15u64 {
        let g = gnm_connected(16, 34, 9, 77 + seed);
        let model = CostModel::new(Metric::Weighted, seed);
        let oracle = DenseBasePaths::build(g.clone(), model);
        for t in [8usize, 15] {
            let Some(base) = oracle.base_path(NodeId::new(0), NodeId::new(t)) else {
                continue;
            };
            for &e in base.edges() {
                let failures = FailureSet::of_edge(e);
                let view = failures.view(&g);
                let Some(backup) = shortest_path(&view, &model, NodeId::new(0), NodeId::new(t))
                else {
                    continue;
                };
                let greedy = greedy_decompose(&oracle, &backup);
                let optimal = optimal_decompose(&oracle, NodeId::new(0), NodeId::new(t), &failures)
                    .expect("reachable");
                assert_eq!(greedy.len(), optimal.len(), "seed {seed} t {t} e {e}");
            }
        }
    }
}

/// In unweighted graphs every edge is a shortest path, so Theorem 1 needs
/// no raw edges — sanity across generators.
#[test]
fn unweighted_edges_always_shortest() {
    for seed in 0..5 {
        let g = gnm_connected(30, 80, 1, seed);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Unweighted, seed));
        assert!(all_edges_are_shortest(&oracle));
    }
}
