//! Property test for the dynamic-SPT engine: across random failure /
//! recovery sequences on every suite topology family, the incrementally
//! repaired tree must stay **bit-identical** to a full Dijkstra rebuild
//! over the failed view — same perturbed distances, same parents, same hop
//! counts. Uses the in-tree [`DetRng`], so it runs in offline builds
//! (unlike the proptest-gated suites).

use mpls_rbpc::graph::{shortest_path_tree, CostModel, DetRng, DynamicSpt, Graph, Metric, NodeId};
use mpls_rbpc::sim::{churn_sequence, ChurnEvent};
use mpls_rbpc::topo::{gnm_connected, internet_like_scaled, isp_topology, IspParams};

/// Replays `events` through a [`DynamicSpt`] rooted at `source`, asserting
/// after every single event that the repaired tree equals a from-scratch
/// rebuild over the current failure view.
fn assert_repair_tracks_rebuild(name: &str, graph: &Graph, seed: u64, source: usize) {
    let model = CostModel::new(Metric::Weighted, seed);
    let events = churn_sequence(graph, 40, 4, seed);
    let mut spt = DynamicSpt::new(graph, &model, NodeId::new(source));
    for (i, ev) in events.iter().enumerate() {
        match *ev {
            ChurnEvent::Fail(e) => spt.fail_edge(e),
            ChurnEvent::Recover(e) => spt.recover_edge(e),
        };
        let want = shortest_path_tree(&spt.failures().view(graph), &model, NodeId::new(source));
        assert_eq!(
            spt.tree(),
            &want,
            "{name}: repaired tree diverged from rebuild after event {i} ({ev:?}), \
             seed {seed}, source {source}"
        );
    }
}

#[test]
fn repair_equals_rebuild_on_isp() {
    let graph = isp_topology(IspParams::default(), 11).graph;
    let far = graph.node_count() - 1;
    for seed in [1, 2, 3] {
        assert_repair_tracks_rebuild("isp", &graph, seed, 0);
        assert_repair_tracks_rebuild("isp", &graph, seed, far);
    }
}

#[test]
fn repair_equals_rebuild_on_gnm_1000() {
    let graph = gnm_connected(1_000, 3_000, 20, 12);
    assert_repair_tracks_rebuild("gnm_1000", &graph, 4, 0);
    assert_repair_tracks_rebuild("gnm_1000", &graph, 5, 500);
}

#[test]
fn repair_equals_rebuild_on_power_law() {
    let graph = internet_like_scaled(1_200, 13);
    assert_repair_tracks_rebuild("powerlaw_1200", &graph, 6, 0);
    assert_repair_tracks_rebuild("powerlaw_1200", &graph, 7, 600);
}

/// Beyond the sim's churn generator: adversarial sequences that fail and
/// recover the *same* few edges repeatedly (the generator spreads events
/// over the whole edge set, so repeated flaps of one edge are rare there).
#[test]
fn repeated_flaps_of_tree_edges_stay_exact() {
    let graph = isp_topology(IspParams::default(), 21).graph;
    let model = CostModel::new(Metric::Weighted, 21);
    let source = NodeId::new(0);
    let base = shortest_path_tree(&graph, &model, source);
    // Flap edges that are actually on the tree — the interesting case.
    let tree_edges: Vec<_> = (0..graph.node_count())
        .filter_map(|i| base.parent_edge(NodeId::new(i)))
        .collect();
    let mut rng = DetRng::seed_from_u64(99);
    let mut spt = DynamicSpt::new(&graph, &model, source);
    for step in 0..120 {
        let e = tree_edges[rng.gen_range(0..tree_edges.len())];
        if spt.failures().edge_failed(e) {
            spt.recover_edge(e);
        } else {
            spt.fail_edge(e);
        }
        let want = shortest_path_tree(&spt.failures().view(&graph), &model, source);
        assert_eq!(spt.tree(), &want, "flap step {step} on edge {e:?}");
    }
}
