//! Cross-crate property tests: random topologies, random failures, and the
//! invariants RBPC must maintain end-to-end (including through the MPLS
//! data plane).

// Requires the external `proptest` crate: compiled only with `--features proptest`
// (offline builds ship without it).
#![cfg(feature = "proptest")]

use mpls_rbpc::core::{
    greedy_decompose, BasePathOracle, DenseBasePaths, ProvisionedDomain, Restorer, SegmentKind,
};
use mpls_rbpc::graph::{CostModel, FailureSet, Metric, NodeId};
use mpls_rbpc::topo::gnm_connected;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    m: usize,
    max_w: u32,
    seed: u64,
    metric: Metric,
    kill: Vec<usize>,
    s: usize,
    t: usize,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        6usize..24,
        0u64..5000,
        prop::bool::ANY,
        proptest::collection::vec(0usize..1000, 0..4),
        0usize..1000,
        0usize..1000,
    )
        .prop_map(|(n, seed, unweighted, kill, s, t)| Scenario {
            n,
            m: 2 * n,
            max_w: if unweighted { 1 } else { 12 },
            seed,
            metric: if unweighted {
                Metric::Unweighted
            } else {
                Metric::Weighted
            },
            kill,
            s,
            t,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Restoration invariants: the backup is a simple surviving shortest
    /// path, the concatenation reassembles it, every base-path segment is
    /// a canonical base path, and the bound of Theorem 3 holds.
    #[test]
    fn restoration_invariants(sc in arb_scenario()) {
        let g = gnm_connected(sc.n, sc.m, sc.max_w, sc.seed);
        let model = CostModel::new(sc.metric, sc.seed);
        let oracle = DenseBasePaths::build(g.clone(), model);
        let restorer = Restorer::new(&oracle);
        let s = NodeId::new(sc.s % sc.n);
        let t = NodeId::new(sc.t % sc.n);
        if s == t {
            return Ok(());
        }
        let failures: FailureSet = sc
            .kill
            .iter()
            .map(|&i| mpls_rbpc::graph::EdgeId::new(i % g.edge_count()))
            .collect();
        let k = failures.failed_edge_count();
        match restorer.restore(s, t, &failures) {
            Ok(r) => {
                prop_assert!(r.backup.is_simple());
                prop_assert_eq!(r.backup.source(), s);
                prop_assert_eq!(r.backup.target(), t);
                for &e in r.backup.edges() {
                    prop_assert!(!failures.edge_failed(e));
                }
                // The backup is truly shortest in the failed network.
                let view = failures.view(&g);
                let best = mpls_rbpc::graph::distance(&view, &model, s, t).unwrap();
                prop_assert_eq!(best.base, r.backup_cost.base);
                // Concatenation reassembles the backup exactly.
                if !r.backup.is_trivial() {
                    prop_assert_eq!(r.concatenation.full_path().unwrap(), r.backup.clone());
                }
                // Segments really are base paths / raw edges.
                for seg in r.concatenation.segments() {
                    match seg.kind {
                        SegmentKind::BasePath => prop_assert!(oracle.is_base_path(&seg.path)),
                        SegmentKind::RawEdge => {
                            prop_assert_eq!(seg.path.hop_count(), 1);
                            prop_assert!(!oracle.is_base_path(&seg.path));
                        }
                    }
                }
                // Theorem 3 bound: ≤ (k+1) paths + k edges components.
                prop_assert!(r.concatenation.len() <= 2 * k + 1);
                prop_assert!(r.concatenation.raw_edge_count() <= k);
                // Cost monotonicity.
                prop_assert!(r.backup_cost.base >= r.original_cost.base);
            }
            Err(_) => {
                // Must actually be disconnected (or an endpoint died — not
                // possible here since we only fail edges).
                let view = failures.view(&g);
                prop_assert!(
                    mpls_rbpc::graph::shortest_path(&view, &model, s, t).is_none()
                );
            }
        }
    }

    /// Decomposing any base path yields one segment; decomposing any
    /// canonical shortest path in the intact network likewise.
    #[test]
    fn intact_paths_decompose_trivially(
        n in 6usize..20,
        seed in 0u64..3000,
        s in 0usize..1000,
        t in 0usize..1000,
    ) {
        let g = gnm_connected(n, 2 * n, 9, seed);
        let model = CostModel::new(Metric::Weighted, seed);
        let oracle = DenseBasePaths::build(g, model);
        let s = NodeId::new(s % n);
        let t = NodeId::new(t % n);
        if s == t {
            return Ok(());
        }
        let p = oracle.base_path(s, t).unwrap();
        if !p.is_trivial() {
            let c = greedy_decompose(&oracle, &p);
            prop_assert_eq!(c.len(), 1);
        }
    }

    /// MPLS end-to-end: after applying a restoration, the packet delivers
    /// along exactly the computed backup, and the label stack depth equals
    /// the concatenation length at its deepest.
    #[test]
    fn mpls_delivery_matches_restoration(
        n in 8usize..16,
        seed in 0u64..1000,
        which in 0usize..1000,
    ) {
        let g = gnm_connected(n, 2 * n, 7, seed);
        let model = CostModel::new(Metric::Weighted, seed);
        let oracle = DenseBasePaths::build(g.clone(), model);
        let restorer = Restorer::new(&oracle);
        let s = NodeId::new(0);
        let t = NodeId::new(n - 1);
        let base = oracle.base_path(s, t).unwrap();
        if base.is_trivial() {
            return Ok(());
        }
        let failed = base.edges()[which % base.hop_count()];
        let failures = FailureSet::of_edge(failed);
        let Ok(r) = restorer.restore(s, t, &failures) else {
            return Ok(());
        };
        let mut dom = ProvisionedDomain::new(&oracle);
        dom.provision_all_pairs(&oracle).unwrap();
        dom.apply_source_restoration(&r).unwrap();
        let trace = dom.forward(s, t, &failures).unwrap();
        prop_assert_eq!(trace.route(), r.backup.nodes());
        prop_assert_eq!(trace.max_stack_depth() as usize, r.pc_length().max(0));
    }
}
