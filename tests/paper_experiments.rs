//! Shape checks for the paper's evaluation at quick scale: the directions
//! and regimes the paper reports must reproduce on the synthetic suite.
//! (EXPERIMENTS.md records the full-scale paper-vs-measured numbers.)

use mpls_rbpc::eval::{
    figure10, sample_pairs, standard_suite, table1, table2_block, table3, EvalScale, FailureClass,
};

#[test]
fn table1_matches_paper_shape() {
    let suite = standard_suite(EvalScale::Quick, 1);
    let rows = table1(&suite);
    assert_eq!(rows.len(), 3);
    // ISP: ~200 nodes, avg degree around 3.5.
    assert!((150..=260).contains(&rows[0].nodes));
    assert!((3.0..4.2).contains(&rows[0].avg_degree));
    // Internet stand-in keeps the paper's edges/nodes ratio (~2.52).
    let ratio = rows[1].links as f64 / rows[1].nodes as f64;
    assert!((2.3..2.8).contains(&ratio), "internet ratio {ratio}");
    // AS-graph stand-in: avg degree near the paper's 4.16.
    assert!((3.6..4.8).contains(&rows[2].avg_degree));
}

#[test]
fn table2_one_link_matches_paper_shape() {
    let suite = standard_suite(EvalScale::Quick, 1);
    let isp = &suite[0];
    let oracle = isp.oracle(1);
    let pairs = sample_pairs(&isp.graph, 120, 1);
    let row = table2_block(&isp.name, &oracle, FailureClass::OneLink, &pairs, 4);
    // Paper, ISP weighted after one link failure: avg PC length 2.05,
    // length s.f. 1.15, ILM stretch well below 100%.
    assert!(
        (1.8..=2.3).contains(&row.avg_pc_length),
        "avg PC length {}",
        row.avg_pc_length
    );
    assert!(
        (1.0..=1.6).contains(&row.length_sf),
        "length sf {}",
        row.length_sf
    );
    assert!(row.avg_ilm_sf < 0.6, "avg ILM sf {}", row.avg_ilm_sf);
    assert!(row.min_ilm_sf < row.avg_ilm_sf);
    assert!(row.skipped == 0, "ISP is 2-edge-connected");
    assert!(row.max_multiplicity.unwrap() >= 1);
}

#[test]
fn table2_two_links_cost_more_state_than_one() {
    let suite = standard_suite(EvalScale::Quick, 1);
    let isp = &suite[0];
    let oracle = isp.oracle(1);
    let pairs = sample_pairs(&isp.graph, 120, 1);
    let one = table2_block(&isp.name, &oracle, FailureClass::OneLink, &pairs, 4);
    let two = table2_block(&isp.name, &oracle, FailureClass::TwoLinks, &pairs, 4);
    // The paper's pattern: for two failures, pre-provisioning explodes
    // (ILM stretch factor drops) and PC length grows a little.
    assert!(
        two.avg_ilm_sf < one.avg_ilm_sf,
        "{} !< {}",
        two.avg_ilm_sf,
        one.avg_ilm_sf
    );
    assert!(two.avg_pc_length >= one.avg_pc_length);
    assert!(
        two.avg_pc_length < 3.5,
        "PC length stays small: {}",
        two.avg_pc_length
    );
}

#[test]
fn table2_router_failures_stay_near_two() {
    // Paper: despite the Figure 4 pathology, real-ish topologies restore
    // router failures with ~2 pieces on average.
    let suite = standard_suite(EvalScale::Quick, 1);
    let isp = &suite[1]; // unweighted ISP
    let oracle = isp.oracle(1);
    let pairs = sample_pairs(&isp.graph, 100, 2);
    let row = table2_block(&isp.name, &oracle, FailureClass::OneRouter, &pairs, 4);
    assert!(row.events > 0);
    assert!(
        (1.5..=2.8).contains(&row.avg_pc_length),
        "router-failure avg PC length {}",
        row.avg_pc_length
    );
}

#[test]
fn table2_runs_on_powerlaw_topologies_with_lazy_oracle() {
    let suite = standard_suite(EvalScale::Quick, 1);
    for case in &suite[2..] {
        let oracle = case.oracle(1);
        let pairs = sample_pairs(&case.graph, case.samples, 1);
        let row = table2_block(&case.name, &oracle, FailureClass::OneLink, &pairs, 4);
        assert!(row.events > 0, "{}", case.name);
        // Paper: power-law graphs restore with almost exactly 2 pieces.
        assert!(
            (1.7..=2.4).contains(&row.avg_pc_length),
            "{}: avg PC length {}",
            case.name,
            row.avg_pc_length
        );
        assert!(
            row.length_sf < 1.7,
            "{}: length sf {}",
            case.name,
            row.length_sf
        );
    }
}

#[test]
fn table3_short_bypasses_dominate() {
    let suite = standard_suite(EvalScale::Quick, 1);
    // ISP: the paper sees ~90% of bypasses with 2–3 hops.
    let isp = table3(&suite[0].name, &suite[0].graph, suite[0].metric, 1, 4);
    assert!(
        isp.fraction_at_most(3) > 0.6,
        "ISP short-bypass fraction {}",
        isp.fraction_at_most(3)
    );
    // Power-law graphs: >85% within 2–3 hops in the paper.
    let asg = table3(&suite[3].name, &suite[3].graph, suite[3].metric, 1, 4);
    assert!(
        asg.fraction_at_most(3) > 0.6,
        "AS-graph short-bypass fraction {}",
        asg.fraction_at_most(3)
    );
}

#[test]
fn figure10_local_rbpc_is_near_optimal() {
    let suite = standard_suite(EvalScale::Quick, 1);
    let isp = &suite[0];
    let oracle = isp.oracle(1);
    let pairs = sample_pairs(&isp.graph, 80, 3);
    let fig = figure10(&oracle, &pairs, 4);
    assert!(fig.events > 100);
    // Cost stretch can never be below 1.
    assert_eq!(fig.cost_edge_bypass.below_one, 0);
    assert_eq!(fig.cost_end_route.below_one, 0);
    // The bulk of restorations are within 25% of optimal cost.
    for h in [&fig.cost_edge_bypass, &fig.cost_end_route] {
        let near = h.optimal_fraction() + h.bins()[2].1;
        assert!(near > 0.6, "near-optimal fraction {near}");
    }
    // End-route is by construction at least as good as edge-bypass in
    // aggregate cost terms (it may take the same or a better route).
    assert!(
        fig.cost_end_route.optimal_fraction() >= fig.cost_edge_bypass.optimal_fraction() - 0.05
    );
}

#[test]
fn experiments_are_deterministic() {
    let suite = standard_suite(EvalScale::Quick, 2);
    let isp = &suite[0];
    let oracle = isp.oracle(2);
    let pairs = sample_pairs(&isp.graph, 40, 2);
    let a = table2_block(&isp.name, &oracle, FailureClass::OneLink, &pairs, 1);
    let b = table2_block(&isp.name, &oracle, FailureClass::OneLink, &pairs, 3);
    assert_eq!(a.events, b.events);
    assert_eq!(a.avg_pc_length, b.avg_pc_length);
    assert_eq!(a.redundancy, b.redundancy);
}
