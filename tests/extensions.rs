//! Integration tests for the extension systems: merged provisioning, the
//! hybrid scheme, the restoration-latency simulation, Corollary 4's
//! expanded base set, and the KSP baseline — all exercised together on
//! ISP-like topologies.

use mpls_rbpc::core::baseline::KspBackupSet;
use mpls_rbpc::core::{
    expanded_decompose, hybrid_restore, BasePathOracle, DenseBasePaths, ProvisionedDomain, Restorer,
};
use mpls_rbpc::graph::{cut_elements, CostModel, FailureSet, Metric};
use mpls_rbpc::sim::{outage, outage_summary, LatencyModel, Scheme};
use mpls_rbpc::topo::{isp_topology, IspParams};

fn isp() -> mpls_rbpc::graph::Graph {
    isp_topology(
        IspParams {
            pops: 10,
            core_routers: 8,
            ..IspParams::default()
        },
        11,
    )
    .graph
}

fn oracle() -> DenseBasePaths {
    DenseBasePaths::build(isp(), CostModel::new(Metric::Weighted, 11))
}

/// Merged provisioning and per-pair provisioning forward identically and
/// restore identically — only the ILM footprint differs.
#[test]
fn merged_and_pair_domains_agree() {
    let o = oracle();
    let g = o.graph().clone();
    let restorer = Restorer::new(&o);
    let mut pair_dom = ProvisionedDomain::new(&o);
    pair_dom.provision_all_pairs(&o).unwrap();
    let mut merged_dom = ProvisionedDomain::new(&o);
    merged_dom.provision_merged(&o).unwrap();

    assert!(merged_dom.net().total_ilm_entries() < pair_dom.net().total_ilm_entries());

    let mut checked = 0;
    for s in g.nodes().step_by(13) {
        for t in g.nodes().step_by(7) {
            if s == t {
                continue;
            }
            // Identical base forwarding.
            let none = FailureSet::new();
            let a = pair_dom.forward(s, t, &none).unwrap();
            let b = merged_dom.forward(s, t, &none).unwrap();
            assert_eq!(a.route(), b.route());
            // Identical restoration behavior after a failure.
            let base = o.base_path(s, t).unwrap();
            if base.is_trivial() {
                continue;
            }
            let failed = base.edges()[0];
            let failures = FailureSet::of_edge(failed);
            let Ok(r) = restorer.restore(s, t, &failures) else {
                continue;
            };
            pair_dom.apply_source_restoration(&r).unwrap();
            merged_dom.apply_source_restoration_merged(&r).unwrap();
            let a = pair_dom.forward(s, t, &failures).unwrap();
            let b = merged_dom.forward(s, t, &failures).unwrap();
            assert_eq!(a.route(), r.backup.nodes());
            assert_eq!(b.route(), r.backup.nodes());
            checked += 1;
        }
    }
    assert!(checked >= 10, "only {checked} pairs checked");
}

/// The hybrid scheme on the ISP: phase 1 is instant and correct, phase 2
/// is optimal, and the interim stretch is modest (Figure 10's story).
#[test]
fn hybrid_on_isp_has_modest_interim_stretch() {
    let o = oracle();
    let restorer = Restorer::new(&o);
    let g = o.graph().clone();
    let mut events = 0;
    let mut stretch_sum = 0.0;
    for s in g.nodes().step_by(11) {
        for t in g.nodes().step_by(5) {
            if s == t {
                continue;
            }
            let Some(base) = o.base_path(s, t) else {
                continue;
            };
            if base.hop_count() < 2 {
                continue;
            }
            let failed = base.edges()[base.hop_count() / 2];
            let failures = FailureSet::of_edge(failed);
            let Ok(h) = hybrid_restore(&o, &restorer, failed, &failures, s, t) else {
                continue;
            };
            events += 1;
            stretch_sum += h.interim_stretch();
            assert!(h.interim_stretch() >= 1.0 - 1e-12);
        }
    }
    assert!(events >= 20);
    let mean = stretch_sum / events as f64;
    assert!(mean < 1.3, "mean interim stretch {mean}");
}

/// Latency ordering holds network-wide, and local restoration is an order
/// of magnitude faster than re-establishment.
#[test]
fn latency_ordering_on_isp() {
    let o = oracle();
    let pairs: Vec<_> = o
        .graph()
        .nodes()
        .step_by(9)
        .flat_map(|s| o.graph().nodes().step_by(17).map(move |t| (s, t)))
        .filter(|(s, t)| s != t)
        .collect();
    let model = LatencyModel::default();
    let local = outage_summary(&o, &model, &pairs, Scheme::LocalEdgeBypass);
    let source = outage_summary(&o, &model, &pairs, Scheme::SourceRbpc);
    let re = outage_summary(&o, &model, &pairs, Scheme::Reestablish);
    assert!(local.mean_us <= source.mean_us);
    assert!(source.mean_us < re.mean_us);
    assert!(re.mean_us > 3.0 * local.mean_us);
    // Per-event sanity on one concrete failure.
    let (s, t) = pairs
        .iter()
        .copied()
        .find(|&(s, t)| {
            o.base_path(s, t)
                .map(|p| p.hop_count() >= 3)
                .unwrap_or(false)
        })
        .expect("a long pair exists");
    let base = o.base_path(s, t).unwrap();
    let e = base.edges()[1];
    let l = outage(&o, &model, s, t, e, Scheme::LocalEndRoute).unwrap();
    let r = outage(&o, &model, s, t, e, Scheme::Reestablish).unwrap();
    assert!(l.restored_at_us < r.restored_at_us);
    assert!(l.packets_lost(10_000) < r.packets_lost(10_000));
}

/// Corollary 4 on the ISP: the expanded base set never needs more pieces
/// than the plain set, and stays within k + 1 for single failures.
#[test]
fn expanded_set_on_isp() {
    let o = oracle();
    let g = o.graph().clone();
    let model = *o.cost_model();
    let mut events = 0;
    for s in g.nodes().step_by(15) {
        for t in g.nodes().step_by(8) {
            if s == t {
                continue;
            }
            let Some(base) = o.base_path(s, t) else {
                continue;
            };
            for &e in base.edges() {
                let failures = FailureSet::of_edge(e);
                let view = failures.view(&g);
                let Some(backup) = mpls_rbpc::graph::shortest_path(&view, &model, s, t) else {
                    continue;
                };
                let exp = expanded_decompose(&o, &backup);
                assert!(exp.len() <= 2, "k=1 must give <= 2 expanded pieces");
                events += 1;
            }
        }
    }
    assert!(events >= 30);
}

/// KSP coverage grows with j but never reaches RBPC's 100% cheaply, and
/// the ISP has no topologically-unprotectable elements.
#[test]
fn ksp_coverage_and_protection_limits() {
    let o = oracle();
    let g = o.graph().clone();
    let cuts = cut_elements(&g);
    assert!(cuts.bridges.is_empty());
    let restorer = Restorer::new(&o);
    let mut uncovered_j2 = 0;
    let mut events = 0;
    for t in g.nodes().step_by(6) {
        let s = mpls_rbpc::graph::NodeId::new(0);
        if s == t {
            continue;
        }
        let set = KspBackupSet::precompute(&o, s, t, 2);
        let Some(primary) = set.paths().first().cloned() else {
            continue;
        };
        for &e in primary.edges() {
            let failures = FailureSet::of_edge(e);
            events += 1;
            // RBPC always restores (no bridges in this topology).
            restorer.restore(s, t, &failures).unwrap();
            if set.restore(&failures).is_none() {
                uncovered_j2 += 1;
            }
        }
    }
    assert!(events > 10);
    assert!(
        uncovered_j2 > 0,
        "two pre-provisioned paths cannot cover every link failure"
    );
}
