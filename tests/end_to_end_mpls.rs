//! End-to-end integration: every restoration computed by the core crate is
//! validated by actually forwarding packets through the simulated MPLS
//! data plane, on ISP-like topologies.

use mpls_rbpc::core::{
    edge_bypass, end_route, BasePathOracle, DenseBasePaths, ProvisionedDomain, Restorer,
};
use mpls_rbpc::graph::{CostModel, FailureSet, Metric, NodeId};
use mpls_rbpc::mpls::ForwardError;
use mpls_rbpc::topo::{gnm_connected, isp_topology, IspParams};

fn small_isp() -> mpls_rbpc::graph::Graph {
    // A scaled-down ISP (fast to provision all pairs in a test).
    isp_topology(
        IspParams {
            pops: 8,
            core_routers: 6,
            core_chords: 4,
            ..IspParams::default()
        },
        5,
    )
    .graph
}

/// Provision all pairs and verify base forwarding matches the oracle for
/// every ordered pair.
#[test]
fn full_provisioning_forwards_all_pairs() {
    let g = small_isp();
    let oracle = DenseBasePaths::build(g.clone(), CostModel::new(Metric::Weighted, 5));
    let mut dom = ProvisionedDomain::new(&oracle);
    dom.provision_all_pairs(&oracle).unwrap();
    let none = FailureSet::new();
    for s in g.nodes() {
        for t in g.nodes() {
            if s == t {
                continue;
            }
            let trace = dom.forward(s, t, &none).unwrap();
            assert_eq!(trace.route(), oracle.base_path(s, t).unwrap().nodes());
        }
    }
}

/// For every link of the network: fail it, apply the failover plan, and
/// verify every affected sampled route delivers along its backup.
#[test]
fn every_link_failure_is_restorable_by_fec_rewrites() {
    let g = small_isp();
    let oracle = DenseBasePaths::build(g.clone(), CostModel::new(Metric::Weighted, 5));
    let restorer = Restorer::new(&oracle);
    let mut dom = ProvisionedDomain::new(&oracle);
    dom.provision_all_pairs(&oracle).unwrap();

    let pairs: Vec<_> = g
        .nodes()
        .flat_map(|s| g.nodes().map(move |t| (s, t)))
        .filter(|(s, t)| s != t)
        .collect();

    for link in g.edge_ids() {
        let plan = restorer.failover_plan(link, pairs.iter().copied());
        let failures = FailureSet::of_edge(link);
        // Apply every update; sample-verify a handful by forwarding.
        for (i, update) in plan.updates.iter().enumerate() {
            dom.apply_source_restoration(&update.restoration).unwrap();
            if i % 17 == 0 {
                let trace = dom.forward(update.source, update.dest, &failures).unwrap();
                assert_eq!(trace.route(), update.restoration.backup.nodes());
                assert!(!trace.links().contains(&link));
            }
        }
        // Unrestorable pairs must really be disconnected.
        for &(s, t) in &plan.unrestorable {
            let view = failures.view(&g);
            assert!(mpls_rbpc::graph::shortest_path(&view, oracle.cost_model(), s, t).is_none());
        }
        // Restore original FEC entries for the next link's round.
        for update in &plan.updates {
            let lsp = dom.lsp_for_pair(update.source, update.dest).unwrap();
            dom.net_mut()
                .set_fec_via_lsps(update.source, update.dest, &[lsp])
                .unwrap();
        }
    }
}

/// Local RBPC (both variants) on a batch of failures: splice, forward,
/// reverse on recovery.
#[test]
fn local_splices_deliver_and_reverse() {
    let g = small_isp();
    let oracle = DenseBasePaths::build(g.clone(), CostModel::new(Metric::Weighted, 5));
    let mut dom = ProvisionedDomain::new(&oracle);
    dom.provision_all_pairs(&oracle).unwrap();

    let mut tested = 0;
    'outer: for s in g.nodes().step_by(7) {
        for t in g.nodes().step_by(5) {
            if s == t {
                continue;
            }
            let Some(base) = oracle.base_path(s, t) else {
                continue;
            };
            if base.hop_count() < 3 {
                continue;
            }
            let failed = base.edges()[1];
            let failures = FailureSet::of_edge(failed);
            let lsp = dom.lsp_for_pair(s, t).unwrap();

            for variant in 0..2 {
                let lr = if variant == 0 {
                    edge_bypass(&oracle, &base, failed, &failures)
                } else {
                    end_route(&oracle, &base, failed, &failures)
                };
                let Ok(lr) = lr else { continue };
                let old = dom.apply_local_restoration(lsp, &lr).unwrap();
                let trace = dom.forward(s, t, &failures).unwrap();
                assert_eq!(trace.route(), lr.end_to_end.nodes());
                assert!(!trace.links().contains(&failed));
                // Link recovers: reverse the splice.
                let label = dom.net().lsp(lsp).unwrap().label_at(lr.r1).unwrap();
                dom.net_mut().install_ilm_entry(lr.r1, label, old).unwrap();
                let trace = dom.forward(s, t, &FailureSet::new()).unwrap();
                assert_eq!(trace.route(), base.nodes());
            }
            tested += 1;
            if tested > 30 {
                break 'outer;
            }
        }
    }
    assert!(tested >= 10, "exercised only {tested} LSPs");
}

/// Two simultaneous failures: source RBPC still restores, with label
/// stacks bounded by Theorem 3 (k = 2 → at most 3 paths + 2 edges).
#[test]
fn double_failure_restoration_end_to_end() {
    let g = small_isp();
    let oracle = DenseBasePaths::build(g.clone(), CostModel::new(Metric::Weighted, 5));
    let restorer = Restorer::new(&oracle);
    let mut dom = ProvisionedDomain::new(&oracle);
    dom.provision_all_pairs(&oracle).unwrap();

    let mut verified = 0;
    for s in g.nodes().step_by(11) {
        for t in g.nodes().step_by(13) {
            if s == t {
                continue;
            }
            let Some(base) = oracle.base_path(s, t) else {
                continue;
            };
            if base.hop_count() < 2 {
                continue;
            }
            let mut failures = FailureSet::of_edge(base.edges()[0]);
            failures.fail_edge(base.edges()[base.hop_count() - 1]);
            let Ok(r) = restorer.restore(s, t, &failures) else {
                continue;
            };
            assert!(r.concatenation.len() <= 5);
            assert!(r.concatenation.raw_edge_count() <= 2);
            dom.apply_source_restoration(&r).unwrap();
            let trace = dom.forward(s, t, &failures).unwrap();
            assert_eq!(trace.route(), r.backup.nodes());
            assert!(trace.max_stack_depth() <= 5);
            verified += 1;
        }
    }
    assert!(verified >= 5, "verified only {verified} double failures");
}

/// Router failure: restoration avoids the dead router and the packet
/// delivers around it.
#[test]
fn router_failure_end_to_end() {
    let g = small_isp();
    let oracle = DenseBasePaths::build(g.clone(), CostModel::new(Metric::Weighted, 5));
    let restorer = Restorer::new(&oracle);
    let mut dom = ProvisionedDomain::new(&oracle);
    dom.provision_all_pairs(&oracle).unwrap();

    let mut verified = 0;
    for s in g.nodes().step_by(9) {
        for t in g.nodes().step_by(7) {
            if s == t {
                continue;
            }
            let Some(base) = oracle.base_path(s, t) else {
                continue;
            };
            if base.hop_count() < 2 {
                continue;
            }
            let dead = base.nodes()[1];
            let failures = FailureSet::of_nodes([dead.index()]);
            let Ok(r) = restorer.restore(s, t, &failures) else {
                continue;
            };
            assert!(!r.backup.contains_node(dead));
            dom.apply_source_restoration(&r).unwrap();
            let trace = dom.forward(s, t, &failures).unwrap();
            assert_eq!(trace.route(), r.backup.nodes());
            verified += 1;
        }
    }
    assert!(verified >= 5, "verified only {verified} router failures");
}

/// The data plane is honest: a broken LSP black-holes with a precise error
/// until some scheme fixes the tables.
#[test]
fn unrestored_failures_black_hole() {
    let g = gnm_connected(15, 30, 6, 8);
    let oracle = DenseBasePaths::build(g.clone(), CostModel::new(Metric::Weighted, 8));
    let mut dom = ProvisionedDomain::new(&oracle);
    dom.provision_all_pairs(&oracle).unwrap();
    let (s, t) = (NodeId::new(0), NodeId::new(14));
    let base = oracle.base_path(s, t).unwrap();
    let failures = FailureSet::of_edge(base.edges()[0]);
    match dom.forward(s, t, &failures).unwrap_err() {
        ForwardError::DeadLink { router, link } => {
            assert_eq!(router, base.nodes()[0]);
            assert_eq!(link, base.edges()[0]);
        }
        other => panic!("expected DeadLink, got {other}"),
    }
}
