//! Full paper-scale smoke runs, `#[ignore]`d by default (minutes of CPU).
//!
//! Run with: `cargo test --release --test paper_scale -- --ignored`

use mpls_rbpc::eval::{
    sample_pairs, standard_suite, table1, table2_block, table3, EvalScale, FailureClass,
};

#[test]
#[ignore = "paper-scale run: generates the 40 377-node Internet topology"]
fn paper_scale_table1_matches_exactly() {
    let suite = standard_suite(EvalScale::Paper, 1);
    let rows = table1(&suite);
    assert_eq!(rows[1].nodes, 40_377);
    assert_eq!(rows[1].links, 101_659);
    assert_eq!(rows[2].nodes, 4_746);
    assert_eq!(rows[2].links, 9_878);
}

#[test]
#[ignore = "paper-scale run: one-link Table 2 block on the full Internet graph"]
fn paper_scale_internet_one_link_block() {
    let suite = standard_suite(EvalScale::Paper, 1);
    let case = &suite[2];
    let oracle = case.oracle(1);
    let pairs = sample_pairs(&case.graph, case.samples, 1);
    let row = table2_block(&case.name, &oracle, FailureClass::OneLink, &pairs, 8);
    assert!(row.events > 0);
    // The paper's Internet row: avg PC length 2.00, length s.f. 1.08.
    assert!(
        (1.9..=2.2).contains(&row.avg_pc_length),
        "{}",
        row.avg_pc_length
    );
    assert!((1.0..=1.25).contains(&row.length_sf), "{}", row.length_sf);
}

#[test]
#[ignore = "paper-scale run: Table 3 over all 101 659 Internet links"]
fn paper_scale_internet_bypasses() {
    let suite = standard_suite(EvalScale::Paper, 1);
    let case = &suite[2];
    let h = table3(&case.name, &case.graph, case.metric, 1, 8);
    assert_eq!(h.total, 101_659);
    // Majority of links bypassable within 3 hops, as in the paper.
    assert!(h.fraction_at_most(3) > 0.5, "{}", h.fraction_at_most(3));
}

/// Reduced, non-ignored variant of the Internet one-link block: the same
/// pipeline (suite → oracle → sampled pairs → Table 2 block) on a
/// quarter-scale power-law graph, so release CI exercises the paper-scale
/// code path on every run. Debug builds skip it — unoptimized Dijkstra
/// over thousands of nodes takes minutes.
#[cfg(not(debug_assertions))]
#[test]
fn reduced_internet_one_link_block() {
    use mpls_rbpc::eval::{AnyOracle, NetworkCase};
    use mpls_rbpc::graph::Metric;

    let case = NetworkCase {
        name: "Internet (reduced)".into(),
        graph: mpls_rbpc::topo::internet_like_scaled(10_000, 1),
        metric: Metric::Unweighted,
        samples: 40,
    };
    let oracle = case.oracle_threads(1, 2);
    assert!(matches!(oracle, AnyOracle::Lazy(_)));
    let pairs = sample_pairs(&case.graph, case.samples, 1);
    let row = table2_block(&case.name, &oracle, FailureClass::OneLink, &pairs, 2);
    assert!(row.events > 0);
    // The paper's qualitative claim holds already at this scale: two base
    // paths per restoration on average, small length stretch.
    assert!(
        (1.8..=2.4).contains(&row.avg_pc_length),
        "{}",
        row.avg_pc_length
    );
    assert!((1.0..=1.3).contains(&row.length_sf), "{}", row.length_sf);
}
