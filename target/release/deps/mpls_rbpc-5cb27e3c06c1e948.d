/root/repo/target/release/deps/mpls_rbpc-5cb27e3c06c1e948.d: src/lib.rs

/root/repo/target/release/deps/libmpls_rbpc-5cb27e3c06c1e948.rlib: src/lib.rs

/root/repo/target/release/deps/libmpls_rbpc-5cb27e3c06c1e948.rmeta: src/lib.rs

src/lib.rs:
