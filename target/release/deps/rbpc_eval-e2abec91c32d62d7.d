/root/repo/target/release/deps/rbpc_eval-e2abec91c32d62d7.d: crates/eval/src/main.rs

/root/repo/target/release/deps/rbpc_eval-e2abec91c32d62d7: crates/eval/src/main.rs

crates/eval/src/main.rs:
