/root/repo/target/release/deps/rbpc_mpls-44b4d6ae0c72af5d.d: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

/root/repo/target/release/deps/librbpc_mpls-44b4d6ae0c72af5d.rlib: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

/root/repo/target/release/deps/librbpc_mpls-44b4d6ae0c72af5d.rmeta: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

crates/mpls/src/lib.rs:
crates/mpls/src/error.rs:
crates/mpls/src/label.rs:
crates/mpls/src/merged.rs:
crates/mpls/src/network.rs:
crates/mpls/src/packet.rs:
crates/mpls/src/router.rs:
crates/mpls/src/signaling.rs:
