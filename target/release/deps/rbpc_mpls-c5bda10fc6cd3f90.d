/root/repo/target/release/deps/rbpc_mpls-c5bda10fc6cd3f90.d: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

/root/repo/target/release/deps/librbpc_mpls-c5bda10fc6cd3f90.rlib: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

/root/repo/target/release/deps/librbpc_mpls-c5bda10fc6cd3f90.rmeta: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

crates/mpls/src/lib.rs:
crates/mpls/src/error.rs:
crates/mpls/src/label.rs:
crates/mpls/src/merged.rs:
crates/mpls/src/network.rs:
crates/mpls/src/packet.rs:
crates/mpls/src/router.rs:
crates/mpls/src/signaling.rs:
