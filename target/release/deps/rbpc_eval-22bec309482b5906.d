/root/repo/target/release/deps/rbpc_eval-22bec309482b5906.d: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

/root/repo/target/release/deps/librbpc_eval-22bec309482b5906.rlib: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

/root/repo/target/release/deps/librbpc_eval-22bec309482b5906.rmeta: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

crates/eval/src/lib.rs:
crates/eval/src/ablation.rs:
crates/eval/src/figure10.rs:
crates/eval/src/report.rs:
crates/eval/src/sampling.rs:
crates/eval/src/suite.rs:
crates/eval/src/table1.rs:
crates/eval/src/table2.rs:
crates/eval/src/table3.rs:
