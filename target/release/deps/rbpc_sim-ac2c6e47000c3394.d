/root/repo/target/release/deps/rbpc_sim-ac2c6e47000c3394.d: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/release/deps/librbpc_sim-ac2c6e47000c3394.rlib: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/release/deps/librbpc_sim-ac2c6e47000c3394.rmeta: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

crates/sim/src/lib.rs:
crates/sim/src/flow.rs:
crates/sim/src/model.rs:
crates/sim/src/outage.rs:
