/root/repo/target/release/deps/rbpc_eval-2eff46097483b083.d: crates/eval/src/main.rs

/root/repo/target/release/deps/rbpc_eval-2eff46097483b083: crates/eval/src/main.rs

crates/eval/src/main.rs:
