/root/repo/target/release/deps/mpls_rbpc-56998eb49ff39868.d: src/lib.rs

/root/repo/target/release/deps/libmpls_rbpc-56998eb49ff39868.rlib: src/lib.rs

/root/repo/target/release/deps/libmpls_rbpc-56998eb49ff39868.rmeta: src/lib.rs

src/lib.rs:
