/root/repo/target/release/deps/rbpc_topo-9e13561ff1835990.d: crates/topo/src/lib.rs crates/topo/src/classic.rs crates/topo/src/io.rs crates/topo/src/isp.rs crates/topo/src/powerlaw.rs crates/topo/src/random.rs crates/topo/src/waxman.rs

/root/repo/target/release/deps/librbpc_topo-9e13561ff1835990.rlib: crates/topo/src/lib.rs crates/topo/src/classic.rs crates/topo/src/io.rs crates/topo/src/isp.rs crates/topo/src/powerlaw.rs crates/topo/src/random.rs crates/topo/src/waxman.rs

/root/repo/target/release/deps/librbpc_topo-9e13561ff1835990.rmeta: crates/topo/src/lib.rs crates/topo/src/classic.rs crates/topo/src/io.rs crates/topo/src/isp.rs crates/topo/src/powerlaw.rs crates/topo/src/random.rs crates/topo/src/waxman.rs

crates/topo/src/lib.rs:
crates/topo/src/classic.rs:
crates/topo/src/io.rs:
crates/topo/src/isp.rs:
crates/topo/src/powerlaw.rs:
crates/topo/src/random.rs:
crates/topo/src/waxman.rs:
