/root/repo/target/release/deps/rbpc_eval-f6ce7486c352c6d8.d: crates/eval/src/main.rs

/root/repo/target/release/deps/rbpc_eval-f6ce7486c352c6d8: crates/eval/src/main.rs

crates/eval/src/main.rs:
