/root/repo/target/release/deps/rbpc_sim-db82b9e364e842d5.d: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/release/deps/librbpc_sim-db82b9e364e842d5.rlib: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/release/deps/librbpc_sim-db82b9e364e842d5.rmeta: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

crates/sim/src/lib.rs:
crates/sim/src/flow.rs:
crates/sim/src/model.rs:
crates/sim/src/outage.rs:
