/root/repo/target/release/deps/rbpc_eval-3ae1cd3533b11296.d: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

/root/repo/target/release/deps/librbpc_eval-3ae1cd3533b11296.rlib: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

/root/repo/target/release/deps/librbpc_eval-3ae1cd3533b11296.rmeta: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

crates/eval/src/lib.rs:
crates/eval/src/ablation.rs:
crates/eval/src/figure10.rs:
crates/eval/src/report.rs:
crates/eval/src/sampling.rs:
crates/eval/src/suite.rs:
crates/eval/src/table1.rs:
crates/eval/src/table2.rs:
crates/eval/src/table3.rs:
