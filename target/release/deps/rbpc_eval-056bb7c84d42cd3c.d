/root/repo/target/release/deps/rbpc_eval-056bb7c84d42cd3c.d: crates/eval/src/main.rs

/root/repo/target/release/deps/rbpc_eval-056bb7c84d42cd3c: crates/eval/src/main.rs

crates/eval/src/main.rs:
