/root/repo/target/release/deps/rbpc_obs-694d3d3bddcfc798.d: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/events.rs crates/obs/src/histogram.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/release/deps/librbpc_obs-694d3d3bddcfc798.rlib: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/events.rs crates/obs/src/histogram.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/release/deps/librbpc_obs-694d3d3bddcfc798.rmeta: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/events.rs crates/obs/src/histogram.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/counter.rs:
crates/obs/src/events.rs:
crates/obs/src/histogram.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
