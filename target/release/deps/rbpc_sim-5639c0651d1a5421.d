/root/repo/target/release/deps/rbpc_sim-5639c0651d1a5421.d: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/release/deps/librbpc_sim-5639c0651d1a5421.rlib: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/release/deps/librbpc_sim-5639c0651d1a5421.rmeta: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

crates/sim/src/lib.rs:
crates/sim/src/flow.rs:
crates/sim/src/model.rs:
crates/sim/src/outage.rs:
