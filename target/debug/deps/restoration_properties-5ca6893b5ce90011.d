/root/repo/target/debug/deps/restoration_properties-5ca6893b5ce90011.d: tests/restoration_properties.rs

/root/repo/target/debug/deps/restoration_properties-5ca6893b5ce90011: tests/restoration_properties.rs

tests/restoration_properties.rs:
