/root/repo/target/debug/deps/mpls_rbpc-49e12e437fa15190.d: src/lib.rs

/root/repo/target/debug/deps/libmpls_rbpc-49e12e437fa15190.rlib: src/lib.rs

/root/repo/target/debug/deps/libmpls_rbpc-49e12e437fa15190.rmeta: src/lib.rs

src/lib.rs:
