/root/repo/target/debug/deps/decompose-76ac17aa85204bab.d: crates/bench/benches/decompose.rs Cargo.toml

/root/repo/target/debug/deps/libdecompose-76ac17aa85204bab.rmeta: crates/bench/benches/decompose.rs Cargo.toml

crates/bench/benches/decompose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
