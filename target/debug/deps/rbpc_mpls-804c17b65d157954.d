/root/repo/target/debug/deps/rbpc_mpls-804c17b65d157954.d: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

/root/repo/target/debug/deps/librbpc_mpls-804c17b65d157954.rlib: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

/root/repo/target/debug/deps/librbpc_mpls-804c17b65d157954.rmeta: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

crates/mpls/src/lib.rs:
crates/mpls/src/error.rs:
crates/mpls/src/label.rs:
crates/mpls/src/merged.rs:
crates/mpls/src/network.rs:
crates/mpls/src/packet.rs:
crates/mpls/src/router.rs:
crates/mpls/src/signaling.rs:
