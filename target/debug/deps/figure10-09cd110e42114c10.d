/root/repo/target/debug/deps/figure10-09cd110e42114c10.d: crates/bench/benches/figure10.rs Cargo.toml

/root/repo/target/debug/deps/libfigure10-09cd110e42114c10.rmeta: crates/bench/benches/figure10.rs Cargo.toml

crates/bench/benches/figure10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
