/root/repo/target/debug/deps/rbpc_bench-3266dd81529527e1.d: crates/bench/src/lib.rs crates/bench/src/crit.rs

/root/repo/target/debug/deps/rbpc_bench-3266dd81529527e1: crates/bench/src/lib.rs crates/bench/src/crit.rs

crates/bench/src/lib.rs:
crates/bench/src/crit.rs:
