/root/repo/target/debug/deps/theory_bounds-c36c6f4414bea3c1.d: tests/theory_bounds.rs

/root/repo/target/debug/deps/theory_bounds-c36c6f4414bea3c1: tests/theory_bounds.rs

tests/theory_bounds.rs:
