/root/repo/target/debug/deps/rbpc_sim-93cd5cb43f070ca5.d: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/debug/deps/librbpc_sim-93cd5cb43f070ca5.rlib: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/debug/deps/librbpc_sim-93cd5cb43f070ca5.rmeta: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

crates/sim/src/lib.rs:
crates/sim/src/flow.rs:
crates/sim/src/model.rs:
crates/sim/src/outage.rs:
