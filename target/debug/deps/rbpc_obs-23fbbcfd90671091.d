/root/repo/target/debug/deps/rbpc_obs-23fbbcfd90671091.d: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/events.rs crates/obs/src/histogram.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/rbpc_obs-23fbbcfd90671091: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/events.rs crates/obs/src/histogram.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/counter.rs:
crates/obs/src/events.rs:
crates/obs/src/histogram.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
