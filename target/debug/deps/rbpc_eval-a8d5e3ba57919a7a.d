/root/repo/target/debug/deps/rbpc_eval-a8d5e3ba57919a7a.d: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

/root/repo/target/debug/deps/rbpc_eval-a8d5e3ba57919a7a: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

crates/eval/src/lib.rs:
crates/eval/src/ablation.rs:
crates/eval/src/figure10.rs:
crates/eval/src/report.rs:
crates/eval/src/sampling.rs:
crates/eval/src/suite.rs:
crates/eval/src/table1.rs:
crates/eval/src/table2.rs:
crates/eval/src/table3.rs:
