/root/repo/target/debug/deps/rbpc_topo-a6080071eeb13665.d: crates/topo/src/lib.rs crates/topo/src/classic.rs crates/topo/src/io.rs crates/topo/src/isp.rs crates/topo/src/powerlaw.rs crates/topo/src/random.rs crates/topo/src/waxman.rs

/root/repo/target/debug/deps/librbpc_topo-a6080071eeb13665.rlib: crates/topo/src/lib.rs crates/topo/src/classic.rs crates/topo/src/io.rs crates/topo/src/isp.rs crates/topo/src/powerlaw.rs crates/topo/src/random.rs crates/topo/src/waxman.rs

/root/repo/target/debug/deps/librbpc_topo-a6080071eeb13665.rmeta: crates/topo/src/lib.rs crates/topo/src/classic.rs crates/topo/src/io.rs crates/topo/src/isp.rs crates/topo/src/powerlaw.rs crates/topo/src/random.rs crates/topo/src/waxman.rs

crates/topo/src/lib.rs:
crates/topo/src/classic.rs:
crates/topo/src/io.rs:
crates/topo/src/isp.rs:
crates/topo/src/powerlaw.rs:
crates/topo/src/random.rs:
crates/topo/src/waxman.rs:
