/root/repo/target/debug/deps/paper_scale-abaec6667e6ce522.d: tests/paper_scale.rs

/root/repo/target/debug/deps/paper_scale-abaec6667e6ce522: tests/paper_scale.rs

tests/paper_scale.rs:
