/root/repo/target/debug/deps/rbpc_graph-c7e5896bf914f65a.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cost.rs crates/graph/src/counting.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/dijkstra.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/ids.rs crates/graph/src/path.rs crates/graph/src/rng.rs crates/graph/src/spt.rs crates/graph/src/subgraph.rs crates/graph/src/unionfind.rs crates/graph/src/view.rs crates/graph/src/yen.rs

/root/repo/target/debug/deps/rbpc_graph-c7e5896bf914f65a: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cost.rs crates/graph/src/counting.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/dijkstra.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/ids.rs crates/graph/src/path.rs crates/graph/src/rng.rs crates/graph/src/spt.rs crates/graph/src/subgraph.rs crates/graph/src/unionfind.rs crates/graph/src/view.rs crates/graph/src/yen.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cost.rs:
crates/graph/src/counting.rs:
crates/graph/src/cuts.rs:
crates/graph/src/digraph.rs:
crates/graph/src/dijkstra.rs:
crates/graph/src/error.rs:
crates/graph/src/graph.rs:
crates/graph/src/ids.rs:
crates/graph/src/path.rs:
crates/graph/src/rng.rs:
crates/graph/src/spt.rs:
crates/graph/src/subgraph.rs:
crates/graph/src/unionfind.rs:
crates/graph/src/view.rs:
crates/graph/src/yen.rs:
