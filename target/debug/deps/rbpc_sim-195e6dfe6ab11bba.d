/root/repo/target/debug/deps/rbpc_sim-195e6dfe6ab11bba.d: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/debug/deps/librbpc_sim-195e6dfe6ab11bba.rlib: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/debug/deps/librbpc_sim-195e6dfe6ab11bba.rmeta: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

crates/sim/src/lib.rs:
crates/sim/src/flow.rs:
crates/sim/src/model.rs:
crates/sim/src/outage.rs:
