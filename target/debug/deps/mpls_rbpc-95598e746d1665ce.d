/root/repo/target/debug/deps/mpls_rbpc-95598e746d1665ce.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_rbpc-95598e746d1665ce.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
