/root/repo/target/debug/deps/obs_integration-152caa37bb224b9c.d: crates/core/tests/obs_integration.rs

/root/repo/target/debug/deps/obs_integration-152caa37bb224b9c: crates/core/tests/obs_integration.rs

crates/core/tests/obs_integration.rs:
