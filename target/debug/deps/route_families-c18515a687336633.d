/root/repo/target/debug/deps/route_families-c18515a687336633.d: tests/route_families.rs

/root/repo/target/debug/deps/route_families-c18515a687336633: tests/route_families.rs

tests/route_families.rs:
