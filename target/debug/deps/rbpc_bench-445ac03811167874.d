/root/repo/target/debug/deps/rbpc_bench-445ac03811167874.d: crates/bench/src/lib.rs crates/bench/src/crit.rs

/root/repo/target/debug/deps/librbpc_bench-445ac03811167874.rlib: crates/bench/src/lib.rs crates/bench/src/crit.rs

/root/repo/target/debug/deps/librbpc_bench-445ac03811167874.rmeta: crates/bench/src/lib.rs crates/bench/src/crit.rs

crates/bench/src/lib.rs:
crates/bench/src/crit.rs:
