/root/repo/target/debug/deps/rbpc_sim-349e2218b14d4a03.d: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_sim-349e2218b14d4a03.rmeta: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/flow.rs:
crates/sim/src/model.rs:
crates/sim/src/outage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
