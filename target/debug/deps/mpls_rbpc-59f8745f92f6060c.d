/root/repo/target/debug/deps/mpls_rbpc-59f8745f92f6060c.d: src/lib.rs

/root/repo/target/debug/deps/mpls_rbpc-59f8745f92f6060c: src/lib.rs

src/lib.rs:
