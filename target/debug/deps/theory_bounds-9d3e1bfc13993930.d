/root/repo/target/debug/deps/theory_bounds-9d3e1bfc13993930.d: tests/theory_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libtheory_bounds-9d3e1bfc13993930.rmeta: tests/theory_bounds.rs Cargo.toml

tests/theory_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
