/root/repo/target/debug/deps/properties-dfcd6fbb86ceb539.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-dfcd6fbb86ceb539.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
