/root/repo/target/debug/deps/properties-d2e1a7a060578fb4.d: crates/graph/tests/properties.rs

/root/repo/target/debug/deps/properties-d2e1a7a060578fb4: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
