/root/repo/target/debug/deps/rbpc_mpls-b93c75624a9b6a85.d: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

/root/repo/target/debug/deps/librbpc_mpls-b93c75624a9b6a85.rlib: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

/root/repo/target/debug/deps/librbpc_mpls-b93c75624a9b6a85.rmeta: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs

crates/mpls/src/lib.rs:
crates/mpls/src/error.rs:
crates/mpls/src/label.rs:
crates/mpls/src/merged.rs:
crates/mpls/src/network.rs:
crates/mpls/src/packet.rs:
crates/mpls/src/router.rs:
crates/mpls/src/signaling.rs:
