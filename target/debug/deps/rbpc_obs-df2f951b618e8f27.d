/root/repo/target/debug/deps/rbpc_obs-df2f951b618e8f27.d: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/events.rs crates/obs/src/histogram.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/librbpc_obs-df2f951b618e8f27.rlib: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/events.rs crates/obs/src/histogram.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/librbpc_obs-df2f951b618e8f27.rmeta: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/events.rs crates/obs/src/histogram.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/counter.rs:
crates/obs/src/events.rs:
crates/obs/src/histogram.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
