/root/repo/target/debug/deps/obs-0c2574d10dc69a9f.d: crates/obs/tests/obs.rs

/root/repo/target/debug/deps/obs-0c2574d10dc69a9f: crates/obs/tests/obs.rs

crates/obs/tests/obs.rs:
