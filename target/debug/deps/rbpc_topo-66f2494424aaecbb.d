/root/repo/target/debug/deps/rbpc_topo-66f2494424aaecbb.d: crates/topo/src/lib.rs crates/topo/src/classic.rs crates/topo/src/io.rs crates/topo/src/isp.rs crates/topo/src/powerlaw.rs crates/topo/src/random.rs crates/topo/src/waxman.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_topo-66f2494424aaecbb.rmeta: crates/topo/src/lib.rs crates/topo/src/classic.rs crates/topo/src/io.rs crates/topo/src/isp.rs crates/topo/src/powerlaw.rs crates/topo/src/random.rs crates/topo/src/waxman.rs Cargo.toml

crates/topo/src/lib.rs:
crates/topo/src/classic.rs:
crates/topo/src/io.rs:
crates/topo/src/isp.rs:
crates/topo/src/powerlaw.rs:
crates/topo/src/random.rs:
crates/topo/src/waxman.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
