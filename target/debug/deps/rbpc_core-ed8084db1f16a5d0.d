/root/repo/target/debug/deps/rbpc_core-ed8084db1f16a5d0.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/basepaths.rs crates/core/src/churn.rs crates/core/src/decompose.rs crates/core/src/error.rs crates/core/src/expanded.rs crates/core/src/families.rs crates/core/src/hybrid.rs crates/core/src/local.rs crates/core/src/provision.rs crates/core/src/restore.rs crates/core/src/theory.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_core-ed8084db1f16a5d0.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/basepaths.rs crates/core/src/churn.rs crates/core/src/decompose.rs crates/core/src/error.rs crates/core/src/expanded.rs crates/core/src/families.rs crates/core/src/hybrid.rs crates/core/src/local.rs crates/core/src/provision.rs crates/core/src/restore.rs crates/core/src/theory.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/basepaths.rs:
crates/core/src/churn.rs:
crates/core/src/decompose.rs:
crates/core/src/error.rs:
crates/core/src/expanded.rs:
crates/core/src/families.rs:
crates/core/src/hybrid.rs:
crates/core/src/local.rs:
crates/core/src/provision.rs:
crates/core/src/restore.rs:
crates/core/src/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
