/root/repo/target/debug/deps/ksp_baseline-638941bedaa99b8a.d: crates/bench/benches/ksp_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libksp_baseline-638941bedaa99b8a.rmeta: crates/bench/benches/ksp_baseline.rs Cargo.toml

crates/bench/benches/ksp_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
