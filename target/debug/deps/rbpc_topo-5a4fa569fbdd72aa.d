/root/repo/target/debug/deps/rbpc_topo-5a4fa569fbdd72aa.d: crates/topo/src/lib.rs crates/topo/src/classic.rs crates/topo/src/io.rs crates/topo/src/isp.rs crates/topo/src/powerlaw.rs crates/topo/src/random.rs crates/topo/src/waxman.rs

/root/repo/target/debug/deps/rbpc_topo-5a4fa569fbdd72aa: crates/topo/src/lib.rs crates/topo/src/classic.rs crates/topo/src/io.rs crates/topo/src/isp.rs crates/topo/src/powerlaw.rs crates/topo/src/random.rs crates/topo/src/waxman.rs

crates/topo/src/lib.rs:
crates/topo/src/classic.rs:
crates/topo/src/io.rs:
crates/topo/src/isp.rs:
crates/topo/src/powerlaw.rs:
crates/topo/src/random.rs:
crates/topo/src/waxman.rs:
