/root/repo/target/debug/deps/route_families-ba216f1b346d4c3b.d: tests/route_families.rs Cargo.toml

/root/repo/target/debug/deps/libroute_families-ba216f1b346d4c3b.rmeta: tests/route_families.rs Cargo.toml

tests/route_families.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
