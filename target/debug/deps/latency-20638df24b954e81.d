/root/repo/target/debug/deps/latency-20638df24b954e81.d: crates/bench/benches/latency.rs Cargo.toml

/root/repo/target/debug/deps/liblatency-20638df24b954e81.rmeta: crates/bench/benches/latency.rs Cargo.toml

crates/bench/benches/latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
