/root/repo/target/debug/deps/rbpc_eval-f8c3c704dc374c44.d: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

/root/repo/target/debug/deps/librbpc_eval-f8c3c704dc374c44.rlib: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

/root/repo/target/debug/deps/librbpc_eval-f8c3c704dc374c44.rmeta: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs

crates/eval/src/lib.rs:
crates/eval/src/ablation.rs:
crates/eval/src/figure10.rs:
crates/eval/src/report.rs:
crates/eval/src/sampling.rs:
crates/eval/src/suite.rs:
crates/eval/src/table1.rs:
crates/eval/src/table2.rs:
crates/eval/src/table3.rs:
