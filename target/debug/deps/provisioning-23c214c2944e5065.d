/root/repo/target/debug/deps/provisioning-23c214c2944e5065.d: crates/bench/benches/provisioning.rs Cargo.toml

/root/repo/target/debug/deps/libprovisioning-23c214c2944e5065.rmeta: crates/bench/benches/provisioning.rs Cargo.toml

crates/bench/benches/provisioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
