/root/repo/target/debug/deps/obs_integration-feec30d2f692a71a.d: crates/core/tests/obs_integration.rs

/root/repo/target/debug/deps/obs_integration-feec30d2f692a71a: crates/core/tests/obs_integration.rs

crates/core/tests/obs_integration.rs:
