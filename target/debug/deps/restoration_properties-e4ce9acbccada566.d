/root/repo/target/debug/deps/restoration_properties-e4ce9acbccada566.d: tests/restoration_properties.rs

/root/repo/target/debug/deps/restoration_properties-e4ce9acbccada566: tests/restoration_properties.rs

tests/restoration_properties.rs:
