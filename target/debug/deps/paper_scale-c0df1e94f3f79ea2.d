/root/repo/target/debug/deps/paper_scale-c0df1e94f3f79ea2.d: tests/paper_scale.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_scale-c0df1e94f3f79ea2.rmeta: tests/paper_scale.rs Cargo.toml

tests/paper_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
