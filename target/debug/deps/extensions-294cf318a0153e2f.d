/root/repo/target/debug/deps/extensions-294cf318a0153e2f.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-294cf318a0153e2f: tests/extensions.rs

tests/extensions.rs:
