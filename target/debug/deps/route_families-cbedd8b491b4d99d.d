/root/repo/target/debug/deps/route_families-cbedd8b491b4d99d.d: tests/route_families.rs

/root/repo/target/debug/deps/route_families-cbedd8b491b4d99d: tests/route_families.rs

tests/route_families.rs:
