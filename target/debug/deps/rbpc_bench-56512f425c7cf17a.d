/root/repo/target/debug/deps/rbpc_bench-56512f425c7cf17a.d: crates/bench/src/lib.rs crates/bench/src/crit.rs

/root/repo/target/debug/deps/rbpc_bench-56512f425c7cf17a: crates/bench/src/lib.rs crates/bench/src/crit.rs

crates/bench/src/lib.rs:
crates/bench/src/crit.rs:
