/root/repo/target/debug/deps/rbpc_eval-fc499ee0411e16e3.d: crates/eval/src/main.rs

/root/repo/target/debug/deps/rbpc_eval-fc499ee0411e16e3: crates/eval/src/main.rs

crates/eval/src/main.rs:
