/root/repo/target/debug/deps/mpls_rbpc-c6a58a3958eb2455.d: src/lib.rs

/root/repo/target/debug/deps/libmpls_rbpc-c6a58a3958eb2455.rlib: src/lib.rs

/root/repo/target/debug/deps/libmpls_rbpc-c6a58a3958eb2455.rmeta: src/lib.rs

src/lib.rs:
