/root/repo/target/debug/deps/rbpc_eval-cfdf8e6f793782ed.d: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_eval-cfdf8e6f793782ed.rmeta: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/figure10.rs crates/eval/src/report.rs crates/eval/src/sampling.rs crates/eval/src/suite.rs crates/eval/src/table1.rs crates/eval/src/table2.rs crates/eval/src/table3.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/ablation.rs:
crates/eval/src/figure10.rs:
crates/eval/src/report.rs:
crates/eval/src/sampling.rs:
crates/eval/src/suite.rs:
crates/eval/src/table1.rs:
crates/eval/src/table2.rs:
crates/eval/src/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
