/root/repo/target/debug/deps/end_to_end_mpls-7915b4ed475072b7.d: tests/end_to_end_mpls.rs

/root/repo/target/debug/deps/end_to_end_mpls-7915b4ed475072b7: tests/end_to_end_mpls.rs

tests/end_to_end_mpls.rs:
