/root/repo/target/debug/deps/extensions-1ba6e8307fd8bdb1.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-1ba6e8307fd8bdb1: tests/extensions.rs

tests/extensions.rs:
