/root/repo/target/debug/deps/restoration_vs_reestablish-db0604f5a010873b.d: crates/bench/benches/restoration_vs_reestablish.rs Cargo.toml

/root/repo/target/debug/deps/librestoration_vs_reestablish-db0604f5a010873b.rmeta: crates/bench/benches/restoration_vs_reestablish.rs Cargo.toml

crates/bench/benches/restoration_vs_reestablish.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
