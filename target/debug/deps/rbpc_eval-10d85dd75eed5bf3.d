/root/repo/target/debug/deps/rbpc_eval-10d85dd75eed5bf3.d: crates/eval/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_eval-10d85dd75eed5bf3.rmeta: crates/eval/src/main.rs Cargo.toml

crates/eval/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
