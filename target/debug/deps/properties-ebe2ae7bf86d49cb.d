/root/repo/target/debug/deps/properties-ebe2ae7bf86d49cb.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-ebe2ae7bf86d49cb: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
