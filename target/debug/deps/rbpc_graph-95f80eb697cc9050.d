/root/repo/target/debug/deps/rbpc_graph-95f80eb697cc9050.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cost.rs crates/graph/src/counting.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/dijkstra.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/ids.rs crates/graph/src/path.rs crates/graph/src/rng.rs crates/graph/src/spt.rs crates/graph/src/subgraph.rs crates/graph/src/unionfind.rs crates/graph/src/view.rs crates/graph/src/yen.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_graph-95f80eb697cc9050.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cost.rs crates/graph/src/counting.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/dijkstra.rs crates/graph/src/error.rs crates/graph/src/graph.rs crates/graph/src/ids.rs crates/graph/src/path.rs crates/graph/src/rng.rs crates/graph/src/spt.rs crates/graph/src/subgraph.rs crates/graph/src/unionfind.rs crates/graph/src/view.rs crates/graph/src/yen.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cost.rs:
crates/graph/src/counting.rs:
crates/graph/src/cuts.rs:
crates/graph/src/digraph.rs:
crates/graph/src/dijkstra.rs:
crates/graph/src/error.rs:
crates/graph/src/graph.rs:
crates/graph/src/ids.rs:
crates/graph/src/path.rs:
crates/graph/src/rng.rs:
crates/graph/src/spt.rs:
crates/graph/src/subgraph.rs:
crates/graph/src/unionfind.rs:
crates/graph/src/view.rs:
crates/graph/src/yen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
