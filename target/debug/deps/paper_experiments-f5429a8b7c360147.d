/root/repo/target/debug/deps/paper_experiments-f5429a8b7c360147.d: tests/paper_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_experiments-f5429a8b7c360147.rmeta: tests/paper_experiments.rs Cargo.toml

tests/paper_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
