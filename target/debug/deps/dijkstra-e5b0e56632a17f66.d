/root/repo/target/debug/deps/dijkstra-e5b0e56632a17f66.d: crates/bench/benches/dijkstra.rs Cargo.toml

/root/repo/target/debug/deps/libdijkstra-e5b0e56632a17f66.rmeta: crates/bench/benches/dijkstra.rs Cargo.toml

crates/bench/benches/dijkstra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
