/root/repo/target/debug/deps/rbpc_bench-15e3d07c868f82a2.d: crates/bench/src/lib.rs crates/bench/src/crit.rs

/root/repo/target/debug/deps/librbpc_bench-15e3d07c868f82a2.rlib: crates/bench/src/lib.rs crates/bench/src/crit.rs

/root/repo/target/debug/deps/librbpc_bench-15e3d07c868f82a2.rmeta: crates/bench/src/lib.rs crates/bench/src/crit.rs

crates/bench/src/lib.rs:
crates/bench/src/crit.rs:
