/root/repo/target/debug/deps/restoration_properties-0cac4ade7a1f8e16.d: tests/restoration_properties.rs Cargo.toml

/root/repo/target/debug/deps/librestoration_properties-0cac4ade7a1f8e16.rmeta: tests/restoration_properties.rs Cargo.toml

tests/restoration_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
