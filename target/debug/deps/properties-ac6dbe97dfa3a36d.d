/root/repo/target/debug/deps/properties-ac6dbe97dfa3a36d.d: crates/mpls/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ac6dbe97dfa3a36d.rmeta: crates/mpls/tests/properties.rs Cargo.toml

crates/mpls/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
