/root/repo/target/debug/deps/paper_scale-50da8de927bcc294.d: tests/paper_scale.rs

/root/repo/target/debug/deps/paper_scale-50da8de927bcc294: tests/paper_scale.rs

tests/paper_scale.rs:
