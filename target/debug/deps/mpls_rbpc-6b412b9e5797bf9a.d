/root/repo/target/debug/deps/mpls_rbpc-6b412b9e5797bf9a.d: src/lib.rs

/root/repo/target/debug/deps/libmpls_rbpc-6b412b9e5797bf9a.rlib: src/lib.rs

/root/repo/target/debug/deps/libmpls_rbpc-6b412b9e5797bf9a.rmeta: src/lib.rs

src/lib.rs:
