/root/repo/target/debug/deps/paper_scale-2bcbb499d3b74891.d: tests/paper_scale.rs

/root/repo/target/debug/deps/paper_scale-2bcbb499d3b74891: tests/paper_scale.rs

tests/paper_scale.rs:
