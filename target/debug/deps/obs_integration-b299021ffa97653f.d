/root/repo/target/debug/deps/obs_integration-b299021ffa97653f.d: crates/core/tests/obs_integration.rs

/root/repo/target/debug/deps/obs_integration-b299021ffa97653f: crates/core/tests/obs_integration.rs

crates/core/tests/obs_integration.rs:
