/root/repo/target/debug/deps/rbpc_mpls-106c0b1c4a1fabf6.d: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_mpls-106c0b1c4a1fabf6.rmeta: crates/mpls/src/lib.rs crates/mpls/src/error.rs crates/mpls/src/label.rs crates/mpls/src/merged.rs crates/mpls/src/network.rs crates/mpls/src/packet.rs crates/mpls/src/router.rs crates/mpls/src/signaling.rs Cargo.toml

crates/mpls/src/lib.rs:
crates/mpls/src/error.rs:
crates/mpls/src/label.rs:
crates/mpls/src/merged.rs:
crates/mpls/src/network.rs:
crates/mpls/src/packet.rs:
crates/mpls/src/router.rs:
crates/mpls/src/signaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
