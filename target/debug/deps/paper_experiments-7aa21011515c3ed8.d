/root/repo/target/debug/deps/paper_experiments-7aa21011515c3ed8.d: tests/paper_experiments.rs

/root/repo/target/debug/deps/paper_experiments-7aa21011515c3ed8: tests/paper_experiments.rs

tests/paper_experiments.rs:
