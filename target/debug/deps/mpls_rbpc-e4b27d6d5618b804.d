/root/repo/target/debug/deps/mpls_rbpc-e4b27d6d5618b804.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_rbpc-e4b27d6d5618b804.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
