/root/repo/target/debug/deps/restoration_properties-2ee79ad5fe294cdb.d: tests/restoration_properties.rs Cargo.toml

/root/repo/target/debug/deps/librestoration_properties-2ee79ad5fe294cdb.rmeta: tests/restoration_properties.rs Cargo.toml

tests/restoration_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
