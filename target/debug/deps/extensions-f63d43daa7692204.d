/root/repo/target/debug/deps/extensions-f63d43daa7692204.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-f63d43daa7692204: tests/extensions.rs

tests/extensions.rs:
