/root/repo/target/debug/deps/theory_bounds-01288a371a234d44.d: tests/theory_bounds.rs

/root/repo/target/debug/deps/theory_bounds-01288a371a234d44: tests/theory_bounds.rs

tests/theory_bounds.rs:
