/root/repo/target/debug/deps/rbpc_bench-1ca88e489f0aa807.d: crates/bench/src/lib.rs crates/bench/src/crit.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_bench-1ca88e489f0aa807.rmeta: crates/bench/src/lib.rs crates/bench/src/crit.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/crit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
