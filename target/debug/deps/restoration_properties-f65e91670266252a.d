/root/repo/target/debug/deps/restoration_properties-f65e91670266252a.d: tests/restoration_properties.rs

/root/repo/target/debug/deps/restoration_properties-f65e91670266252a: tests/restoration_properties.rs

tests/restoration_properties.rs:
