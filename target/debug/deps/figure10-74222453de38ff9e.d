/root/repo/target/debug/deps/figure10-74222453de38ff9e.d: crates/bench/benches/figure10.rs Cargo.toml

/root/repo/target/debug/deps/libfigure10-74222453de38ff9e.rmeta: crates/bench/benches/figure10.rs Cargo.toml

crates/bench/benches/figure10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
