/root/repo/target/debug/deps/obs_disabled-3c3c3accceaed529.d: crates/core/tests/obs_disabled.rs Cargo.toml

/root/repo/target/debug/deps/libobs_disabled-3c3c3accceaed529.rmeta: crates/core/tests/obs_disabled.rs Cargo.toml

crates/core/tests/obs_disabled.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
