/root/repo/target/debug/deps/rbpc_eval-2823724c4eebb839.d: crates/eval/src/main.rs

/root/repo/target/debug/deps/rbpc_eval-2823724c4eebb839: crates/eval/src/main.rs

crates/eval/src/main.rs:
