/root/repo/target/debug/deps/paper_experiments-b74dfa25233753cc.d: tests/paper_experiments.rs

/root/repo/target/debug/deps/paper_experiments-b74dfa25233753cc: tests/paper_experiments.rs

tests/paper_experiments.rs:
