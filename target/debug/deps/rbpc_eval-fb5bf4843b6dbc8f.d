/root/repo/target/debug/deps/rbpc_eval-fb5bf4843b6dbc8f.d: crates/eval/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_eval-fb5bf4843b6dbc8f.rmeta: crates/eval/src/main.rs Cargo.toml

crates/eval/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
