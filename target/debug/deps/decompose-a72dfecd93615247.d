/root/repo/target/debug/deps/decompose-a72dfecd93615247.d: crates/bench/benches/decompose.rs Cargo.toml

/root/repo/target/debug/deps/libdecompose-a72dfecd93615247.rmeta: crates/bench/benches/decompose.rs Cargo.toml

crates/bench/benches/decompose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
