/root/repo/target/debug/deps/rbpc_bench-69108bf89c3c93c7.d: crates/bench/src/lib.rs crates/bench/src/crit.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_bench-69108bf89c3c93c7.rmeta: crates/bench/src/lib.rs crates/bench/src/crit.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/crit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
