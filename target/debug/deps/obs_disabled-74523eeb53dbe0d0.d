/root/repo/target/debug/deps/obs_disabled-74523eeb53dbe0d0.d: crates/core/tests/obs_disabled.rs

/root/repo/target/debug/deps/obs_disabled-74523eeb53dbe0d0: crates/core/tests/obs_disabled.rs

crates/core/tests/obs_disabled.rs:
