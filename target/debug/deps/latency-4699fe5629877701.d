/root/repo/target/debug/deps/latency-4699fe5629877701.d: crates/bench/benches/latency.rs Cargo.toml

/root/repo/target/debug/deps/liblatency-4699fe5629877701.rmeta: crates/bench/benches/latency.rs Cargo.toml

crates/bench/benches/latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
