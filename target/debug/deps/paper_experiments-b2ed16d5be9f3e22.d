/root/repo/target/debug/deps/paper_experiments-b2ed16d5be9f3e22.d: tests/paper_experiments.rs

/root/repo/target/debug/deps/paper_experiments-b2ed16d5be9f3e22: tests/paper_experiments.rs

tests/paper_experiments.rs:
