/root/repo/target/debug/deps/end_to_end_mpls-03d62720d2eabe7b.d: tests/end_to_end_mpls.rs

/root/repo/target/debug/deps/end_to_end_mpls-03d62720d2eabe7b: tests/end_to_end_mpls.rs

tests/end_to_end_mpls.rs:
