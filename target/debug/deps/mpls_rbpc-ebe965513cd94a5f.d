/root/repo/target/debug/deps/mpls_rbpc-ebe965513cd94a5f.d: src/lib.rs

/root/repo/target/debug/deps/mpls_rbpc-ebe965513cd94a5f: src/lib.rs

src/lib.rs:
