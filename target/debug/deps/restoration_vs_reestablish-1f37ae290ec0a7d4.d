/root/repo/target/debug/deps/restoration_vs_reestablish-1f37ae290ec0a7d4.d: crates/bench/benches/restoration_vs_reestablish.rs Cargo.toml

/root/repo/target/debug/deps/librestoration_vs_reestablish-1f37ae290ec0a7d4.rmeta: crates/bench/benches/restoration_vs_reestablish.rs Cargo.toml

crates/bench/benches/restoration_vs_reestablish.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
