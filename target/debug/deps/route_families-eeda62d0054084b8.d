/root/repo/target/debug/deps/route_families-eeda62d0054084b8.d: tests/route_families.rs Cargo.toml

/root/repo/target/debug/deps/libroute_families-eeda62d0054084b8.rmeta: tests/route_families.rs Cargo.toml

tests/route_families.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
