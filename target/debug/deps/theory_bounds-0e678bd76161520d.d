/root/repo/target/debug/deps/theory_bounds-0e678bd76161520d.d: tests/theory_bounds.rs

/root/repo/target/debug/deps/theory_bounds-0e678bd76161520d: tests/theory_bounds.rs

tests/theory_bounds.rs:
