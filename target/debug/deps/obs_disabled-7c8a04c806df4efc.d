/root/repo/target/debug/deps/obs_disabled-7c8a04c806df4efc.d: crates/core/tests/obs_disabled.rs

/root/repo/target/debug/deps/obs_disabled-7c8a04c806df4efc: crates/core/tests/obs_disabled.rs

crates/core/tests/obs_disabled.rs:
