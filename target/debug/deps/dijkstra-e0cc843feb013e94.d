/root/repo/target/debug/deps/dijkstra-e0cc843feb013e94.d: crates/bench/benches/dijkstra.rs Cargo.toml

/root/repo/target/debug/deps/libdijkstra-e0cc843feb013e94.rmeta: crates/bench/benches/dijkstra.rs Cargo.toml

crates/bench/benches/dijkstra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
