/root/repo/target/debug/deps/rbpc_obs-c0ad3a1bfb921a7f.d: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/events.rs crates/obs/src/histogram.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/librbpc_obs-c0ad3a1bfb921a7f.rmeta: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/events.rs crates/obs/src/histogram.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/counter.rs:
crates/obs/src/events.rs:
crates/obs/src/histogram.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
