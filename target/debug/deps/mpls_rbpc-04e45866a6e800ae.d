/root/repo/target/debug/deps/mpls_rbpc-04e45866a6e800ae.d: src/lib.rs

/root/repo/target/debug/deps/mpls_rbpc-04e45866a6e800ae: src/lib.rs

src/lib.rs:
