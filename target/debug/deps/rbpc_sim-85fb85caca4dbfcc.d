/root/repo/target/debug/deps/rbpc_sim-85fb85caca4dbfcc.d: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

/root/repo/target/debug/deps/rbpc_sim-85fb85caca4dbfcc: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/model.rs crates/sim/src/outage.rs

crates/sim/src/lib.rs:
crates/sim/src/flow.rs:
crates/sim/src/model.rs:
crates/sim/src/outage.rs:
