/root/repo/target/debug/deps/end_to_end_mpls-12ac476302646823.d: tests/end_to_end_mpls.rs

/root/repo/target/debug/deps/end_to_end_mpls-12ac476302646823: tests/end_to_end_mpls.rs

tests/end_to_end_mpls.rs:
