/root/repo/target/debug/deps/properties-f601843469691cd5.d: crates/mpls/tests/properties.rs

/root/repo/target/debug/deps/properties-f601843469691cd5: crates/mpls/tests/properties.rs

crates/mpls/tests/properties.rs:
