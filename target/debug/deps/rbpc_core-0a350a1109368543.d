/root/repo/target/debug/deps/rbpc_core-0a350a1109368543.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/basepaths.rs crates/core/src/churn.rs crates/core/src/decompose.rs crates/core/src/error.rs crates/core/src/expanded.rs crates/core/src/families.rs crates/core/src/hybrid.rs crates/core/src/local.rs crates/core/src/provision.rs crates/core/src/restore.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/librbpc_core-0a350a1109368543.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/basepaths.rs crates/core/src/churn.rs crates/core/src/decompose.rs crates/core/src/error.rs crates/core/src/expanded.rs crates/core/src/families.rs crates/core/src/hybrid.rs crates/core/src/local.rs crates/core/src/provision.rs crates/core/src/restore.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/librbpc_core-0a350a1109368543.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/basepaths.rs crates/core/src/churn.rs crates/core/src/decompose.rs crates/core/src/error.rs crates/core/src/expanded.rs crates/core/src/families.rs crates/core/src/hybrid.rs crates/core/src/local.rs crates/core/src/provision.rs crates/core/src/restore.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/basepaths.rs:
crates/core/src/churn.rs:
crates/core/src/decompose.rs:
crates/core/src/error.rs:
crates/core/src/expanded.rs:
crates/core/src/families.rs:
crates/core/src/hybrid.rs:
crates/core/src/local.rs:
crates/core/src/provision.rs:
crates/core/src/restore.rs:
crates/core/src/theory.rs:
