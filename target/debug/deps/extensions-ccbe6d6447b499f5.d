/root/repo/target/debug/deps/extensions-ccbe6d6447b499f5.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-ccbe6d6447b499f5.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
