/root/repo/target/debug/deps/obs_disabled-f9c0a8f9f91b3470.d: crates/core/tests/obs_disabled.rs

/root/repo/target/debug/deps/obs_disabled-f9c0a8f9f91b3470: crates/core/tests/obs_disabled.rs

crates/core/tests/obs_disabled.rs:
