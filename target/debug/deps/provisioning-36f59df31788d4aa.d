/root/repo/target/debug/deps/provisioning-36f59df31788d4aa.d: crates/bench/benches/provisioning.rs Cargo.toml

/root/repo/target/debug/deps/libprovisioning-36f59df31788d4aa.rmeta: crates/bench/benches/provisioning.rs Cargo.toml

crates/bench/benches/provisioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
