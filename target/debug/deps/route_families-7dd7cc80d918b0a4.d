/root/repo/target/debug/deps/route_families-7dd7cc80d918b0a4.d: tests/route_families.rs

/root/repo/target/debug/deps/route_families-7dd7cc80d918b0a4: tests/route_families.rs

tests/route_families.rs:
