/root/repo/target/debug/deps/mpls_rbpc-53718e78c1ade315.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_rbpc-53718e78c1ade315.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
