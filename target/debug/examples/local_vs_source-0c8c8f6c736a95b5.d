/root/repo/target/debug/examples/local_vs_source-0c8c8f6c736a95b5.d: examples/local_vs_source.rs

/root/repo/target/debug/examples/local_vs_source-0c8c8f6c736a95b5: examples/local_vs_source.rs

examples/local_vs_source.rs:
