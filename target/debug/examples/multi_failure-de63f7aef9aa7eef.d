/root/repo/target/debug/examples/multi_failure-de63f7aef9aa7eef.d: examples/multi_failure.rs

/root/repo/target/debug/examples/multi_failure-de63f7aef9aa7eef: examples/multi_failure.rs

examples/multi_failure.rs:
