/root/repo/target/debug/examples/network_churn-4884a8b282071d1e.d: examples/network_churn.rs Cargo.toml

/root/repo/target/debug/examples/libnetwork_churn-4884a8b282071d1e.rmeta: examples/network_churn.rs Cargo.toml

examples/network_churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
