/root/repo/target/debug/examples/qos_families-c68acb27d9e8b3ab.d: examples/qos_families.rs

/root/repo/target/debug/examples/qos_families-c68acb27d9e8b3ab: examples/qos_families.rs

examples/qos_families.rs:
