/root/repo/target/debug/examples/isp_failover-d04bed7bd73e0120.d: examples/isp_failover.rs Cargo.toml

/root/repo/target/debug/examples/libisp_failover-d04bed7bd73e0120.rmeta: examples/isp_failover.rs Cargo.toml

examples/isp_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
