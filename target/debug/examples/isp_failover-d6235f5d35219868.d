/root/repo/target/debug/examples/isp_failover-d6235f5d35219868.d: examples/isp_failover.rs

/root/repo/target/debug/examples/isp_failover-d6235f5d35219868: examples/isp_failover.rs

examples/isp_failover.rs:
