/root/repo/target/debug/examples/quickstart-3a2b1e6c688e1d04.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3a2b1e6c688e1d04: examples/quickstart.rs

examples/quickstart.rs:
