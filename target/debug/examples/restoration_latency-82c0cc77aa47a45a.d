/root/repo/target/debug/examples/restoration_latency-82c0cc77aa47a45a.d: examples/restoration_latency.rs

/root/repo/target/debug/examples/restoration_latency-82c0cc77aa47a45a: examples/restoration_latency.rs

examples/restoration_latency.rs:
