/root/repo/target/debug/examples/qos_families-4644d166742b3251.d: examples/qos_families.rs Cargo.toml

/root/repo/target/debug/examples/libqos_families-4644d166742b3251.rmeta: examples/qos_families.rs Cargo.toml

examples/qos_families.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
