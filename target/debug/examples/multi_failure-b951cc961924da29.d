/root/repo/target/debug/examples/multi_failure-b951cc961924da29.d: examples/multi_failure.rs

/root/repo/target/debug/examples/multi_failure-b951cc961924da29: examples/multi_failure.rs

examples/multi_failure.rs:
