/root/repo/target/debug/examples/isp_failover-31d55138a7a8b024.d: examples/isp_failover.rs

/root/repo/target/debug/examples/isp_failover-31d55138a7a8b024: examples/isp_failover.rs

examples/isp_failover.rs:
