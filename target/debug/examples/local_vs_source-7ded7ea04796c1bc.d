/root/repo/target/debug/examples/local_vs_source-7ded7ea04796c1bc.d: examples/local_vs_source.rs Cargo.toml

/root/repo/target/debug/examples/liblocal_vs_source-7ded7ea04796c1bc.rmeta: examples/local_vs_source.rs Cargo.toml

examples/local_vs_source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
