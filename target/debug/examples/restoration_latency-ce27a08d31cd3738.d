/root/repo/target/debug/examples/restoration_latency-ce27a08d31cd3738.d: examples/restoration_latency.rs

/root/repo/target/debug/examples/restoration_latency-ce27a08d31cd3738: examples/restoration_latency.rs

examples/restoration_latency.rs:
