/root/repo/target/debug/examples/isp_failover-6612c0abb94fa9b1.d: examples/isp_failover.rs Cargo.toml

/root/repo/target/debug/examples/libisp_failover-6612c0abb94fa9b1.rmeta: examples/isp_failover.rs Cargo.toml

examples/isp_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
