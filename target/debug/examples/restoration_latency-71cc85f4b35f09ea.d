/root/repo/target/debug/examples/restoration_latency-71cc85f4b35f09ea.d: examples/restoration_latency.rs Cargo.toml

/root/repo/target/debug/examples/librestoration_latency-71cc85f4b35f09ea.rmeta: examples/restoration_latency.rs Cargo.toml

examples/restoration_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
