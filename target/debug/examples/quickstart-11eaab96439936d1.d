/root/repo/target/debug/examples/quickstart-11eaab96439936d1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-11eaab96439936d1: examples/quickstart.rs

examples/quickstart.rs:
