/root/repo/target/debug/examples/network_churn-fa234b65d07dcdc2.d: examples/network_churn.rs

/root/repo/target/debug/examples/network_churn-fa234b65d07dcdc2: examples/network_churn.rs

examples/network_churn.rs:
