/root/repo/target/debug/examples/network_churn-34fbedd0ee071629.d: examples/network_churn.rs

/root/repo/target/debug/examples/network_churn-34fbedd0ee071629: examples/network_churn.rs

examples/network_churn.rs:
