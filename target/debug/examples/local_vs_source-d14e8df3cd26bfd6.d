/root/repo/target/debug/examples/local_vs_source-d14e8df3cd26bfd6.d: examples/local_vs_source.rs

/root/repo/target/debug/examples/local_vs_source-d14e8df3cd26bfd6: examples/local_vs_source.rs

examples/local_vs_source.rs:
