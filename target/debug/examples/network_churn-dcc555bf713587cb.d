/root/repo/target/debug/examples/network_churn-dcc555bf713587cb.d: examples/network_churn.rs

/root/repo/target/debug/examples/network_churn-dcc555bf713587cb: examples/network_churn.rs

examples/network_churn.rs:
