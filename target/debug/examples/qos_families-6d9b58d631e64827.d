/root/repo/target/debug/examples/qos_families-6d9b58d631e64827.d: examples/qos_families.rs

/root/repo/target/debug/examples/qos_families-6d9b58d631e64827: examples/qos_families.rs

examples/qos_families.rs:
