/root/repo/target/debug/examples/multi_failure-28126f0237be5009.d: examples/multi_failure.rs

/root/repo/target/debug/examples/multi_failure-28126f0237be5009: examples/multi_failure.rs

examples/multi_failure.rs:
