/root/repo/target/debug/examples/multi_failure-5771f50af752372c.d: examples/multi_failure.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_failure-5771f50af752372c.rmeta: examples/multi_failure.rs Cargo.toml

examples/multi_failure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
