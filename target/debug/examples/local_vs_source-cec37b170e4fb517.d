/root/repo/target/debug/examples/local_vs_source-cec37b170e4fb517.d: examples/local_vs_source.rs Cargo.toml

/root/repo/target/debug/examples/liblocal_vs_source-cec37b170e4fb517.rmeta: examples/local_vs_source.rs Cargo.toml

examples/local_vs_source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
