/root/repo/target/debug/examples/multi_failure-66f30ef82e210b44.d: examples/multi_failure.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_failure-66f30ef82e210b44.rmeta: examples/multi_failure.rs Cargo.toml

examples/multi_failure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
