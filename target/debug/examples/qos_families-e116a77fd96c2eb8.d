/root/repo/target/debug/examples/qos_families-e116a77fd96c2eb8.d: examples/qos_families.rs

/root/repo/target/debug/examples/qos_families-e116a77fd96c2eb8: examples/qos_families.rs

examples/qos_families.rs:
