/root/repo/target/debug/examples/isp_failover-820e738f3985bd6b.d: examples/isp_failover.rs

/root/repo/target/debug/examples/isp_failover-820e738f3985bd6b: examples/isp_failover.rs

examples/isp_failover.rs:
