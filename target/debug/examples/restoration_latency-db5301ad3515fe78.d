/root/repo/target/debug/examples/restoration_latency-db5301ad3515fe78.d: examples/restoration_latency.rs

/root/repo/target/debug/examples/restoration_latency-db5301ad3515fe78: examples/restoration_latency.rs

examples/restoration_latency.rs:
