/root/repo/target/debug/examples/local_vs_source-aeb95aedecf40ca8.d: examples/local_vs_source.rs

/root/repo/target/debug/examples/local_vs_source-aeb95aedecf40ca8: examples/local_vs_source.rs

examples/local_vs_source.rs:
