/root/repo/target/debug/examples/quickstart-81f624dd69c3d29e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-81f624dd69c3d29e: examples/quickstart.rs

examples/quickstart.rs:
