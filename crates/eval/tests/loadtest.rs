//! End-to-end smoke test of the `rbpc-eval loadtest` subcommand: the
//! binary must drive a tiny topology under a failure storm, stream one
//! parseable JSONL window report per line, write a collapsed-stack
//! profile, and exit 0 — the contract `scripts/check.sh` relies on.

use std::process::Command;

#[test]
fn loadtest_smoke_binary_streams_jsonl_and_exits_zero() {
    let dir = std::env::temp_dir().join(format!("rbpc-loadtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let out = dir.join("windows.jsonl");
    let profile = dir.join("profile.folded");
    let status = Command::new(env!("CARGO_BIN_EXE_rbpc-eval"))
        .args([
            "loadtest",
            "--smoke",
            "--windows",
            "8",
            "--window-ms",
            "2",
            "--queries",
            "40",
            "--out",
            out.to_str().expect("utf-8 path"),
            "--profile-out",
            profile.to_str().expect("utf-8 path"),
        ])
        .status()
        .expect("spawn rbpc-eval");
    assert!(status.success(), "loadtest --smoke exited {status}");

    // One JSONL object per window, each parseable by the std-only reader,
    // and the storm left something restorable in at least one window.
    let text = std::fs::read_to_string(&out).expect("read JSONL");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 8, "one line per window");
    let mut restored = 0.0;
    for line in &lines {
        let v = rbpc_obs::json::parse(line).expect("window line is valid JSON");
        restored += v
            .get("restored")
            .and_then(|x| x.as_f64())
            .expect("restored field");
        let lat = v.get("latency_ns").expect("latency_ns object");
        for q in ["p50", "p95", "p99", "max"] {
            assert!(lat.get(q).and_then(|x| x.as_f64()).is_some(), "{q} field");
        }
        assert!(v.get("depth").is_some());
    }
    assert!(restored > 0.0, "no window restored anything");

    // The profiler report was written; every line is `stack count`.
    let folded = std::fs::read_to_string(&profile).expect("read profile");
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("collapsed-stack line");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("sample count");
    }
    std::fs::remove_dir_all(&dir).ok();
}
