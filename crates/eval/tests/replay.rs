//! End-to-end test of the flight-recorder → incident → replay loop: the
//! `rbpc-eval` binary must freeze an incident when the SLO watchdog
//! trips, replay the committed golden incident with byte-identical plan
//! hashes, and exit non-zero when a recorded hash is corrupted — the
//! contract `scripts/check.sh` relies on.

use std::process::Command;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/incident-smoke.jsonl"
);

fn eval(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rbpc-eval"))
        .args(args)
        .output()
        .expect("spawn rbpc-eval")
}

#[test]
fn golden_incident_replays_clean() {
    let out = eval(&["replay", GOLDEN]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "replay of the golden incident exited {}:\n{stdout}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("replay: OK"), "{stdout}");
    assert!(!stdout.contains("MISMATCH"), "{stdout}");
}

#[test]
fn corrupted_plan_hash_fails_replay() {
    // Flip one digit of the first restore record's plan hash: replay
    // must spot the divergence and exit non-zero.
    let text = std::fs::read_to_string(GOLDEN).expect("read golden incident");
    let mut corrupted = String::new();
    let mut done = false;
    for line in text.lines() {
        if !done && line.contains("\"kind\":\"restore\"") {
            let (head, tail) = line.split_once("\"plan_hash\":\"").expect("hash field");
            let hash = &tail[..16];
            let flipped = if hash.starts_with('0') { "1" } else { "0" };
            corrupted.push_str(&format!("{head}\"plan_hash\":\"{flipped}{}", &tail[1..]));
            done = true;
        } else {
            corrupted.push_str(line);
        }
        corrupted.push('\n');
    }
    assert!(done, "golden incident has no restore record");
    let path =
        std::env::temp_dir().join(format!("rbpc-replay-corrupt-{}.jsonl", std::process::id()));
    std::fs::write(&path, corrupted).expect("write corrupted incident");
    let out = eval(&["replay", path.to_str().expect("utf-8 path")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "corrupted replay must fail:\n{stdout}"
    );
    assert!(stdout.contains("MISMATCH"), "{stdout}");
    assert!(stdout.contains("replay: FAILED"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn capture_then_replay_round_trips() {
    // Full loop in one test: a smoke run with an impossible p99 budget
    // breaches at window 0, freezes the ring, and the frozen incident
    // replays clean — plan hashes reproduce across process boundaries.
    let dir = std::env::temp_dir().join(format!("rbpc-replay-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let incident = dir.join("incident.jsonl");
    let windows = dir.join("windows.jsonl");
    let capture = eval(&[
        "loadtest",
        "--smoke",
        "--seed",
        "42",
        "--slo-p99-us",
        "0",
        "--incident-out",
        incident.to_str().expect("utf-8 path"),
        "--out",
        windows.to_str().expect("utf-8 path"),
    ]);
    assert!(
        capture.status.success(),
        "capture run exited {}:\n{}",
        capture.status,
        String::from_utf8_lossy(&capture.stderr)
    );
    let stderr = String::from_utf8_lossy(&capture.stderr);
    assert!(stderr.contains("SLO breach"), "{stderr}");

    // Window JSONL and incident header carry the same seed-derived
    // run_id — the join key across the run's artifacts.
    let run_id = rbpc_eval::run_id_for_seed(42);
    let first_window = std::fs::read_to_string(&windows)
        .expect("read windows")
        .lines()
        .next()
        .expect("one window line")
        .to_string();
    assert!(first_window.contains(&run_id), "{first_window}");
    let header_line = std::fs::read_to_string(&incident)
        .expect("read incident")
        .lines()
        .next()
        .expect("header line")
        .to_string();
    assert!(header_line.contains(&run_id), "{header_line}");

    let replay = eval(&["replay", incident.to_str().expect("utf-8 path")]);
    let stdout = String::from_utf8_lossy(&replay.stdout);
    assert!(
        replay.status.success(),
        "replay exited {}:\n{stdout}\n{}",
        replay.status,
        String::from_utf8_lossy(&replay.stderr)
    );
    assert!(stdout.contains("replay: OK"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
