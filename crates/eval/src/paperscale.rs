//! Paper-scale provisioning: the 40 377-node Internet router map,
//! end to end, under a stated memory budget.
//!
//! The paper's Table 1 lists the Internet router map at 40 377 nodes and
//! 101 659 links, but its evaluation samples only 40 source–destination
//! pairs there — an all-pairs base set is `n(n−1) ≈ 1.63 billion`
//! directed pairs, and even one tree per source is ~59 GB. This module
//! drives the implicit sharded store ([`ShardedBasePaths`]) over exactly
//! that topology (the [`standard_suite`] "Internet" case, so incident
//! files replay with [`TopoSpec::Suite`](crate::incident::TopoSpec::Suite)) and reports two things:
//!
//! 1. **The paper's 40-sample protocol** — the Table 2 measurement
//!    (ILM stretch, PC length, length stretch, redundancy) across all
//!    four failure classes, computed through the sharded store instead
//!    of a dense oracle;
//! 2. **A full sweep the paper could not afford in 2001** — with
//!    `--full-sweep`, every source in the map is visited shard by shard
//!    (perfect LRU locality), a few sampled destinations per source are
//!    disturbed by a mid-path link failure and restored, and one JSONL
//!    window line per source block reports restore-latency quantiles
//!    plus the store's residency/traffic counters.
//!
//! Coverage is bounded honestly: the sweep touches **every source** but
//! samples `dests_per_source` destinations per source rather than all
//! `n − 1`; the JSONL lines carry the exact query counts.
//!
//! The run flies under the usual black box: a [`FlightRecorder`] ring is
//! installed for the duration, every restore leaves a record, and with
//! an [`IncidentSink`] the ring is frozen into an incident file on
//! completion — `rbpc-eval replay` then re-executes the recorded
//! restores against a freshly rebuilt map and hash-checks every plan.
//!
//! Timing discipline matches the rest of the workspace: all wall-clock
//! access goes through [`monotonic_ns`], windows are identified by
//! injected tick numbers, and everything is deterministic per seed.

use crate::incident::{write_incident, IncidentHeader};
use crate::loadtest::{run_id_for_seed, IncidentSink};
use crate::suite::{standard_suite, EvalScale};
use crate::table2::{table2_block, FailureClass, Table2Row};
use crate::{format_table, sample_pairs};
use rbpc_core::{
    dense_store_bytes, directed_pairs, BasePathOracle, Restorer, ShardedBasePaths,
    ShardedStoreStats,
};
use rbpc_graph::{splitmix64, CostModel, FailureSet, Graph, Metric, NodeId};
use rbpc_obs::{
    monotonic_ns, obs_count, obs_span, set_flight_recorder, FlightRecorder, HistogramSummary,
    WindowSnapshot, WindowedHistogram,
};
use std::io::{self, Write};
use std::sync::Arc;

/// Index of the Internet router map within [`standard_suite`] — the
/// `case` an incident header's [`TopoSpec::Suite`](crate::incident::TopoSpec::Suite) must carry for
/// `rbpc-eval replay` to rebuild the same map.
pub const INTERNET_CASE: usize = 2;

/// Upper bound on the flight-recorder ring installed for a paper-scale
/// run (records, not bytes). A full sweep can produce more restore
/// records than this; the ring keeps the newest ones, which is what a
/// black box is for.
const RECORDER_CAP: usize = 1 << 17;

/// Shape of a paper-scale run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperScaleConfig {
    /// Suite scale: [`EvalScale::Paper`] is the real 40 377-node map,
    /// [`EvalScale::Quick`] the 1 500-node stand-in for CI smoke runs.
    pub scale: EvalScale,
    /// Seed for topology generation, cost padding, and sampling.
    pub seed: u64,
    /// Worker threads for shard builds and the Table 2 measurement.
    pub threads: usize,
    /// Residency budget in trees (`--max-resident-spts`).
    pub max_resident_spts: usize,
    /// Sources per shard (`--shard-size`).
    pub shard_size: usize,
    /// Sampled pairs for the paper protocol (paper: 40).
    pub samples: usize,
    /// Also run the all-sources sweep (`--full-sweep`).
    pub full_sweep: bool,
    /// Sampled destinations per source in the sweep
    /// (`--dests-per-source`).
    pub dests_per_source: usize,
    /// Number of JSONL windows the sweep's source space is split into.
    pub sweep_windows: u64,
}

impl PaperScaleConfig {
    /// The real thing: the paper's 40-sample protocol on the 40 377-node
    /// map, default store budget (512 trees ≈ 0.74 GB), sweep off.
    pub fn paper(seed: u64, threads: usize) -> PaperScaleConfig {
        PaperScaleConfig {
            scale: EvalScale::Paper,
            seed,
            threads,
            max_resident_spts: ShardedBasePaths::DEFAULT_MAX_RESIDENT_SPTS,
            shard_size: ShardedBasePaths::DEFAULT_SHARD_SIZE,
            samples: 40,
            full_sweep: false,
            dests_per_source: 2,
            sweep_windows: 32,
        }
    }

    /// CI smoke shape: the quick-scale 1 500-node map, a deliberately
    /// tiny budget (64 trees) so shard eviction is exercised, fewer
    /// samples and windows. Sub-second with `--full-sweep` off; a few
    /// seconds with it on.
    pub fn smoke(seed: u64, threads: usize) -> PaperScaleConfig {
        PaperScaleConfig {
            scale: EvalScale::Quick,
            seed,
            threads,
            max_resident_spts: 64,
            shard_size: 16,
            samples: 12,
            full_sweep: false,
            dests_per_source: 2,
            sweep_windows: 6,
        }
    }
}

/// One finished sweep window: a block of consecutive sources, each
/// disturbed and restored through the sharded store.
#[derive(Debug, Clone)]
pub struct SweepWindow {
    /// Run correlation id (same for every window of one run).
    pub run_id: String,
    /// 0-based window index (also the flight-recorder tick, offset past
    /// the four protocol ticks).
    pub window: u64,
    /// Sources this window visited.
    pub sources: usize,
    /// Restore queries issued (≤ `sources × dests_per_source`).
    pub queries: usize,
    /// Queries restored successfully.
    pub restored: u64,
    /// Queries that could not be restored (failure disconnected the
    /// pair).
    pub dropped: u64,
    /// Sampled destinations skipped because no base path existed.
    pub unreachable: u64,
    /// Restore-latency digest (nanoseconds).
    pub latency: HistogramSummary,
    /// Cumulative store residency/traffic counters at window close.
    pub store: ShardedStoreStats,
}

impl SweepWindow {
    /// This window as one compact JSON object (a JSONL line, no trailing
    /// newline) — parses back with [`rbpc_obs::json::parse`].
    pub fn to_json(&self) -> String {
        let l = &self.latency;
        let s = &self.store;
        format!(
            "{{\"run_id\":\"{}\",\"window\":{},\"sources\":{},\"queries\":{},\
             \"restored\":{},\"dropped\":{},\"unreachable\":{},\
             \"latency_ns\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\
             \"p99\":{},\"max\":{}}},\
             \"store\":{{\"resident_trees\":{},\"resident_bytes\":{},\
             \"hits\":{},\"misses\":{},\"evicted_trees\":{},\"shard_builds\":{}}}}}",
            self.run_id,
            self.window,
            self.sources,
            self.queries,
            self.restored,
            self.dropped,
            self.unreachable,
            l.count,
            l.mean,
            l.p50,
            l.p95,
            l.p99,
            l.max,
            s.resident_trees,
            s.resident_bytes,
            s.hits,
            s.misses,
            s.evicted_trees,
            s.shard_builds,
        )
    }
}

/// The sweep half of a paper-scale report.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Per-window statistics, in window order.
    pub windows: Vec<SweepWindow>,
    /// Whole-sweep restore-latency digest.
    pub latency: HistogramSummary,
    /// Total sources visited (every node of the map).
    pub sources: usize,
    /// Total restore queries issued.
    pub queries: usize,
    /// Total restored.
    pub restored: u64,
    /// Total dropped.
    pub dropped: u64,
}

/// Everything a paper-scale run measured.
#[derive(Debug, Clone)]
pub struct PaperScaleReport {
    /// Run correlation id.
    pub run_id: String,
    /// Topology name from the suite ("Internet").
    pub topo_name: String,
    /// Node count of the map.
    pub nodes: usize,
    /// Link count of the map.
    pub links: usize,
    /// Directed pairs an all-pairs base set covers.
    pub pairs_total: u128,
    /// Bytes a dense per-source store would need.
    pub dense_bytes: u128,
    /// The stated residency budget, in trees.
    pub budget_trees: usize,
    /// The stated residency budget, in bytes.
    pub budget_bytes: usize,
    /// Sources per shard.
    pub shard_size: usize,
    /// The paper's Table 2 rows, one per failure class, measured through
    /// the sharded store.
    pub protocol: Vec<Table2Row>,
    /// The full sweep, when `--full-sweep` was given.
    pub sweep: Option<SweepSummary>,
    /// Final store residency/traffic counters.
    pub store: ShardedStoreStats,
}

impl PaperScaleReport {
    /// Human-readable run summary: the memory math, per-class protocol
    /// event counts, the sweep table (when present), and the store's
    /// final counters.
    pub fn render(&self) -> String {
        let mut out = format!(
            "run_id {}\n\
             map: {} — {} nodes, {} links, {} directed pairs\n\
             dense store would need {:.1} GiB; budget {} trees \
             ({:.1} MiB) in shards of {}\n",
            self.run_id,
            self.topo_name,
            self.nodes,
            self.links,
            self.pairs_total,
            self.dense_bytes as f64 / (1u64 << 30) as f64,
            self.budget_trees,
            self.budget_bytes as f64 / (1u64 << 20) as f64,
            self.shard_size,
        );
        if let Some(sweep) = &self.sweep {
            let rows: Vec<Vec<String>> = sweep
                .windows
                .iter()
                .map(|w| {
                    vec![
                        w.window.to_string(),
                        w.sources.to_string(),
                        w.restored.to_string(),
                        w.dropped.to_string(),
                        w.latency.p50.to_string(),
                        w.latency.p99.to_string(),
                        (w.store.resident_bytes >> 20).to_string(),
                        w.store.evicted_trees.to_string(),
                    ]
                })
                .collect();
            out.push_str(&format_table(
                &[
                    "window", "sources", "restored", "dropped", "p50_ns", "p99_ns", "res_MiB",
                    "evicted",
                ],
                &rows,
            ));
            out.push_str(&format!(
                "sweep: {} sources, {} queries, {} restored, {} dropped, \
                 p99 {} ns\n",
                sweep.sources, sweep.queries, sweep.restored, sweep.dropped, sweep.latency.p99,
            ));
        }
        let s = &self.store;
        out.push_str(&format!(
            "store: {} trees resident ({:.1} MiB), {} hits / {} misses, \
             {} evicted, {} shard builds\n",
            s.resident_trees,
            s.resident_bytes as f64 / (1u64 << 20) as f64,
            s.hits,
            s.misses,
            s.evicted_trees,
            s.shard_builds,
        ));
        out
    }
}

/// Restores the previously-installed flight recorder on drop, so every
/// exit path (including `?` on I/O errors) puts the global back.
struct RecorderGuard(Option<Arc<FlightRecorder>>);

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        set_flight_recorder(self.0.take());
    }
}

/// The Internet router map case of the suite at the given scale:
/// `(name, graph, metric)`. Paper scale generates the real
/// 40 377-node / 101 659-link map; quick scale its 1 500-node stand-in.
pub fn internet_case(scale: EvalScale, seed: u64) -> (String, Graph, Metric) {
    let case = standard_suite(scale, seed)
        .into_iter()
        .nth(INTERNET_CASE)
        .expect("invariant: the standard suite always has an Internet case");
    (case.name, case.graph, case.metric)
}

/// Deterministic destination sample for a sweep source: the `j`-th
/// destination of `s` under `seed`, never equal to `s`.
fn sweep_dest(n: usize, seed: u64, s: usize, j: usize) -> NodeId {
    let h = splitmix64(seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (j as u64) << 40);
    let d = (h % (n as u64 - 1)) as usize;
    NodeId::new(if d >= s { d + 1 } else { d })
}

/// Drives a paper-scale run: builds the Internet map, provisions the
/// sharded store under the configured budget, runs the paper's Table 2
/// protocol through it, and — with `full_sweep` — visits every source
/// shard by shard, restoring sampled mid-path link failures and writing
/// one JSONL window line to `out` as each source block completes.
///
/// A [`FlightRecorder`] ring flies for the duration (protocol classes
/// use ticks 0–3, sweep windows tick on from 4); when `sink` is given
/// the ring is frozen into an incident file at the end of the run, ready
/// for `rbpc-eval replay`.
///
/// # Errors
///
/// Only I/O errors from `out` or the incident file — unrestorable
/// queries are data (the `dropped` count), not failures.
pub fn run_paper_scale<W: Write>(
    cfg: &PaperScaleConfig,
    out: &mut W,
    sink: Option<&IncidentSink>,
) -> io::Result<PaperScaleReport> {
    let run_id = run_id_for_seed(cfg.seed);
    let (topo_name, graph, metric) = internet_case(cfg.scale, cfg.seed);
    let n = graph.node_count();
    let links = graph.edge_count();

    let recorder = Arc::new(FlightRecorder::new(RECORDER_CAP));
    let _guard = RecorderGuard(set_flight_recorder(Some(Arc::clone(&recorder))));

    let store = {
        let _span = obs_span!("eval.paperscale.provision.ns");
        ShardedBasePaths::with_budget(
            graph.clone(),
            CostModel::new(metric, cfg.seed),
            cfg.max_resident_spts,
            cfg.shard_size,
            cfg.threads.max(1),
        )
    };

    // Phase 1 — the paper's sampled protocol (Table 2, all four failure
    // classes) through the sharded store. One recorder tick per class.
    let pairs = sample_pairs(&graph, cfg.samples, cfg.seed);
    let mut protocol = Vec::new();
    for (i, class) in FailureClass::all().into_iter().enumerate() {
        recorder.set_tick(i as u64);
        let _span = obs_span!("eval.paperscale.protocol.ns");
        obs_count!("paperscale.protocol_classes");
        protocol.push(table2_block(
            &topo_name,
            &store,
            class,
            &pairs,
            cfg.threads.max(1),
        ));
    }

    // Phase 2 — the full sweep: every source, in shard order (so the LRU
    // sees perfect locality), a few sampled destinations each, one
    // mid-path link failure restored per destination.
    let sweep = if cfg.full_sweep {
        let windows = (cfg.sweep_windows.max(1) as usize).min(n);
        let per_window = n.div_ceil(windows);
        let latency = WindowedHistogram::new(windows);
        let restorer = Restorer::new(&store);
        let mut rows = Vec::with_capacity(windows);
        let (mut queries, mut restored, mut dropped) = (0usize, 0u64, 0u64);
        for w in 0..windows {
            recorder.set_tick(FailureClass::all().len() as u64 + w as u64);
            let _span = obs_span!("eval.paperscale.sweep_window.ns");
            let first = w * per_window;
            let last = ((w + 1) * per_window).min(n);
            let mut w_restored = 0u64;
            let mut w_dropped = 0u64;
            let mut w_unreachable = 0u64;
            let mut w_queries = 0usize;
            for s in first..last {
                let s = NodeId::new(s);
                for j in 0..cfg.dests_per_source.max(1) {
                    let d = sweep_dest(n, cfg.seed, s.index(), j);
                    let Some(path) = store.base_path(s, d) else {
                        w_unreachable += 1;
                        continue;
                    };
                    let failures = FailureSet::of_edge(path.edges()[path.hop_count() / 2]);
                    w_queries += 1;
                    obs_count!("paperscale.sweep_queries");
                    let started = monotonic_ns();
                    let result = restorer.restore(s, d, &failures);
                    let elapsed = monotonic_ns().saturating_sub(started);
                    match result {
                        Ok(_) => {
                            latency.record(w as u64, elapsed);
                            w_restored += 1;
                        }
                        Err(_) => w_dropped += 1,
                    }
                }
            }
            let row = SweepWindow {
                run_id: run_id.clone(),
                window: w as u64,
                sources: last - first,
                queries: w_queries,
                restored: w_restored,
                dropped: w_dropped,
                unreachable: w_unreachable,
                latency: latency
                    .window(w as u64)
                    .unwrap_or_else(|| WindowSnapshot::empty(w as u64))
                    .summary(),
                store: store.stats(),
            };
            writeln!(out, "{}", row.to_json())?;
            out.flush()?;
            queries += w_queries;
            restored += w_restored;
            dropped += w_dropped;
            rows.push(row);
        }
        Some(SweepSummary {
            latency: latency.merged().summary(),
            windows: rows,
            sources: n,
            queries,
            restored,
            dropped,
        })
    } else {
        None
    };

    // Freeze the black box into a replayable incident at end of run.
    if let Some(sink) = sink {
        let records = recorder.freeze();
        let header = IncidentHeader {
            run_id: run_id.clone(),
            seed: cfg.seed,
            metric,
            topo: sink.topo.clone(),
            breach_tick: recorder.current_tick(),
            breach_reason: "paper-scale run complete (manual freeze)".to_string(),
            records: records.len(),
        };
        let file = std::fs::File::create(&sink.path)?;
        write_incident(&mut io::BufWriter::new(file), &header, &records)?;
    }

    Ok(PaperScaleReport {
        run_id,
        topo_name,
        nodes: n,
        links,
        pairs_total: directed_pairs(n),
        dense_bytes: dense_store_bytes(n),
        budget_trees: cfg.max_resident_spts,
        budget_bytes: cfg.max_resident_spts * n * rbpc_core::TREE_BYTES_PER_NODE,
        shard_size: cfg.shard_size,
        protocol,
        sweep,
        store: store.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incident::TopoSpec;

    fn tiny() -> PaperScaleConfig {
        PaperScaleConfig {
            full_sweep: true,
            sweep_windows: 3,
            ..PaperScaleConfig::smoke(5, 2)
        }
    }

    #[test]
    fn smoke_run_covers_protocol_and_sweep() {
        let cfg = tiny();
        let mut buf = Vec::new();
        let report = run_paper_scale(&cfg, &mut buf, None).expect("runs");
        assert_eq!(report.protocol.len(), 4, "one row per failure class");
        assert!(report.protocol.iter().all(|r| r.events > 0));
        let sweep = report.sweep.expect("sweep requested");
        assert_eq!(sweep.windows.len(), 3);
        assert_eq!(sweep.sources, report.nodes);
        assert!(sweep.restored > 0);
        // Every source was visited under the tiny budget: evictions ran.
        assert!(report.store.evicted_trees > 0);
        assert!(report.store.resident_trees <= cfg.max_resident_spts);
        // One JSONL line per window, each parseable, each with store stats.
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            let v = rbpc_obs::json::parse(line).expect("window line parses");
            assert_eq!(
                v.get("run_id").and_then(|x| x.as_str()),
                Some(report.run_id.as_str())
            );
            assert!(v.get("store").and_then(|s| s.get("misses")).is_some());
        }
    }

    #[test]
    fn report_renders_memory_math() {
        let cfg = PaperScaleConfig::smoke(5, 2);
        let mut buf = Vec::new();
        let report = run_paper_scale(&cfg, &mut buf, None).expect("runs");
        assert!(report.sweep.is_none(), "sweep is opt-in");
        assert!(buf.is_empty(), "no sweep, no JSONL");
        let text = report.render();
        assert!(text.contains("directed pairs"));
        assert!(text.contains("budget 64 trees"));
        assert!(text.starts_with(&format!("run_id {}", report.run_id)));
    }

    #[test]
    fn sweep_dest_never_self_and_is_deterministic() {
        for s in 0..50usize {
            for j in 0..4usize {
                let d = sweep_dest(1000, 9, s, j);
                assert_ne!(d.index(), s);
                assert!(d.index() < 1000);
                assert_eq!(d, sweep_dest(1000, 9, s, j));
            }
        }
    }

    #[test]
    fn incident_freeze_is_replayable() {
        let cfg = PaperScaleConfig {
            samples: 4,
            ..PaperScaleConfig::smoke(5, 2)
        };
        let path = std::env::temp_dir().join(format!(
            "rbpc-paperscale-incident-{}.jsonl",
            std::process::id()
        ));
        let sink = IncidentSink {
            topo: TopoSpec::Suite {
                scale: cfg.scale,
                seed: cfg.seed,
                case: INTERNET_CASE,
            },
            path: path.clone(),
        };
        let mut buf = Vec::new();
        let report = run_paper_scale(&cfg, &mut buf, Some(&sink)).expect("runs");
        let text = std::fs::read_to_string(&path).expect("incident written");
        let (header, records) = crate::parse_incident(&text).expect("incident parses");
        assert_eq!(header.run_id, report.run_id);
        assert_eq!(header.records, records.len());
        assert_eq!(
            header.topo,
            TopoSpec::Suite {
                scale: cfg.scale,
                seed: cfg.seed,
                case: INTERNET_CASE,
            }
        );
        // Record contents are not replayed here: the recorder is
        // process-global, so parallel tests may interleave their own
        // records — the single-process check.sh replay step owns
        // end-to-end fidelity.
        let _ = std::fs::remove_file(&path);
    }
}
