//! Deterministic sampling of source–destination pairs.

use rbpc_graph::{bfs_distances, DetRng, Graph, NodeId};

/// Samples `count` distinct connected ordered pairs, deterministically per
/// seed — the paper's sampling protocol (200 pairs on the ISP, 40 on the
/// large networks).
///
/// Pairs are connected (a base path exists) and have distinct endpoints.
/// If the graph cannot supply `count` distinct pairs, every available pair
/// is returned.
pub fn sample_pairs(graph: &Graph, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let n = graph.node_count();
    if n < 2 {
        return Vec::new();
    }
    let mut rng = DetRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut reach_cache: std::collections::HashMap<u32, Vec<Option<u32>>> =
        std::collections::HashMap::new();
    let mut attempts = 0usize;
    let max_attempts = 200 * count + 1000;
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s == t || !seen.insert((s, t)) {
            continue;
        }
        let dist = reach_cache
            .entry(s as u32)
            .or_insert_with(|| bfs_distances(graph, NodeId::new(s)));
        if dist[t].is_some() {
            out.push((NodeId::new(s), NodeId::new(t)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_topo::gnm_connected;

    #[test]
    fn samples_connected_distinct_pairs() {
        let g = gnm_connected(30, 60, 5, 3);
        let pairs = sample_pairs(&g, 25, 9);
        assert_eq!(pairs.len(), 25);
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), 25);
        for (s, t) in pairs {
            assert_ne!(s, t);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gnm_connected(30, 60, 5, 3);
        assert_eq!(sample_pairs(&g, 10, 1), sample_pairs(&g, 10, 1));
        assert_ne!(sample_pairs(&g, 10, 1), sample_pairs(&g, 10, 2));
    }

    #[test]
    fn skips_disconnected_pairs() {
        let mut g = rbpc_graph::Graph::new(4);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        let pairs = sample_pairs(&g, 50, 0);
        for (s, t) in pairs {
            // Both endpoints in the same two-node component.
            assert_eq!(s.index() / 2, t.index() / 2);
        }
    }

    #[test]
    fn degenerate_graphs() {
        assert!(sample_pairs(&rbpc_graph::Graph::new(0), 5, 0).is_empty());
        assert!(sample_pairs(&rbpc_graph::Graph::new(1), 5, 0).is_empty());
        let mut g = rbpc_graph::Graph::new(2);
        g.add_edge(0, 1, 1).unwrap();
        let pairs = sample_pairs(&g, 50, 0);
        assert_eq!(pairs.len(), 2); // (0,1) and (1,0)
    }
}
