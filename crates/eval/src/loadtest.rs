//! Load-test driver: flow queries under failure storms, reported live.
//!
//! The paper's pitch is restoration *speed*; the tables measure quality
//! (stretch, stack depth) but nothing in the harness answered "how fast
//! does the engine restore under sustained churn?". This module drives a
//! paced stream of restore queries against a [`Restorer`] while a
//! deterministic [failure storm](rbpc_sim::storm_schedule) knocks links
//! out, and reports **per window**: restore latency quantiles
//! (p50/p95/p99/max), restored/dropped counts, and the
//! concatenation-depth distribution the Theorem 1/2 bounds govern.
//!
//! Each window is emitted as one JSON object per line (JSONL) while the
//! run is live, and the final [`LoadtestReport`] merges every window into
//! a whole-run summary. Every line carries the run's seed-derived
//! `run_id`, which joins window lines, `/healthz` output, span profiles,
//! and incident files from the same run.
//!
//! The run is flown under a black box: a [`FlightRecorder`] ring is
//! installed for the duration, so every restore, outage, and storm
//! window leaves a compact record. An [`SloWatchdog`] checks each
//! finished window against the configured [`SloPolicy`]; on the first
//! breach the ring is frozen into a self-contained incident file (see
//! [`crate::incident`]) that `rbpc-eval replay` can re-execute
//! deterministically, and the process health cell flips to `degraded`.
//!
//! Timing discipline: all wall-clock access goes through `rbpc-obs`
//! ([`Ticker`] for pacing, [`monotonic_ns`] for latency deltas), so this
//! crate stays clean under the workspace's wall-clock lint — windows are
//! identified by injected tick numbers and the whole run is replayable
//! against simulated time.

use crate::incident::{write_incident, IncidentHeader, TopoSpec};
use crate::{format_table, sample_pairs, AnyOracle};
use rbpc_core::{BasePathOracle, Restorer};
use rbpc_graph::{splitmix64, CostModel, DetRng, EdgeId, Graph, Metric, NodeId};
use rbpc_obs::{
    monotonic_ns, obs_count, obs_span, set_flight_recorder, set_health, FlightRecorder,
    HealthReport, HistogramSummary, SloBreach, SloPolicy, SloWatchdog, Ticker, WindowSnapshot,
    WindowedCounter, WindowedHistogram,
};
use rbpc_sim::{storm_schedule, StormParams};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Salt folded into the seed before hashing it into a run id, so the run
/// id never collides with other `splitmix64(seed)` uses of the same
/// seed.
const RUN_ID_SALT: u64 = 0xF116_87EC_0F11_5EED;

/// The seed-derived run correlation id: 16 hex digits, identical for
/// identical configs, joining JSONL window lines, `/healthz` output, and
/// incident files from one run.
pub fn run_id_for_seed(seed: u64) -> String {
    format!("{:016x}", splitmix64(seed ^ RUN_ID_SALT))
}

/// Shape of a load-test run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadtestConfig {
    /// Number of windows to drive (one JSONL line each).
    pub windows: u64,
    /// Window length in milliseconds (the live-reporting granularity).
    pub window_ms: u64,
    /// Restore queries issued per window.
    pub queries_per_window: usize,
    /// Flow pairs sampled up front (queries cycle through them).
    pub pairs: usize,
    /// The failure storm layered over the windows.
    pub storm: StormParams,
    /// SLO budgets the watchdog enforces per window (default: disabled).
    pub slo: SloPolicy,
    /// Seed for pair sampling and query order.
    pub seed: u64,
    /// Provisioning threads for the base-path oracle.
    pub threads: usize,
}

impl LoadtestConfig {
    /// The standard run: 24 windows of 100ms — enough for four full
    /// calm/burst storm cycles at the default [`StormParams`].
    pub fn standard() -> LoadtestConfig {
        LoadtestConfig {
            windows: 24,
            window_ms: 100,
            queries_per_window: 200,
            pairs: 64,
            storm: StormParams::default(),
            slo: SloPolicy::default(),
            seed: 1,
            threads: 1,
        }
    }

    /// A sub-second smoke run for CI: few short windows, few queries.
    pub fn smoke() -> LoadtestConfig {
        LoadtestConfig {
            windows: 6,
            window_ms: 5,
            queries_per_window: 25,
            pairs: 16,
            storm: StormParams::default(),
            slo: SloPolicy::default(),
            seed: 1,
            threads: 1,
        }
    }
}

/// One finished window of the load test.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Run correlation id (same for every window of one run).
    pub run_id: String,
    /// 0-based window index (the tick the samples were recorded under).
    pub window: u64,
    /// Links the storm failed during this window.
    pub failed_links: usize,
    /// Queries issued.
    pub queries: usize,
    /// Queries restored successfully.
    pub restored: u64,
    /// Queries that could not be restored (disconnected under failures).
    pub dropped: u64,
    /// Restore-latency digest (nanoseconds).
    pub latency: HistogramSummary,
    /// Concatenation-depth digest (segments per restoration).
    pub depth: HistogramSummary,
    /// Cumulative provisioning-frontier pushes at window close (the
    /// `core.provision.heap_pushes` obs counter; 0 with obs off).
    pub heap_pushes: u64,
    /// Cumulative provisioning-frontier pops at window close. With the
    /// batched decrease-key kernel this equals nodes settled — a pop
    /// surplus in a window means the scalar fallback ran.
    pub heap_pops: u64,
    /// Cumulative in-place decrease-keys at window close — relaxations
    /// that the pre-batch scalar heap would have turned into duplicate
    /// entries and stale pops.
    pub decrease_keys: u64,
}

impl WindowStats {
    /// This window as one compact JSON object (a JSONL line, no trailing
    /// newline) — parses back with [`rbpc_obs::json::parse`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"run_id\":\"{}\",\"window\":{},\"failed_links\":{},\"queries\":{},\
             \"restored\":{},\"dropped\":{},\"latency_ns\":{},\"depth\":{},\
             \"heap_pushes\":{},\"heap_pops\":{},\"decrease_keys\":{}}}",
            self.run_id,
            self.window,
            self.failed_links,
            self.queries,
            self.restored,
            self.dropped,
            summary_json(&self.latency),
            summary_json(&self.depth),
            self.heap_pushes,
            self.heap_pops,
            self.decrease_keys,
        )
    }
}

/// Current cumulative value of a provisioning obs counter (0 when the
/// core crate's obs feature is off and nothing ever increments it).
fn provision_counter(name: &str) -> u64 {
    rbpc_obs::Registry::global().counter(name).get()
}

/// A [`HistogramSummary`] as a JSON object.
fn summary_json(s: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
        s.count, s.mean, s.p50, s.p95, s.p99, s.max
    )
}

/// Where a frozen flight-recorder ring goes when the watchdog trips.
#[derive(Debug, Clone)]
pub struct IncidentSink {
    /// Topology recipe written into the incident header — must rebuild
    /// the graph the run was driven on, or replay will diverge.
    pub topo: TopoSpec,
    /// Path the incident JSONL file is written to.
    pub path: PathBuf,
}

/// The whole load-test run: every window plus merged digests.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Run correlation id.
    pub run_id: String,
    /// Per-window statistics, in window order.
    pub windows: Vec<WindowStats>,
    /// Whole-run restore-latency digest (all windows merged).
    pub latency: HistogramSummary,
    /// Whole-run concatenation-depth digest.
    pub depth: HistogramSummary,
    /// Total restored queries.
    pub restored: u64,
    /// Total dropped (unrestorable) queries.
    pub dropped: u64,
    /// The SLO breach the watchdog latched, if the run broke its budget.
    pub breach: Option<SloBreach>,
}

impl LoadtestReport {
    /// The final summary: a `run_id` line, an ASCII table with one row
    /// per window plus a merged `TOTAL` row, and — if the watchdog
    /// tripped — a trailing breach line.
    pub fn render(&self) -> String {
        let mut rows: Vec<Vec<String>> = self
            .windows
            .iter()
            .map(|w| {
                vec![
                    w.window.to_string(),
                    w.failed_links.to_string(),
                    w.restored.to_string(),
                    w.dropped.to_string(),
                    w.latency.p50.to_string(),
                    w.latency.p95.to_string(),
                    w.latency.p99.to_string(),
                    w.latency.max.to_string(),
                    format!("{:.2}", w.depth.mean),
                    w.depth.max.to_string(),
                ]
            })
            .collect();
        rows.push(vec![
            "TOTAL".to_string(),
            "-".to_string(),
            self.restored.to_string(),
            self.dropped.to_string(),
            self.latency.p50.to_string(),
            self.latency.p95.to_string(),
            self.latency.p99.to_string(),
            self.latency.max.to_string(),
            format!("{:.2}", self.depth.mean),
            self.depth.max.to_string(),
        ]);
        let table = format_table(
            &[
                "window",
                "failed",
                "restored",
                "dropped",
                "p50_ns",
                "p95_ns",
                "p99_ns",
                "max_ns",
                "depth_mean",
                "depth_max",
            ],
            &rows,
        );
        let mut out = format!("run_id {}\n{table}", self.run_id);
        if let Some(b) = &self.breach {
            out.push_str(&format!("SLO BREACH window {}: {}\n", b.tick, b.reason));
        }
        out
    }
}

/// Restores the previously-installed flight recorder on drop, so every
/// exit path (including `?` on I/O errors) puts the global back.
struct RecorderGuard(Option<Arc<FlightRecorder>>);

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        set_flight_recorder(self.0.take());
    }
}

/// [`run_loadtest_watched`] without an incident sink: the flight
/// recorder still flies and the watchdog still latches breaches into the
/// report and health cell, but a frozen ring has nowhere to go.
pub fn run_loadtest<W: Write>(
    graph: &Graph,
    metric: Metric,
    cfg: &LoadtestConfig,
    out: &mut W,
) -> io::Result<LoadtestReport> {
    run_loadtest_watched(graph, metric, cfg, out, None)
}

/// Drives the load test: provisions an oracle over `graph`, samples flow
/// pairs, builds a deterministic failure storm from the edges those
/// flows actually use (so every window disturbs live traffic), then
/// issues `queries_per_window` restore queries per paced window. Each
/// finished window is written to `out` as one JSONL line before the next
/// window starts — tail the file for a live view.
///
/// For the duration of the run a [`FlightRecorder`] sized to hold every
/// record the run can produce is installed as the process black box
/// (the previous recorder is restored on exit). After each window the
/// [`SloWatchdog`] checks the configured budgets; on the first breach
/// the ring is frozen and — when `sink` is given — written as an
/// incident file for `rbpc-eval replay`, and the global health cell
/// flips to `degraded` (otherwise it tracks `ok` per window).
///
/// Latency is measured around [`Restorer::restore`] with
/// [`monotonic_ns`] deltas and recorded into [`WindowedHistogram`]s
/// under the window's tick; pacing uses [`Ticker::wait_for`]. Windows
/// that overrun their budget simply start the next one late (the tick
/// ring holds every window, so nothing is lost).
///
/// # Errors
///
/// Only I/O errors from writing `out` or the incident file — the query
/// stream itself treats unrestorable flows as data (the `dropped`
/// count), not failures.
pub fn run_loadtest_watched<W: Write>(
    graph: &Graph,
    metric: Metric,
    cfg: &LoadtestConfig,
    out: &mut W,
    sink: Option<&IncidentSink>,
) -> io::Result<LoadtestReport> {
    let run_id = run_id_for_seed(cfg.seed);
    let oracle = AnyOracle::for_graph_threads(
        graph.clone(),
        CostModel::new(metric, cfg.seed),
        cfg.threads.max(1),
    );
    let pairs = sample_pairs(graph, cfg.pairs.max(1), cfg.seed);
    // Candidate failure pool: the union of edges on the provisioned base
    // paths, so every storm window hits at least one live LSP.
    let mut candidates: Vec<EdgeId> = Vec::new();
    for &(s, t) in &pairs {
        if let Some(path) = oracle.base_path(s, t) {
            candidates.extend_from_slice(path.edges());
        }
    }
    candidates.sort_unstable();
    candidates.dedup();

    let cap = usize::try_from(cfg.windows).unwrap_or(usize::MAX).max(1);
    // Black box: one slot per possible record (a restore per query, plus
    // one storm record per window, plus slack) so a frozen incident holds
    // the whole run, not a truncated tail. Installed before the storm is
    // built so the schedule's own records are captured too.
    let recorder = Arc::new(FlightRecorder::new(
        cap.saturating_mul(cfg.queries_per_window + 1) + 16,
    ));
    let _guard = RecorderGuard(set_flight_recorder(Some(Arc::clone(&recorder))));
    let schedule = storm_schedule(&candidates, cfg.windows, &cfg.storm);

    let restorer = Restorer::new(&oracle);
    let latency = WindowedHistogram::new(cap);
    let depth = WindowedHistogram::new(cap);
    let restored = WindowedCounter::new(cap);
    let dropped = WindowedCounter::new(cap);
    let mut watchdog = SloWatchdog::new(cfg.slo);
    let mut rng = DetRng::seed_from_u64(cfg.seed ^ 0x10AD_7E57);

    let mut windows = Vec::with_capacity(cap);
    let ticker = Ticker::start(Duration::from_millis(cfg.window_ms.max(1)));
    for t in 0..cfg.windows {
        ticker.wait_for(t);
        let _window_span = obs_span!("eval.loadtest.window");
        recorder.set_tick(t);
        let failures = &schedule[usize::try_from(t).unwrap_or(0)];
        for _ in 0..cfg.queries_per_window {
            let (s, d): (NodeId, NodeId) = pairs[rng.gen_range(0..pairs.len())];
            obs_count!("loadtest.queries");
            let started = monotonic_ns();
            let result = restorer.restore(s, d, failures);
            let elapsed = monotonic_ns().saturating_sub(started);
            match result {
                Ok(r) => {
                    latency.record(t, elapsed);
                    depth.record(t, r.concatenation.len() as u64);
                    restored.add(t, 1);
                    obs_count!("loadtest.restored");
                }
                Err(_) => {
                    dropped.add(t, 1);
                    obs_count!("loadtest.dropped");
                }
            }
        }
        // Freeze the window immediately: with capacity == windows the
        // slot can't rotate out, but snapshotting here is what makes the
        // JSONL stream *live* rather than an end-of-run dump.
        let stats = WindowStats {
            run_id: run_id.clone(),
            window: t,
            failed_links: failures.failed_edge_count(),
            queries: cfg.queries_per_window,
            restored: restored.get(t).unwrap_or(0),
            dropped: dropped.get(t).unwrap_or(0),
            latency: latency
                .window(t)
                .unwrap_or_else(|| WindowSnapshot::empty(t))
                .summary(),
            depth: depth
                .window(t)
                .unwrap_or_else(|| WindowSnapshot::empty(t))
                .summary(),
            heap_pushes: provision_counter("core.provision.heap_pushes"),
            heap_pops: provision_counter("core.provision.heap_pops"),
            decrease_keys: provision_counter("core.provision.decrease_keys"),
        };
        writeln!(out, "{}", stats.to_json())?;
        out.flush()?;

        // The watchdog sees the window the moment it closes. The first
        // breach freezes the black box into an incident file and flips
        // the health cell; later windows keep the degraded verdict.
        let first_breach = watchdog
            .observe(t, &stats.latency, stats.restored, stats.dropped)
            .cloned();
        if let Some(breach) = first_breach {
            set_health(Some(HealthReport::degraded(&run_id, t, &breach.reason)));
            if let Some(sink) = sink {
                let records = recorder.freeze();
                let header = IncidentHeader {
                    run_id: run_id.clone(),
                    seed: cfg.seed,
                    metric,
                    topo: sink.topo.clone(),
                    breach_tick: breach.tick,
                    breach_reason: breach.reason.clone(),
                    records: records.len(),
                };
                let file = std::fs::File::create(&sink.path)?;
                write_incident(&mut io::BufWriter::new(file), &header, &records)?;
            }
        } else if watchdog.breach().is_none() {
            set_health(Some(HealthReport::ok(&run_id, t)));
        }
        windows.push(stats);
    }

    let total_restored = restored.totals().iter().map(|&(_, n)| n).sum();
    let total_dropped = dropped.totals().iter().map(|&(_, n)| n).sum();
    Ok(LoadtestReport {
        run_id,
        windows,
        latency: latency.merged().summary(),
        depth: depth.merged().summary(),
        restored: total_restored,
        dropped: total_dropped,
        breach: watchdog.breach().cloned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_topo::gnm_connected;

    fn tiny_cfg() -> LoadtestConfig {
        LoadtestConfig {
            windows: 3,
            window_ms: 1,
            queries_per_window: 10,
            pairs: 8,
            seed: 5,
            ..LoadtestConfig::smoke()
        }
    }

    #[test]
    fn smoke_run_emits_one_line_per_window() {
        let graph = gnm_connected(40, 120, 8, 7);
        let mut buf = Vec::new();
        let report = run_loadtest(&graph, Metric::Weighted, &tiny_cfg(), &mut buf).unwrap();
        assert_eq!(report.windows.len(), 3);
        assert_eq!(report.restored + report.dropped, 30);
        assert!(report.restored > 0, "a connected gnm graph must restore");
        assert!(report.breach.is_none(), "default policy cannot breach");
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn jsonl_lines_parse_and_match_report() {
        let graph = gnm_connected(40, 120, 8, 7);
        let mut buf = Vec::new();
        let report = run_loadtest(&graph, Metric::Weighted, &tiny_cfg(), &mut buf).unwrap();
        assert_eq!(report.run_id, run_id_for_seed(tiny_cfg().seed));
        let text = String::from_utf8(buf).unwrap();
        for (line, w) in text.lines().zip(&report.windows) {
            let v = rbpc_obs::json::parse(line).expect("window line is valid JSON");
            assert_eq!(
                v.get("run_id").and_then(|x| x.as_str()),
                Some(report.run_id.as_str()),
                "every window line carries the run id"
            );
            assert_eq!(
                v.get("window").and_then(|x| x.as_f64()),
                Some(w.window as f64)
            );
            assert_eq!(
                v.get("restored").and_then(|x| x.as_f64()),
                Some(w.restored as f64)
            );
            let lat = v.get("latency_ns").expect("latency object");
            assert_eq!(
                lat.get("p50").and_then(|x| x.as_f64()),
                Some(w.latency.p50 as f64)
            );
            // Real restores take time: the windows saw nonzero latency.
            if w.restored > 0 {
                assert!(w.latency.p50 > 0, "window {} p50", w.window);
            }
        }
        assert!(report.latency.max >= report.latency.p50);
    }

    #[test]
    fn depth_respects_theorem_bound() {
        // Calm windows fail exactly 1 link: Theorem 2 (weighted) bounds
        // every restoration to 2k + 1 = 3 segments.
        let graph = gnm_connected(60, 200, 10, 11);
        let cfg = LoadtestConfig {
            storm: rbpc_sim::StormParams {
                period: 0,
                calm_links: 1,
                ..rbpc_sim::StormParams::default()
            },
            ..tiny_cfg()
        };
        let mut buf = Vec::new();
        let report = run_loadtest(&graph, Metric::Weighted, &cfg, &mut buf).unwrap();
        assert!(report.depth.max <= 3, "depth {} > 2k+1", report.depth.max);
        assert!(report.depth.mean >= 1.0 || report.restored == 0);
    }

    #[test]
    fn render_has_total_row() {
        let graph = gnm_connected(40, 120, 8, 7);
        let mut buf = Vec::new();
        let report = run_loadtest(&graph, Metric::Weighted, &tiny_cfg(), &mut buf).unwrap();
        let table = report.render();
        assert!(table.contains("TOTAL"));
        assert!(table.contains("p99_ns"));
        assert!(table.starts_with(&format!("run_id {}\n", report.run_id)));
        // Run-id line + header + rule + one row per window + total.
        assert_eq!(table.lines().count(), 1 + 2 + 3 + 1);
    }

    #[test]
    fn breach_freezes_an_incident_file() {
        let graph = gnm_connected(40, 120, 8, 7);
        let cfg = LoadtestConfig {
            // A 0ns p99 budget: the first window with any successful
            // restore breaches deterministically.
            slo: SloPolicy {
                p99_budget_ns: Some(0),
                ..SloPolicy::default()
            },
            ..tiny_cfg()
        };
        let path = std::env::temp_dir().join(format!(
            "rbpc-loadtest-incident-{}.jsonl",
            std::process::id()
        ));
        let sink = IncidentSink {
            topo: TopoSpec::Gnm {
                nodes: 40,
                edges: 120,
                max_weight: 8,
                seed: 7,
            },
            path: path.clone(),
        };
        let mut buf = Vec::new();
        let report =
            run_loadtest_watched(&graph, Metric::Weighted, &cfg, &mut buf, Some(&sink)).unwrap();
        let rendered = report.render();
        let breach = report.breach.expect("0ns budget must breach");
        assert!(rendered.contains("SLO BREACH"), "{rendered}");
        // The incident file is a parseable header + records. (Record
        // contents are not asserted here: the recorder is process-global,
        // so parallel tests may interleave their own records — the
        // binary-level replay test owns end-to-end fidelity.)
        let text = std::fs::read_to_string(&path).expect("incident written");
        let (header, _records) = crate::incident::parse_incident(&text).expect("incident parses");
        assert_eq!(header.run_id, report.run_id);
        assert_eq!(header.breach_tick, breach.tick);
        assert_eq!(header.breach_reason, breach.reason);
        assert_eq!(header.seed, cfg.seed);
        let _ = std::fs::remove_file(&path);
    }
}
