//! The evaluated networks and oracle selection.

use rbpc_core::{BasePathOracle, DenseBasePaths, LazyBasePaths};
use rbpc_graph::{CostModel, Graph, Metric, NodeId, ShortestPathTree};
use rbpc_topo::{
    as_graph_like, ba_graph_clustered, internet_like, internet_like_scaled, isp_topology,
    IspParams, INTERNET_TRIAD_PCT,
};

/// How big to make the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalScale {
    /// Scaled-down graphs (seconds): for CI, tests, and benches.
    Quick,
    /// The paper's Table 1 sizes, including the 40 377-node Internet map.
    Paper,
}

/// One network under evaluation.
#[derive(Debug, Clone)]
pub struct NetworkCase {
    /// Display name, matching the paper's tables.
    pub name: String,
    /// The topology.
    pub graph: Graph,
    /// The metric the paper used on this network.
    pub metric: Metric,
    /// Number of sampled source–destination pairs (paper: 200 ISP / 40
    /// large).
    pub samples: usize,
}

impl NetworkCase {
    /// Builds the right oracle for this network's size, provisioning on
    /// the machine's available parallelism.
    pub fn oracle(&self, seed: u64) -> AnyOracle {
        AnyOracle::for_graph(self.graph.clone(), CostModel::new(self.metric, seed))
    }

    /// [`NetworkCase::oracle`] with an explicit provisioning thread count
    /// (the `--threads` flag of `rbpc-eval`).
    pub fn oracle_threads(&self, seed: u64, threads: usize) -> AnyOracle {
        AnyOracle::for_graph_threads(
            self.graph.clone(),
            CostModel::new(self.metric, seed),
            threads,
        )
    }
}

/// The standard four-network suite of the paper (ISP weighted, ISP
/// unweighted, Internet, AS graph), generated deterministically from
/// `seed`.
pub fn standard_suite(scale: EvalScale, seed: u64) -> Vec<NetworkCase> {
    let isp = isp_topology(IspParams::default(), seed).graph;
    let (internet, as_graph, big_samples) = match scale {
        EvalScale::Paper => (internet_like(seed), as_graph_like(seed), 40),
        EvalScale::Quick => (
            internet_like_scaled(1_500, seed),
            ba_graph_clustered(1_000, 2_081, INTERNET_TRIAD_PCT, seed),
            12,
        ),
    };
    vec![
        NetworkCase {
            name: "ISP, Weighted".into(),
            graph: isp.clone(),
            metric: Metric::Weighted,
            samples: match scale {
                EvalScale::Paper => 200,
                EvalScale::Quick => 40,
            },
        },
        NetworkCase {
            name: "ISP, Unweighted".into(),
            graph: isp,
            metric: Metric::Unweighted,
            samples: match scale {
                EvalScale::Paper => 200,
                EvalScale::Quick => 40,
            },
        },
        NetworkCase {
            name: "Internet".into(),
            graph: internet,
            metric: Metric::Unweighted,
            samples: big_samples,
        },
        NetworkCase {
            name: "AS Graph".into(),
            graph: as_graph,
            metric: Metric::Unweighted,
            samples: big_samples,
        },
    ]
}

/// Size threshold above which the dense (all-pairs) oracle is replaced by
/// the lazy cached one.
pub const DENSE_ORACLE_MAX_NODES: usize = 600;

/// Either base-path oracle, chosen by graph size.
#[derive(Debug)]
pub enum AnyOracle {
    /// Precomputed all-pairs trees (small graphs).
    Dense(DenseBasePaths),
    /// On-demand cached trees (large graphs).
    Lazy(LazyBasePaths),
}

impl AnyOracle {
    /// Picks dense for graphs up to [`DENSE_ORACLE_MAX_NODES`] nodes,
    /// lazy beyond. Dense provisioning runs on the machine's available
    /// parallelism; results are thread-count-invariant (canonical trees).
    pub fn for_graph(graph: Graph, model: CostModel) -> Self {
        Self::for_graph_threads(graph, model, rbpc_core::default_threads())
    }

    /// [`AnyOracle::for_graph`] with an explicit provisioning thread
    /// count for the dense case (the lazy oracle computes on demand and
    /// ignores it).
    pub fn for_graph_threads(graph: Graph, model: CostModel, threads: usize) -> Self {
        if graph.node_count() <= DENSE_ORACLE_MAX_NODES {
            AnyOracle::Dense(DenseBasePaths::build_with_threads(graph, model, threads))
        } else {
            AnyOracle::Lazy(LazyBasePaths::new(graph, model))
        }
    }
}

impl BasePathOracle for AnyOracle {
    fn graph(&self) -> &Graph {
        match self {
            AnyOracle::Dense(o) => o.graph(),
            AnyOracle::Lazy(o) => o.graph(),
        }
    }

    fn cost_model(&self) -> &CostModel {
        match self {
            AnyOracle::Dense(o) => o.cost_model(),
            AnyOracle::Lazy(o) => o.cost_model(),
        }
    }

    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        match self {
            AnyOracle::Dense(o) => o.with_spt(source, f),
            AnyOracle::Lazy(o) => o.with_spt(source, f),
        }
    }

    fn with_spt_under<R>(
        &self,
        source: NodeId,
        failures: &rbpc_graph::FailureSet,
        f: impl FnOnce(&ShortestPathTree) -> R,
    ) -> R {
        // Forward explicitly so both variants keep their incremental-repair
        // override instead of the trait's rebuild-from-scratch default.
        match self {
            AnyOracle::Dense(o) => o.with_spt_under(source, failures, f),
            AnyOracle::Lazy(o) => o.with_spt_under(source, failures, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_has_four_networks() {
        let suite = standard_suite(EvalScale::Quick, 7);
        assert_eq!(suite.len(), 4);
        let names: Vec<_> = suite.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            ["ISP, Weighted", "ISP, Unweighted", "Internet", "AS Graph"]
        );
        // The two ISP rows share the topology; metrics differ.
        assert_eq!(suite[0].graph, suite[1].graph);
        assert_ne!(suite[0].metric, suite[1].metric);
    }

    #[test]
    fn oracle_selection_by_size() {
        let suite = standard_suite(EvalScale::Quick, 1);
        assert!(matches!(suite[0].oracle(1), AnyOracle::Dense(_))); // ISP ~200
        assert!(matches!(suite[2].oracle(1), AnyOracle::Lazy(_))); // 1500 nodes
    }

    #[test]
    fn any_oracle_delegates() {
        let case = &standard_suite(EvalScale::Quick, 2)[0];
        let oracle = case.oracle(2);
        assert_eq!(oracle.graph().node_count(), case.graph.node_count());
        assert_eq!(oracle.cost_model().metric(), Metric::Weighted);
        let d = oracle.base_dist(0.into(), 1.into());
        assert!(d.is_some());
    }

    #[test]
    fn any_oracle_with_spt_under_repairs_like_rebuild() {
        let case = &standard_suite(EvalScale::Quick, 3)[0];
        let oracle = case.oracle(3);
        let mut failures = rbpc_graph::FailureSet::new();
        failures.fail_edge(rbpc_graph::EdgeId::new(0));
        failures.fail_edge(rbpc_graph::EdgeId::new(9));
        let model = *oracle.cost_model();
        for s in [0usize, 5, 17] {
            let want =
                rbpc_graph::shortest_path_tree(&failures.view(oracle.graph()), &model, s.into());
            oracle.with_spt_under(s.into(), &failures, |spt| {
                assert_eq!(spt, &want, "source {s}")
            });
        }
    }

    #[test]
    fn deterministic_suites() {
        let a = standard_suite(EvalScale::Quick, 5);
        let b = standard_suite(EvalScale::Quick, 5);
        assert_eq!(a[2].graph, b[2].graph);
    }
}
