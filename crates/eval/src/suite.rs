//! The evaluated networks and oracle selection.

use rbpc_core::{BasePathOracle, BasePathStore, DenseBasePaths, LazyBasePaths, ShardedBasePaths};
use rbpc_graph::{CostModel, Graph, Metric, NodeId, ShortestPathTree};
use rbpc_topo::{
    as_graph_like, ba_graph_clustered, internet_like, internet_like_scaled, isp_topology,
    IspParams, INTERNET_TRIAD_PCT,
};

/// How big to make the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalScale {
    /// Scaled-down graphs (seconds): for CI, tests, and benches.
    Quick,
    /// The paper's Table 1 sizes, including the 40 377-node Internet map.
    Paper,
}

/// One network under evaluation.
#[derive(Debug, Clone)]
pub struct NetworkCase {
    /// Display name, matching the paper's tables.
    pub name: String,
    /// The topology.
    pub graph: Graph,
    /// The metric the paper used on this network.
    pub metric: Metric,
    /// Number of sampled source–destination pairs (paper: 200 ISP / 40
    /// large).
    pub samples: usize,
}

impl NetworkCase {
    /// Builds the right oracle for this network's size, provisioning on
    /// the machine's available parallelism.
    pub fn oracle(&self, seed: u64) -> AnyOracle {
        AnyOracle::for_graph(self.graph.clone(), CostModel::new(self.metric, seed))
    }

    /// [`NetworkCase::oracle`] with an explicit provisioning thread count
    /// (the `--threads` flag of `rbpc-eval`).
    pub fn oracle_threads(&self, seed: u64, threads: usize) -> AnyOracle {
        AnyOracle::for_graph_threads(
            self.graph.clone(),
            CostModel::new(self.metric, seed),
            threads,
        )
    }
}

/// The standard four-network suite of the paper (ISP weighted, ISP
/// unweighted, Internet, AS graph), generated deterministically from
/// `seed`.
pub fn standard_suite(scale: EvalScale, seed: u64) -> Vec<NetworkCase> {
    let isp = isp_topology(IspParams::default(), seed).graph;
    let (internet, as_graph, big_samples) = match scale {
        EvalScale::Paper => (internet_like(seed), as_graph_like(seed), 40),
        EvalScale::Quick => (
            internet_like_scaled(1_500, seed),
            ba_graph_clustered(1_000, 2_081, INTERNET_TRIAD_PCT, seed),
            12,
        ),
    };
    vec![
        NetworkCase {
            name: "ISP, Weighted".into(),
            graph: isp.clone(),
            metric: Metric::Weighted,
            samples: match scale {
                EvalScale::Paper => 200,
                EvalScale::Quick => 40,
            },
        },
        NetworkCase {
            name: "ISP, Unweighted".into(),
            graph: isp,
            metric: Metric::Unweighted,
            samples: match scale {
                EvalScale::Paper => 200,
                EvalScale::Quick => 40,
            },
        },
        NetworkCase {
            name: "Internet".into(),
            graph: internet,
            metric: Metric::Unweighted,
            samples: big_samples,
        },
        NetworkCase {
            name: "AS Graph".into(),
            graph: as_graph,
            metric: Metric::Unweighted,
            samples: big_samples,
        },
    ]
}

/// Size threshold above which the dense (all-pairs) oracle is replaced by
/// the lazy cached one.
pub const DENSE_ORACLE_MAX_NODES: usize = 600;

/// Size threshold above which the lazy oracle is replaced by the implicit
/// sharded store ([`ShardedBasePaths`]): batch shard builds on the
/// parallel engine amortize far better than one-at-a-time lazy Dijkstras
/// once graphs reach AS-graph/Internet-map size.
pub const SHARDED_ORACLE_MIN_NODES: usize = 10_000;

/// Any base-path oracle, chosen by graph size.
#[derive(Debug)]
pub enum AnyOracle {
    /// Precomputed all-pairs trees (small graphs).
    Dense(DenseBasePaths),
    /// On-demand cached trees (mid-size graphs).
    Lazy(LazyBasePaths),
    /// Implicit sharded store with an LRU residency budget (paper-scale
    /// graphs, e.g. the 40 377-node Internet router map).
    Sharded(ShardedBasePaths),
}

impl AnyOracle {
    /// Picks dense for graphs up to [`DENSE_ORACLE_MAX_NODES`] nodes,
    /// lazy up to [`SHARDED_ORACLE_MIN_NODES`], and the sharded store
    /// beyond. Provisioning runs on the machine's available parallelism;
    /// results are thread-count-invariant (canonical trees).
    pub fn for_graph(graph: Graph, model: CostModel) -> Self {
        Self::for_graph_threads(graph, model, rbpc_core::default_threads())
    }

    /// [`AnyOracle::for_graph`] with an explicit provisioning thread
    /// count for the dense and sharded cases (the lazy oracle computes
    /// on demand and ignores it).
    pub fn for_graph_threads(graph: Graph, model: CostModel, threads: usize) -> Self {
        if graph.node_count() <= DENSE_ORACLE_MAX_NODES {
            AnyOracle::Dense(DenseBasePaths::build_with_threads(graph, model, threads))
        } else if graph.node_count() < SHARDED_ORACLE_MIN_NODES {
            AnyOracle::Lazy(LazyBasePaths::new(graph, model))
        } else {
            AnyOracle::Sharded(ShardedBasePaths::with_budget(
                graph,
                model,
                ShardedBasePaths::DEFAULT_MAX_RESIDENT_SPTS,
                ShardedBasePaths::DEFAULT_SHARD_SIZE,
                threads,
            ))
        }
    }
}

impl BasePathOracle for AnyOracle {
    fn graph(&self) -> &Graph {
        match self {
            AnyOracle::Dense(o) => o.graph(),
            AnyOracle::Lazy(o) => o.graph(),
            AnyOracle::Sharded(o) => o.graph(),
        }
    }

    fn cost_model(&self) -> &CostModel {
        match self {
            AnyOracle::Dense(o) => o.cost_model(),
            AnyOracle::Lazy(o) => o.cost_model(),
            AnyOracle::Sharded(o) => o.cost_model(),
        }
    }

    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        match self {
            AnyOracle::Dense(o) => o.with_spt(source, f),
            AnyOracle::Lazy(o) => o.with_spt(source, f),
            AnyOracle::Sharded(o) => o.with_spt(source, f),
        }
    }

    fn with_spt_under<R>(
        &self,
        source: NodeId,
        failures: &rbpc_graph::FailureSet,
        f: impl FnOnce(&ShortestPathTree) -> R,
    ) -> R {
        // Forward explicitly so every variant keeps its incremental-repair
        // override instead of the trait's rebuild-from-scratch default.
        match self {
            AnyOracle::Dense(o) => o.with_spt_under(source, failures, f),
            AnyOracle::Lazy(o) => o.with_spt_under(source, failures, f),
            AnyOracle::Sharded(o) => o.with_spt_under(source, failures, f),
        }
    }
}

impl BasePathStore for AnyOracle {
    fn resident_trees(&self) -> usize {
        match self {
            AnyOracle::Dense(o) => o.resident_trees(),
            AnyOracle::Lazy(o) => o.resident_trees(),
            AnyOracle::Sharded(o) => o.resident_trees(),
        }
    }

    fn max_resident_trees(&self) -> Option<usize> {
        match self {
            AnyOracle::Dense(o) => o.max_resident_trees(),
            AnyOracle::Lazy(o) => o.max_resident_trees(),
            AnyOracle::Sharded(o) => o.max_resident_trees(),
        }
    }

    fn evicted_trees(&self) -> u64 {
        match self {
            AnyOracle::Dense(o) => o.evicted_trees(),
            AnyOracle::Lazy(o) => o.evicted_trees(),
            AnyOracle::Sharded(o) => o.evicted_trees(),
        }
    }

    fn prefetch(&self, sources: &[NodeId]) -> usize {
        match self {
            AnyOracle::Dense(o) => o.prefetch(sources),
            AnyOracle::Lazy(o) => o.prefetch(sources),
            AnyOracle::Sharded(o) => o.prefetch(sources),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_has_four_networks() {
        let suite = standard_suite(EvalScale::Quick, 7);
        assert_eq!(suite.len(), 4);
        let names: Vec<_> = suite.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            ["ISP, Weighted", "ISP, Unweighted", "Internet", "AS Graph"]
        );
        // The two ISP rows share the topology; metrics differ.
        assert_eq!(suite[0].graph, suite[1].graph);
        assert_ne!(suite[0].metric, suite[1].metric);
    }

    #[test]
    fn oracle_selection_by_size() {
        let suite = standard_suite(EvalScale::Quick, 1);
        assert!(matches!(suite[0].oracle(1), AnyOracle::Dense(_))); // ISP ~200
        assert!(matches!(suite[2].oracle(1), AnyOracle::Lazy(_))); // 1500 nodes
    }

    #[test]
    fn paper_scale_graphs_get_the_sharded_store() {
        // Construction is cheap (CSR only, no trees), so exercising the
        // selection threshold at 10k nodes is affordable in a unit test.
        let g =
            rbpc_topo::gnm_connected(SHARDED_ORACLE_MIN_NODES, 2 * SHARDED_ORACLE_MIN_NODES, 5, 1);
        let oracle = AnyOracle::for_graph_threads(g, CostModel::new(Metric::Unweighted, 1), 2);
        assert!(matches!(oracle, AnyOracle::Sharded(_)));
        assert_eq!(oracle.resident_trees(), 0); // nothing provisioned yet
        assert!(oracle.max_resident_trees().is_some());
        let d = oracle.base_dist(0.into(), 1.into());
        assert!(d.is_some());
        assert!(oracle.resident_trees() > 0);
    }

    #[test]
    fn any_oracle_delegates() {
        let case = &standard_suite(EvalScale::Quick, 2)[0];
        let oracle = case.oracle(2);
        assert_eq!(oracle.graph().node_count(), case.graph.node_count());
        assert_eq!(oracle.cost_model().metric(), Metric::Weighted);
        let d = oracle.base_dist(0.into(), 1.into());
        assert!(d.is_some());
    }

    #[test]
    fn any_oracle_with_spt_under_repairs_like_rebuild() {
        let case = &standard_suite(EvalScale::Quick, 3)[0];
        let oracle = case.oracle(3);
        let mut failures = rbpc_graph::FailureSet::new();
        failures.fail_edge(rbpc_graph::EdgeId::new(0));
        failures.fail_edge(rbpc_graph::EdgeId::new(9));
        let model = *oracle.cost_model();
        for s in [0usize, 5, 17] {
            let want =
                rbpc_graph::shortest_path_tree(&failures.view(oracle.graph()), &model, s.into());
            oracle.with_spt_under(s.into(), &failures, |spt| {
                assert_eq!(spt, &want, "source {s}")
            });
        }
    }

    #[test]
    fn deterministic_suites() {
        let a = standard_suite(EvalScale::Quick, 5);
        let b = standard_suite(EvalScale::Quick, 5);
        assert_eq!(a[2].graph, b[2].graph);
    }
}
