//! Table 1: the networks used in the paper.

use crate::{format_table, NetworkCase};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Network name.
    pub name: String,
    /// Number of routers.
    pub nodes: usize,
    /// Number of links.
    pub links: usize,
    /// Average degree `2m / n`.
    pub avg_degree: f64,
}

/// Computes Table 1 for a suite of networks. The two ISP rows of the suite
/// share a topology, so (like the paper) only one ISP row is emitted.
pub fn table1(cases: &[NetworkCase]) -> Vec<Table1Row> {
    let mut rows: Vec<Table1Row> = Vec::new();
    for case in cases {
        let name = case
            .name
            .split(',')
            .next()
            .unwrap_or(&case.name)
            .to_string();
        if rows.iter().any(|r| r.name == name) {
            continue;
        }
        let stats = case.graph.degree_stats();
        rows.push(Table1Row {
            name,
            nodes: case.graph.node_count(),
            links: case.graph.edge_count(),
            avg_degree: stats.map(|s| s.avg).unwrap_or(0.0),
        });
    }
    rows
}

/// Renders Table 1 in the paper's layout.
pub fn render(rows: &[Table1Row]) -> String {
    format_table(
        &["name", "nodes", "links", "avg.deg."],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.nodes.to_string(),
                    r.links.to_string(),
                    format!("{:.3}", r.avg_degree),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Renders Table 1 as CSV.
pub fn to_csv(rows: &[Table1Row]) -> String {
    let mut csv = crate::Csv::new();
    csv.row(["name", "nodes", "links", "avg_degree"]);
    for r in rows {
        csv.row([
            r.name.clone(),
            r.nodes.to_string(),
            r.links.to_string(),
            format!("{:.4}", r.avg_degree),
        ]);
    }
    csv.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{standard_suite, EvalScale};

    #[test]
    fn one_row_per_topology() {
        let suite = standard_suite(EvalScale::Quick, 3);
        let rows = table1(&suite);
        assert_eq!(rows.len(), 3); // ISP deduplicated
        assert_eq!(rows[0].name, "ISP");
        assert_eq!(rows[1].name, "Internet");
        assert_eq!(rows[2].name, "AS Graph");
    }

    #[test]
    fn isp_row_matches_paper_shape() {
        let suite = standard_suite(EvalScale::Quick, 3);
        let rows = table1(&suite);
        let isp = &rows[0];
        assert!((150..=260).contains(&isp.nodes));
        assert!((3.0..4.2).contains(&isp.avg_degree));
        assert!((isp.avg_degree - 2.0 * isp.links as f64 / isp.nodes as f64).abs() < 1e-9);
    }

    #[test]
    fn renders() {
        let suite = standard_suite(EvalScale::Quick, 3);
        let out = render(&table1(&suite));
        assert!(out.contains("ISP"));
        assert!(out.contains("avg.deg."));
    }

    #[test]
    fn csv_round() {
        let suite = standard_suite(EvalScale::Quick, 3);
        let csv = to_csv(&table1(&suite));
        assert!(csv.starts_with("name,nodes,links,avg_degree\n"));
        assert_eq!(csv.lines().count(), 4);
    }
}
