//! Table 3: the hop count of the min-cost bypass of each edge.
//!
//! For every link `(u, v)`, the bypass is the min-cost path from `u` to
//! `v` in `G − (u, v)`. The paper reports the distribution of bypass hop
//! counts per topology; the prevalence of 2–3-hop bypasses is what makes
//! edge-bypass local RBPC cheap.

use crate::format_table;
use rbpc_graph::{shortest_path, CostModel, FailureSet, Graph, Metric};
use std::collections::BTreeMap;
use std::thread;

/// The bypass hop-count distribution of one network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BypassHistogram {
    /// Network name.
    pub network: String,
    /// hop count → number of edges whose min-cost bypass has that many
    /// hops.
    pub counts: BTreeMap<u32, usize>,
    /// Edges with no bypass (bridges).
    pub bridges: usize,
    /// Total edges examined.
    pub total: usize,
}

impl BypassHistogram {
    /// Fraction of edges with a bypass of exactly `hops` hops.
    pub fn fraction(&self, hops: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            *self.counts.get(&hops).unwrap_or(&0) as f64 / self.total as f64
        }
    }

    /// Fraction of edges with a bypass of at most `hops` hops.
    pub fn fraction_at_most(&self, hops: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts
                .iter()
                .filter(|&(&h, _)| h <= hops)
                .map(|(_, &c)| c)
                .sum::<usize>() as f64
                / self.total as f64
        }
    }
}

/// Computes the bypass histogram of a network, parallelized over edges.
pub fn table3(
    network: &str,
    graph: &Graph,
    metric: Metric,
    seed: u64,
    threads: usize,
) -> BypassHistogram {
    let model = CostModel::new(metric, seed);
    let m = graph.edge_count();
    let threads = threads.max(1);
    let chunk = m.div_ceil(threads).max(1);
    let edge_ids: Vec<_> = graph.edge_ids().collect();
    let partials = thread::scope(|scope| {
        let mut handles = Vec::new();
        for slice in edge_ids.chunks(chunk) {
            let model = &model;
            handles.push(scope.spawn(move || {
                let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
                let mut bridges = 0usize;
                for &e in slice {
                    let (u, v) = graph.endpoints(e);
                    let failures = FailureSet::of_edge(e);
                    let view = failures.view(graph);
                    match shortest_path(&view, model, u, v) {
                        Some(p) => *counts.entry(p.hop_count() as u32).or_default() += 1,
                        None => bridges += 1,
                    }
                }
                (counts, bridges)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    let mut bridges = 0;
    for (c, b) in partials {
        for (h, n) in c {
            *counts.entry(h).or_default() += n;
        }
        bridges += b;
    }
    BypassHistogram {
        network: network.to_string(),
        counts,
        bridges,
        total: m,
    }
}

/// Renders several networks' histograms side by side, as in the paper.
pub fn render(histograms: &[BypassHistogram]) -> String {
    let max_hops = histograms
        .iter()
        .flat_map(|h| h.counts.keys().copied())
        .max()
        .unwrap_or(2);
    let mut header = vec!["Bypass Hopcount".to_string()];
    header.extend(histograms.iter().map(|h| h.network.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for hops in 2..=max_hops {
        let mut row = vec![hops.to_string()];
        for h in histograms {
            row.push(format!("{:.2}%", 100.0 * h.fraction(hops)));
        }
        rows.push(row);
    }
    if histograms.iter().any(|h| h.bridges > 0) {
        let mut row = vec!["(bridge)".to_string()];
        for h in histograms {
            row.push(format!(
                "{:.2}%",
                100.0 * h.bridges as f64 / h.total.max(1) as f64
            ));
        }
        rows.push(row);
    }
    format_table(&header_refs, &rows)
}

/// Renders bypass histograms as CSV (one row per network × hop count).
pub fn to_csv(histograms: &[BypassHistogram]) -> String {
    let mut csv = crate::Csv::new();
    csv.row(["network", "hops", "links", "fraction"]);
    for h in histograms {
        for (&hops, &count) in &h.counts {
            csv.row([
                h.network.clone(),
                hops.to_string(),
                count.to_string(),
                format!("{:.4}", count as f64 / h.total.max(1) as f64),
            ]);
        }
        if h.bridges > 0 {
            csv.row([
                h.network.clone(),
                "bridge".to_string(),
                h.bridges.to_string(),
                format!("{:.4}", h.bridges as f64 / h.total.max(1) as f64),
            ]);
        }
    }
    csv.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_topo::{cycle, gnm_connected, isp_topology, IspParams};

    #[test]
    fn cycle_bypass_is_the_rest_of_the_cycle() {
        let g = cycle(6);
        let h = table3("cycle", &g, Metric::Unweighted, 0, 2);
        assert_eq!(h.total, 6);
        assert_eq!(h.bridges, 0);
        assert_eq!(h.counts.get(&5), Some(&6)); // all bypasses are 5 hops
        assert!((h.fraction(5) - 1.0).abs() < 1e-12);
        assert_eq!(h.fraction(2), 0.0);
        assert!((h.fraction_at_most(5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bridges_are_counted() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let h = table3("path", &g, Metric::Unweighted, 0, 1);
        assert_eq!(h.bridges, 2);
        assert!(h.counts.is_empty());
    }

    #[test]
    fn isp_bypasses_are_mostly_short() {
        let isp = isp_topology(IspParams::default(), 3).graph;
        let h = table3("ISP", &isp, Metric::Weighted, 3, 4);
        // The paper observes > 90% of ISP bypasses with hop count 2–3; our
        // synthetic ISP should be in the same regime (dual-homing).
        assert!(
            h.fraction_at_most(3) > 0.6,
            "short-bypass fraction = {}",
            h.fraction_at_most(3)
        );
        assert_eq!(h.counts.values().sum::<usize>() + h.bridges, h.total);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let g = gnm_connected(40, 90, 6, 7);
        let a = table3("g", &g, Metric::Weighted, 1, 1);
        let b = table3("g", &g, Metric::Weighted, 1, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn csv_rows_per_bucket() {
        let g = cycle(5);
        let h = table3("C", &g, Metric::Unweighted, 0, 1);
        let csv = to_csv(&[h]);
        assert!(csv.starts_with("network,hops,links,fraction\n"));
        assert_eq!(csv.lines().count(), 2); // header + single 4-hop bucket
    }

    #[test]
    fn renders_side_by_side() {
        let g = cycle(4);
        let h1 = table3("A", &g, Metric::Unweighted, 0, 1);
        let h2 = table3("B", &g, Metric::Unweighted, 0, 1);
        let out = render(&[h1, h2]);
        assert!(out.contains("Bypass Hopcount"));
        assert!(out.contains('A'));
        assert!(out.contains('B'));
    }
}
