//! Self-contained incident files and their deterministic replay.
//!
//! When the SLO watchdog trips during a load test, the flight recorder's
//! ring is frozen into one JSONL **incident file**: a header line (run
//! id, topology recipe, cost metric and seed, breach tick and reason)
//! followed by one [`FlightRecord`] per line. The file carries
//! everything a replay needs — the topology is *rebuilt from the
//! recipe*, not shipped, and every restore record carries its full
//! failure set — so `rbpc-eval replay <incident.jsonl>` months later on
//! another machine re-executes the exact queries and asserts the
//! replayed restoration plans hash-match the recorded outcomes
//! ([`Restoration::plan_hash`](rbpc_core::Restoration::plan_hash)).
//!
//! Replay also re-runs the paper's validators: every replayed
//! restoration under an edge-only failure set is checked against the
//! Theorem 2 stack bound (`Concatenation::validate_bounds`), and each
//! restore record's failure set is cross-checked against the recorded
//! storm schedule for its window.

use crate::suite::{standard_suite, AnyOracle, EvalScale};
use rbpc_core::Restorer;
use rbpc_graph::{CostModel, EdgeId, FailureSet, Graph, Metric, NodeId};
use rbpc_obs::json::{self, JsonValue};
use rbpc_obs::{json_escape, FlightKind, FlightRecord};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Current incident-file format tag (the header's `incident` field).
pub const INCIDENT_FORMAT: &str = "rbpc.flight.v1";

/// A recipe for rebuilding the topology an incident was captured on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoSpec {
    /// A connected G(n,m) random graph (`rbpc_topo::gnm_connected`) —
    /// what `loadtest --smoke` drives.
    Gnm {
        /// Node count.
        nodes: usize,
        /// Edge count.
        edges: usize,
        /// Maximum link weight.
        max_weight: u32,
        /// Topology seed.
        seed: u64,
    },
    /// Case `case` of [`standard_suite`] at the given scale and seed.
    Suite {
        /// Suite scale (`quick` or `paper`).
        scale: EvalScale,
        /// Suite seed.
        seed: u64,
        /// Case index within the suite.
        case: usize,
    },
    /// An edge-list file (`rbpc_topo::parse_edge_list` format). The
    /// least self-contained recipe: the file must still exist at replay
    /// time.
    File {
        /// Path to the edge-list file.
        path: String,
    },
}

impl TopoSpec {
    /// Rebuilds the topology: `(name, graph)`.
    ///
    /// # Errors
    ///
    /// Unreadable/unparsable edge-list files, or a suite case index out
    /// of range.
    pub fn build(&self) -> Result<(String, Graph), String> {
        match self {
            TopoSpec::Gnm {
                nodes,
                edges,
                max_weight,
                seed,
            } => Ok((
                format!("gnm-{nodes}-{edges}"),
                rbpc_topo::gnm_connected(*nodes, *edges, *max_weight, *seed),
            )),
            TopoSpec::Suite { scale, seed, case } => {
                let suite = standard_suite(*scale, *seed);
                let picked = suite
                    .into_iter()
                    .nth(*case)
                    .ok_or_else(|| format!("suite has no case #{case}"))?;
                Ok((picked.name, picked.graph))
            }
            TopoSpec::File { path } => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read topology {path}: {e}"))?;
                let graph = rbpc_topo::parse_edge_list(&text)
                    .map_err(|e| format!("cannot parse topology {path}: {e}"))?;
                Ok((path.clone(), graph))
            }
        }
    }

    fn to_json(&self) -> String {
        match self {
            TopoSpec::Gnm {
                nodes,
                edges,
                max_weight,
                seed,
            } => format!(
                "{{\"kind\":\"gnm\",\"nodes\":{nodes},\"edges\":{edges},\
                 \"max_weight\":{max_weight},\"seed\":{seed}}}"
            ),
            TopoSpec::Suite { scale, seed, case } => {
                let scale = match scale {
                    EvalScale::Quick => "quick",
                    EvalScale::Paper => "paper",
                };
                format!(
                    "{{\"kind\":\"suite\",\"scale\":\"{scale}\",\"seed\":{seed},\"case\":{case}}}"
                )
            }
            TopoSpec::File { path } => {
                format!("{{\"kind\":\"file\",\"path\":\"{}\"}}", json_escape(path))
            }
        }
    }

    fn from_json(v: &JsonValue) -> Result<TopoSpec, String> {
        let kind = v
            .get("kind")
            .and_then(|x| x.as_str())
            .ok_or("topo: missing `kind`")?;
        match kind {
            "gnm" => Ok(TopoSpec::Gnm {
                nodes: req_num(v, "nodes")? as usize,
                edges: req_num(v, "edges")? as usize,
                max_weight: req_num(v, "max_weight")? as u32,
                seed: req_num(v, "seed")?,
            }),
            "suite" => Ok(TopoSpec::Suite {
                scale: match v.get("scale").and_then(|x| x.as_str()) {
                    Some("quick") => EvalScale::Quick,
                    Some("paper") => EvalScale::Paper,
                    other => return Err(format!("topo: bad scale {other:?}")),
                },
                seed: req_num(v, "seed")?,
                case: req_num(v, "case")? as usize,
            }),
            "file" => Ok(TopoSpec::File {
                path: v
                    .get("path")
                    .and_then(|x| x.as_str())
                    .ok_or("topo: missing `path`")?
                    .to_string(),
            }),
            other => Err(format!("topo: unknown kind `{other}`")),
        }
    }
}

/// The incident file's header line: everything needed to rebuild the
/// run's environment, plus why the ring was frozen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentHeader {
    /// Run correlation id (matches the run's JSONL window lines).
    pub run_id: String,
    /// The load test's seed — feeds the cost model's weight perturbation,
    /// so it MUST match for plan hashes to reproduce.
    pub seed: u64,
    /// Cost metric the oracle was built with.
    pub metric: Metric,
    /// Topology recipe.
    pub topo: TopoSpec,
    /// Window tick at which the SLO watchdog tripped.
    pub breach_tick: u64,
    /// The watchdog's breach reason.
    pub breach_reason: String,
    /// Number of record lines that follow the header.
    pub records: usize,
}

impl IncidentHeader {
    /// The header as one JSON object (a JSONL line, no trailing newline).
    pub fn to_json(&self) -> String {
        let metric = match self.metric {
            Metric::Weighted => "weighted",
            Metric::Unweighted => "unweighted",
        };
        format!(
            "{{\"incident\":\"{INCIDENT_FORMAT}\",\"run_id\":\"{}\",\"seed\":{},\
             \"metric\":\"{metric}\",\"topo\":{},\"breach_tick\":{},\
             \"breach_reason\":\"{}\",\"records\":{}}}",
            json_escape(&self.run_id),
            self.seed,
            self.topo.to_json(),
            self.breach_tick,
            json_escape(&self.breach_reason),
            self.records,
        )
    }

    /// Parses a header back from its JSON object.
    ///
    /// # Errors
    ///
    /// Unknown format tag or any missing/ill-typed field.
    pub fn from_json(v: &JsonValue) -> Result<IncidentHeader, String> {
        let format = v
            .get("incident")
            .and_then(|x| x.as_str())
            .ok_or("header: missing `incident` format tag")?;
        if format != INCIDENT_FORMAT {
            return Err(format!("header: unsupported format `{format}`"));
        }
        Ok(IncidentHeader {
            run_id: v
                .get("run_id")
                .and_then(|x| x.as_str())
                .ok_or("header: missing `run_id`")?
                .to_string(),
            seed: req_num(v, "seed")?,
            metric: match v.get("metric").and_then(|x| x.as_str()) {
                Some("weighted") => Metric::Weighted,
                Some("unweighted") => Metric::Unweighted,
                other => return Err(format!("header: bad metric {other:?}")),
            },
            topo: TopoSpec::from_json(v.get("topo").ok_or("header: missing `topo`")?)?,
            breach_tick: req_num(v, "breach_tick")?,
            breach_reason: v
                .get("breach_reason")
                .and_then(|x| x.as_str())
                .unwrap_or_default()
                .to_string(),
            records: req_num(v, "records")? as usize,
        })
    }
}

fn req_num(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing numeric field `{key}`"))
}

/// Writes a complete incident file: the header line, then one record
/// line each.
///
/// # Errors
///
/// I/O errors from `out`.
pub fn write_incident<W: Write>(
    out: &mut W,
    header: &IncidentHeader,
    records: &[FlightRecord],
) -> io::Result<()> {
    writeln!(out, "{}", header.to_json())?;
    for rec in records {
        writeln!(out, "{}", rec.to_json())?;
    }
    out.flush()
}

/// Parses an incident file's text back into header + records.
///
/// # Errors
///
/// An empty file, malformed JSON, missing fields, or a record count that
/// disagrees with the header.
pub fn parse_incident(text: &str) -> Result<(IncidentHeader, Vec<FlightRecord>), String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or("incident file is empty")?;
    let header = IncidentHeader::from_json(
        &json::parse(header_line).map_err(|e| format!("header line: {e}"))?,
    )?;
    let mut records = Vec::with_capacity(header.records);
    for (i, line) in lines.enumerate() {
        let v = json::parse(line).map_err(|e| format!("record line {}: {e}", i + 1))?;
        records
            .push(FlightRecord::from_json(&v).map_err(|e| format!("record line {}: {e}", i + 1))?);
    }
    if records.len() != header.records {
        return Err(format!(
            "header promises {} records, file has {}",
            header.records,
            records.len()
        ));
    }
    Ok((header, records))
}

/// The outcome of replaying one incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Run id from the incident header.
    pub run_id: String,
    /// Topology name the recipe rebuilt.
    pub topo_name: String,
    /// Restore records re-executed.
    pub replayed: usize,
    /// Re-executed records whose outcome matched bit for bit.
    pub matched: usize,
    /// Human-readable divergence descriptions (empty on a clean replay).
    pub mismatches: Vec<String>,
    /// Theorem-bound validations performed during the replay.
    pub bounds_checked: usize,
}

impl ReplayReport {
    /// True when every replayed record matched and every validator held.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Rebuilds a [`FailureSet`] from a record's id lists.
fn failure_set_of(record: &FlightRecord) -> FailureSet {
    let mut set = FailureSet::new();
    for &e in &record.failed_edges {
        set.fail_edge(EdgeId::new(e as usize));
    }
    for &n in &record.failed_nodes {
        set.fail_node(NodeId::new(n as usize));
    }
    set
}

/// Replays an incident: rebuilds the topology and oracle from the
/// header, re-executes every [`FlightKind::Restore`] record, and
/// compares outcome, segment count, and plan hash against the recording.
/// Restore records are also cross-checked against the recorded
/// [`FlightKind::StormWindow`] schedule for their tick, and every
/// successful replay under an edge-only failure set is validated against
/// the Theorem 2 stack bound — the validators the always-on hot path
/// compiles out in release builds run unconditionally here.
///
/// Latency fields are ignored: they are the one nondeterministic part of
/// a record.
///
/// # Errors
///
/// Topology rebuild failures. Divergence is *data*, not an error — check
/// [`ReplayReport::is_clean`].
pub fn replay_incident(
    header: &IncidentHeader,
    records: &[FlightRecord],
    threads: usize,
) -> Result<ReplayReport, String> {
    let (topo_name, graph) = header.topo.build()?;
    let oracle = AnyOracle::for_graph_threads(
        graph,
        CostModel::new(header.metric, header.seed),
        threads.max(1),
    );
    let restorer = Restorer::new(&oracle);

    // The recorded failure schedule, by window tick.
    let storm: BTreeMap<u64, &Vec<u64>> = records
        .iter()
        .filter(|r| r.kind == FlightKind::StormWindow)
        .map(|r| (r.tick, &r.failed_edges))
        .collect();

    let mut report = ReplayReport {
        run_id: header.run_id.clone(),
        topo_name,
        replayed: 0,
        matched: 0,
        mismatches: Vec::new(),
        bounds_checked: 0,
    };
    for rec in records.iter().filter(|r| r.kind == FlightKind::Restore) {
        report.replayed += 1;
        let tag = format!(
            "seq {} (window {}, {} -> {})",
            rec.seq, rec.tick, rec.src, rec.dst
        );
        if let Some(scheduled) = storm.get(&rec.tick) {
            if rec.failed_nodes.is_empty() && &&rec.failed_edges != scheduled {
                report.mismatches.push(format!(
                    "{tag}: failure set {:?} disagrees with the recorded storm schedule {:?}",
                    rec.failed_edges, scheduled
                ));
                continue;
            }
        }
        let failures = failure_set_of(rec);
        let replayed = restorer.restore(
            NodeId::new(rec.src as usize),
            NodeId::new(rec.dst as usize),
            &failures,
        );
        match (rec.ok, replayed) {
            (true, Ok(r)) => {
                // Validators on: re-check the paper's bound explicitly
                // (release builds compile the hot-path debug_assert out).
                if rec.failed_nodes.is_empty() {
                    report.bounds_checked += 1;
                    if let Err(e) = r
                        .concatenation
                        .validate_bounds(failures.failed_edge_count())
                    {
                        report
                            .mismatches
                            .push(format!("{tag}: Theorem 2 bound violated on replay: {e}"));
                        continue;
                    }
                }
                let (seg, hash) = (r.concatenation.len() as u64, r.plan_hash());
                if seg != rec.segments || hash != rec.plan_hash {
                    report.mismatches.push(format!(
                        "{tag}: plan diverged — recorded {} segments hash {:016x}, \
                         replayed {seg} segments hash {hash:016x}",
                        rec.segments, rec.plan_hash
                    ));
                    continue;
                }
                report.matched += 1;
            }
            (false, Err(_)) => report.matched += 1,
            (true, Err(e)) => report
                .mismatches
                .push(format!("{tag}: recorded success, replay failed: {e}")),
            (false, Ok(_)) => report.mismatches.push(format!(
                "{tag}: recorded failure ({}), replay succeeded",
                rec.detail
            )),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_core::BasePathOracle;

    fn header() -> IncidentHeader {
        IncidentHeader {
            run_id: "00c0ffee00c0ffee".to_string(),
            seed: 7,
            metric: Metric::Weighted,
            topo: TopoSpec::Gnm {
                nodes: 30,
                edges: 80,
                max_weight: 9,
                seed: 7,
            },
            breach_tick: 2,
            breach_reason: "p99 5000ns > budget 1000ns".to_string(),
            records: 0,
        }
    }

    #[test]
    fn header_round_trips() {
        for topo in [
            TopoSpec::Gnm {
                nodes: 60,
                edges: 180,
                max_weight: 10,
                seed: 1,
            },
            TopoSpec::Suite {
                scale: EvalScale::Quick,
                seed: 3,
                case: 1,
            },
            TopoSpec::File {
                path: "nets/isp \"a\".txt".to_string(),
            },
        ] {
            let h = IncidentHeader { topo, ..header() };
            let parsed =
                IncidentHeader::from_json(&json::parse(&h.to_json()).expect("header parses"))
                    .expect("header fields parse");
            assert_eq!(parsed, h);
        }
    }

    #[test]
    fn incident_file_round_trips() {
        let mut rec = FlightRecord::new(FlightKind::Restore);
        rec.tick = 2;
        rec.src = 1;
        rec.dst = 5;
        rec.failed_edges = vec![3, 9];
        rec.segments = 2;
        rec.plan_hash = 0x1234_5678_9abc_def0;
        let h = IncidentHeader {
            records: 1,
            ..header()
        };
        let mut buf = Vec::new();
        write_incident(&mut buf, &h, std::slice::from_ref(&rec)).expect("write to Vec");
        let text = String::from_utf8(buf).expect("utf8");
        let (parsed_h, parsed_recs) = parse_incident(&text).expect("file parses");
        assert_eq!(parsed_h, h);
        assert_eq!(parsed_recs, vec![rec]);
        // A count mismatch is rejected.
        let trimmed = text.lines().next().expect("header line").to_string();
        assert!(parse_incident(&trimmed).unwrap_err().contains("promises"));
    }

    #[test]
    fn replay_matches_a_real_recording() {
        // Record a couple of real restores by hand, then replay them.
        let h = header();
        let (_, graph) = h.topo.build().expect("gnm builds");
        let oracle = AnyOracle::for_graph_threads(graph, CostModel::new(h.metric, h.seed), 1);
        let restorer = Restorer::new(&oracle);
        let base = oracle
            .base_path(NodeId::new(0), NodeId::new(20))
            .expect("connected");
        let failures = FailureSet::of_edge(base.edges()[0]);
        let r = restorer
            .restore(NodeId::new(0), NodeId::new(20), &failures)
            .expect("restorable");
        let mut rec = FlightRecord::new(FlightKind::Restore);
        rec.tick = 0;
        rec.src = 0;
        rec.dst = 20;
        rec.failed_edges = vec![base.edges()[0].index() as u64];
        rec.segments = r.concatenation.len() as u64;
        rec.plan_hash = r.plan_hash();

        let clean = replay_incident(&h, std::slice::from_ref(&rec), 1).expect("replays");
        assert_eq!((clean.replayed, clean.matched), (1, 1));
        assert!(clean.is_clean());
        assert!(clean.bounds_checked >= 1);

        // Corrupt the recorded hash: replay must flag the divergence.
        rec.plan_hash ^= 1;
        let dirty = replay_incident(&h, std::slice::from_ref(&rec), 1).expect("replays");
        assert!(!dirty.is_clean());
        assert!(dirty.mismatches[0].contains("plan diverged"));
    }

    #[test]
    fn replay_cross_checks_the_storm_schedule() {
        let h = header();
        let mut storm = FlightRecord::new(FlightKind::StormWindow);
        storm.tick = 0;
        storm.failed_edges = vec![1, 2];
        let mut restore = FlightRecord::new(FlightKind::Restore);
        restore.tick = 0;
        restore.src = 0;
        restore.dst = 5;
        restore.failed_edges = vec![1, 3]; // disagrees with the schedule
        let report = replay_incident(&h, &[storm, restore], 1).expect("replays");
        assert_eq!(report.matched, 0);
        assert!(report.mismatches[0].contains("storm schedule"));
    }
}
