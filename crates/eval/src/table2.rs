//! Table 2: source-router RBPC under 1–2 link and router failures.
//!
//! For each sampled source–destination pair we enumerate failure events on
//! its base path (each link; each unordered pair of links; each interior
//! router; each unordered pair of interior routers), restore, and report:
//!
//! * **ILM stretch factor** — per router, the ILM entries needed by the
//!   base LSPs used in the experiment as a fraction of the entries explicit
//!   backup pre-provisioning would need (the same base LSPs plus one backup
//!   LSP per pair per failure event); min and average over routers. Concatenation segments add **no** numerator state: each
//!   base-path segment is exactly the canonical base LSP of its endpoints,
//!   already provisioned under all-pairs RBPC — only raw-edge segments
//!   (one-hop LSPs outside the base set) are charged;
//! * **average PC length** — mean number of concatenated pieces;
//! * **length stretch factor** — mean backup hop count over mean original
//!   hop count;
//! * **redundancy** — fraction of backup paths whose cost equals the
//!   original (an equal-cost alternative existed), plus (for the one-link
//!   block) the maximum shortest-path multiplicity over sampled sources.

use crate::format_table;
use rbpc_core::{BasePathOracle, Restorer, SegmentKind};
use rbpc_graph::{count_shortest_paths, splitmix64, FailureSet, NodeId};
use std::collections::HashMap;
use std::thread;

/// The four failure classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// Every single link of the base path fails (one at a time).
    OneLink,
    /// Every unordered pair of base-path links fails.
    TwoLinks,
    /// Every interior router of the base path fails.
    OneRouter,
    /// Every unordered pair of interior routers fails.
    TwoRouters,
}

impl FailureClass {
    /// All four classes, in the paper's order.
    pub fn all() -> [FailureClass; 4] {
        [
            FailureClass::OneLink,
            FailureClass::TwoLinks,
            FailureClass::OneRouter,
            FailureClass::TwoRouters,
        ]
    }

    /// The paper's block caption.
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::OneLink => "After one link failure",
            FailureClass::TwoLinks => "After two link failures",
            FailureClass::OneRouter => "After one router failure",
            FailureClass::TwoRouters => "After two router failures",
        }
    }

    /// The paper's theoretical `k` (a router failure counts per incident
    /// edge, so only link classes have a fixed `k`).
    pub fn k_edges(self) -> Option<usize> {
        match self {
            FailureClass::OneLink => Some(1),
            FailureClass::TwoLinks => Some(2),
            _ => None,
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Network name.
    pub network: String,
    /// Failure class of this block.
    pub class: FailureClass,
    /// Minimum ILM stretch factor over routers (fraction, not percent).
    pub min_ilm_sf: f64,
    /// Average ILM stretch factor over routers.
    pub avg_ilm_sf: f64,
    /// Average PC length.
    pub avg_pc_length: f64,
    /// Length stretch factor.
    pub length_sf: f64,
    /// Redundancy: fraction of backup paths with cost equal to original.
    pub redundancy: f64,
    /// Max shortest-path multiplicity over sampled sources (one-link block
    /// only, as in the paper).
    pub max_multiplicity: Option<u64>,
    /// Number of restoration events measured.
    pub events: usize,
    /// Events skipped because the failure disconnected the pair.
    pub skipped: usize,
}

#[derive(Hash, PartialEq, Eq, Clone, Copy)]
enum LspKey {
    /// Base LSP of an ordered pair.
    Pair(u32, u32),
    /// One-hop LSP over an edge, entered at a given endpoint.
    Edge(u32, u32),
    /// An explicit backup LSP: endpoints plus a failure-event hash (the
    /// explicit scheme provisions one backup per pair per failure event,
    /// indexed by the failure — the paper's "for each link … for each
    /// affected path establish a backup LSP").
    Backup(u32, u32, u64),
}

#[derive(Default)]
struct Acc {
    events: usize,
    skipped: usize,
    pc_sum: u64,
    backup_hops: u64,
    orig_hops: u64,
    preserved: usize,
    /// LSPs the RBPC scheme needs: key → routers on the LSP.
    rbpc: HashMap<LspKey, Vec<u32>>,
    /// LSPs explicit pre-provisioning needs.
    full: HashMap<LspKey, Vec<u32>>,
}

impl Acc {
    fn merge(&mut self, other: Acc) {
        self.events += other.events;
        self.skipped += other.skipped;
        self.pc_sum += other.pc_sum;
        self.backup_hops += other.backup_hops;
        self.orig_hops += other.orig_hops;
        self.preserved += other.preserved;
        self.rbpc.extend(other.rbpc);
        self.full.extend(other.full);
    }
}

fn routers_of(path: &rbpc_graph::Path) -> Vec<u32> {
    path.nodes().iter().map(|n| n.index() as u32).collect()
}

fn event_hash(failures: &FailureSet) -> u64 {
    let mut parts: Vec<u64> = failures
        .failed_edges()
        .map(|e| e.index() as u64)
        .chain(
            failures
                .failed_nodes()
                .map(|v| (1 << 40) | v.index() as u64),
        )
        .collect();
    parts.sort_unstable();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// Enumerates the failure events of `class` on a base path.
fn events_for(path: &rbpc_graph::Path, class: FailureClass) -> Vec<FailureSet> {
    let mut out = Vec::new();
    match class {
        FailureClass::OneLink => {
            for &e in path.edges() {
                out.push(FailureSet::of_edge(e));
            }
        }
        FailureClass::TwoLinks => {
            let es = path.edges();
            for i in 0..es.len() {
                for j in i + 1..es.len() {
                    out.push(FailureSet::of_edges([es[i], es[j]]));
                }
            }
        }
        FailureClass::OneRouter => {
            for &v in interior(path) {
                out.push(FailureSet::of_nodes([v.index()]));
            }
        }
        FailureClass::TwoRouters => {
            let vs = interior(path);
            for i in 0..vs.len() {
                for j in i + 1..vs.len() {
                    out.push(FailureSet::of_nodes([vs[i].index(), vs[j].index()]));
                }
            }
        }
    }
    out
}

fn interior(path: &rbpc_graph::Path) -> &[NodeId] {
    let nodes = path.nodes();
    if nodes.len() <= 2 {
        &[]
    } else {
        &nodes[1..nodes.len() - 1]
    }
}

/// Computes one block (network × failure class) of Table 2, parallelized
/// over the sampled pairs.
pub fn table2_block<O: BasePathOracle + Sync>(
    network: &str,
    oracle: &O,
    class: FailureClass,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> Table2Row {
    let threads = threads.max(1);
    let chunk = pairs.len().div_ceil(threads).max(1);
    let acc = thread::scope(|scope| {
        let mut handles = Vec::new();
        for slice in pairs.chunks(chunk) {
            handles.push(scope.spawn(move || run_pairs(oracle, class, slice)));
        }
        let mut total = Acc::default();
        for h in handles {
            total.merge(h.join().expect("worker panicked"));
        }
        total
    });

    // Per-router loads.
    let n = oracle.graph().node_count();
    let mut rbpc_load = vec![0u64; n];
    let mut full_load = vec![0u64; n];
    for routers in acc.rbpc.values() {
        for &r in routers {
            rbpc_load[r as usize] += 1;
        }
    }
    for routers in acc.full.values() {
        for &r in routers {
            full_load[r as usize] += 1;
        }
    }
    let mut min_sf = f64::INFINITY;
    let mut sum_sf = 0.0;
    let mut counted = 0usize;
    // Stretch is defined per router that actually holds base-LSP state
    // (the paper speaks of "one ILM table decreas[ing] by a factor of 8" —
    // a ratio of two nonzero table sizes).
    for r in 0..n {
        if full_load[r] > 0 && rbpc_load[r] > 0 {
            let sf = rbpc_load[r] as f64 / full_load[r] as f64;
            min_sf = min_sf.min(sf);
            sum_sf += sf;
            counted += 1;
        }
    }
    let (min_ilm_sf, avg_ilm_sf) = if counted == 0 {
        (0.0, 0.0)
    } else {
        (min_sf, sum_sf / counted as f64)
    };

    let max_multiplicity = if class == FailureClass::OneLink {
        let mut best = 0u64;
        let mut seen = std::collections::HashSet::new();
        for &(s, _) in pairs {
            if !seen.insert(s) {
                continue;
            }
            let counts = count_shortest_paths(oracle.graph(), oracle.cost_model().metric(), s);
            for (i, &c) in counts.iter().enumerate() {
                if i != s.index() {
                    best = best.max(c);
                }
            }
        }
        Some(best)
    } else {
        None
    };

    Table2Row {
        network: network.to_string(),
        class,
        min_ilm_sf,
        avg_ilm_sf,
        avg_pc_length: ratio(acc.pc_sum, acc.events as u64),
        length_sf: if acc.orig_hops == 0 {
            1.0
        } else {
            acc.backup_hops as f64 / acc.orig_hops as f64
        },
        redundancy: ratio(acc.preserved as u64, acc.events as u64),
        max_multiplicity,
        events: acc.events,
        skipped: acc.skipped,
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn run_pairs<O: BasePathOracle>(
    oracle: &O,
    class: FailureClass,
    pairs: &[(NodeId, NodeId)],
) -> Acc {
    let mut acc = Acc::default();
    let restorer = Restorer::new(oracle);
    for &(s, t) in pairs {
        let Some(base) = oracle.base_path(s, t) else {
            continue;
        };
        if base.is_trivial() {
            continue;
        }
        let key = LspKey::Pair(s.index() as u32, t.index() as u32);
        let routers = routers_of(&base);
        acc.rbpc.insert(key, routers.clone());
        acc.full.insert(key, routers);

        for failures in events_for(&base, class) {
            match restorer.restore(s, t, &failures) {
                Ok(r) => {
                    acc.events += 1;
                    acc.pc_sum += r.pc_length() as u64;
                    acc.backup_hops += u64::from(r.backup_cost.hops);
                    acc.orig_hops += u64::from(r.original_cost.hops);
                    if r.cost_preserved() {
                        acc.preserved += 1;
                    }
                    // RBPC segments are other pairs' base LSPs — already
                    // provisioned. Only raw edges outside the base set add
                    // ILM state (to both schemes symmetrically we charge
                    // them to RBPC alone, conservatively).
                    for seg in r.concatenation.segments() {
                        if seg.kind == SegmentKind::RawEdge {
                            let k = LspKey::Edge(
                                seg.path.edges()[0].index() as u32,
                                seg.source().index() as u32,
                            );
                            acc.rbpc.entry(k).or_insert_with(|| routers_of(&seg.path));
                        }
                    }
                    // Explicit scheme: one backup LSP per failure event.
                    let bkey =
                        LspKey::Backup(s.index() as u32, t.index() as u32, event_hash(&failures));
                    acc.full
                        .entry(bkey)
                        .or_insert_with(|| routers_of(&r.backup));
                }
                Err(_) => acc.skipped += 1,
            }
        }
    }
    acc
}

/// Renders Table 2 blocks in the paper's layout (one section per class).
pub fn render(rows: &[Table2Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for class in FailureClass::all() {
        let block: Vec<&Table2Row> = rows.iter().filter(|r| r.class == class).collect();
        if block.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{}.", class.label());
        let table = format_table(
            &[
                "Network",
                "min ILM s.f.",
                "avg ILM s.f.",
                "avg PC length",
                "Length s.f.",
                "Redundancy (max)",
                "events",
            ],
            &block
                .iter()
                .map(|r| {
                    let redundancy = match r.max_multiplicity {
                        Some(m) => format!("{:.1}% ({m})", 100.0 * r.redundancy),
                        None => format!("{:.1}%", 100.0 * r.redundancy),
                    };
                    vec![
                        r.network.clone(),
                        format!("{:.1}%", 100.0 * r.min_ilm_sf),
                        format!("{:.1}%", 100.0 * r.avg_ilm_sf),
                        format!("{:.2}", r.avg_pc_length),
                        format!("{:.2}", r.length_sf),
                        redundancy,
                        r.events.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        out.push_str(&table);
        out.push('\n');
    }
    out
}

/// Renders Table 2 rows as CSV.
pub fn to_csv(rows: &[Table2Row]) -> String {
    let mut csv = crate::Csv::new();
    csv.row([
        "class",
        "network",
        "min_ilm_sf",
        "avg_ilm_sf",
        "avg_pc_length",
        "length_sf",
        "redundancy",
        "max_multiplicity",
        "events",
        "skipped",
    ]);
    for r in rows {
        csv.row([
            format!("{:?}", r.class),
            r.network.clone(),
            format!("{:.4}", r.min_ilm_sf),
            format!("{:.4}", r.avg_ilm_sf),
            format!("{:.4}", r.avg_pc_length),
            format!("{:.4}", r.length_sf),
            format!("{:.4}", r.redundancy),
            r.max_multiplicity
                .map(|m| m.to_string())
                .unwrap_or_default(),
            r.events.to_string(),
            r.skipped.to_string(),
        ]);
    }
    csv.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample_pairs, standard_suite, EvalScale};
    use rbpc_core::DenseBasePaths;
    use rbpc_graph::{CostModel, Metric};
    use rbpc_topo::gnm_connected;

    fn small_oracle() -> DenseBasePaths {
        let g = gnm_connected(30, 70, 7, 4);
        DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 4))
    }

    #[test]
    fn one_link_block_shape() {
        let oracle = small_oracle();
        let pairs = sample_pairs(oracle.graph(), 20, 1);
        let row = table2_block("test", &oracle, FailureClass::OneLink, &pairs, 2);
        assert!(row.events > 0);
        // Theorem 2 with k = 1: PC length in [1, 3].
        assert!(row.avg_pc_length >= 1.0 && row.avg_pc_length <= 3.0);
        assert!(row.length_sf >= 1.0);
        assert!(row.min_ilm_sf >= 0.0 && row.min_ilm_sf <= 1.0);
        assert!(row.avg_ilm_sf >= row.min_ilm_sf);
        // Base state is a strict subset of base + backups.
        assert!(row.avg_ilm_sf < 1.0);
        assert!((0.0..=1.0).contains(&row.redundancy));
        assert!(row.max_multiplicity.is_some());
    }

    #[test]
    fn two_links_use_more_pieces() {
        let oracle = small_oracle();
        let pairs = sample_pairs(oracle.graph(), 20, 2);
        let one = table2_block("t", &oracle, FailureClass::OneLink, &pairs, 2);
        let two = table2_block("t", &oracle, FailureClass::TwoLinks, &pairs, 2);
        assert!(two.avg_pc_length >= one.avg_pc_length - 0.2);
        // On short paths C(len, 2) can undercut len, so only sanity-check
        // the event count; ISP-scale monotonicity lives in the integration
        // tests.
        assert!(two.events > 0);
        assert!(two.avg_ilm_sf < 1.0);
        assert!(two.max_multiplicity.is_none());
    }

    #[test]
    fn router_classes_run() {
        let oracle = small_oracle();
        let pairs = sample_pairs(oracle.graph(), 15, 3);
        for class in [FailureClass::OneRouter, FailureClass::TwoRouters] {
            let row = table2_block("t", &oracle, class, &pairs, 3);
            // Some events exist as long as some base path has ≥ 2 hops.
            assert!(row.events + row.skipped > 0, "{class:?}");
            if row.events > 0 {
                assert!(row.avg_pc_length >= 1.0);
            }
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let oracle = small_oracle();
        let pairs = sample_pairs(oracle.graph(), 16, 5);
        let serial = table2_block("t", &oracle, FailureClass::OneLink, &pairs, 1);
        let parallel = table2_block("t", &oracle, FailureClass::OneLink, &pairs, 4);
        assert_eq!(serial.events, parallel.events);
        assert!((serial.avg_pc_length - parallel.avg_pc_length).abs() < 1e-12);
        assert!((serial.avg_ilm_sf - parallel.avg_ilm_sf).abs() < 1e-12);
    }

    #[test]
    fn events_enumeration_counts() {
        let oracle = small_oracle();
        let base = {
            use rbpc_core::BasePathOracle as _;
            oracle.base_path(0.into(), 29.into()).unwrap()
        };
        let h = base.hop_count();
        assert_eq!(events_for(&base, FailureClass::OneLink).len(), h);
        assert_eq!(
            events_for(&base, FailureClass::TwoLinks).len(),
            h * (h - 1) / 2
        );
        let interior = h.saturating_sub(1);
        assert_eq!(events_for(&base, FailureClass::OneRouter).len(), interior);
        assert_eq!(
            events_for(&base, FailureClass::TwoRouters).len(),
            interior * interior.saturating_sub(1) / 2
        );
    }

    #[test]
    fn csv_has_header_and_rows() {
        let oracle = small_oracle();
        let pairs = sample_pairs(oracle.graph(), 10, 1);
        let row = table2_block("net", &oracle, FailureClass::OneLink, &pairs, 2);
        let csv = to_csv(&[row]);
        assert!(csv.starts_with("class,network,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("OneLink"));
    }

    #[test]
    fn renders_blocks() {
        let suite = standard_suite(EvalScale::Quick, 1);
        let oracle = suite[0].oracle(1);
        let pairs = sample_pairs(&suite[0].graph, 8, 1);
        let row = table2_block(&suite[0].name, &oracle, FailureClass::OneLink, &pairs, 2);
        let out = render(&[row]);
        assert!(out.contains("After one link failure"));
        assert!(out.contains("ISP, Weighted"));
    }
}
