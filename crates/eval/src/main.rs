//! `rbpc-eval` — regenerate the RBPC paper's tables and figures.
//!
//! ```text
//! rbpc-eval <table1|table2|table3|figure10|latency|ablation|all>
//!           [--scale quick|paper] [--seed N] [--threads N] [--csv DIR]
//!           [--topology FILE --metric weighted|unweighted]
//!           [--metrics-out FILE] [--events-out FILE]
//! ```
//!
//! With `--csv DIR`, each artifact is additionally written as a CSV file
//! into `DIR` (created if missing). With `--topology FILE` the standard
//! suite is replaced by a single custom network loaded from an edge-list
//! file (see `rbpc_topo::parse_edge_list` for the format).
//!
//! Observability: `--events-out FILE` streams structured events (one JSON
//! object per line) from the instrumented hot paths while the suite runs;
//! `--metrics-out FILE` writes the final counter/histogram snapshot as one
//! JSON object. A human-readable metrics summary is printed to stderr at
//! the end whenever any instrumentation fired.

use rbpc_eval::{
    figure10, sample_pairs, standard_suite, table1, table2_block, table3, EvalScale, FailureClass,
};
use rbpc_sim::{outage_summary, LatencyModel, Scheme};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    scale: EvalScale,
    seed: u64,
    threads: usize,
    csv_dir: Option<PathBuf>,
    topology: Option<PathBuf>,
    metric: rbpc_graph::Metric,
    metrics_out: Option<PathBuf>,
    events_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "all".to_string());
    let mut scale = EvalScale::Quick;
    let mut seed = 1u64;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut csv_dir = None;
    let mut topology = None;
    let mut metric = rbpc_graph::Metric::Weighted;
    let mut metrics_out = None;
    let mut events_out = None;
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => {
                scale = match value()?.as_str() {
                    "quick" => EvalScale::Quick,
                    "paper" => EvalScale::Paper,
                    other => return Err(format!("unknown scale `{other}`")),
                }
            }
            "--seed" => seed = value()?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--threads" => threads = value()?.parse().map_err(|e| format!("bad threads: {e}"))?,
            "--csv" => csv_dir = Some(PathBuf::from(value()?)),
            "--topology" => topology = Some(PathBuf::from(value()?)),
            "--metrics-out" => metrics_out = Some(PathBuf::from(value()?)),
            "--events-out" => events_out = Some(PathBuf::from(value()?)),
            "--metric" => {
                metric = match value()?.as_str() {
                    "weighted" => rbpc_graph::Metric::Weighted,
                    "unweighted" => rbpc_graph::Metric::Unweighted,
                    other => return Err(format!("unknown metric `{other}`")),
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args {
        command,
        scale,
        seed,
        threads,
        csv_dir,
        topology,
        metric,
        metrics_out,
        events_out,
    })
}

fn load_custom_suite(
    path: &PathBuf,
    metric: rbpc_graph::Metric,
) -> Result<Vec<rbpc_eval::NetworkCase>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let graph = rbpc_topo::parse_edge_list(&text)
        .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "custom".to_string());
    let samples = if graph.node_count() <= 600 { 200 } else { 40 };
    Ok(vec![rbpc_eval::NetworkCase {
        name,
        graph,
        metric,
        samples,
    }])
}

fn write_csv(dir: &Option<PathBuf>, name: &str, contents: &str) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: rbpc-eval <table1|table2|table3|figure10|latency|ablation|all> \
                 [--scale quick|paper] [--seed N] [--threads N] [--csv DIR] \
                 [--topology FILE --metric weighted|unweighted] \
                 [--metrics-out FILE] [--events-out FILE]"
            );
            return ExitCode::FAILURE;
        }
    };
    let scale_name = match args.scale {
        EvalScale::Quick => "quick",
        EvalScale::Paper => "paper",
    };
    eprintln!(
        "# rbpc-eval {} --scale {scale_name} --seed {} --threads {}",
        args.command, args.seed, args.threads
    );
    if let Some(path) = &args.events_out {
        match rbpc_obs::JsonlSink::create(path) {
            Ok(sink) => {
                let _ = rbpc_obs::set_event_sink(Some(sink));
            }
            Err(e) => {
                eprintln!("error: cannot create {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let suite = match &args.topology {
        Some(path) => {
            eprintln!("# loading topology {}…", path.display());
            match load_custom_suite(path, args.metric) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            eprintln!("# generating topologies…");
            standard_suite(args.scale, args.seed)
        }
    };

    let run_t1 = || {
        println!("== Table 1: networks ==");
        let rows = table1(&suite);
        println!("{}", rbpc_eval::table1::render(&rows));
        write_csv(
            &args.csv_dir,
            "table1.csv",
            &rbpc_eval::table1::to_csv(&rows),
        );
    };
    let run_t2 = || {
        println!("== Table 2: source-router RBPC ==");
        let mut rows = Vec::new();
        for class in FailureClass::all() {
            for case in &suite {
                eprintln!("#   table2: {} / {}", case.name, class.label());
                let oracle = case.oracle(args.seed);
                let pairs = sample_pairs(&case.graph, case.samples, args.seed);
                rows.push(table2_block(
                    &case.name,
                    &oracle,
                    class,
                    &pairs,
                    args.threads,
                ));
            }
        }
        println!("{}", rbpc_eval::table2::render(&rows));
        write_csv(
            &args.csv_dir,
            "table2.csv",
            &rbpc_eval::table2::to_csv(&rows),
        );
    };
    let run_t3 = || {
        println!("== Table 3: edge bypass hop counts ==");
        let mut hists = Vec::new();
        for case in &suite {
            eprintln!("#   table3: {}", case.name);
            hists.push(table3(
                &case.name,
                &case.graph,
                case.metric,
                args.seed,
                args.threads,
            ));
        }
        println!("{}", rbpc_eval::table3::render(&hists));
        write_csv(
            &args.csv_dir,
            "table3.csv",
            &rbpc_eval::table3::to_csv(&hists),
        );
    };
    let run_f10 = || {
        println!("== Figure 10: local RBPC stretch (weighted ISP) ==");
        let case = &suite[0];
        let oracle = case.oracle(args.seed);
        let pairs = sample_pairs(&case.graph, case.samples, args.seed);
        let fig = figure10(&oracle, &pairs, args.threads);
        println!("{}", rbpc_eval::figure10::render(&fig));
        write_csv(
            &args.csv_dir,
            "figure10.csv",
            &rbpc_eval::figure10::to_csv(&fig),
        );
    };
    let run_latency = || {
        println!("== Extension: restoration latency per scheme (weighted ISP) ==");
        let case = &suite[0];
        let oracle = case.oracle(args.seed);
        let pairs = sample_pairs(&case.graph, case.samples, args.seed);
        let model = LatencyModel::default();
        let mut csv = rbpc_eval::Csv::new();
        csv.row(["scheme", "events", "unrestorable", "mean_us", "max_us"]);
        for scheme in Scheme::all() {
            let s = outage_summary(&oracle, &model, &pairs, scheme);
            println!(
                "{:<18} mean outage {:>8.1} ms   max {:>8.1} ms   ({} events, {} unrestorable)",
                format!("{:?}", s.scheme),
                s.mean_us / 1000.0,
                s.max_us as f64 / 1000.0,
                s.events,
                s.unrestorable,
            );
            csv.row([
                format!("{:?}", s.scheme),
                s.events.to_string(),
                s.unrestorable.to_string(),
                format!("{:.1}", s.mean_us),
                s.max_us.to_string(),
            ]);
        }
        println!();
        write_csv(&args.csv_dir, "latency.csv", csv.as_str());
    };
    let run_ablation = || {
        println!("== Extension: ablations ==");
        // Footprint on a scaled-down ISP (all-pairs state is quadratic).
        let small = rbpc_topo::isp_topology(
            rbpc_topo::IspParams {
                pops: 8,
                core_routers: 6,
                ..rbpc_topo::IspParams::default()
            },
            args.seed,
        )
        .graph;
        let small_oracle = rbpc_eval::AnyOracle::for_graph(
            small.clone(),
            rbpc_graph::CostModel::new(rbpc_graph::Metric::Weighted, args.seed),
        );
        let footprint = rbpc_eval::provisioning_footprint(&small_oracle);
        let case = &suite[0];
        let oracle = case.oracle(args.seed);
        let pairs = sample_pairs(&case.graph, case.samples.min(60), args.seed);
        let ksp = rbpc_eval::ksp_comparison(&oracle, &pairs, &[1, 2, 3, 4]);
        let agreement = rbpc_eval::decomposition_agreement(&oracle, &pairs);
        let coverage = rbpc_eval::protection_coverage(&case.graph);
        println!(
            "{}",
            rbpc_eval::ablation::render(&footprint, &ksp, &agreement, &coverage)
        );
    };

    match args.command.as_str() {
        "table1" => run_t1(),
        "table2" => run_t2(),
        "table3" => run_t3(),
        "figure10" => run_f10(),
        "latency" => run_latency(),
        "ablation" => run_ablation(),
        "all" => {
            run_t1();
            run_t2();
            run_t3();
            run_f10();
            run_latency();
            run_ablation();
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            return ExitCode::FAILURE;
        }
    }
    finish_observability(&args);
    ExitCode::SUCCESS
}

/// Drains the event sink and dumps the metric registry: JSON to
/// `--metrics-out` if given, and a human-readable summary to stderr.
fn finish_observability(args: &Args) {
    // Dropping the previous sink flushes the JSONL file.
    drop(rbpc_obs::set_event_sink(None));
    if let Some(path) = &args.events_out {
        eprintln!("# wrote {}", path.display());
    }
    let snap = rbpc_obs::Registry::global_snapshot();
    if let Some(path) = &args.metrics_out {
        let mut json = snap.to_json();
        json.push('\n');
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("# wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
    if !snap.is_empty() {
        eprintln!();
        eprintln!("== metrics summary ==");
        eprint!("{}", snap.render_table());
    }
}
