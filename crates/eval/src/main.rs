//! `rbpc-eval` — regenerate the RBPC paper's tables and figures.
//!
//! ```text
//! rbpc-eval <table1|table2|table3|figure10|latency|ablation|trace|validate|all>
//!           [--scale quick|paper] [--seed N] [--threads N] [--csv DIR]
//!           [--topology FILE --metric weighted|unweighted]
//!           [--metrics-out FILE] [--events-out FILE]
//!           [--trace-out FILE] [--failures K]
//! ```
//!
//! With `--csv DIR`, each artifact is additionally written as a CSV file
//! into `DIR` (created if missing). With `--topology FILE` the standard
//! suite is replaced by a single custom network loaded from an edge-list
//! file (see `rbpc_topo::parse_edge_list` for the format).
//!
//! Observability: `--events-out FILE` streams structured events (one JSON
//! object per line) from the instrumented hot paths while the suite runs;
//! `--metrics-out FILE` writes the final counter/histogram snapshot as one
//! JSON object. A human-readable metrics summary is printed to stderr at
//! the end whenever any instrumentation fired.
//!
//! Tracing: `--trace-out FILE` collects causal spans from every restoration
//! performed while the suite runs and writes them as Chrome `trace_event`
//! JSON, loadable in `ui.perfetto.dev`. The `trace` command injects a
//! multi-failure scenario (`--failures K`, default 2) into the first suite
//! network and prints one human-readable span tree per affected LSP and
//! scheme, with the critical path marked `*`.
//!
//! Live telemetry: the `loadtest` command drives paced restore queries
//! under a deterministic failure storm, emitting one JSONL window report
//! per line (latency quantiles, restored/dropped, concatenation depth)
//! plus a final summary table; `--serve ADDR` exposes `/metrics` +
//! `/healthz` in Prometheus text format while any command runs, and
//! `--profile-out FILE` samples the `obs_span!` stacks into a
//! collapsed-stack (flamegraph) file.
//!
//! Validation: the `validate` command runs the runtime half of the
//! `rbpc-lint` invariant layer over every suite network — CSR structural
//! invariants ([`CsrGraph::validate`]), shortest-path-tree optimality and
//! uniqueness ([`CsrGraph::validate_tree`], healthy and under random
//! failure masks), and the Theorem 1/2 label-stack bounds on real
//! restorations (`Concatenation::validate_bounds`) — and exits non-zero
//! if any invariant is violated.

use rbpc_core::{BasePathOracle, Restorer};
use rbpc_eval::{
    figure10, sample_pairs, standard_suite, table1, table2_block, table3, EvalScale, FailureClass,
    IncidentSink, LoadtestConfig, TopoSpec,
};
use rbpc_graph::{
    CostModel, CsrGraph, DetRng, DijkstraScratch, EdgeId, FailureMask, FailureSet, NodeId,
};
use rbpc_sim::{
    churn_sequence, churn_under_threads, outage_summary_threads, outage_under, LatencyModel, Scheme,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    scale: EvalScale,
    seed: u64,
    threads: usize,
    csv_dir: Option<PathBuf>,
    topology: Option<PathBuf>,
    metric: rbpc_graph::Metric,
    metrics_out: Option<PathBuf>,
    events_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    failures: usize,
    events: usize,
    windows: Option<u64>,
    window_ms: Option<u64>,
    queries: Option<usize>,
    out: Option<PathBuf>,
    serve: Option<String>,
    smoke: bool,
    profile_out: Option<PathBuf>,
    incident_out: Option<PathBuf>,
    slo_p99_us: Option<u64>,
    slo_drop_pm: Option<u64>,
    /// Positional incident file for the `replay` command.
    incident_path: Option<PathBuf>,
    max_resident_spts: Option<usize>,
    shard_size: Option<usize>,
    full_sweep: bool,
    dests_per_source: Option<usize>,
}

fn usage() -> &'static str {
    "usage: rbpc-eval <table1|table2|table3|figure10|latency|ablation|churn|trace|loadtest|paper-scale|replay|validate|all>\n\
     \x20         [--scale quick|paper] [--seed N] [--threads N] [--csv DIR]\n\
     \x20         [--topology FILE --metric weighted|unweighted]\n\
     \x20         [--metrics-out FILE] [--events-out FILE] [--profile-out FILE]\n\
     \x20         [--trace-out FILE] [--failures K] [--events N]\n\
     \x20         [--windows N] [--window-ms MS] [--queries N] [--out FILE]\n\
     \x20         [--serve ADDR] [--smoke] [--incident-out FILE]\n\
     \x20         [--slo-p99-us N] [--slo-drop-pm N]\n\
     \x20         [--max-resident-spts N] [--shard-size N] [--full-sweep]\n\
     \x20         [--dests-per-source N]\n\
     \n\
     commands:\n\
     \x20 table1    network suite summary (Table 1)\n\
     \x20 table2    source-router RBPC restorability/stretch (Table 2)\n\
     \x20 table3    edge-bypass hop counts (Table 3)\n\
     \x20 figure10  local RBPC stretch histogram (Figure 10)\n\
     \x20 latency   modeled restoration latency per scheme\n\
     \x20 ablation  provisioning footprint, k-SP comparison, coverage\n\
     \x20 churn     failure/recovery sequence, restorations per event\n\
     \x20 trace     inject a K-link failure and print per-LSP span trees\n\
     \x20 loadtest  paced restore queries under a deterministic failure\n\
     \x20           storm; one JSONL window report per line, live\n\
     \x20 paper-scale  provision and restore on the paper's 40 377-node\n\
     \x20           Internet router map through the implicit sharded\n\
     \x20           store, under a stated memory budget: the 40-sample\n\
     \x20           Table 2 protocol, plus — with --full-sweep — every\n\
     \x20           source restored with sampled destinations, one JSONL\n\
     \x20           window line per source block; --smoke uses the quick\n\
     \x20           1 500-node map (see docs/SCALE.md)\n\
     \x20 replay    re-execute a frozen incident file deterministically:\n\
     \x20           rbpc-eval replay <incident.jsonl> — rebuilds the\n\
     \x20           topology, re-runs every recorded restore with\n\
     \x20           validators on, exits non-zero on plan-hash divergence\n\
     \x20 validate  machine-check structural invariants and theory bounds\n\
     \x20           on every suite network (non-zero exit on violation)\n\
     \x20 all       every artifact above except `churn`, `trace`,\n\
     \x20           `loadtest`, `validate`\n\
     \n\
     provisioning:\n\
     \x20 --threads N       worker threads for dense oracle provisioning and\n\
     \x20                   per-link failover planning (default: all cores);\n\
     \x20                   results are identical for every thread count\n\
     \n\
     churn & tracing:\n\
     \x20 --trace-out FILE  write Chrome trace_event JSON of every\n\
     \x20                   restoration (open in ui.perfetto.dev)\n\
     \x20 --failures K      links the `trace` command fails simultaneously;\n\
     \x20                   also the `churn` concurrent-failure cap (default 2)\n\
     \x20 --events N        length of the `churn` event sequence (default 40)\n\
     \n\
     loadtest & telemetry:\n\
     \x20 --windows N       windows to drive (default 24; 6 with --smoke)\n\
     \x20 --window-ms MS    window length in ms (default 100; 5 with --smoke)\n\
     \x20 --queries N       restore queries per window (default 200; 25 smoke)\n\
     \x20 --out FILE        write the per-window JSONL there (default stdout)\n\
     \x20 --serve ADDR      serve /metrics + /healthz on ADDR while running,\n\
     \x20                   e.g. 127.0.0.1:9100 (needs the obs-net feature)\n\
     \x20 --smoke           tiny topology + short windows: sub-second CI run\n\
     \x20 --profile-out FILE  sample the span stacks of any command into a\n\
     \x20                   collapsed-stack (flamegraph) file\n\
     \n\
     paper-scale & sharded store:\n\
     \x20 --max-resident-spts N  residency budget in shortest-path trees\n\
     \x20                   (default 512 ≈ 0.74 GiB on the 40k map; the\n\
     \x20                   LRU evicts whole shards past it)\n\
     \x20 --shard-size N    sources per shard, built as one parallel\n\
     \x20                   batch (default 32)\n\
     \x20 --full-sweep      also visit every source shard by shard and\n\
     \x20                   restore sampled mid-path link failures —\n\
     \x20                   coverage the paper couldn't afford in 2001\n\
     \x20 --dests-per-source N  sampled destinations per source in the\n\
     \x20                   sweep (default 2)\n\
     \x20 --windows N       JSONL windows the sweep splits into (default 32)\n\
     \x20 --out FILE        sweep JSONL there (default stdout);\n\
     \x20                   --incident-out freezes the flight-recorder\n\
     \x20                   ring into a replayable incident at run end\n\
     \n\
     SLO watchdog & flight recorder (loadtest):\n\
     \x20 --slo-p99-us N    per-window p99 restore-latency budget in µs;\n\
     \x20                   the first window over budget freezes the\n\
     \x20                   flight recorder and flips /healthz to 503\n\
     \x20 --slo-drop-pm N   dropped-query budget per thousand attempts\n\
     \x20 --incident-out FILE  where a frozen incident (JSONL) goes; feed\n\
     \x20                   it back to `rbpc-eval replay`"
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "all".to_string());
    let mut scale = EvalScale::Quick;
    let mut seed = 1u64;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut csv_dir = None;
    let mut topology = None;
    let mut metric = rbpc_graph::Metric::Weighted;
    let mut metrics_out = None;
    let mut events_out = None;
    let mut trace_out = None;
    let mut failures = 2usize;
    let mut events = 40usize;
    let mut windows = None;
    let mut window_ms = None;
    let mut queries = None;
    let mut out = None;
    let mut serve = None;
    let mut smoke = false;
    let mut profile_out = None;
    let mut incident_out = None;
    let mut slo_p99_us = None;
    let mut slo_drop_pm = None;
    let mut incident_path = None;
    let mut max_resident_spts = None;
    let mut shard_size = None;
    let mut full_sweep = false;
    let mut dests_per_source = None;
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => {
                scale = match value()?.as_str() {
                    "quick" => EvalScale::Quick,
                    "paper" => EvalScale::Paper,
                    other => return Err(format!("unknown scale `{other}`")),
                }
            }
            "--seed" => seed = value()?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--threads" => threads = value()?.parse().map_err(|e| format!("bad threads: {e}"))?,
            "--csv" => csv_dir = Some(PathBuf::from(value()?)),
            "--topology" => topology = Some(PathBuf::from(value()?)),
            "--metrics-out" => metrics_out = Some(PathBuf::from(value()?)),
            "--events-out" => events_out = Some(PathBuf::from(value()?)),
            "--trace-out" => trace_out = Some(PathBuf::from(value()?)),
            "--failures" => {
                failures = value()?.parse().map_err(|e| format!("bad failures: {e}"))?;
                if failures == 0 {
                    return Err("--failures must be at least 1".to_string());
                }
            }
            "--events" => {
                events = value()?.parse().map_err(|e| format!("bad events: {e}"))?;
                if events == 0 {
                    return Err("--events must be at least 1".to_string());
                }
            }
            "--windows" => {
                let n: u64 = value()?.parse().map_err(|e| format!("bad windows: {e}"))?;
                if n == 0 {
                    return Err("--windows must be at least 1".to_string());
                }
                windows = Some(n);
            }
            "--window-ms" => {
                let ms: u64 = value()?
                    .parse()
                    .map_err(|e| format!("bad window-ms: {e}"))?;
                if ms == 0 {
                    return Err("--window-ms must be at least 1".to_string());
                }
                window_ms = Some(ms);
            }
            "--queries" => {
                let n: usize = value()?.parse().map_err(|e| format!("bad queries: {e}"))?;
                if n == 0 {
                    return Err("--queries must be at least 1".to_string());
                }
                queries = Some(n);
            }
            "--out" => out = Some(PathBuf::from(value()?)),
            "--serve" => serve = Some(value()?),
            "--smoke" => smoke = true,
            "--profile-out" => profile_out = Some(PathBuf::from(value()?)),
            "--incident-out" => incident_out = Some(PathBuf::from(value()?)),
            "--slo-p99-us" => {
                slo_p99_us = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("bad slo-p99-us: {e}"))?,
                )
            }
            "--slo-drop-pm" => {
                let pm: u64 = value()?
                    .parse()
                    .map_err(|e| format!("bad slo-drop-pm: {e}"))?;
                if pm > 1000 {
                    return Err("--slo-drop-pm is per mille (0..=1000)".to_string());
                }
                slo_drop_pm = Some(pm);
            }
            "--max-resident-spts" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|e| format!("bad max-resident-spts: {e}"))?;
                if n == 0 {
                    return Err("--max-resident-spts must be at least 1".to_string());
                }
                max_resident_spts = Some(n);
            }
            "--shard-size" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|e| format!("bad shard-size: {e}"))?;
                if n == 0 {
                    return Err("--shard-size must be at least 1".to_string());
                }
                shard_size = Some(n);
            }
            "--full-sweep" => full_sweep = true,
            "--dests-per-source" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|e| format!("bad dests-per-source: {e}"))?;
                if n == 0 {
                    return Err("--dests-per-source must be at least 1".to_string());
                }
                dests_per_source = Some(n);
            }
            "--metric" => {
                metric = match value()?.as_str() {
                    "weighted" => rbpc_graph::Metric::Weighted,
                    "unweighted" => rbpc_graph::Metric::Unweighted,
                    other => return Err(format!("unknown metric `{other}`")),
                }
            }
            // One positional operand: the incident file for `replay`.
            other if !other.starts_with("--") && incident_path.is_none() => {
                incident_path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args {
        command,
        scale,
        seed,
        threads,
        csv_dir,
        topology,
        metric,
        metrics_out,
        events_out,
        trace_out,
        failures,
        events,
        windows,
        window_ms,
        queries,
        out,
        serve,
        smoke,
        profile_out,
        incident_out,
        slo_p99_us,
        slo_drop_pm,
        incident_path,
        max_resident_spts,
        shard_size,
        full_sweep,
        dests_per_source,
    })
}

fn load_custom_suite(
    path: &PathBuf,
    metric: rbpc_graph::Metric,
) -> Result<Vec<rbpc_eval::NetworkCase>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let graph = rbpc_topo::parse_edge_list(&text)
        .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "custom".to_string());
    let samples = if graph.node_count() <= 600 { 200 } else { 40 };
    Ok(vec![rbpc_eval::NetworkCase {
        name,
        graph,
        metric,
        samples,
    }])
}

fn write_csv(dir: &Option<PathBuf>, name: &str, contents: &str) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let scale_name = match args.scale {
        EvalScale::Quick => "quick",
        EvalScale::Paper => "paper",
    };
    eprintln!(
        "# rbpc-eval {} --scale {scale_name} --seed {} --threads {}",
        args.command, args.seed, args.threads
    );
    // Replay runs with full tracing so an incident can be inspected in
    // perfetto via --trace-out on top of the hash checks.
    if args.trace_out.is_some() || args.command == "trace" || args.command == "replay" {
        rbpc_obs::start_tracing();
    }
    // Span-stack sampler: started before any work so provisioning and the
    // command body are both profiled; drained in `finish_observability`.
    let profiler = args
        .profile_out
        .as_ref()
        .map(|_| rbpc_obs::Profiler::start(std::time::Duration::from_micros(200)));
    if let Some(path) = &args.events_out {
        match rbpc_obs::JsonlSink::create(path) {
            Ok(sink) => {
                let _ = rbpc_obs::set_event_sink(Some(sink));
            }
            Err(e) => {
                eprintln!("error: cannot create {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    // `replay` derives its topology from the incident header, not the
    // suite — dispatch before topology generation.
    if args.command == "replay" {
        let outcome = run_replay(&args);
        finish_observability(&args, Vec::new(), profiler);
        return match outcome {
            Ok(0) => ExitCode::SUCCESS,
            Ok(_) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // `paper-scale` builds the Internet map itself (it is the only case
    // it needs) — dispatch before the full-suite generation too.
    if args.command == "paper-scale" {
        let outcome = run_paperscale_cmd(&args);
        finish_observability(&args, Vec::new(), profiler);
        return match outcome {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let suite = match &args.topology {
        Some(path) => {
            eprintln!("# loading topology {}…", path.display());
            match load_custom_suite(path, args.metric) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            eprintln!("# generating topologies…");
            standard_suite(args.scale, args.seed)
        }
    };

    let run_t1 = || {
        println!("== Table 1: networks ==");
        let rows = table1(&suite);
        println!("{}", rbpc_eval::table1::render(&rows));
        write_csv(
            &args.csv_dir,
            "table1.csv",
            &rbpc_eval::table1::to_csv(&rows),
        );
    };
    let run_t2 = || {
        println!("== Table 2: source-router RBPC ==");
        let mut rows = Vec::new();
        for class in FailureClass::all() {
            for case in &suite {
                eprintln!("#   table2: {} / {}", case.name, class.label());
                let oracle = case.oracle_threads(args.seed, args.threads);
                let pairs = sample_pairs(&case.graph, case.samples, args.seed);
                rows.push(table2_block(
                    &case.name,
                    &oracle,
                    class,
                    &pairs,
                    args.threads,
                ));
            }
        }
        println!("{}", rbpc_eval::table2::render(&rows));
        write_csv(
            &args.csv_dir,
            "table2.csv",
            &rbpc_eval::table2::to_csv(&rows),
        );
    };
    let run_t3 = || {
        println!("== Table 3: edge bypass hop counts ==");
        let mut hists = Vec::new();
        for case in &suite {
            eprintln!("#   table3: {}", case.name);
            hists.push(table3(
                &case.name,
                &case.graph,
                case.metric,
                args.seed,
                args.threads,
            ));
        }
        println!("{}", rbpc_eval::table3::render(&hists));
        write_csv(
            &args.csv_dir,
            "table3.csv",
            &rbpc_eval::table3::to_csv(&hists),
        );
    };
    let run_f10 = || {
        println!("== Figure 10: local RBPC stretch (weighted ISP) ==");
        let case = &suite[0];
        let oracle = case.oracle_threads(args.seed, args.threads);
        let pairs = sample_pairs(&case.graph, case.samples, args.seed);
        let fig = figure10(&oracle, &pairs, args.threads);
        println!("{}", rbpc_eval::figure10::render(&fig));
        write_csv(
            &args.csv_dir,
            "figure10.csv",
            &rbpc_eval::figure10::to_csv(&fig),
        );
    };
    let run_latency = || {
        println!("== Extension: restoration latency per scheme (weighted ISP) ==");
        let case = &suite[0];
        let oracle = case.oracle_threads(args.seed, args.threads);
        let pairs = sample_pairs(&case.graph, case.samples, args.seed);
        let model = LatencyModel::default();
        let mut csv = rbpc_eval::Csv::new();
        csv.row(["scheme", "events", "unrestorable", "mean_us", "max_us"]);
        for scheme in Scheme::all() {
            let s = outage_summary_threads(&oracle, &model, &pairs, scheme, args.threads);
            println!(
                "{:<18} mean outage {:>8.1} ms   max {:>8.1} ms   ({} events, {} unrestorable)",
                format!("{:?}", s.scheme),
                s.mean_us / 1000.0,
                s.max_us as f64 / 1000.0,
                s.events,
                s.unrestorable,
            );
            csv.row([
                format!("{:?}", s.scheme),
                s.events.to_string(),
                s.unrestorable.to_string(),
                format!("{:.1}", s.mean_us),
                s.max_us.to_string(),
            ]);
        }
        println!();
        write_csv(&args.csv_dir, "latency.csv", csv.as_str());
    };
    let run_ablation = || {
        println!("== Extension: ablations ==");
        // Footprint on a scaled-down ISP (all-pairs state is quadratic).
        let small = rbpc_topo::isp_topology(
            rbpc_topo::IspParams {
                pops: 8,
                core_routers: 6,
                ..rbpc_topo::IspParams::default()
            },
            args.seed,
        )
        .graph;
        let small_oracle = rbpc_eval::AnyOracle::for_graph_threads(
            small.clone(),
            rbpc_graph::CostModel::new(rbpc_graph::Metric::Weighted, args.seed),
            args.threads,
        );
        let footprint = rbpc_eval::provisioning_footprint(&small_oracle);
        let case = &suite[0];
        let oracle = case.oracle_threads(args.seed, args.threads);
        let pairs = sample_pairs(&case.graph, case.samples.min(60), args.seed);
        let ksp = rbpc_eval::ksp_comparison(&oracle, &pairs, &[1, 2, 3, 4]);
        let agreement = rbpc_eval::decomposition_agreement(&oracle, &pairs);
        let coverage = rbpc_eval::protection_coverage(&case.graph);
        println!(
            "{}",
            rbpc_eval::ablation::render(&footprint, &ksp, &agreement, &coverage)
        );
    };

    let run_churn = || {
        println!(
            "== Extension: churn — {} failure/recovery events on {} (≤{} concurrent) ==",
            args.events, suite[0].name, args.failures
        );
        let case = &suite[0];
        let oracle = case.oracle_threads(args.seed, args.threads);
        let pairs = sample_pairs(&case.graph, case.samples, args.seed);
        let model = LatencyModel::default();
        let events = churn_sequence(&case.graph, args.events, args.failures, args.seed);
        let mut csv = rbpc_eval::Csv::new();
        csv.row([
            "scheme",
            "fail_events",
            "recover_events",
            "disrupted",
            "restored",
            "unrestorable",
            "reverted",
            "mean_outage_us",
            "max_outage_us",
        ]);
        for scheme in Scheme::all() {
            let s = churn_under_threads(&oracle, &model, &pairs, &events, scheme, args.threads);
            println!(
                "{:<18} {:>3} fail / {:>3} recover   {:>4} disrupted   {:>4} restored   \
                 {:>3} unrestorable   {:>4} reverted   mean outage {:>8.1} ms   max {:>8.1} ms",
                format!("{:?}", s.scheme),
                s.fail_events,
                s.recover_events,
                s.disrupted,
                s.restored,
                s.unrestorable,
                s.reverted,
                s.mean_outage_us / 1000.0,
                s.max_outage_us as f64 / 1000.0,
            );
            csv.row([
                format!("{:?}", s.scheme),
                s.fail_events.to_string(),
                s.recover_events.to_string(),
                s.disrupted.to_string(),
                s.restored.to_string(),
                s.unrestorable.to_string(),
                s.reverted.to_string(),
                format!("{:.1}", s.mean_outage_us),
                s.max_outage_us.to_string(),
            ]);
        }
        println!();
        write_csv(&args.csv_dir, "churn.csv", csv.as_str());
    };

    // Spans the `trace` command drains per scheme, kept so `--trace-out`
    // still exports everything at the end.
    let drained_spans = std::cell::RefCell::new(Vec::new());
    let run_trace = || {
        println!(
            "== Trace: {}-link failure on {} — span tree per affected LSP ==",
            args.failures, suite[0].name
        );
        let case = &suite[0];
        let oracle = case.oracle_threads(args.seed, args.threads);
        let pairs = sample_pairs(&case.graph, case.samples, args.seed);
        let model = LatencyModel::default();
        // Fail the middle link of the first K distinct sampled LSPs, so the
        // scenario is guaranteed to hit several provisioned paths at once.
        let mut failures = FailureSet::new();
        for &(s, t) in &pairs {
            if failures.failed_edge_count() >= args.failures {
                break;
            }
            if let Some(path) = oracle.base_path(s, t) {
                failures.fail_edge(path.edges()[path.hop_count() / 2]);
            }
        }
        let affected: Vec<_> = pairs
            .iter()
            .copied()
            .filter_map(|(s, t)| {
                let path = oracle.base_path(s, t)?;
                let hit = path
                    .edges()
                    .iter()
                    .copied()
                    .find(|&e| failures.edge_failed(e))?;
                Some((s, t, hit))
            })
            .collect();
        eprintln!(
            "# failed {} link(s); {} of {} sampled LSPs affected",
            failures.failed_edge_count(),
            affected.len(),
            pairs.len()
        );
        for scheme in Scheme::all() {
            println!("-- scheme {} --", scheme.name());
            for &(s, t, hit) in &affected {
                let _ = outage_under(&oracle, &model, s, t, hit, &failures, scheme);
            }
            let spans = rbpc_obs::take_spans();
            let trees = rbpc_obs::TraceTree::build(&spans);
            if trees.is_empty() {
                println!("(no spans collected — built without the `obs` feature?)");
            }
            for tree in trees {
                print!("{}", tree.render());
            }
            println!();
            drained_spans.borrow_mut().extend(spans);
        }
    };

    // Live telemetry: paced restore queries under a failure storm, one
    // JSONL window report per line while the run is in flight. `--smoke`
    // swaps in a tiny deterministic topology for sub-second CI runs;
    // `--serve` exposes /metrics + /healthz for the duration.
    let run_loadtest_cmd = || -> Result<(), String> {
        let (name, graph, metric) = if args.smoke {
            (
                "smoke-gnm-60".to_string(),
                rbpc_topo::gnm_connected(60, 180, 10, args.seed),
                rbpc_graph::Metric::Weighted,
            )
        } else {
            let case = &suite[0];
            (case.name.clone(), case.graph.clone(), case.metric)
        };
        let mut cfg = if args.smoke {
            LoadtestConfig::smoke()
        } else {
            LoadtestConfig::standard()
        };
        if let Some(w) = args.windows {
            cfg.windows = w;
        }
        if let Some(ms) = args.window_ms {
            cfg.window_ms = ms;
        }
        if let Some(q) = args.queries {
            cfg.queries_per_window = q;
        }
        cfg.seed = args.seed;
        cfg.threads = args.threads;
        cfg.slo = rbpc_obs::SloPolicy {
            p99_budget_ns: args.slo_p99_us.map(|us| us.saturating_mul(1_000)),
            max_drop_per_mille: args.slo_drop_pm,
            ..rbpc_obs::SloPolicy::default()
        };
        // The incident header's topology recipe: whatever rebuilds
        // exactly the graph this run is driving.
        let topo = if args.smoke {
            TopoSpec::Gnm {
                nodes: 60,
                edges: 180,
                max_weight: 10,
                seed: args.seed,
            }
        } else if let Some(path) = &args.topology {
            TopoSpec::File {
                path: path.display().to_string(),
            }
        } else {
            TopoSpec::Suite {
                scale: args.scale,
                seed: args.seed,
                case: 0,
            }
        };
        let sink = args.incident_out.as_ref().map(|path| IncidentSink {
            topo,
            path: path.clone(),
        });
        eprintln!(
            "# loadtest: {name} — {} windows x {}ms, {} queries/window, run_id {}",
            cfg.windows,
            cfg.window_ms,
            cfg.queries_per_window,
            rbpc_eval::run_id_for_seed(cfg.seed)
        );
        let server = match args.serve.as_deref().map(rbpc_obs::MetricsServer::serve) {
            Some(Ok(s)) => {
                eprintln!("# serving metrics on http://{}/metrics", s.local_addr());
                Some(s)
            }
            Some(Err(e)) => {
                eprintln!("warning: cannot serve metrics: {e}");
                None
            }
            None => None,
        };
        let report = match &args.out {
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
                let mut w = std::io::BufWriter::new(file);
                let r =
                    rbpc_eval::run_loadtest_watched(&graph, metric, &cfg, &mut w, sink.as_ref())
                        .map_err(|e| format!("loadtest: {e}"))?;
                eprintln!("# wrote {} ({} windows)", path.display(), r.windows.len());
                r
            }
            None => {
                let stdout = std::io::stdout();
                let mut w = stdout.lock();
                rbpc_eval::run_loadtest_watched(&graph, metric, &cfg, &mut w, sink.as_ref())
                    .map_err(|e| format!("loadtest: {e}"))?
            }
        };
        eprintln!();
        eprintln!("== loadtest summary ==");
        eprint!("{}", report.render());
        if let Some(breach) = &report.breach {
            match &args.incident_out {
                Some(path) => eprintln!(
                    "# SLO breach at window {} — incident frozen to {}",
                    breach.tick,
                    path.display()
                ),
                None => eprintln!(
                    "# SLO breach at window {} (no --incident-out; flight \
                     recording discarded)",
                    breach.tick
                ),
            }
        }
        if let Some(s) = server {
            s.shutdown();
        }
        Ok(())
    };

    // Runtime half of the rbpc-lint invariant layer: every structural
    // validator, run over the real suite networks in a release build
    // (where the `debug_assert!` wiring compiles out). Returns the number
    // of violations; the caller turns that into a non-zero exit.
    let run_validate = || -> usize {
        println!("== Validate: structural invariants & theory bounds ==");
        let mut total_checks = 0usize;
        let mut violations: Vec<String> = Vec::new();
        for case in &suite {
            eprintln!("#   validate: {}", case.name);
            let mut checks = 0usize;
            let before = violations.len();
            let model = CostModel::new(case.metric, args.seed);
            let csr = CsrGraph::new(&case.graph, &model);
            checks += 1;
            if let Err(e) = csr.validate() {
                violations.push(format!("{}: CSR: {e}", case.name));
            }

            // Shortest-path trees: healthy, then under random failure
            // masks (edges only, and edges plus one node).
            let pairs = sample_pairs(&case.graph, case.samples, args.seed);
            let mut sources: Vec<NodeId> = pairs.iter().map(|&(s, _)| s).collect();
            sources.sort_unstable();
            sources.dedup();
            sources.truncate(8);
            let mut scratch = DijkstraScratch::new(case.graph.node_count());
            for &s in &sources {
                let tree = csr.full_tree(s, &mut scratch);
                checks += 1;
                if let Err(e) = csr.validate_tree(&tree, None) {
                    violations.push(format!("{}: tree from {s}: {e}", case.name));
                }
            }
            let mut rng = DetRng::seed_from_u64(args.seed ^ 0x5EED);
            for round in 0..3usize {
                let mut set = FailureSet::new();
                for _ in 0..3 {
                    set.fail_edge(EdgeId::new(rng.gen_range(0..case.graph.edge_count())));
                }
                if round == 2 && case.graph.node_count() > 2 {
                    set.fail_node(NodeId::new(
                        1 + rng.gen_range(0..case.graph.node_count() - 1),
                    ));
                }
                let mask = FailureMask::from_set(&csr, &set);
                for &s in &sources {
                    if set.node_failed(s) {
                        continue;
                    }
                    let tree = csr.full_tree_masked(s, Some(&mask), &mut scratch);
                    checks += 1;
                    if let Err(e) = csr.validate_tree(&tree, Some(&mask)) {
                        violations.push(format!(
                            "{}: masked tree from {s} (round {round}): {e}",
                            case.name
                        ));
                    }
                }
            }

            // Theorem 1/2 label-stack bounds on real restorations: fail
            // one, then two, links of each sampled pair's base path.
            let oracle = case.oracle_threads(args.seed, args.threads);
            let restorer = Restorer::new(&oracle);
            for &(s, t) in &pairs {
                let Some(path) = oracle.base_path(s, t) else {
                    continue;
                };
                let edges = path.edges().to_vec();
                for k in 1..=2usize.min(edges.len()) {
                    let mut set = FailureSet::new();
                    for i in 0..k {
                        set.fail_edge(edges[(i + 1) * edges.len() / (k + 1)]);
                    }
                    let Ok(r) = restorer.restore(s, t, &set) else {
                        continue; // disconnected pairs carry no bound
                    };
                    checks += 1;
                    if let Err(e) = r.concatenation.validate_bounds(set.failed_edge_count()) {
                        violations.push(format!("{}: restore {s} -> {t}: {e}", case.name));
                    }
                }
            }

            println!(
                "{:<22} {:>6} checks   {} violations",
                case.name,
                checks,
                violations.len() - before
            );
            total_checks += checks;
        }
        println!();
        for v in &violations {
            println!("VIOLATION: {v}");
        }
        if violations.is_empty() {
            println!(
                "validate: OK — {total_checks} checks across {} networks, all invariants hold",
                suite.len()
            );
        } else {
            println!(
                "validate: FAILED — {} of {total_checks} checks violated",
                violations.len()
            );
        }
        violations.len()
    };

    let mut validate_violations = 0usize;
    match args.command.as_str() {
        "table1" => run_t1(),
        "table2" => run_t2(),
        "table3" => run_t3(),
        "figure10" => run_f10(),
        "latency" => run_latency(),
        "ablation" => run_ablation(),
        "churn" => run_churn(),
        "trace" => run_trace(),
        "loadtest" => {
            if let Err(e) = run_loadtest_cmd() {
                eprintln!("error: {e}");
                finish_observability(&args, drained_spans.into_inner(), profiler);
                return ExitCode::FAILURE;
            }
        }
        "validate" => validate_violations = run_validate(),
        "all" => {
            run_t1();
            run_t2();
            run_t3();
            run_f10();
            run_latency();
            run_ablation();
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    }
    finish_observability(&args, drained_spans.into_inner(), profiler);
    if validate_violations > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `paper-scale` command: provision and restore on the paper's
/// Internet router map through the implicit sharded store. Defaults to
/// the real 40 377-node map (`--smoke` swaps in the quick-scale
/// 1 500-node stand-in with a deliberately tiny budget); `--scale` is
/// ignored. Sweep JSONL goes to `--out` (or stdout); `--incident-out`
/// freezes the run's flight-recorder ring into a replayable incident.
fn run_paperscale_cmd(args: &Args) -> Result<(), String> {
    let mut cfg = if args.smoke {
        rbpc_eval::PaperScaleConfig::smoke(args.seed, args.threads)
    } else {
        rbpc_eval::PaperScaleConfig::paper(args.seed, args.threads)
    };
    if let Some(n) = args.max_resident_spts {
        cfg.max_resident_spts = n;
    }
    if let Some(n) = args.shard_size {
        cfg.shard_size = n;
    }
    cfg.full_sweep = cfg.full_sweep || args.full_sweep;
    if let Some(n) = args.dests_per_source {
        cfg.dests_per_source = n;
    }
    if let Some(w) = args.windows {
        cfg.sweep_windows = w;
    }
    eprintln!(
        "# paper-scale: {} map — budget {} trees, shards of {}, {} samples{}; run_id {}",
        match cfg.scale {
            EvalScale::Paper => "full 40 377-node",
            EvalScale::Quick => "quick 1 500-node",
        },
        cfg.max_resident_spts,
        cfg.shard_size,
        cfg.samples,
        if cfg.full_sweep { ", full sweep" } else { "" },
        rbpc_eval::run_id_for_seed(cfg.seed),
    );
    let sink = args.incident_out.as_ref().map(|path| IncidentSink {
        topo: TopoSpec::Suite {
            scale: cfg.scale,
            seed: cfg.seed,
            case: rbpc_eval::INTERNET_CASE,
        },
        path: path.clone(),
    });
    let report = match &args.out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            let mut w = std::io::BufWriter::new(file);
            let r = rbpc_eval::run_paper_scale(&cfg, &mut w, sink.as_ref())
                .map_err(|e| format!("paper-scale: {e}"))?;
            if r.sweep.is_some() {
                eprintln!("# wrote {}", path.display());
            }
            r
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            rbpc_eval::run_paper_scale(&cfg, &mut w, sink.as_ref())
                .map_err(|e| format!("paper-scale: {e}"))?
        }
    };
    println!(
        "== Paper scale: implicit sharded store on the {} map ==",
        report.topo_name
    );
    print!("{}", report.render());
    println!();
    println!("== Table 2 protocol through the sharded store ==");
    println!("{}", rbpc_eval::table2::render(&report.protocol));
    write_csv(
        &args.csv_dir,
        "paper_scale_table2.csv",
        &rbpc_eval::table2::to_csv(&report.protocol),
    );
    if let Some(path) = &args.incident_out {
        eprintln!("# incident frozen to {}", path.display());
    }
    Ok(())
}

/// The `replay` command: parse an incident file, rebuild its topology
/// and oracle, re-execute every recorded restore with validators on, and
/// report divergence. Returns the number of mismatches (0 == clean).
fn run_replay(args: &Args) -> Result<usize, String> {
    let path = args
        .incident_path
        .as_ref()
        .ok_or("replay needs an incident file: rbpc-eval replay <incident.jsonl>")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let (header, records) =
        rbpc_eval::parse_incident(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    eprintln!(
        "# replay: run_id {} — {} records, breach at window {} ({})",
        header.run_id,
        records.len(),
        header.breach_tick,
        header.breach_reason
    );
    let report = rbpc_eval::replay_incident(&header, &records, args.threads)?;
    println!(
        "== Replay: incident {} on {} ==",
        report.run_id, report.topo_name
    );
    println!(
        "{} restore records replayed, {} matched, {} Theorem-bound checks",
        report.replayed, report.matched, report.bounds_checked
    );
    for m in &report.mismatches {
        println!("MISMATCH: {m}");
    }
    if report.is_clean() {
        println!("replay: OK — every replayed plan hash-matched the recording");
    } else {
        println!(
            "replay: FAILED — {} of {} replayed records diverged",
            report.mismatches.len(),
            report.replayed
        );
    }
    Ok(report.mismatches.len())
}

/// Drains the event sink, exports collected trace spans, stops the
/// span-stack profiler (writing its collapsed-stack report to
/// `--profile-out`), and dumps the metric registry: JSON to
/// `--metrics-out` if given, and a human-readable summary to stderr.
fn finish_observability(
    args: &Args,
    mut spans: Vec<rbpc_obs::SpanRecord>,
    profiler: Option<rbpc_obs::Profiler>,
) {
    // Dropping the previous sink flushes the JSONL file.
    drop(rbpc_obs::set_event_sink(None));
    if let Some(path) = &args.events_out {
        eprintln!("# wrote {}", path.display());
    }
    if rbpc_obs::tracing_active() {
        spans.extend(rbpc_obs::stop_tracing());
    }
    if let Some(path) = &args.trace_out {
        let mut json = rbpc_obs::chrome_trace_json(&spans);
        json.push('\n');
        match std::fs::write(path, json) {
            Ok(()) => eprintln!(
                "# wrote {} ({} spans; open in ui.perfetto.dev)",
                path.display(),
                spans.len()
            ),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
    if let Some(p) = profiler {
        let report = p.stop();
        if let Some(path) = &args.profile_out {
            match std::fs::write(path, report.to_collapsed()) {
                Ok(()) => eprintln!(
                    "# wrote {} ({} samples, {} distinct stacks; render with any \
                     flamegraph tool that reads collapsed stacks)",
                    path.display(),
                    report.samples(),
                    report.stacks().len()
                ),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
    }
    let snap = rbpc_obs::Registry::global_snapshot();
    if let Some(path) = &args.metrics_out {
        let mut json = snap.to_json();
        json.push('\n');
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("# wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
    if !snap.is_empty() {
        eprintln!();
        eprintln!("== metrics summary ==");
        eprint!("{}", snap.render_table());
    }
}
