//! ASCII-table and CSV rendering for experiment results.

/// Renders rows as a fixed-width ASCII table with a header rule.
///
/// ```
/// use rbpc_eval::format_table;
/// let s = format_table(
///     &["name", "n"],
///     &[vec!["isp".into(), "209".into()], vec!["as".into(), "4746".into()]],
/// );
/// assert!(s.contains("name"));
/// assert!(s.lines().count() >= 4);
/// ```
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push(' ');
            line.push_str(c);
            line.push_str(&" ".repeat(widths[i].saturating_sub(c.len()) + 1));
            line.push('|');
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(header.to_vec(), &widths));
    let rule: String = widths
        .iter()
        .map(|w| format!("|{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "|\n";
    out.push_str(&rule);
    for row in rows {
        out.push_str(&render_row(
            row.iter().map(String::as_str).collect(),
            &widths,
        ));
    }
    out
}

/// Minimal CSV builder (comma-separated, quotes cells containing commas).
#[derive(Debug, Default, Clone)]
pub struct Csv {
    buf: String,
}

impl Csv {
    /// An empty document.
    pub fn new() -> Self {
        Csv::default()
    }

    /// Appends one row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut first = true;
        for c in cells {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let c = c.as_ref();
            if c.contains(',') || c.contains('"') {
                self.buf.push('"');
                self.buf.push_str(&c.replace('"', "\"\""));
                self.buf.push('"');
            } else {
                self.buf.push_str(c);
            }
        }
        self.buf.push('\n');
        self
    }

    /// The document so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the builder, returning the document.
    pub fn into_string(self) -> String {
        self.buf
    }
}

/// Formats a ratio as the paper's percent strings, e.g. `12.5%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(&["a", "long-header"], &[vec!["xxxxxx".into(), "1".into()]]);
        let lines: Vec<_> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].starts_with("|--"));
    }

    #[test]
    fn empty_rows_ok() {
        let t = format_table(&["x"], &[]);
        assert_eq!(t.lines().count(), 2);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut c = Csv::new();
        c.row(["a,b", "plain", "qu\"ote"]);
        assert_eq!(c.as_str(), "\"a,b\",plain,\"qu\"\"ote\"\n");
        assert_eq!(c.clone().into_string(), c.as_str());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
