//! Figure 10: overhead of local RBPC relative to source-routed RBPC.
//!
//! For sampled (pair, failed-link) events on the weighted ISP, compare the
//! end-to-end route produced by *edge-bypass* and *end-route* local RBPC
//! against the min-cost restoration path (what source RBPC achieves), both
//! by cost and by hop count. The paper's four histograms show that the
//! vast majority of local restorations are (nearly) as good as optimal.

use rbpc_core::{edge_bypass, end_route, BasePathOracle, Restorer};
use rbpc_graph::{FailureSet, NodeId};
use std::thread;

/// A histogram over stretch ratios with the paper's binning.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StretchHistogram {
    /// Ratio < 1 (the min-cost path had more hops than the local route —
    /// possible for hop-count stretch only).
    pub below_one: usize,
    /// Ratio exactly 1 (local restoration is optimal).
    pub exactly_one: usize,
    /// Ratio in (1, 1.25].
    pub upto_1_25: usize,
    /// Ratio in (1.25, 1.5].
    pub upto_1_5: usize,
    /// Ratio in (1.5, 2].
    pub upto_2: usize,
    /// Ratio above 2.
    pub above_2: usize,
}

impl StretchHistogram {
    /// Adds one observation.
    pub fn add(&mut self, ratio: f64) {
        if ratio < 1.0 - 1e-12 {
            self.below_one += 1;
        } else if ratio <= 1.0 + 1e-12 {
            self.exactly_one += 1;
        } else if ratio <= 1.25 {
            self.upto_1_25 += 1;
        } else if ratio <= 1.5 {
            self.upto_1_5 += 1;
        } else if ratio <= 2.0 {
            self.upto_2 += 1;
        } else {
            self.above_2 += 1;
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.below_one
            + self.exactly_one
            + self.upto_1_25
            + self.upto_1_5
            + self.upto_2
            + self.above_2
    }

    /// Fraction of observations with ratio ≤ 1 (locally optimal or better).
    pub fn optimal_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.below_one + self.exactly_one) as f64 / t as f64
        }
    }

    fn merge(&mut self, o: &StretchHistogram) {
        self.below_one += o.below_one;
        self.exactly_one += o.exactly_one;
        self.upto_1_25 += o.upto_1_25;
        self.upto_1_5 += o.upto_1_5;
        self.upto_2 += o.upto_2;
        self.above_2 += o.above_2;
    }

    /// The paper's bin labels, paired with this histogram's fractions.
    pub fn bins(&self) -> Vec<(&'static str, f64)> {
        let t = self.total().max(1) as f64;
        vec![
            ("<1", self.below_one as f64 / t),
            ("=1", self.exactly_one as f64 / t),
            ("(1,1.25]", self.upto_1_25 as f64 / t),
            ("(1.25,1.5]", self.upto_1_5 as f64 / t),
            ("(1.5,2]", self.upto_2 as f64 / t),
            (">2", self.above_2 as f64 / t),
        ]
    }
}

/// The four histograms of Figure 10.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Figure10 {
    /// Cost stretch of edge-bypass local RBPC.
    pub cost_edge_bypass: StretchHistogram,
    /// Cost stretch of end-route local RBPC.
    pub cost_end_route: StretchHistogram,
    /// Hop-count stretch of edge-bypass local RBPC.
    pub hops_edge_bypass: StretchHistogram,
    /// Hop-count stretch of end-route local RBPC.
    pub hops_end_route: StretchHistogram,
    /// Restoration events measured.
    pub events: usize,
}

impl Figure10 {
    fn merge(&mut self, o: &Figure10) {
        self.cost_edge_bypass.merge(&o.cost_edge_bypass);
        self.cost_end_route.merge(&o.cost_end_route);
        self.hops_edge_bypass.merge(&o.hops_edge_bypass);
        self.hops_end_route.merge(&o.hops_end_route);
        self.events += o.events;
    }
}

/// Computes Figure 10 over the given sampled pairs (each link of each base
/// path fails in turn), parallelized over pairs.
pub fn figure10<O: BasePathOracle + Sync>(
    oracle: &O,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> Figure10 {
    let threads = threads.max(1);
    let chunk = pairs.len().div_ceil(threads).max(1);
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for slice in pairs.chunks(chunk) {
            handles.push(scope.spawn(move || run_pairs(oracle, slice)));
        }
        let mut total = Figure10::default();
        for h in handles {
            total.merge(&h.join().expect("worker panicked"));
        }
        total
    })
}

fn run_pairs<O: BasePathOracle>(oracle: &O, pairs: &[(NodeId, NodeId)]) -> Figure10 {
    let graph = oracle.graph();
    let model = oracle.cost_model();
    let restorer = Restorer::new(oracle);
    let mut fig = Figure10::default();
    for &(s, t) in pairs {
        let Some(base) = oracle.base_path(s, t) else {
            continue;
        };
        for &failed in base.edges() {
            let failures = FailureSet::of_edge(failed);
            let Ok(optimal) = restorer.restore(s, t, &failures) else {
                continue;
            };
            let opt_cost = optimal.backup_cost.base.max(1);
            let opt_hops = u64::from(optimal.backup_cost.hops).max(1);
            let mut measured = false;
            if let Ok(lr) = edge_bypass(oracle, &base, failed, &failures) {
                let c = lr.end_to_end.cost(graph, model);
                fig.cost_edge_bypass.add(c.base as f64 / opt_cost as f64);
                fig.hops_edge_bypass
                    .add(f64::from(c.hops) / opt_hops as f64);
                measured = true;
            }
            if let Ok(lr) = end_route(oracle, &base, failed, &failures) {
                let c = lr.end_to_end.cost(graph, model);
                fig.cost_end_route.add(c.base as f64 / opt_cost as f64);
                fig.hops_end_route.add(f64::from(c.hops) / opt_hops as f64);
                measured = true;
            }
            if measured {
                fig.events += 1;
            }
        }
    }
    fig
}

/// Renders the four histograms as aligned text bars.
pub fn render(fig: &Figure10) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let sections: [(&str, &StretchHistogram); 4] = [
        ("Cost stretch, edge-bypass", &fig.cost_edge_bypass),
        ("Cost stretch, end-route", &fig.cost_end_route),
        ("Hopcount stretch, edge-bypass", &fig.hops_edge_bypass),
        ("Hopcount stretch, end-route", &fig.hops_end_route),
    ];
    for (title, h) in sections {
        let _ = writeln!(out, "{title} ({} events):", h.total());
        for (label, frac) in h.bins() {
            let bar = "#".repeat((frac * 50.0).round() as usize);
            let _ = writeln!(out, "  {label:>10} {:6.2}% {bar}", 100.0 * frac);
        }
        out.push('\n');
    }
    out
}

/// Renders the four histograms as CSV (one row per histogram × bin).
pub fn to_csv(fig: &Figure10) -> String {
    let mut csv = crate::Csv::new();
    csv.row(["histogram", "bin", "fraction"]);
    let sections: [(&str, &StretchHistogram); 4] = [
        ("cost_edge_bypass", &fig.cost_edge_bypass),
        ("cost_end_route", &fig.cost_end_route),
        ("hops_edge_bypass", &fig.hops_edge_bypass),
        ("hops_end_route", &fig.hops_end_route),
    ];
    for (name, h) in sections {
        for (label, frac) in h.bins() {
            csv.row([name.to_string(), label.to_string(), format!("{frac:.4}")]);
        }
    }
    csv.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_pairs;
    use rbpc_core::DenseBasePaths;
    use rbpc_graph::{CostModel, Metric};
    use rbpc_topo::{gnm_connected, isp_topology, IspParams};

    #[test]
    fn histogram_binning() {
        let mut h = StretchHistogram::default();
        for r in [0.5, 1.0, 1.0, 1.1, 1.3, 1.7, 5.0] {
            h.add(r);
        }
        assert_eq!(h.below_one, 1);
        assert_eq!(h.exactly_one, 2);
        assert_eq!(h.upto_1_25, 1);
        assert_eq!(h.upto_1_5, 1);
        assert_eq!(h.upto_2, 1);
        assert_eq!(h.above_2, 1);
        assert_eq!(h.total(), 7);
        assert!((h.optimal_fraction() - 3.0 / 7.0).abs() < 1e-12);
        let bins = h.bins();
        assert_eq!(bins.len(), 6);
        let sum: f64 = bins.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn local_stretch_is_at_least_one_by_cost() {
        let g = gnm_connected(30, 70, 8, 6);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 6));
        let pairs = sample_pairs(oracle.graph(), 15, 2);
        let fig = figure10(&oracle, &pairs, 2);
        assert!(fig.events > 0);
        // Cost of a local restoration can never beat the min-cost path.
        assert_eq!(fig.cost_edge_bypass.below_one, 0);
        assert_eq!(fig.cost_end_route.below_one, 0);
    }

    #[test]
    fn isp_local_restorations_are_mostly_optimal() {
        let isp = isp_topology(IspParams::default(), 5).graph;
        let oracle = DenseBasePaths::build(isp, CostModel::new(Metric::Weighted, 5));
        let pairs = sample_pairs(oracle.graph(), 30, 3);
        let fig = figure10(&oracle, &pairs, 4);
        // Paper's headline: the vast majority of local restorations cost
        // about as much as the optimal restoration.
        let h = &fig.cost_end_route;
        let near_optimal = h.optimal_fraction() + h.bins()[2].1; // ratio ≤ 1.25
        assert!(
            near_optimal > 0.6,
            "end-route near-optimal fraction = {near_optimal}"
        );
        assert!(h.optimal_fraction() > 0.25);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let g = gnm_connected(25, 55, 6, 9);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 9));
        let pairs = sample_pairs(oracle.graph(), 12, 4);
        assert_eq!(figure10(&oracle, &pairs, 1), figure10(&oracle, &pairs, 3));
    }

    #[test]
    fn csv_has_24_bins() {
        let fig = Figure10::default();
        let csv = to_csv(&fig);
        assert_eq!(csv.lines().count(), 1 + 24);
    }

    #[test]
    fn renders_bars() {
        let g = gnm_connected(20, 45, 5, 1);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 1));
        let pairs = sample_pairs(oracle.graph(), 8, 1);
        let fig = figure10(&oracle, &pairs, 2);
        let out = render(&fig);
        assert!(out.contains("edge-bypass"));
        assert!(out.contains("end-route"));
    }
}
