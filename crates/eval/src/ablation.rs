//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! * [`provisioning_footprint`] — ILM entries of the three base-set
//!   deployments: per-pair LSPs, per-pair with PHP, merged sink trees;
//! * [`ksp_comparison`] — the k-shortest-paths pre-provisioning baseline
//!   vs RBPC: coverage, cost stretch, and state;
//! * [`decomposition_agreement`] — greedy longest-prefix vs the optimal
//!   jump-graph search (validating that greedy is optimal in practice,
//!   not only by the subpath-closure argument);
//! * [`protection_coverage`] — how many failure events are unrestorable
//!   for topological reasons (bridges / articulation points), the paper's
//!   caveat that RBPC restores whenever *any* path survives.

use crate::format_table;
use rbpc_core::baseline::KspBackupSet;
use rbpc_core::{greedy_decompose, optimal_decompose, BasePathOracle, ProvisionedDomain, Restorer};
use rbpc_graph::{cut_elements, shortest_path, FailureSet, NodeId};

/// ILM footprint of the three deployments of the same base set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvisioningFootprint {
    /// Per-pair LSPs, label at every hop.
    pub per_pair: usize,
    /// Per-pair LSPs with penultimate-hop popping.
    pub per_pair_php: usize,
    /// Merged per-destination sink trees (§2's LSP merging): `n` per
    /// destination.
    pub merged: usize,
}

/// Measures the ILM footprint of each deployment on the oracle's graph
/// (all-pairs; keep the graph small).
pub fn provisioning_footprint<O: BasePathOracle>(oracle: &O) -> ProvisioningFootprint {
    let n = oracle.graph().node_count();
    let mut pairs = ProvisionedDomain::new(oracle);
    pairs
        .provision_all_pairs(oracle)
        .expect("provisioning cannot fail on a validated graph");
    let mut php = ProvisionedDomain::new(oracle);
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            if let Some(p) = oracle.base_path(NodeId::new(s), NodeId::new(t)) {
                php.net_mut()
                    .establish_lsp_php(&p)
                    .expect("php establishment");
            }
        }
    }
    let mut merged = ProvisionedDomain::new(oracle);
    merged
        .provision_merged(oracle)
        .expect("merged provisioning");
    ProvisioningFootprint {
        per_pair: pairs.net().total_ilm_entries(),
        per_pair_php: php.net().total_ilm_entries(),
        merged: merged.net().total_ilm_entries(),
    }
}

/// One row of the KSP-vs-RBPC comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KspRow {
    /// Number of pre-provisioned paths per pair.
    pub j: usize,
    /// Single-link failure events examined.
    pub events: usize,
    /// Events where no pre-provisioned path survived (KSP falls back to
    /// online re-establishment; RBPC restored all of these).
    pub uncovered: usize,
    /// Mean cost stretch of the KSP survivor vs the min-cost restoration
    /// (RBPC is 1.0 by construction).
    pub mean_stretch: f64,
    /// ILM entries the KSP sets consume for the sampled pairs.
    pub ilm_entries: u64,
}

/// Compares KSP(j) restoration against RBPC over every link of every
/// sampled pair's primary path.
pub fn ksp_comparison<O: BasePathOracle>(
    oracle: &O,
    pairs: &[(NodeId, NodeId)],
    js: &[usize],
) -> Vec<KspRow> {
    let graph = oracle.graph();
    let model = oracle.cost_model();
    let restorer = Restorer::new(oracle);
    js.iter()
        .map(|&j| {
            let mut row = KspRow {
                j,
                events: 0,
                uncovered: 0,
                mean_stretch: 0.0,
                ilm_entries: 0,
            };
            let mut stretch_sum = 0.0;
            for &(s, t) in pairs {
                let set = KspBackupSet::precompute(oracle, s, t, j);
                row.ilm_entries += set.ilm_entries();
                let Some(primary) = set.paths().first().cloned() else {
                    continue;
                };
                for &e in primary.edges() {
                    let failures = FailureSet::of_edge(e);
                    let Ok(opt) = restorer.restore(s, t, &failures) else {
                        continue;
                    };
                    row.events += 1;
                    match set.restore(&failures) {
                        Some(p) => {
                            stretch_sum += p.cost(graph, model).base as f64
                                / opt.backup_cost.base.max(1) as f64;
                        }
                        None => row.uncovered += 1,
                    }
                }
            }
            let covered = row.events - row.uncovered;
            row.mean_stretch = if covered == 0 {
                0.0
            } else {
                stretch_sum / covered as f64
            };
            row
        })
        .collect()
}

/// Result of the greedy-vs-optimal decomposition ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompositionAgreement {
    /// Restoration events compared.
    pub events: usize,
    /// Events where greedy used exactly as many segments as the optimal
    /// jump-graph search (expected: all of them).
    pub agreements: usize,
}

/// Compares segment counts of greedy and optimal decomposition for every
/// link of every sampled pair's base path.
pub fn decomposition_agreement<O: BasePathOracle>(
    oracle: &O,
    pairs: &[(NodeId, NodeId)],
) -> DecompositionAgreement {
    let graph = oracle.graph();
    let model = oracle.cost_model();
    let mut events = 0;
    let mut agreements = 0;
    for &(s, t) in pairs {
        let Some(base) = oracle.base_path(s, t) else {
            continue;
        };
        for &e in base.edges() {
            let failures = FailureSet::of_edge(e);
            let view = failures.view(graph);
            let Some(backup) = shortest_path(&view, model, s, t) else {
                continue;
            };
            let Some(optimal) = optimal_decompose(oracle, s, t, &failures) else {
                continue;
            };
            events += 1;
            if greedy_decompose(oracle, &backup).len() == optimal.len() {
                agreements += 1;
            }
        }
    }
    DecompositionAgreement { events, agreements }
}

/// Topological protection limits of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectionCoverage {
    /// Total links.
    pub links: usize,
    /// Links that are bridges (their failure is unrestorable for some
    /// pair, no matter the scheme).
    pub bridges: usize,
    /// Total routers.
    pub routers: usize,
    /// Articulation points (their failure is unrestorable for some pair).
    pub articulation_points: usize,
}

/// Computes how much of a topology is protectable at all.
pub fn protection_coverage(graph: &rbpc_graph::Graph) -> ProtectionCoverage {
    let cuts = cut_elements(graph);
    ProtectionCoverage {
        links: graph.edge_count(),
        bridges: cuts.bridges.len(),
        routers: graph.node_count(),
        articulation_points: cuts.articulation_points.len(),
    }
}

/// Renders all four ablations as one report.
pub fn render(
    footprint: &ProvisioningFootprint,
    ksp: &[KspRow],
    agreement: &DecompositionAgreement,
    coverage: &ProtectionCoverage,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Base-set deployment footprint (ILM entries):");
    let _ = writeln!(
        out,
        "  per-pair LSPs = {}, per-pair + PHP = {}, merged sink trees = {} ({}x smaller)\n",
        footprint.per_pair,
        footprint.per_pair_php,
        footprint.merged,
        footprint.per_pair / footprint.merged.max(1),
    );
    let _ = writeln!(
        out,
        "k-shortest-paths baseline vs RBPC (single link failures):"
    );
    out.push_str(&format_table(
        &[
            "j",
            "events",
            "uncovered",
            "mean cost stretch",
            "ILM entries",
        ],
        &ksp.iter()
            .map(|r| {
                vec![
                    r.j.to_string(),
                    r.events.to_string(),
                    r.uncovered.to_string(),
                    format!("{:.3}", r.mean_stretch),
                    r.ilm_entries.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    let _ = writeln!(
        out,
        "  (RBPC: 0 uncovered, stretch 1.000 by construction)\n"
    );
    let _ = writeln!(
        out,
        "Greedy vs optimal decomposition: {} / {} events agree",
        agreement.agreements, agreement.events
    );
    let _ = writeln!(
        out,
        "Topological protection limits: {} / {} links are bridges, {} / {} routers are articulation points",
        coverage.bridges, coverage.links, coverage.articulation_points, coverage.routers
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_pairs;
    use rbpc_core::DenseBasePaths;
    use rbpc_graph::{CostModel, Metric};
    use rbpc_topo::{gnm_connected, isp_topology, IspParams};

    fn small_oracle() -> DenseBasePaths {
        let g = isp_topology(
            IspParams {
                pops: 6,
                core_routers: 5,
                ..IspParams::default()
            },
            2,
        )
        .graph;
        DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 2))
    }

    #[test]
    fn merged_beats_php_beats_pairs() {
        let oracle = small_oracle();
        let f = provisioning_footprint(&oracle);
        assert!(f.merged < f.per_pair_php);
        assert!(f.per_pair_php < f.per_pair);
        let n = oracle.graph().node_count();
        assert_eq!(f.merged, n * n);
    }

    #[test]
    fn ksp_rows_behave() {
        let oracle = small_oracle();
        let pairs = sample_pairs(oracle.graph(), 20, 1);
        let rows = ksp_comparison(&oracle, &pairs, &[1, 2, 4]);
        assert_eq!(rows.len(), 3);
        // More pre-provisioned paths -> more state, fewer uncovered events.
        assert!(rows[2].ilm_entries > rows[0].ilm_entries);
        assert!(rows[2].uncovered <= rows[0].uncovered);
        // j = 1 is "no backup at all": every event is uncovered.
        assert_eq!(rows[0].uncovered, rows[0].events);
        // Survivors can never beat the min-cost restoration.
        assert!(rows[2].mean_stretch >= 1.0 - 1e-12 || rows[2].events == rows[2].uncovered);
    }

    #[test]
    fn greedy_agrees_with_optimal_everywhere() {
        let oracle = small_oracle();
        let pairs = sample_pairs(oracle.graph(), 15, 3);
        let a = decomposition_agreement(&oracle, &pairs);
        assert!(a.events > 0);
        assert_eq!(a.agreements, a.events);
    }

    #[test]
    fn coverage_counts_cut_elements() {
        let g = gnm_connected(10, 9, 3, 0); // a tree: everything is a cut
        let c = protection_coverage(&g);
        assert_eq!(c.bridges, 9);
        assert!(c.articulation_points > 0);
        let isp = isp_topology(IspParams::default(), 1).graph;
        let c2 = protection_coverage(&isp);
        assert_eq!(c2.bridges, 0, "default ISP is 2-edge-connected");
    }

    #[test]
    fn renders() {
        let oracle = small_oracle();
        let pairs = sample_pairs(oracle.graph(), 8, 1);
        let out = render(
            &provisioning_footprint(&oracle),
            &ksp_comparison(&oracle, &pairs, &[2]),
            &decomposition_agreement(&oracle, &pairs),
            &protection_coverage(oracle.graph()),
        );
        assert!(out.contains("merged sink trees"));
        assert!(out.contains("k-shortest-paths"));
    }
}
