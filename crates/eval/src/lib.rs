//! Experiment harness regenerating every table and figure of the RBPC
//! paper (Afek, Bremler-Barr, Cohen, Kaplan, Merritt, PODC 2001).
//!
//! | Paper artifact | Module | What it reports |
//! |---|---|---|
//! | Table 1 | [`mod@table1`] | nodes / links / average degree per topology |
//! | Table 2 | [`table2`] | ILM stretch factor, PC length, length stretch, redundancy after 1–2 link / router failures |
//! | Table 3 | [`mod@table3`] | distribution of min-cost bypass hop counts |
//! | Figure 10 | [`mod@figure10`] | cost / hop-count stretch histograms of local RBPC |
//!
//! The paper's topologies are proprietary or unobtainable; [`suite`]
//! generates the synthetic stand-ins described in `DESIGN.md` at either
//! the paper's full scale ([`EvalScale::Paper`]) or a quick scale for CI
//! and benches ([`EvalScale::Quick`]). Sampling follows the paper's
//! protocol (200 pairs on the ISP, 40 on the large graphs), parallelized
//! with std scoped threads; everything is deterministic per seed.
//!
//! Beyond the paper's artifacts, [`mod@loadtest`] drives paced restore
//! queries under deterministic failure storms and reports per-window
//! latency quantiles, restored/dropped counts, and concatenation-depth
//! distributions as live JSONL (the `rbpc-eval loadtest` subcommand).
//! An armed SLO watchdog freezes the flight-recorder ring into a
//! self-contained incident file on the first breached window, and
//! [`mod@incident`] replays such files deterministically with
//! validators on (the `rbpc-eval replay` subcommand): every recorded
//! plan must hash-match its re-execution.
//!
//! [`mod@paperscale`] provisions the paper's largest topology — the
//! 40 377-node Internet router map — end to end through the implicit
//! sharded store ([`rbpc_core::ShardedBasePaths`]) under a stated
//! memory budget, reproducing the paper's 40-sample protocol and
//! optionally sweeping every source (the `rbpc-eval paper-scale`
//! subcommand); the memory math and workflow live in `docs/SCALE.md`.
//!
//! The full paper-to-code map (theorems, figures, tables -> modules and
//! tests) is in `docs/PAPER_MAP.md` at the repository root;
//! `docs/ARCHITECTURE.md` shows how the crates fit together.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablation;
pub mod figure10;
pub mod incident;
pub mod loadtest;
pub mod paperscale;
pub mod report;
pub mod sampling;
pub mod suite;
pub mod table1;
pub mod table2;
pub mod table3;

pub use ablation::{
    decomposition_agreement, ksp_comparison, protection_coverage, provisioning_footprint,
    DecompositionAgreement, KspRow, ProtectionCoverage, ProvisioningFootprint,
};
pub use figure10::{figure10, Figure10, StretchHistogram};
pub use incident::{
    parse_incident, replay_incident, write_incident, IncidentHeader, ReplayReport, TopoSpec,
    INCIDENT_FORMAT,
};
pub use loadtest::{
    run_id_for_seed, run_loadtest, run_loadtest_watched, IncidentSink, LoadtestConfig,
    LoadtestReport, WindowStats,
};
pub use paperscale::{
    internet_case, run_paper_scale, PaperScaleConfig, PaperScaleReport, SweepSummary, SweepWindow,
    INTERNET_CASE,
};
pub use report::{format_table, Csv};
pub use sampling::sample_pairs;
pub use suite::{standard_suite, AnyOracle, EvalScale, NetworkCase};
pub use table1::{table1, Table1Row};
pub use table2::{table2_block, FailureClass, Table2Row};
pub use table3::{table3, BypassHistogram};
