//! Property-based tests for the MPLS simulator: LSP lifecycle invariants,
//! forwarding correctness, and sink-tree equivalence — over random
//! topologies and random paths.

// Requires the external `proptest` crate: compiled only with `--features proptest`
// (offline builds ship without it).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use rbpc_graph::{shortest_path, shortest_path_tree, CostModel, FailureSet, Metric, NodeId};
use rbpc_mpls::{ForwardError, MplsNetwork};
use rbpc_topo::gnm_connected;

fn model(seed: u64) -> CostModel {
    CostModel::new(Metric::Weighted, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Establish + teardown leaves the ILM exactly as before, for any
    /// random batch of LSPs (with or without PHP).
    #[test]
    fn establish_teardown_is_clean(
        n in 5usize..20,
        seed in 0u64..2000,
        targets in proptest::collection::vec((0usize..1000, 0usize..1000, prop::bool::ANY), 1..8),
    ) {
        let g = gnm_connected(n, 2 * n, 9, seed);
        let m = model(seed);
        let mut net = MplsNetwork::new(g.clone());
        let mut ids = Vec::new();
        for (s, t, php) in targets {
            let (s, t) = (NodeId::new(s % n), NodeId::new(t % n));
            if s == t {
                continue;
            }
            let path = shortest_path(&g, &m, s, t).unwrap();
            if path.is_trivial() {
                continue;
            }
            let id = if php {
                net.establish_lsp_php(&path).unwrap()
            } else {
                net.establish_lsp(&path).unwrap()
            };
            // Entry count matches the LSP shape.
            let expect = if php { path.hop_count() } else { path.hop_count() + 1 };
            prop_assert_eq!(net.lsp(id).unwrap().path(), &path);
            let _ = expect;
            ids.push(id);
        }
        for id in &ids {
            net.teardown_lsp(*id).unwrap();
        }
        prop_assert_eq!(net.total_ilm_entries(), 0);
        let stats = net.stats();
        prop_assert_eq!(stats.lsps_established, ids.len() as u64);
        prop_assert_eq!(stats.lsps_torn_down, ids.len() as u64);
    }

    /// A provisioned LSP forwards exactly along its path, and label ops
    /// equal the path length plus the final pop (without PHP).
    #[test]
    fn forwarding_follows_the_lsp(
        n in 5usize..18,
        seed in 0u64..2000,
        php in prop::bool::ANY,
    ) {
        let g = gnm_connected(n, 2 * n, 7, seed);
        let m = model(seed);
        let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
        let path = shortest_path(&g, &m, s, t).unwrap();
        if path.is_trivial() {
            return Ok(());
        }
        let mut net = MplsNetwork::new(g);
        let id = if php {
            net.establish_lsp_php(&path).unwrap()
        } else {
            net.establish_lsp(&path).unwrap()
        };
        net.set_fec_via_lsps(s, t, &[id]).unwrap();
        let trace = net.forward(s, t).unwrap();
        prop_assert_eq!(trace.route(), path.nodes());
        prop_assert_eq!(trace.links(), path.edges());
        let expected_ops = if php { path.hop_count() } else { path.hop_count() + 1 };
        prop_assert_eq!(trace.label_ops() as usize, expected_ops);
        prop_assert_eq!(trace.max_stack_depth(), 1);
    }

    /// Any failed edge on the LSP makes forwarding fail with DeadLink at
    /// exactly the upstream router.
    #[test]
    fn dead_links_are_reported_precisely(
        n in 5usize..18,
        seed in 0u64..2000,
        which in 0usize..100,
    ) {
        let g = gnm_connected(n, 2 * n, 7, seed);
        let m = model(seed);
        let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
        let path = shortest_path(&g, &m, s, t).unwrap();
        if path.is_trivial() {
            return Ok(());
        }
        let mut net = MplsNetwork::new(g);
        let id = net.establish_lsp(&path).unwrap();
        net.set_fec_via_lsps(s, t, &[id]).unwrap();
        let idx = which % path.hop_count();
        let failures = FailureSet::of_edge(path.edges()[idx]);
        match net.forward_with_failures(s, t, &failures) {
            Err(ForwardError::DeadLink { router, link }) => {
                prop_assert_eq!(router, path.nodes()[idx]);
                prop_assert_eq!(link, path.edges()[idx]);
            }
            other => prop_assert!(false, "expected DeadLink, got {other:?}"),
        }
    }

    /// A sink tree built from a shortest-path tree delivers from every
    /// router along the canonical path (same routes as per-pair LSPs).
    #[test]
    fn sink_tree_matches_canonical_paths(
        n in 5usize..16,
        seed in 0u64..2000,
        dest in 0usize..1000,
    ) {
        let g = gnm_connected(n, 2 * n, 6, seed);
        let m = model(seed);
        let dest = NodeId::new(dest % n);
        let spt = shortest_path_tree(&g, &m, dest);
        let next_hop: Vec<_> = (0..n)
            .map(|r| spt.parent_edge(NodeId::new(r)))
            .collect();
        let mut net = MplsNetwork::new(g.clone());
        let id = net.establish_sink_tree(dest, next_hop).unwrap();
        let tree = net.sink_tree(id).unwrap().clone();
        prop_assert_eq!(net.total_ilm_entries(), tree.router_count());
        for s in 0..n {
            let s = NodeId::new(s);
            if s == dest {
                continue;
            }
            let label = tree.label_at(s).unwrap();
            net.set_fec_raw(s, dest, vec![label]).unwrap();
            let trace = net.forward(s, dest).unwrap();
            let canonical = shortest_path(&g, &m, s, dest).unwrap();
            prop_assert_eq!(trace.route(), canonical.nodes(), "from {}", s);
        }
    }

    /// Concatenating two LSPs via the FEC stack visits both paths in
    /// order, with stack depth 2.
    #[test]
    fn concatenation_traverses_both_lsps(
        n in 6usize..16,
        seed in 0u64..2000,
        mid in 0usize..1000,
    ) {
        let g = gnm_connected(n, 2 * n, 6, seed);
        let m = model(seed);
        let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
        let mid = NodeId::new(1 + mid % (n - 2));
        if mid == s || mid == t {
            return Ok(());
        }
        let p1 = shortest_path(&g, &m, s, mid).unwrap();
        let p2 = shortest_path(&g, &m, mid, t).unwrap();
        if p1.is_trivial() || p2.is_trivial() {
            return Ok(());
        }
        let mut net = MplsNetwork::new(g);
        let l1 = net.establish_lsp(&p1).unwrap();
        let l2 = net.establish_lsp(&p2).unwrap();
        net.set_fec_via_lsps(s, t, &[l1, l2]).unwrap();
        let trace = net.forward(s, t).unwrap();
        let expected = p1.concat(&p2).unwrap();
        prop_assert_eq!(trace.route(), expected.nodes());
        prop_assert_eq!(trace.max_stack_depth(), 2);
    }
}
