//! Labels, label stacks, and LSP identifiers.

use core::fmt;

/// An MPLS label in some router's per-platform label space.
///
/// Labels are only meaningful relative to the router that allocated them —
/// the same numeric value names different LSPs at different routers, as in
/// real MPLS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

impl Label {
    /// Creates a label from its raw value.
    #[inline]
    pub fn new(value: u32) -> Self {
        Label(value)
    }

    /// The raw 20-bit-style label value (we allow the full `u32` range).
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifier of an established LSP in an
/// [`MplsNetwork`](crate::MplsNetwork).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LspId(u32);

impl LspId {
    pub(crate) fn new(index: usize) -> Self {
        LspId(index as u32)
    }

    /// The dense index of this LSP.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsp{}", self.0)
    }
}

/// The MPLS label stack carried by a packet. The *top* of the stack is the
/// label examined by the next LSR.
///
/// ```
/// use rbpc_mpls::{Label, LabelStack};
/// let mut s = LabelStack::new();
/// s.push(Label::new(7));   // inner
/// s.push(Label::new(9));   // outer / top
/// assert_eq!(s.top(), Some(Label::new(9)));
/// assert_eq!(s.pop(), Some(Label::new(9)));
/// assert_eq!(s.depth(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct LabelStack {
    // Bottom-first storage; top is the last element.
    labels: Vec<Label>,
}

impl LabelStack {
    /// An empty stack (a plain IP packet, in MPLS terms).
    pub fn new() -> Self {
        LabelStack::default()
    }

    /// Builds a stack from bottom-first labels (the last element is the
    /// top, i.e. the first label to be examined).
    pub fn from_bottom_first(labels: impl Into<Vec<Label>>) -> Self {
        LabelStack {
            labels: labels.into(),
        }
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels on the stack.
    pub fn depth(&self) -> usize {
        self.labels.len()
    }

    /// The top label, if any.
    pub fn top(&self) -> Option<Label> {
        self.labels.last().copied()
    }

    /// Pushes a new top label.
    pub fn push(&mut self, label: Label) {
        self.labels.push(label);
    }

    /// Pops the top label.
    pub fn pop(&mut self) -> Option<Label> {
        self.labels.pop()
    }

    /// Replaces the top label (a swap). Returns the old top.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty — swapping on an empty stack is a
    /// forwarding bug, caught eagerly.
    pub fn swap(&mut self, label: Label) -> Label {
        let old = self
            .labels
            .pop()
            .expect("invariant: swap requires a nonempty label stack");
        self.labels.push(label);
        old
    }

    /// The labels bottom-first (top is last).
    pub fn as_slice(&self) -> &[Label] {
        &self.labels
    }
}

impl fmt::Display for LabelStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, l) in self.labels.iter().rev().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut s = LabelStack::new();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
        s.push(Label::new(1));
        s.push(Label::new(2));
        assert_eq!(s.depth(), 2);
        assert_eq!(s.pop(), Some(Label::new(2)));
        assert_eq!(s.pop(), Some(Label::new(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn swap_replaces_top() {
        let mut s = LabelStack::from_bottom_first(vec![Label::new(1), Label::new(2)]);
        let old = s.swap(Label::new(9));
        assert_eq!(old, Label::new(2));
        assert_eq!(s.top(), Some(Label::new(9)));
        assert_eq!(s.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "invariant: swap requires a nonempty label stack")]
    fn swap_on_empty_panics() {
        let mut s = LabelStack::new();
        s.swap(Label::new(1));
    }

    #[test]
    fn bottom_first_ordering() {
        let s = LabelStack::from_bottom_first(vec![Label::new(10), Label::new(20)]);
        assert_eq!(s.top(), Some(Label::new(20)));
        assert_eq!(s.as_slice(), &[Label::new(10), Label::new(20)]);
    }

    #[test]
    fn display_top_first() {
        let s = LabelStack::from_bottom_first(vec![Label::new(1), Label::new(2)]);
        assert_eq!(s.to_string(), "[L2 L1]");
        assert_eq!(Label::new(7).to_string(), "L7");
        assert_eq!(LspId::new(3).to_string(), "lsp3");
    }

    #[test]
    fn label_round_trip() {
        assert_eq!(Label::new(42).value(), 42);
        assert_eq!(LspId::new(5).index(), 5);
    }
}
