//! Error types for MPLS control- and data-plane operations.

use crate::{Label, LspId};
use core::fmt;
use rbpc_graph::{EdgeId, NodeId, PathError};

/// Error returned by control-plane operations on an
/// [`MplsNetwork`](crate::MplsNetwork).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MplsError {
    /// A node id was out of range for the underlying graph.
    UnknownRouter {
        /// The offending router.
        router: NodeId,
    },
    /// An LSP id did not name an established LSP.
    UnknownLsp {
        /// The offending LSP id.
        lsp: LspId,
    },
    /// The LSP was already torn down.
    LspInactive {
        /// The torn-down LSP.
        lsp: LspId,
    },
    /// A trivial (zero-hop) path cannot be provisioned as an LSP.
    TrivialPath,
    /// LSPs given to a FEC entry do not concatenate (`lsps[i]` must end
    /// where `lsps[i + 1]` starts).
    BrokenChain {
        /// Index of the first LSP that does not start where its
        /// predecessor ends.
        position: usize,
    },
    /// A FEC chain must start at the router whose table is updated.
    ChainStartsElsewhere {
        /// Router whose FEC table was addressed.
        router: NodeId,
        /// Where the first LSP actually starts.
        chain_start: NodeId,
    },
    /// A label had no ILM entry at the given router (for ILM rewrites).
    NoSuchIlmEntry {
        /// The router.
        router: NodeId,
        /// The unmatched label.
        label: Label,
    },
    /// An underlying path error (propagated from path manipulation).
    Path(PathError),
}

impl fmt::Display for MplsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MplsError::UnknownRouter { router } => write!(f, "unknown router {router}"),
            MplsError::UnknownLsp { lsp } => write!(f, "unknown LSP {lsp}"),
            MplsError::LspInactive { lsp } => write!(f, "LSP {lsp} was torn down"),
            MplsError::TrivialPath => write!(f, "cannot establish an LSP over a zero-hop path"),
            MplsError::BrokenChain { position } => {
                write!(f, "LSP chain breaks at position {position}")
            }
            MplsError::ChainStartsElsewhere {
                router,
                chain_start,
            } => write!(f, "FEC chain for {router} starts at {chain_start} instead"),
            MplsError::NoSuchIlmEntry { router, label } => {
                write!(f, "router {router} has no ILM entry for {label}")
            }
            MplsError::Path(e) => write!(f, "path error: {e}"),
        }
    }
}

impl std::error::Error for MplsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MplsError::Path(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PathError> for MplsError {
    fn from(e: PathError) -> Self {
        MplsError::Path(e)
    }
}

/// Error produced while forwarding a packet through the data plane.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ForwardError {
    /// The source router has no FEC entry for the destination.
    NoFecEntry {
        /// Ingress router.
        router: NodeId,
        /// Destination with no entry.
        dest: NodeId,
    },
    /// A router received a label it has no ILM entry for (black hole).
    NoIlmEntry {
        /// The router that dropped the packet.
        router: NodeId,
        /// The unmatched label.
        label: Label,
    },
    /// The packet was directed over a failed link.
    DeadLink {
        /// Router at which the dead link was selected.
        router: NodeId,
        /// The failed link.
        link: EdgeId,
    },
    /// The packet was directed to a failed router.
    DeadRouter {
        /// The failed router the packet was sent to.
        router: NodeId,
    },
    /// The label stack emptied at a router that is not the destination —
    /// the packet would fall back to IP routing, which RBPC never needs.
    StackUnderflow {
        /// Where the stack emptied.
        router: NodeId,
    },
    /// Too many label operations: a forwarding loop.
    TtlExceeded {
        /// The TTL that was exhausted.
        ttl: u32,
    },
}

impl fmt::Display for ForwardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ForwardError::NoFecEntry { router, dest } => {
                write!(f, "router {router} has no FEC entry for destination {dest}")
            }
            ForwardError::NoIlmEntry { router, label } => {
                write!(f, "router {router} black-holed label {label}")
            }
            ForwardError::DeadLink { router, link } => {
                write!(f, "router {router} forwarded over failed link {link}")
            }
            ForwardError::DeadRouter { router } => {
                write!(f, "packet sent to failed router {router}")
            }
            ForwardError::StackUnderflow { router } => {
                write!(f, "label stack emptied at non-destination router {router}")
            }
            ForwardError::TtlExceeded { ttl } => write!(f, "ttl {ttl} exceeded: forwarding loop"),
        }
    }
}

impl std::error::Error for ForwardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = MplsError::ChainStartsElsewhere {
            router: NodeId::new(1),
            chain_start: NodeId::new(2),
        };
        assert!(e.to_string().contains("n1"));
        assert!(e.to_string().contains("n2"));
        let f = ForwardError::DeadLink {
            router: NodeId::new(3),
            link: EdgeId::new(4),
        };
        assert!(f.to_string().contains("e4"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MplsError>();
        assert_err::<ForwardError>();
    }

    #[test]
    fn path_error_converts() {
        let e: MplsError = PathError::Empty.into();
        assert!(matches!(e, MplsError::Path(PathError::Empty)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
