//! The MPLS domain: routers over a graph, LSP lifecycle, and the data plane.

use crate::merged::SinkTreeRecord;
use crate::{
    FecEntry, ForwardError, ForwardTrace, IlmEntry, IlmOp, Label, LabelStack, LspId, MplsError,
    Router, SignalingStats,
};
use rbpc_graph::{FailureSet, Graph, NodeId, Path, PathError};
use rbpc_obs::{obs_count, obs_event, obs_record, obs_trace, obs_trace_attr};

/// An established label-switched path.
#[derive(Debug, Clone)]
pub struct LspRecord {
    path: Path,
    /// Incoming label at each node of `path`; `None` at the egress when
    /// penultimate-hop popping is used.
    labels: Vec<Option<Label>>,
    php: bool,
    active: bool,
}

impl LspRecord {
    /// The path this LSP follows.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the LSP uses penultimate-hop popping.
    pub fn php(&self) -> bool {
        self.php
    }

    /// Whether the LSP is currently established.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The ingress router.
    pub fn ingress(&self) -> NodeId {
        self.path.source()
    }

    /// The egress router.
    pub fn egress(&self) -> NodeId {
        self.path.target()
    }

    /// The label under which this LSP is entered at its ingress. Pushing
    /// this label at the ingress sends a packet down the LSP — the
    /// concatenation primitive.
    pub fn entry_label(&self) -> Label {
        self.labels[0].expect("invariant: ingress always holds a label")
    }

    /// The incoming label of this LSP at `node`, if `node` is on the path
    /// and holds one (the egress does not, under PHP).
    pub fn label_at(&self, node: NodeId) -> Option<Label> {
        let pos = self.path.position_of(node)?;
        self.labels[pos]
    }
}

/// A simulated MPLS domain: one [`Router`] per graph node, established
/// LSPs, and signaling accounting.
///
/// See the [crate docs](crate) for the forwarding model.
#[derive(Debug, Clone)]
pub struct MplsNetwork {
    graph: Graph,
    routers: Vec<Router>,
    lsps: Vec<LspRecord>,
    sink_trees: Vec<SinkTreeRecord>,
    stats: SignalingStats,
}

impl MplsNetwork {
    /// Creates a domain over `graph` with empty tables.
    pub fn new(graph: Graph) -> Self {
        let routers = (0..graph.node_count())
            .map(|i| Router::new(NodeId::new(i)))
            .collect();
        MplsNetwork {
            graph,
            routers,
            lsps: Vec::new(),
            sink_trees: Vec::new(),
            stats: SignalingStats::new(),
        }
    }

    // Crate-internal accessors used by the merged-LSP module.
    pub(crate) fn router_mut(&mut self, index: usize) -> &mut Router {
        &mut self.routers[index]
    }

    pub(crate) fn bump_ilm_writes(&mut self, by: u64) {
        self.stats.ilm_writes += by;
    }

    pub(crate) fn bump_messages(&mut self, by: u64) {
        self.stats.messages += by;
    }

    pub(crate) fn sink_trees_len(&self) -> usize {
        self.sink_trees.len()
    }

    pub(crate) fn push_sink_tree(&mut self, rec: SinkTreeRecord) {
        self.sink_trees.push(rec);
    }

    pub(crate) fn sink_tree_ref(&self, index: usize) -> Option<&SinkTreeRecord> {
        self.sink_trees.get(index)
    }

    pub(crate) fn sink_tree_mut(&mut self, index: usize) -> Option<&mut SinkTreeRecord> {
        self.sink_trees.get_mut(index)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Immutable access to a router.
    ///
    /// # Errors
    ///
    /// [`MplsError::UnknownRouter`] if out of range.
    pub fn router(&self, id: NodeId) -> Result<&Router, MplsError> {
        self.routers
            .get(id.index())
            .ok_or(MplsError::UnknownRouter { router: id })
    }

    /// Signaling counters accumulated so far.
    pub fn stats(&self) -> SignalingStats {
        self.stats
    }

    /// ILM table sizes across all routers — the paper's table-size metric.
    pub fn ilm_sizes(&self) -> Vec<usize> {
        self.routers.iter().map(Router::ilm_size).collect()
    }

    /// Sum of all ILM table sizes.
    pub fn total_ilm_entries(&self) -> usize {
        self.routers.iter().map(Router::ilm_size).sum()
    }

    /// Looks up an established LSP.
    ///
    /// # Errors
    ///
    /// [`MplsError::UnknownLsp`] if the id is stale.
    pub fn lsp(&self, id: LspId) -> Result<&LspRecord, MplsError> {
        self.lsps
            .get(id.index())
            .ok_or(MplsError::UnknownLsp { lsp: id })
    }

    /// Iterates over all LSP records (including torn-down ones).
    pub fn lsps(&self) -> impl Iterator<Item = (LspId, &LspRecord)> + '_ {
        self.lsps
            .iter()
            .enumerate()
            .map(|(i, r)| (LspId::new(i), r))
    }

    /// Establishes an LSP along `path` with a label at every hop
    /// (no penultimate-hop popping).
    ///
    /// Signaling cost: two messages per hop (label request downstream,
    /// label mapping upstream) and one ILM write per router on the path.
    ///
    /// # Errors
    ///
    /// * [`MplsError::TrivialPath`] for a zero-hop path;
    /// * [`MplsError::Path`] if the path does not fit this network's graph.
    pub fn establish_lsp(&mut self, path: &Path) -> Result<LspId, MplsError> {
        self.establish(path, false)
    }

    /// Establishes an LSP along `path` with penultimate-hop popping: the
    /// egress allocates no label and the penultimate router pops instead of
    /// swapping. Saves one ILM entry per LSP.
    ///
    /// # Errors
    ///
    /// Same as [`MplsNetwork::establish_lsp`].
    pub fn establish_lsp_php(&mut self, path: &Path) -> Result<LspId, MplsError> {
        self.establish(path, true)
    }

    fn validate_path(&self, path: &Path) -> Result<(), MplsError> {
        for (i, &e) in path.edges().iter().enumerate() {
            let rec = self
                .graph
                .edge_checked(e)
                .ok_or(MplsError::Path(PathError::NotAWalk { position: i }))?;
            if !(rec.touches(path.nodes()[i]) && rec.touches(path.nodes()[i + 1])) {
                return Err(MplsError::Path(PathError::NotAWalk { position: i }));
            }
        }
        Ok(())
    }

    fn establish(&mut self, path: &Path, php: bool) -> Result<LspId, MplsError> {
        if path.is_trivial() {
            return Err(MplsError::TrivialPath);
        }
        self.validate_path(path)?;
        let m = path.nodes().len();
        let mut labels: Vec<Option<Label>> = Vec::with_capacity(m);
        for (i, &node) in path.nodes().iter().enumerate() {
            if php && i == m - 1 {
                labels.push(None);
            } else {
                labels.push(Some(self.routers[node.index()].allocate_label()));
            }
        }
        // Install ILM entries.
        for i in 0..m {
            let Some(label) = labels[i] else { continue };
            let node = path.nodes()[i];
            let op = if i == m - 1 {
                IlmOp::PopAndContinue
            } else if php && i == m - 2 {
                IlmOp::PopAndForward {
                    out: path.edges()[i],
                }
            } else {
                IlmOp::SwapAndForward {
                    out: path.edges()[i],
                    next_label: labels[i + 1].expect("invariant: non-egress holds a label"),
                }
            };
            self.routers[node.index()].install_ilm(label, IlmEntry { op });
            self.stats.ilm_writes += 1;
            obs_count!("mpls.signaling.ilm_writes");
        }
        self.stats.messages += 2 * path.hop_count() as u64;
        self.stats.lsps_established += 1;
        obs_count!("mpls.signaling.messages", 2 * path.hop_count() as u64);
        obs_count!("mpls.signaling.lsps_established");
        let id = LspId::new(self.lsps.len());
        self.lsps.push(LspRecord {
            path: path.clone(),
            labels,
            php,
            active: true,
        });
        Ok(id)
    }

    /// Tears an LSP down: removes its ILM entries and sends one release
    /// message per hop.
    ///
    /// # Errors
    ///
    /// * [`MplsError::UnknownLsp`] for a stale id;
    /// * [`MplsError::LspInactive`] if already torn down.
    pub fn teardown_lsp(&mut self, id: LspId) -> Result<(), MplsError> {
        let rec = self
            .lsps
            .get_mut(id.index())
            .ok_or(MplsError::UnknownLsp { lsp: id })?;
        if !rec.active {
            return Err(MplsError::LspInactive { lsp: id });
        }
        rec.active = false;
        let nodes: Vec<NodeId> = rec.path.nodes().to_vec();
        let labels = rec.labels.clone();
        let hops = rec.path.hop_count() as u64;
        for (node, label) in nodes.into_iter().zip(labels) {
            if let Some(l) = label {
                self.routers[node.index()].remove_ilm(l);
                self.stats.ilm_writes += 1;
                obs_count!("mpls.signaling.ilm_writes");
            }
        }
        self.stats.messages += hops;
        self.stats.lsps_torn_down += 1;
        obs_count!("mpls.signaling.messages", hops);
        obs_count!("mpls.signaling.lsps_torn_down");
        Ok(())
    }

    /// Installs a FEC entry at `router` sending traffic for `dest` over the
    /// concatenation of the given LSPs (the RBPC restoration action at a
    /// source router: one local table write, zero signaling messages).
    ///
    /// # Errors
    ///
    /// * [`MplsError::UnknownRouter`] / [`MplsError::UnknownLsp`] /
    ///   [`MplsError::LspInactive`] for bad references;
    /// * [`MplsError::ChainStartsElsewhere`] if the first LSP does not
    ///   start at `router`;
    /// * [`MplsError::BrokenChain`] if consecutive LSPs do not connect or
    ///   the chain does not end at `dest`.
    pub fn set_fec_via_lsps(
        &mut self,
        router: NodeId,
        dest: NodeId,
        lsps: &[LspId],
    ) -> Result<(), MplsError> {
        let mut trace = obs_trace!(
            "mpls.fec_rewrite",
            cat: "rewrite",
            router = router.index(),
            dest = dest.index(),
            lsps = lsps.len(),
        );
        self.router(router)?;
        self.router(dest)?;
        let mut entry_labels = Vec::with_capacity(lsps.len());
        let mut at = router;
        for (i, &id) in lsps.iter().enumerate() {
            let rec = self.lsp(id)?;
            if !rec.is_active() {
                return Err(MplsError::LspInactive { lsp: id });
            }
            if rec.ingress() != at {
                if i == 0 {
                    return Err(MplsError::ChainStartsElsewhere {
                        router,
                        chain_start: rec.ingress(),
                    });
                }
                return Err(MplsError::BrokenChain { position: i });
            }
            entry_labels.push(rec.entry_label());
            at = rec.egress();
        }
        if at != dest {
            return Err(MplsError::BrokenChain {
                position: lsps.len(),
            });
        }
        // Bottom-first: the first LSP of the chain goes on top.
        entry_labels.reverse();
        let depth = entry_labels.len();
        self.routers[router.index()].install_fec(
            dest,
            FecEntry {
                labels: entry_labels,
            },
        );
        self.stats.fec_writes += 1;
        obs_count!("mpls.signaling.fec_writes");
        obs_trace_attr!(trace, stack_depth = depth);
        obs_event!(
            "fec_rewrite",
            router = router.index(),
            dest = dest.index(),
            lsps = lsps.len(),
            stack_depth = depth,
        );
        Ok(())
    }

    /// Installs a raw FEC entry (bottom-first labels). For schemes that
    /// compose labels themselves.
    ///
    /// # Errors
    ///
    /// [`MplsError::UnknownRouter`] if `router` or `dest` is out of range.
    pub fn set_fec_raw(
        &mut self,
        router: NodeId,
        dest: NodeId,
        labels: Vec<Label>,
    ) -> Result<(), MplsError> {
        self.router(router)?;
        self.router(dest)?;
        let depth = labels.len();
        self.routers[router.index()].install_fec(dest, FecEntry { labels });
        self.stats.fec_writes += 1;
        obs_count!("mpls.signaling.fec_writes");
        obs_event!(
            "fec_rewrite",
            router = router.index(),
            dest = dest.index(),
            stack_depth = depth,
        );
        Ok(())
    }

    /// Removes the FEC entry for `dest` at `router`, if any.
    ///
    /// # Errors
    ///
    /// [`MplsError::UnknownRouter`] if `router` is out of range.
    pub fn remove_fec(&mut self, router: NodeId, dest: NodeId) -> Result<(), MplsError> {
        self.router(router)?;
        if self.routers[router.index()].remove_fec(dest).is_some() {
            self.stats.fec_writes += 1;
            obs_count!("mpls.signaling.fec_writes");
        }
        Ok(())
    }

    /// Rewrites the ILM entry for `label` at `router` to splice packets
    /// onto the concatenation of LSPs named by `chain` — the **local RBPC**
    /// action at the router adjacent to a failure. Every LSP in `chain`
    /// must start at `router`… no: the first must start at `router`, and
    /// consecutive LSPs must connect; the packet re-enters the ILM locally.
    ///
    /// Returns the previous entry so the caller can reverse the splice when
    /// the failure recovers.
    ///
    /// # Errors
    ///
    /// * [`MplsError::NoSuchIlmEntry`] if `label` has no entry at `router`
    ///   (splices only rewrite existing LSP state);
    /// * chain-validation errors as in [`MplsNetwork::set_fec_via_lsps`],
    ///   except the chain may end anywhere (`tail_labels` continue the
    ///   original LSP).
    pub fn ilm_splice(
        &mut self,
        router: NodeId,
        label: Label,
        chain: &[LspId],
        tail_labels: &[Label],
    ) -> Result<IlmEntry, MplsError> {
        let mut trace = obs_trace!(
            "mpls.ilm_splice",
            cat: "splice",
            router = router.index(),
            label = label.value(),
            chain = chain.len(),
        );
        self.router(router)?;
        let mut entry_labels: Vec<Label> = tail_labels.to_vec();
        let mut at = router;
        let mut chain_entry_labels = Vec::with_capacity(chain.len());
        for (i, &id) in chain.iter().enumerate() {
            let rec = self.lsp(id)?;
            if !rec.is_active() {
                return Err(MplsError::LspInactive { lsp: id });
            }
            if rec.ingress() != at {
                if i == 0 {
                    return Err(MplsError::ChainStartsElsewhere {
                        router,
                        chain_start: rec.ingress(),
                    });
                }
                return Err(MplsError::BrokenChain { position: i });
            }
            chain_entry_labels.push(rec.entry_label());
            at = rec.egress();
        }
        chain_entry_labels.reverse();
        entry_labels.extend(chain_entry_labels);
        let old = self.routers[router.index()]
            .ilm(label)
            .cloned()
            .ok_or(MplsError::NoSuchIlmEntry { router, label })?;
        let depth = entry_labels.len();
        self.routers[router.index()].install_ilm(
            label,
            IlmEntry {
                op: IlmOp::ReplaceAndContinue {
                    labels: entry_labels,
                },
            },
        );
        self.stats.ilm_writes += 1;
        obs_count!("mpls.signaling.ilm_writes");
        obs_count!("mpls.ilm_splices");
        obs_trace_attr!(trace, stack_depth = depth);
        obs_event!(
            "ilm_splice",
            router = router.index(),
            label = label.value(),
            chain = chain.len(),
            stack_depth = depth,
        );
        Ok(old)
    }

    /// Installs an arbitrary ILM entry (e.g. to reverse a splice after
    /// recovery). Returns the previous entry.
    ///
    /// # Errors
    ///
    /// [`MplsError::UnknownRouter`] if `router` is out of range.
    pub fn install_ilm_entry(
        &mut self,
        router: NodeId,
        label: Label,
        entry: IlmEntry,
    ) -> Result<Option<IlmEntry>, MplsError> {
        self.router(router)?;
        self.stats.ilm_writes += 1;
        obs_count!("mpls.signaling.ilm_writes");
        Ok(self.routers[router.index()].install_ilm(label, entry))
    }

    /// Forwards a packet from `src` to `dest` using `src`'s FEC table, with
    /// everything operational.
    ///
    /// # Errors
    ///
    /// Any [`ForwardError`]; see [`MplsNetwork::forward_with_failures`].
    pub fn forward(&self, src: NodeId, dest: NodeId) -> Result<ForwardTrace, ForwardError> {
        let none = FailureSet::new();
        self.forward_with_failures(src, dest, &none)
    }

    /// Forwards a packet from `src` to `dest` while the elements in
    /// `failures` are down. The data plane has no routing brain: it
    /// executes the tables exactly, so a broken LSP really black-holes
    /// until some restoration scheme rewrites the tables.
    ///
    /// # Errors
    ///
    /// * [`ForwardError::NoFecEntry`] if `src` has no entry for `dest`;
    /// * [`ForwardError::DeadLink`] / [`ForwardError::DeadRouter`] when the
    ///   packet hits a failed element;
    /// * [`ForwardError::NoIlmEntry`] on a label black hole;
    /// * [`ForwardError::StackUnderflow`] if the stack empties away from
    ///   `dest`;
    /// * [`ForwardError::TtlExceeded`] on a forwarding loop.
    pub fn forward_with_failures(
        &self,
        src: NodeId,
        dest: NodeId,
        failures: &FailureSet,
    ) -> Result<ForwardTrace, ForwardError> {
        obs_count!("mpls.forward.packets");
        let mut span = obs_trace!(
            "mpls.forward",
            cat: "forward",
            src = src.index(),
            dst = dest.index(),
            k_failures = failures.failed_edge_count(),
        );
        let result = self.forward_inner(src, dest, failures);
        match &result {
            Ok(trace) => {
                obs_count!("mpls.forward.delivered");
                obs_record!("mpls.forward.hops", trace.hop_count());
                obs_record!("mpls.forward.label_ops", trace.label_ops());
                obs_trace_attr!(span, hops = trace.hop_count());
                obs_trace_attr!(span, label_ops = trace.label_ops());
            }
            Err(_) => obs_count!("mpls.forward.errors"),
        }
        result
    }

    fn forward_inner(
        &self,
        src: NodeId,
        dest: NodeId,
        failures: &FailureSet,
    ) -> Result<ForwardTrace, ForwardError> {
        let mut trace = ForwardTrace::new(src);
        if failures.node_failed(src) {
            return Err(ForwardError::DeadRouter { router: src });
        }
        let fec = self.routers[src.index()]
            .fec(dest)
            .ok_or(ForwardError::NoFecEntry { router: src, dest })?;
        let mut stack = LabelStack::from_bottom_first(fec.labels.clone());
        let mut at = src;
        let ttl: u32 = 4 * self.graph.node_count() as u32 + 64;
        let mut ops = 0u32;

        loop {
            if stack.is_empty() {
                if at == dest {
                    return Ok(trace);
                }
                return Err(ForwardError::StackUnderflow { router: at });
            }
            ops += 1;
            if ops > ttl {
                return Err(ForwardError::TtlExceeded { ttl });
            }
            let label = stack.top().expect("invariant: nonempty stack has a top");
            let entry = self.routers[at.index()]
                .ilm(label)
                .ok_or(ForwardError::NoIlmEntry { router: at, label })?;
            trace.count_op(stack.depth());
            match &entry.op {
                IlmOp::SwapAndForward { out, next_label } => {
                    stack.swap(*next_label);
                    at = self.traverse(at, *out, failures, &mut trace)?;
                }
                IlmOp::PopAndForward { out } => {
                    stack.pop();
                    at = self.traverse(at, *out, failures, &mut trace)?;
                }
                IlmOp::PopAndContinue => {
                    stack.pop();
                }
                IlmOp::ReplaceAndContinue { labels } => {
                    stack.pop();
                    for &l in labels {
                        stack.push(l);
                    }
                }
            }
        }
    }

    fn traverse(
        &self,
        at: NodeId,
        link: rbpc_graph::EdgeId,
        failures: &FailureSet,
        trace: &mut ForwardTrace,
    ) -> Result<NodeId, ForwardError> {
        if failures.edge_failed(link) {
            return Err(ForwardError::DeadLink { router: at, link });
        }
        let next = self.graph.edge(link).other(at);
        if failures.node_failed(next) {
            return Err(ForwardError::DeadRouter { router: next });
        }
        trace.hop(link, next);
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::{EdgeId, Graph};

    /// 0 -e0- 1 -e1- 2 -e2- 3 plus a detour 1 -e3- 4 -e4- 2.
    fn net() -> (MplsNetwork, Vec<EdgeId>) {
        let mut g = Graph::new(5);
        let e = vec![
            g.add_edge(0, 1, 1).unwrap(),
            g.add_edge(1, 2, 1).unwrap(),
            g.add_edge(2, 3, 1).unwrap(),
            g.add_edge(1, 4, 1).unwrap(),
            g.add_edge(4, 2, 1).unwrap(),
        ];
        (MplsNetwork::new(g), e)
    }

    fn path(net: &MplsNetwork, start: usize, edges: &[EdgeId]) -> Path {
        Path::from_edges(net.graph(), start.into(), edges).unwrap()
    }

    #[test]
    fn establish_and_forward() {
        let (mut net, e) = net();
        let p = path(&net, 0, &[e[0], e[1], e[2]]);
        let lsp = net.establish_lsp(&p).unwrap();
        net.set_fec_via_lsps(0.into(), 3.into(), &[lsp]).unwrap();
        let t = net.forward(0.into(), 3.into()).unwrap();
        assert_eq!(t.route(), p.nodes());
        assert_eq!(t.links(), p.edges());
        assert_eq!(t.hop_count(), 3);
        // Swap at 0, 1, 2, pop at 3.
        assert_eq!(t.label_ops(), 4);
        assert_eq!(t.max_stack_depth(), 1);
    }

    #[test]
    fn php_saves_an_entry_and_still_delivers() {
        let (mut net, e) = net();
        let p = path(&net, 0, &[e[0], e[1], e[2]]);
        let before = net.total_ilm_entries();
        let lsp = net.establish_lsp_php(&p).unwrap();
        assert_eq!(net.total_ilm_entries(), before + 3); // not 4
        net.set_fec_via_lsps(0.into(), 3.into(), &[lsp]).unwrap();
        let t = net.forward(0.into(), 3.into()).unwrap();
        assert_eq!(t.route(), p.nodes());
        assert_eq!(t.label_ops(), 3); // egress does nothing
        assert_eq!(net.lsp(lsp).unwrap().label_at(3.into()), None);
    }

    #[test]
    fn concatenation_via_stack() {
        // Two LSPs 0->2 (via 1) and 2->3; FEC chains them with a 2-deep stack.
        let (mut net, e) = net();
        let p1 = path(&net, 0, &[e[0], e[1]]);
        let p2 = path(&net, 2, &[e[2]]);
        let l1 = net.establish_lsp(&p1).unwrap();
        let l2 = net.establish_lsp(&p2).unwrap();
        net.set_fec_via_lsps(0.into(), 3.into(), &[l1, l2]).unwrap();
        let t = net.forward(0.into(), 3.into()).unwrap();
        assert_eq!(
            t.route(),
            &[
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
        assert_eq!(t.max_stack_depth(), 2);
    }

    #[test]
    fn broken_lsp_black_holes_until_spliced() {
        let (mut net, e) = net();
        let p = path(&net, 0, &[e[0], e[1], e[2]]);
        let lsp = net.establish_lsp(&p).unwrap();
        net.set_fec_via_lsps(0.into(), 3.into(), &[lsp]).unwrap();
        let failures = FailureSet::of_edge(e[1]);
        let err = net
            .forward_with_failures(0.into(), 3.into(), &failures)
            .unwrap_err();
        assert_eq!(
            err,
            ForwardError::DeadLink {
                router: 1.into(),
                link: e[1]
            }
        );

        // Local splice at router 1: detour via 4 on two bypass LSPs, then
        // resume the original LSP at router 2.
        let bypass = path(&net, 1, &[e[3], e[4]]);
        let bl = net.establish_lsp(&bypass).unwrap();
        let broken_label = net.lsp(lsp).unwrap().label_at(1.into()).unwrap();
        let resume = net.lsp(lsp).unwrap().label_at(2.into()).unwrap();
        let old = net
            .ilm_splice(1.into(), broken_label, &[bl], &[resume])
            .unwrap();
        let t = net
            .forward_with_failures(0.into(), 3.into(), &failures)
            .unwrap();
        assert_eq!(
            t.route(),
            &[
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(4),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
        // Reverse the splice when the link recovers; original path works.
        net.install_ilm_entry(1.into(), broken_label, old).unwrap();
        let t2 = net.forward(0.into(), 3.into()).unwrap();
        assert_eq!(t2.route(), p.nodes());
    }

    #[test]
    fn teardown_removes_state() {
        let (mut net, e) = net();
        let p = path(&net, 0, &[e[0], e[1]]);
        let lsp = net.establish_lsp(&p).unwrap();
        assert_eq!(net.total_ilm_entries(), 3);
        net.teardown_lsp(lsp).unwrap();
        assert_eq!(net.total_ilm_entries(), 0);
        assert!(!net.lsp(lsp).unwrap().is_active());
        assert_eq!(
            net.teardown_lsp(lsp).unwrap_err(),
            MplsError::LspInactive { lsp }
        );
        // FEC via a dead LSP is rejected.
        assert_eq!(
            net.set_fec_via_lsps(0.into(), 2.into(), &[lsp])
                .unwrap_err(),
            MplsError::LspInactive { lsp }
        );
    }

    #[test]
    fn signaling_accounting() {
        let (mut net, e) = net();
        let p = path(&net, 0, &[e[0], e[1], e[2]]);
        let lsp = net.establish_lsp(&p).unwrap();
        let s = net.stats();
        assert_eq!(s.messages, 6); // 2 per hop
        assert_eq!(s.ilm_writes, 4);
        assert_eq!(s.lsps_established, 1);
        net.set_fec_via_lsps(0.into(), 3.into(), &[lsp]).unwrap();
        assert_eq!(net.stats().fec_writes, 1);
        net.teardown_lsp(lsp).unwrap();
        let s2 = net.stats();
        assert_eq!(s2.messages, 9); // +1 release per hop
        assert_eq!(s2.lsps_torn_down, 1);
        let window = s2.since(&s);
        assert_eq!(window.messages, 3);
    }

    #[test]
    fn chain_validation_errors() {
        let (mut net, e) = net();
        let p1 = path(&net, 0, &[e[0]]);
        let p2 = path(&net, 2, &[e[2]]);
        let l1 = net.establish_lsp(&p1).unwrap();
        let l2 = net.establish_lsp(&p2).unwrap();
        // Gap between node 1 and node 2.
        assert_eq!(
            net.set_fec_via_lsps(0.into(), 3.into(), &[l1, l2])
                .unwrap_err(),
            MplsError::BrokenChain { position: 1 }
        );
        // Chain starting elsewhere.
        assert_eq!(
            net.set_fec_via_lsps(1.into(), 3.into(), &[l2]).unwrap_err(),
            MplsError::ChainStartsElsewhere {
                router: 1.into(),
                chain_start: 2.into()
            }
        );
        // Chain not reaching the destination.
        assert_eq!(
            net.set_fec_via_lsps(0.into(), 3.into(), &[l1]).unwrap_err(),
            MplsError::BrokenChain { position: 1 }
        );
    }

    #[test]
    fn forwarding_error_cases() {
        let (mut net, e) = net();
        assert_eq!(
            net.forward(0.into(), 3.into()).unwrap_err(),
            ForwardError::NoFecEntry {
                router: 0.into(),
                dest: 3.into()
            }
        );
        // FEC pointing at a label nobody owns -> black hole.
        net.set_fec_raw(0.into(), 3.into(), vec![Label::new(999)])
            .unwrap();
        assert_eq!(
            net.forward(0.into(), 3.into()).unwrap_err(),
            ForwardError::NoIlmEntry {
                router: 0.into(),
                label: Label::new(999)
            }
        );
        // Stack that ends at the wrong router -> underflow.
        let p = path(&net, 0, &[e[0]]);
        let lsp = net.establish_lsp(&p).unwrap();
        let entry = net.lsp(lsp).unwrap().entry_label();
        net.set_fec_raw(0.into(), 3.into(), vec![entry]).unwrap();
        assert_eq!(
            net.forward(0.into(), 3.into()).unwrap_err(),
            ForwardError::StackUnderflow { router: 1.into() }
        );
        // Failed source router.
        let f = FailureSet::of_nodes([0usize]);
        assert_eq!(
            net.forward_with_failures(0.into(), 3.into(), &f)
                .unwrap_err(),
            ForwardError::DeadRouter { router: 0.into() }
        );
    }

    #[test]
    fn forwarding_loop_hits_ttl() {
        let (mut net, e) = net();
        let there = path(&net, 0, &[e[0]]);
        let back = path(&net, 1, &[e[0]]);
        let l1 = net.establish_lsp(&there).unwrap();
        let l2 = net.establish_lsp(&back).unwrap();
        // 0 -> 1 -> 0 -> 1 ... via a self-rewriting splice at 0.
        let entry1 = net.lsp(l1).unwrap().entry_label();
        let entry2 = net.lsp(l2).unwrap().entry_label();
        // At router 1, after LSP l1 pops, continue onto l2 back to 0, where
        // a FEC... we need an ILM loop: splice l1's egress pop into pushing
        // l2, and l2's egress into pushing l1 again.
        let lab_at_1 = net.lsp(l1).unwrap().label_at(1.into()).unwrap();
        let lab_at_0 = net.lsp(l2).unwrap().label_at(0.into()).unwrap();
        net.ilm_splice(1.into(), lab_at_1, &[l2], &[]).unwrap();
        net.ilm_splice(0.into(), lab_at_0, &[l1], &[]).unwrap();
        net.set_fec_raw(0.into(), 3.into(), vec![entry1]).unwrap();
        assert!(matches!(
            net.forward(0.into(), 3.into()).unwrap_err(),
            ForwardError::TtlExceeded { .. }
        ));
        let _ = entry2;
    }

    #[test]
    fn rejects_trivial_and_foreign_paths() {
        let (mut net, _) = net();
        assert_eq!(
            net.establish_lsp(&Path::trivial(0.into())).unwrap_err(),
            MplsError::TrivialPath
        );
        // A path whose edge ids don't exist here.
        let mut other = Graph::new(3);
        let x = other.add_edge(0, 2, 1).unwrap();
        let x2 = other.add_edge(2, 1, 1).unwrap();
        let foreign = Path::from_edges(&other, 0.into(), &[x, x2]).unwrap();
        // e0 exists in net's graph but connects 0-1 there, not 0-2.
        assert!(matches!(
            net.establish_lsp(&foreign),
            Err(MplsError::Path(_))
        ));
    }

    #[test]
    fn label_spaces_are_per_router() {
        let (mut net, e) = net();
        let p1 = path(&net, 0, &[e[0], e[1]]);
        let p2 = path(&net, 1, &[e[1], e[2]]);
        let l1 = net.establish_lsp(&p1).unwrap();
        let l2 = net.establish_lsp(&p2).unwrap();
        // Router 1 allocated labels for both LSPs; they must differ.
        let a = net.lsp(l1).unwrap().label_at(1.into()).unwrap();
        let b = net.lsp(l2).unwrap().label_at(1.into()).unwrap();
        assert_ne!(a, b);
        // But label values may repeat across routers (per-platform spaces):
        let at0 = net.lsp(l1).unwrap().label_at(0.into()).unwrap();
        let at1 = net.lsp(l2).unwrap().label_at(1.into()).unwrap();
        assert_eq!(at0.value(), 16);
        assert_eq!(at1.value(), 17);
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let (mut net, _) = net();
        assert!(matches!(
            net.router(99.into()),
            Err(MplsError::UnknownRouter { .. })
        ));
        assert!(matches!(
            net.lsp(LspId::new(5)),
            Err(MplsError::UnknownLsp { .. })
        ));
        assert!(matches!(
            net.set_fec_raw(99.into(), 0.into(), vec![]),
            Err(MplsError::UnknownRouter { .. })
        ));
        assert!(matches!(
            net.ilm_splice(0.into(), Label::new(1), &[], &[]),
            Err(MplsError::NoSuchIlmEntry { .. })
        ));
    }

    #[test]
    fn lsps_iterator_and_records() {
        let (mut net, e) = net();
        let p = path(&net, 0, &[e[0]]);
        let id = net.establish_lsp(&p).unwrap();
        let recs: Vec<_> = net.lsps().collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, id);
        assert_eq!(recs[0].1.ingress(), NodeId::new(0));
        assert_eq!(recs[0].1.egress(), NodeId::new(1));
        assert!(!recs[0].1.php());
        assert_eq!(recs[0].1.path(), &p);
        assert_eq!(recs[0].1.label_at(4.into()), None);
    }
}
