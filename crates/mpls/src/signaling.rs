//! Control-plane cost accounting.
//!
//! The paper's headline motivation is that tearing down and re-establishing
//! LSPs after a failure is expensive — label-distribution signaling along
//! both old and new paths plus ILM writes at every hop — while RBPC needs
//! only a FEC rewrite at the source (or one ILM splice at the adjacent
//! router). These counters make that comparison measurable.

/// Running totals of control-plane work performed on an
/// [`MplsNetwork`](crate::MplsNetwork).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SignalingStats {
    /// Label-distribution messages (label request + mapping per hop on
    /// establishment, release per hop on teardown).
    pub messages: u64,
    /// ILM table writes (installs, rewrites, and removals).
    pub ilm_writes: u64,
    /// FEC table writes.
    pub fec_writes: u64,
    /// LSPs established.
    pub lsps_established: u64,
    /// LSPs torn down.
    pub lsps_torn_down: u64,
}

impl SignalingStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        SignalingStats::default()
    }

    /// Difference `self − earlier`, for measuring a window of activity.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier
    /// (counters are monotone).
    pub fn since(&self, earlier: &SignalingStats) -> SignalingStats {
        debug_assert!(self.messages >= earlier.messages);
        SignalingStats {
            messages: self.messages - earlier.messages,
            ilm_writes: self.ilm_writes - earlier.ilm_writes,
            fec_writes: self.fec_writes - earlier.fec_writes,
            lsps_established: self.lsps_established - earlier.lsps_established,
            lsps_torn_down: self.lsps_torn_down - earlier.lsps_torn_down,
        }
    }

    /// Total table writes of either kind.
    pub fn table_writes(&self) -> u64 {
        self.ilm_writes + self.fec_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let s = SignalingStats::new();
        assert_eq!(s.messages, 0);
        assert_eq!(s.table_writes(), 0);
    }

    #[test]
    fn since_subtracts() {
        let a = SignalingStats {
            messages: 10,
            ilm_writes: 4,
            fec_writes: 1,
            lsps_established: 2,
            lsps_torn_down: 0,
        };
        let b = SignalingStats {
            messages: 25,
            ilm_writes: 9,
            fec_writes: 3,
            lsps_established: 3,
            lsps_torn_down: 1,
        };
        let d = b.since(&a);
        assert_eq!(d.messages, 15);
        assert_eq!(d.ilm_writes, 5);
        assert_eq!(d.fec_writes, 2);
        assert_eq!(d.lsps_established, 1);
        assert_eq!(d.lsps_torn_down, 1);
        assert_eq!(d.table_writes(), 7);
    }
}
