//! A label-switching router: ILM and FEC tables plus a label allocator.

use crate::Label;
use rbpc_graph::{EdgeId, NodeId};
use std::collections::HashMap;

/// The operation an ILM entry applies to a matching packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IlmOp {
    /// Swap the top label and forward out a link — the normal mid-LSP hop.
    SwapAndForward {
        /// Outgoing link.
        out: EdgeId,
        /// Label expected by the downstream neighbor.
        next_label: Label,
    },
    /// Pop the top label and forward out a link — penultimate-hop popping.
    PopAndForward {
        /// Outgoing link (to the LSP egress).
        out: EdgeId,
    },
    /// Pop the top label and keep processing locally — the LSP egress.
    /// If labels remain the packet continues on the next LSP of a
    /// concatenation; if the stack empties at the destination the packet
    /// is delivered.
    PopAndContinue,
    /// Pop the top label, push replacement labels (bottom-first), and keep
    /// processing locally. This is the **local RBPC splice**: the router
    /// adjacent to a failure rewrites the broken LSP's entry so packets
    /// continue over a concatenation of surviving LSPs that start here.
    ReplaceAndContinue {
        /// Replacement labels, bottom-first (last = new top).
        labels: Vec<Label>,
    },
}

/// One ILM (incoming label map) entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IlmEntry {
    /// The operation to apply.
    pub op: IlmOp,
}

/// One FEC (forwarding equivalence class) entry: the label stack the
/// ingress pushes on packets bound for a destination. Bottom-first; the
/// last label is the top of the stack and names an LSP starting at the
/// ingress itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FecEntry {
    /// Labels to push, bottom-first.
    pub labels: Vec<Label>,
}

/// A label-switching router (LSR).
///
/// Owns a per-platform label space, a hardware-style [ILM](IlmEntry) table
/// keyed by incoming label, and a [FEC](FecEntry) table keyed by
/// destination for traffic originating here.
#[derive(Debug, Clone)]
pub struct Router {
    id: NodeId,
    ilm: HashMap<Label, IlmEntry>,
    fec: HashMap<NodeId, FecEntry>,
    next_label: u32,
}

impl Router {
    /// Creates an empty router with the given node id.
    pub fn new(id: NodeId) -> Self {
        Router {
            id,
            ilm: HashMap::new(),
            fec: HashMap::new(),
            // Real MPLS reserves labels 0–15; we start above them.
            next_label: 16,
        }
    }

    /// This router's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Allocates a fresh label from this router's label space.
    pub fn allocate_label(&mut self) -> Label {
        let l = Label::new(self.next_label);
        self.next_label += 1;
        l
    }

    /// Installs (or overwrites) an ILM entry. Returns the previous entry.
    pub fn install_ilm(&mut self, label: Label, entry: IlmEntry) -> Option<IlmEntry> {
        self.ilm.insert(label, entry)
    }

    /// Removes an ILM entry. Returns it if present.
    pub fn remove_ilm(&mut self, label: Label) -> Option<IlmEntry> {
        self.ilm.remove(&label)
    }

    /// Looks up an ILM entry.
    pub fn ilm(&self, label: Label) -> Option<&IlmEntry> {
        self.ilm.get(&label)
    }

    /// Number of ILM entries — the paper's hardware-table size metric.
    pub fn ilm_size(&self) -> usize {
        self.ilm.len()
    }

    /// Installs (or overwrites) a FEC entry for a destination. Returns the
    /// previous entry.
    pub fn install_fec(&mut self, dest: NodeId, entry: FecEntry) -> Option<FecEntry> {
        self.fec.insert(dest, entry)
    }

    /// Removes the FEC entry for a destination.
    pub fn remove_fec(&mut self, dest: NodeId) -> Option<FecEntry> {
        self.fec.remove(&dest)
    }

    /// Looks up the FEC entry for a destination.
    pub fn fec(&self, dest: NodeId) -> Option<&FecEntry> {
        self.fec.get(&dest)
    }

    /// Number of FEC entries.
    pub fn fec_size(&self) -> usize {
        self.fec.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_fresh_and_above_reserved() {
        let mut r = Router::new(NodeId::new(0));
        let a = r.allocate_label();
        let b = r.allocate_label();
        assert_ne!(a, b);
        assert!(a.value() >= 16);
    }

    #[test]
    fn ilm_install_lookup_remove() {
        let mut r = Router::new(NodeId::new(1));
        let l = r.allocate_label();
        let e = IlmEntry {
            op: IlmOp::PopAndContinue,
        };
        assert_eq!(r.install_ilm(l, e.clone()), None);
        assert_eq!(r.ilm(l), Some(&e));
        assert_eq!(r.ilm_size(), 1);
        let e2 = IlmEntry {
            op: IlmOp::ReplaceAndContinue { labels: vec![] },
        };
        assert_eq!(r.install_ilm(l, e2.clone()), Some(e));
        assert_eq!(r.remove_ilm(l), Some(e2));
        assert_eq!(r.ilm_size(), 0);
        assert_eq!(r.remove_ilm(l), None);
    }

    #[test]
    fn fec_table_round_trip() {
        let mut r = Router::new(NodeId::new(2));
        let dest = NodeId::new(9);
        let entry = FecEntry {
            labels: vec![Label::new(100)],
        };
        assert_eq!(r.install_fec(dest, entry.clone()), None);
        assert_eq!(r.fec(dest), Some(&entry));
        assert_eq!(r.fec_size(), 1);
        assert_eq!(r.remove_fec(dest), Some(entry));
        assert_eq!(r.fec(dest), None);
    }

    #[test]
    fn id_is_stable() {
        let r = Router::new(NodeId::new(7));
        assert_eq!(r.id(), NodeId::new(7));
    }
}
