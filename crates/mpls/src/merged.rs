//! Merged (multipoint-to-point) LSPs — per-destination sink trees.
//!
//! The paper's §2 notes that labels are scarce and that deployments merge
//! LSPs: *"using the same label for all the packets with the same
//! destination even if they arrive from different ports."* The merged form
//! of the RBPC base set is one **sink tree** per destination: every router
//! holds exactly one incoming label per destination, its ILM entry
//! swapping to the downstream neighbor's label for that destination. This
//! cuts the ILM footprint of all-pairs provisioning from `Σ (path length)`
//! entries to `n` entries per destination, while keeping every base path
//! enterable mid-way (the concatenation primitive RBPC needs).

use crate::{IlmEntry, IlmOp, Label, MplsError, MplsNetwork};
use core::fmt;
use rbpc_graph::{EdgeId, NodeId};

/// Identifier of an established sink tree in an [`MplsNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SinkTreeId(u32);

impl SinkTreeId {
    pub(crate) fn new(index: usize) -> Self {
        SinkTreeId(index as u32)
    }

    /// The dense index of this tree.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SinkTreeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sink{}", self.0)
    }
}

/// An established merged LSP: one label per participating router, all
/// draining toward one destination.
#[derive(Debug, Clone)]
pub struct SinkTreeRecord {
    dest: NodeId,
    /// Per router: the label it matches for this destination (`None` for
    /// routers outside the tree).
    labels: Vec<Option<Label>>,
    /// Per router: the outgoing link toward the destination (`None` at the
    /// destination itself and outside the tree).
    next_hop: Vec<Option<EdgeId>>,
    active: bool,
}

impl SinkTreeRecord {
    /// The tree's destination router.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// Whether the tree is currently established.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The label under which router `r` forwards toward the destination —
    /// pushing it at `r` rides the canonical base path `r → dest`.
    pub fn label_at(&self, r: NodeId) -> Option<Label> {
        self.labels.get(r.index()).copied().flatten()
    }

    /// The outgoing link router `r` uses toward the destination.
    pub fn next_hop(&self, r: NodeId) -> Option<EdgeId> {
        self.next_hop.get(r.index()).copied().flatten()
    }

    /// Number of routers participating (and thus ILM entries consumed).
    pub fn router_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }
}

impl MplsNetwork {
    /// Establishes a merged per-destination LSP: `next_hop[r]` names the
    /// link router `r` uses toward `dest` (or `None` if `r` does not
    /// participate; `next_hop[dest]` must be `None`).
    ///
    /// One label and one ILM entry per participating router; signaling is
    /// two messages per tree link (as for ordinary LSP establishment).
    ///
    /// # Errors
    ///
    /// * [`MplsError::UnknownRouter`] if `dest` is out of range or
    ///   `next_hop` has the wrong length;
    /// * [`MplsError::Path`] if some hop does not touch its router, or if
    ///   following the hops from some participant does not reach `dest`
    ///   (a cycle or a dangling branch).
    pub fn establish_sink_tree(
        &mut self,
        dest: NodeId,
        next_hop: Vec<Option<EdgeId>>,
    ) -> Result<SinkTreeId, MplsError> {
        self.router(dest)?;
        let n = self.router_count();
        if next_hop.len() != n {
            return Err(MplsError::UnknownRouter {
                router: NodeId::new(next_hop.len()),
            });
        }
        if next_hop[dest.index()].is_some() {
            return Err(MplsError::Path(rbpc_graph::PathError::NotAWalk {
                position: dest.index(),
            }));
        }
        // Validate every hop and overall acyclicity by memoized walking.
        // state: 0 unknown, 1 in-progress, 2 reaches dest.
        let mut state = vec![0u8; n];
        state[dest.index()] = 2;
        for start in 0..n {
            if next_hop[start].is_none() || state[start] == 2 {
                continue;
            }
            let mut chain = Vec::new();
            let mut at = start;
            loop {
                if state[at] == 2 {
                    break;
                }
                if state[at] == 1 {
                    // Cycle.
                    return Err(MplsError::Path(rbpc_graph::PathError::NotAWalk {
                        position: at,
                    }));
                }
                let Some(e) = next_hop[at] else {
                    // Dangling branch: a participant chain must end at dest.
                    return Err(MplsError::Path(rbpc_graph::PathError::NotAWalk {
                        position: at,
                    }));
                };
                let rec = self.graph().edge_checked(e).ok_or(MplsError::Path(
                    rbpc_graph::PathError::NotAWalk { position: at },
                ))?;
                if !rec.touches(NodeId::new(at)) {
                    return Err(MplsError::Path(rbpc_graph::PathError::NotAWalk {
                        position: at,
                    }));
                }
                state[at] = 1;
                chain.push(at);
                at = rec.other(NodeId::new(at)).index();
            }
            for c in chain {
                state[c] = 2;
            }
        }

        // Allocate labels: every participant plus the destination.
        let mut labels: Vec<Option<Label>> = vec![None; n];
        for r in 0..n {
            if next_hop[r].is_some() || r == dest.index() {
                labels[r] = Some(self.router_mut(r).allocate_label());
            }
        }
        // Install ILM entries.
        let mut tree_links = 0u64;
        for r in 0..n {
            let Some(label) = labels[r] else { continue };
            let op = match next_hop[r] {
                Some(out) => {
                    tree_links += 1;
                    let next = self.graph().edge(out).other(NodeId::new(r));
                    IlmOp::SwapAndForward {
                        out,
                        next_label: labels[next.index()]
                            .expect("invariant: next-hop routers participate"),
                    }
                }
                None => IlmOp::PopAndContinue,
            };
            self.router_mut(r).install_ilm(label, IlmEntry { op });
            self.bump_ilm_writes(1);
        }
        self.bump_messages(2 * tree_links);
        let id = SinkTreeId::new(self.sink_trees_len());
        self.push_sink_tree(SinkTreeRecord {
            dest,
            labels,
            next_hop,
            active: true,
        });
        Ok(id)
    }

    /// Looks up an established sink tree.
    ///
    /// # Errors
    ///
    /// [`MplsError::UnknownLsp`] (reusing the LSP error) for a stale id.
    pub fn sink_tree(&self, id: SinkTreeId) -> Result<&SinkTreeRecord, MplsError> {
        self.sink_tree_ref(id.index()).ok_or(MplsError::UnknownLsp {
            lsp: crate::LspId::new(id.index()),
        })
    }

    /// Tears a sink tree down, removing its ILM entries.
    ///
    /// # Errors
    ///
    /// [`MplsError::UnknownLsp`] for a stale id; [`MplsError::LspInactive`]
    /// if already torn down.
    pub fn teardown_sink_tree(&mut self, id: SinkTreeId) -> Result<(), MplsError> {
        let rec = self
            .sink_tree_mut(id.index())
            .ok_or(MplsError::UnknownLsp {
                lsp: crate::LspId::new(id.index()),
            })?;
        if !rec.active {
            return Err(MplsError::LspInactive {
                lsp: crate::LspId::new(id.index()),
            });
        }
        rec.active = false;
        let labels: Vec<(usize, Label)> = rec
            .labels
            .iter()
            .enumerate()
            .filter_map(|(r, l)| l.map(|l| (r, l)))
            .collect();
        let links = rec.next_hop.iter().flatten().count() as u64;
        for (r, l) in labels {
            self.router_mut(r).remove_ilm(l);
            self.bump_ilm_writes(1);
        }
        self.bump_messages(links);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::Graph;

    /// A path 0-1-2-3 plus a spur 4-1.
    fn net() -> MplsNetwork {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        g.add_edge(4, 1, 1).unwrap();
        MplsNetwork::new(g)
    }

    fn hops_toward_3(_net: &MplsNetwork) -> Vec<Option<EdgeId>> {
        // 0 -> e0, 1 -> e1, 2 -> e2, 3 -> None (dest), 4 -> e3.
        vec![
            Some(EdgeId::new(0)),
            Some(EdgeId::new(1)),
            Some(EdgeId::new(2)),
            None,
            Some(EdgeId::new(3)),
        ]
    }

    #[test]
    fn sink_tree_delivers_from_every_router() {
        let mut net = net();
        let id = net
            .establish_sink_tree(NodeId::new(3), hops_toward_3(&net))
            .unwrap();
        let tree = net.sink_tree(id).unwrap().clone();
        assert_eq!(tree.dest(), NodeId::new(3));
        assert_eq!(tree.router_count(), 5);
        for s in [0usize, 1, 2, 4] {
            let label = tree.label_at(NodeId::new(s)).unwrap();
            net.set_fec_raw(NodeId::new(s), NodeId::new(3), vec![label])
                .unwrap();
            let trace = net.forward(NodeId::new(s), NodeId::new(3)).unwrap();
            assert_eq!(trace.last(), NodeId::new(3), "from {s}");
        }
    }

    #[test]
    fn one_ilm_entry_per_router() {
        let mut net = net();
        net.establish_sink_tree(NodeId::new(3), hops_toward_3(&net))
            .unwrap();
        // 5 entries total vs 4 pair-LSPs that would need 4+3+2+3 = 12.
        assert_eq!(net.total_ilm_entries(), 5);
        for sizes in net.ilm_sizes() {
            assert_eq!(sizes, 1);
        }
    }

    #[test]
    fn rejects_cycles_and_dangling() {
        let mut net = net();
        // Cycle: 0 -> 1 (e0) and 1 -> 0 (e0 again).
        let cyc = vec![Some(EdgeId::new(0)), Some(EdgeId::new(0)), None, None, None];
        assert!(matches!(
            net.establish_sink_tree(NodeId::new(3), cyc),
            Err(MplsError::Path(_))
        ));
        // Dangling: 0 points at 1, 1 not a participant, dest is 3.
        let dangle = vec![Some(EdgeId::new(0)), None, None, None, None];
        assert!(matches!(
            net.establish_sink_tree(NodeId::new(3), dangle),
            Err(MplsError::Path(_))
        ));
        // Wrong-length vector.
        assert!(net
            .establish_sink_tree(NodeId::new(3), vec![None; 3])
            .is_err());
        // Dest must not have a next hop.
        let mut bad = hops_toward_3(&net);
        bad[3] = Some(EdgeId::new(2));
        assert!(matches!(
            net.establish_sink_tree(NodeId::new(3), bad),
            Err(MplsError::Path(_))
        ));
    }

    #[test]
    fn teardown_removes_entries() {
        let mut net = net();
        let id = net
            .establish_sink_tree(NodeId::new(3), hops_toward_3(&net))
            .unwrap();
        assert_eq!(net.total_ilm_entries(), 5);
        net.teardown_sink_tree(id).unwrap();
        assert_eq!(net.total_ilm_entries(), 0);
        assert!(net.teardown_sink_tree(id).is_err());
        assert!(!net.sink_tree(id).unwrap().is_active());
    }

    #[test]
    fn partial_participation() {
        let mut net = net();
        // Only 2 -> 3 participates.
        let hops = vec![None, None, Some(EdgeId::new(2)), None, None];
        let id = net.establish_sink_tree(NodeId::new(3), hops).unwrap();
        let tree = net.sink_tree(id).unwrap();
        assert_eq!(tree.router_count(), 2);
        assert_eq!(tree.label_at(NodeId::new(0)), None);
        assert!(tree.label_at(NodeId::new(2)).is_some());
        assert_eq!(tree.next_hop(NodeId::new(2)), Some(EdgeId::new(2)));
        assert_eq!(tree.next_hop(NodeId::new(3)), None);
    }

    #[test]
    fn signaling_accounted() {
        let mut net = net();
        let before = net.stats();
        net.establish_sink_tree(NodeId::new(3), hops_toward_3(&net))
            .unwrap();
        let delta = net.stats().since(&before);
        assert_eq!(delta.ilm_writes, 5);
        assert_eq!(delta.messages, 8); // 2 per tree link, 4 links
    }
}
