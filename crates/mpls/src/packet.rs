//! Forwarding traces.

use rbpc_graph::{EdgeId, NodeId};

/// The record of one packet's trip through the data plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardTrace {
    route: Vec<NodeId>,
    links: Vec<EdgeId>,
    label_ops: u32,
    max_stack_depth: u32,
}

impl ForwardTrace {
    pub(crate) fn new(start: NodeId) -> Self {
        ForwardTrace {
            route: vec![start],
            links: Vec::new(),
            label_ops: 0,
            max_stack_depth: 0,
        }
    }

    pub(crate) fn hop(&mut self, link: EdgeId, to: NodeId) {
        self.links.push(link);
        self.route.push(to);
    }

    pub(crate) fn count_op(&mut self, stack_depth: usize) {
        self.label_ops += 1;
        self.max_stack_depth = self.max_stack_depth.max(stack_depth as u32);
    }

    /// The sequence of routers visited, starting at the ingress.
    pub fn route(&self) -> &[NodeId] {
        &self.route
    }

    /// The links traversed, in order.
    pub fn links(&self) -> &[EdgeId] {
        &self.links
    }

    /// Number of hops taken.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Number of label operations performed (swap/pop/push batches) —
    /// a proxy for per-packet router overhead.
    pub fn label_ops(&self) -> u32 {
        self.label_ops
    }

    /// The deepest the label stack got in flight.
    pub fn max_stack_depth(&self) -> u32 {
        self.max_stack_depth
    }

    /// The router the packet ended at.
    pub fn last(&self) -> NodeId {
        *self.route.last().expect("invariant: traces start nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accumulates() {
        let mut t = ForwardTrace::new(NodeId::new(0));
        assert_eq!(t.hop_count(), 0);
        assert_eq!(t.last(), NodeId::new(0));
        t.count_op(2);
        t.hop(EdgeId::new(5), NodeId::new(1));
        t.count_op(1);
        assert_eq!(t.route(), &[NodeId::new(0), NodeId::new(1)]);
        assert_eq!(t.links(), &[EdgeId::new(5)]);
        assert_eq!(t.hop_count(), 1);
        assert_eq!(t.label_ops(), 2);
        assert_eq!(t.max_stack_depth(), 2);
        assert_eq!(t.last(), NodeId::new(1));
    }
}
