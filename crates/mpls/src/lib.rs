//! MPLS data- and control-plane simulator for the RBPC reproduction.
//!
//! The RBPC paper's claims are claims about MPLS *tables* and *signaling*:
//! how many ILM entries base-path provisioning needs versus explicit backup
//! pre-provisioning, and how little work a source-router FEC rewrite (or a
//! local ILM splice) is compared with tearing down and re-establishing
//! LSPs. This crate models exactly those mechanisms:
//!
//! * per-router **ILM** (incoming label map) and **FEC** (forwarding
//!   equivalence class) tables with per-platform label spaces
//!   ([`Router`]);
//! * **LSP establishment and teardown** with downstream label assignment,
//!   optional penultimate-hop popping, and signaling-message accounting
//!   ([`MplsNetwork`], [`SignalingStats`]);
//! * the **label stack**: push/swap/pop/replace operations
//!   ([`LabelStack`], [`IlmOp`]), which is the paper's concatenation
//!   mechanism;
//! * **packet forwarding** with TTL and failure awareness, so every
//!   restoration scheme can be validated by actually routing a packet
//!   ([`MplsNetwork::forward`], [`ForwardTrace`]).
//!
//! Every LSR on an LSP — including the ingress — allocates an incoming
//! label. The ingress label is what makes *path concatenation* work: any
//! router can splice a packet onto an LSP that starts at itself by exposing
//! that label at the top of the stack.
//!
//! # Example
//!
//! ```
//! use rbpc_graph::{Graph, Path};
//! use rbpc_mpls::MplsNetwork;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new(3);
//! let e0 = g.add_edge(0, 1, 1)?;
//! let e1 = g.add_edge(1, 2, 1)?;
//! let path = Path::from_edges(&g, 0.into(), &[e0, e1])?;
//!
//! let mut net = MplsNetwork::new(g);
//! let lsp = net.establish_lsp(&path)?;
//! net.set_fec_via_lsps(0.into(), 2.into(), &[lsp])?;
//!
//! let trace = net.forward(0.into(), 2.into())?;
//! assert_eq!(trace.route(), path.nodes());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
mod label;
mod merged;
mod network;
mod packet;
mod router;
mod signaling;

pub use error::{ForwardError, MplsError};
pub use label::{Label, LabelStack, LspId};
pub use merged::{SinkTreeId, SinkTreeRecord};
pub use network::{LspRecord, MplsNetwork};
pub use packet::ForwardTrace;
pub use router::{FecEntry, IlmEntry, IlmOp, Router};
pub use signaling::SignalingStats;
