//! Brace-block tree over a token stream.
//!
//! Every `{ … }` in a file becomes a [`Block`] with its parent, the name
//! of the `fn` whose body it is (if any), the `for`-loop variables bound
//! over it, and two region flags the rules care about:
//!
//! * **test** — the block is the item under a `#[cfg(test)]` attribute
//!   (v1 rules exempt test code);
//! * **hot** — the block follows a `// lint:hot` marker comment. Hot
//!   regions carry the strictest discipline in the workspace: no heap
//!   allocation, no possibly-truncating casts, no compound index
//!   expressions, and every `debug_assert!` must be backed by a
//!   release-mode test registered in `crates/lint/lint-invariants.txt`
//!   (see [`crate::rules2`]).
//!
//! The marker binds to the next `{` block opened after it: put
//! `// lint:hot` directly above a `fn` to mark its whole body, or above
//! a `while`/`loop`/`for` line to mark just that loop.

use crate::token::{TokKind, Tokens};

/// One brace block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the closing `}` (or one past the last token for
    /// an unterminated block).
    pub close: usize,
    /// Index into [`FileTree::blocks`] of the enclosing block.
    pub parent: Option<usize>,
    /// Name of the function whose body this block is.
    pub fn_name: Option<String>,
    /// Opened under a `// lint:hot` marker.
    pub hot: bool,
    /// The item block of a `#[cfg(test)]` attribute.
    pub test: bool,
    /// 1-based line of the `#[cfg(test)]` attribute, when `test`.
    pub test_attr_line: u32,
    /// `for`-pattern identifiers bound over this block.
    pub loop_vars: Vec<String>,
}

/// The block tree of one file plus the test regions that have no block
/// (`#[cfg(test)] use …;`).
#[derive(Debug, Clone, Default)]
pub struct FileTree {
    /// All blocks, in opening order.
    pub blocks: Vec<Block>,
    /// Extra `(first_line, last_line)` test ranges from brace-less
    /// `#[cfg(test)]` items.
    pub braceless_test_lines: Vec<(u32, u32)>,
}

impl FileTree {
    /// Builds the tree for `t`.
    pub fn build(t: &Tokens) -> FileTree {
        let mut blocks: Vec<Block> = Vec::new();
        let mut braceless = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut pending_fn: Option<String> = None;
        let mut pending_hot = false;
        let mut pending_test: Option<u32> = None;
        let mut pending_for: Vec<String> = Vec::new();
        // Depth inside `(…)` / `[…]` groups: a `;` only terminates an
        // item (clearing the pendings) at group depth 0.
        let mut group_depth = 0i64;
        let mut i = 0;
        while i < t.toks.len() {
            let kind = t.toks[i].kind;
            let text = t.text_of(i);
            match kind {
                // The marker must *lead* the comment (`// lint:hot`,
                // `// lint:hot: settle loop`) — prose that merely
                // mentions the marker is not one.
                TokKind::LineComment | TokKind::BlockComment
                    if text
                        .trim_start_matches(['/', '*', '!', ' ', '\t'])
                        .starts_with("lint:hot") =>
                {
                    pending_hot = true;
                }
                TokKind::Ident if text == "fn" => {
                    if let Some(j) = t.next_code(i + 1) {
                        if t.toks[j].kind == TokKind::Ident {
                            pending_fn = Some(t.text_of(j).to_string());
                        }
                    }
                }
                TokKind::Ident if text == "for" => {
                    // Collect the pattern idents of `for <pat> in …`;
                    // bounded so a stray `for` cannot scan the file.
                    let mut vars = Vec::new();
                    let mut j = i + 1;
                    let mut steps = 0;
                    while let Some(k) = t.next_code(j) {
                        steps += 1;
                        if steps > 16 || t.is_punct(k, "{") || t.is_punct(k, ";") {
                            vars.clear();
                            break;
                        }
                        if t.is_ident(k, "in") {
                            break;
                        }
                        if t.toks[k].kind == TokKind::Ident {
                            vars.push(t.text_of(k).to_string());
                        }
                        j = k + 1;
                    }
                    if !vars.is_empty() {
                        pending_for = vars;
                    }
                }
                TokKind::Punct if text == "#" => {
                    // Attribute: scan the `[…]` group for cfg(test).
                    if let Some(open) = t.next_code(i + 1).filter(|&k| t.is_punct(k, "[")) {
                        if let Some(close) = t.matching_close(open) {
                            let mut is_cfg = false;
                            let mut has_test = false;
                            for k in open..close {
                                if t.is_ident(k, "cfg") {
                                    is_cfg = true;
                                }
                                if t.is_ident(k, "test") && is_cfg {
                                    has_test = true;
                                }
                            }
                            if has_test {
                                pending_test = Some(t.toks[i].line);
                            }
                            i = close + 1;
                            continue;
                        }
                    }
                }
                TokKind::Punct => match text {
                    "(" | "[" => group_depth += 1,
                    ")" | "]" => group_depth -= 1,
                    "{" => {
                        let idx = blocks.len();
                        blocks.push(Block {
                            open: i,
                            close: t.toks.len(),
                            parent: stack.last().copied(),
                            fn_name: pending_fn.take(),
                            hot: std::mem::take(&mut pending_hot),
                            test: pending_test.is_some(),
                            test_attr_line: pending_test.take().unwrap_or(0),
                            loop_vars: std::mem::take(&mut pending_for),
                        });
                        stack.push(idx);
                    }
                    "}" => {
                        if let Some(idx) = stack.pop() {
                            blocks[idx].close = i;
                        }
                    }
                    ";" if group_depth == 0 => {
                        pending_fn = None;
                        pending_hot = false;
                        pending_for.clear();
                        if let Some(attr_line) = pending_test.take() {
                            braceless.push((attr_line, t.toks[i].line));
                        }
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        FileTree {
            blocks,
            braceless_test_lines: braceless,
        }
    }

    /// Index of the innermost block containing token `tok`.
    pub fn block_at(&self, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.open < tok && tok < b.close {
                match best {
                    Some(prev) if self.blocks[prev].open >= b.open => {}
                    _ => best = Some(i),
                }
            }
        }
        best
    }

    /// Walks `block` and its ancestors looking for `pred`.
    fn ancestor<F: Fn(&Block) -> bool>(&self, mut block: Option<usize>, pred: F) -> Option<usize> {
        while let Some(i) = block {
            if pred(&self.blocks[i]) {
                return Some(i);
            }
            block = self.blocks[i].parent;
        }
        None
    }

    /// Whether token `tok` sits inside a hot region.
    pub fn in_hot(&self, tok: usize) -> bool {
        self.ancestor(self.block_at(tok), |b| b.hot).is_some()
    }

    /// Whether token `tok` sits inside a `#[cfg(test)]` item.
    pub fn in_test(&self, tok: usize) -> bool {
        self.ancestor(self.block_at(tok), |b| b.test).is_some()
    }

    /// Name of the innermost named function enclosing token `tok`.
    pub fn enclosing_fn(&self, tok: usize) -> Option<&str> {
        self.ancestor(self.block_at(tok), |b| b.fn_name.is_some())
            .and_then(|i| self.blocks[i].fn_name.as_deref())
    }

    /// Whether `ident` is a `for`-loop variable of any block enclosing
    /// token `tok`.
    pub fn is_loop_var(&self, tok: usize, ident: &str) -> bool {
        self.ancestor(self.block_at(tok), |b| {
            b.loop_vars.iter().any(|v| v == ident)
        })
        .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(src: &str) -> (Tokens, FileTree) {
        let t = Tokens::lex(src);
        let ft = FileTree::build(&t);
        (t, ft)
    }

    #[test]
    fn fn_names_attach_to_bodies() {
        let (t, ft) = tree("fn alpha() { inner(); }\nfn beta() { { nested } }");
        let at = |word: &str| (0..t.toks.len()).find(|&i| t.text_of(i) == word).unwrap();
        assert_eq!(ft.enclosing_fn(at("inner")), Some("alpha"));
        assert_eq!(ft.enclosing_fn(at("nested")), Some("beta"));
    }

    #[test]
    fn hot_marker_binds_to_next_block() {
        let src = "fn cold() { a(); }\n// lint:hot\nfn hot() { b(); while x { c(); } }\nfn cold2() { d(); }";
        let (t, ft) = tree(src);
        let at = |word: &str| (0..t.toks.len()).find(|&i| t.text_of(i) == word).unwrap();
        assert!(!ft.in_hot(at("a")));
        assert!(ft.in_hot(at("b")));
        assert!(ft.in_hot(at("c")), "nested blocks inherit hot");
        assert!(!ft.in_hot(at("d")));
    }

    #[test]
    fn hot_marker_on_a_loop_marks_only_the_loop() {
        let src = "fn f() { setup(); /* lint:hot */ while go { step(); } teardown(); }";
        let (t, ft) = tree(src);
        let at = |word: &str| (0..t.toks.len()).find(|&i| t.text_of(i) == word).unwrap();
        assert!(!ft.in_hot(at("setup")));
        assert!(ft.in_hot(at("step")));
        assert!(!ft.in_hot(at("teardown")));
    }

    #[test]
    fn cfg_test_blocks_and_braceless_items() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x(); } }\n#[cfg(test)]\nuse foo::bar;\nfn live2() { y(); }";
        let (t, ft) = tree(src);
        let at = |word: &str| (0..t.toks.len()).find(|&i| t.text_of(i) == word).unwrap();
        assert!(ft.in_test(at("x")));
        assert!(!ft.in_test(at("y")));
        assert_eq!(ft.braceless_test_lines, vec![(4, 5)]);
    }

    #[test]
    fn loop_vars_cover_tuple_patterns() {
        let src = "fn f() { for (i, v) in xs.iter().enumerate() { use_it(); } after(); }";
        let (t, ft) = tree(src);
        let at = |word: &str| (0..t.toks.len()).find(|&i| t.text_of(i) == word).unwrap();
        assert!(ft.is_loop_var(at("use_it"), "i"));
        assert!(ft.is_loop_var(at("use_it"), "v"));
        assert!(!ft.is_loop_var(at("use_it"), "xs"));
        assert!(!ft.is_loop_var(at("after"), "i"));
    }

    #[test]
    fn semicolon_inside_array_type_keeps_pending_fn() {
        let (t, ft) = tree("fn g(x: [u8; 4]) { body(); }");
        let at = |word: &str| (0..t.toks.len()).find(|&i| t.text_of(i) == word).unwrap();
        assert_eq!(ft.enclosing_fn(at("body")), Some("g"));
    }
}
