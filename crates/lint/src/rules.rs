//! The six static rules.
//!
//! Every rule reports [`Finding`]s against workspace-relative paths and
//! honors the `// lint:allow(<rule>)` escape hatch (checked by the caller
//! via [`SourceFile::allowed`]); file-level exemptions live in
//! `crates/lint/lint-allow.txt`.
//!
//! | rule | scope | what it catches |
//! |------|-------|-----------------|
//! | `hash-iteration` | rbpc-graph, rbpc-core | iterating a `HashMap`/`HashSet` (order feeds output) |
//! | `wall-clock` | all but rbpc-obs, rbpc-bench | `Instant::now` / `SystemTime` / `thread::sleep` in algorithm code |
//! | `panic` | rbpc-core, rbpc-graph, rbpc-mpls | `unwrap()` / bare `expect()` / `panic!` family |
//! | `crate-attrs` | every crate | missing `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` |
//! | `cfg-balance` | every crate | unpaired or undeclared `cfg(feature = …)` gates |
//! | `static-span-names` | every crate | `obs_span!`/`obs_trace!` with a non-literal name |

use crate::scan::{FileKind, SourceFile};
use crate::{CrateInfo, Finding, Workspace};

/// Names of all rules, in the order they run.
pub const RULES: &[&str] = &[
    "hash-iteration",
    "wall-clock",
    "panic",
    "crate-attrs",
    "cfg-balance",
    "static-span-names",
];

/// Crates whose algorithm output must be independent of hash order.
const HASH_SCOPE: &[&str] = &["rbpc-graph", "rbpc-core"];
/// Crates allowed to read the wall clock (measurement infrastructure).
const WALL_CLOCK_EXEMPT: &[&str] = &["rbpc-obs", "rbpc-bench"];
/// Crates whose non-test code must be panic-free.
const PANIC_SCOPE: &[&str] = &["rbpc-core", "rbpc-graph", "rbpc-mpls"];

/// Runs every rule over the workspace, appending to `out`.
pub fn run_all(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if HASH_SCOPE.contains(&krate.name.as_str()) {
            hash_iteration(krate, out);
        }
        if !WALL_CLOCK_EXEMPT.contains(&krate.name.as_str()) {
            wall_clock(krate, out);
        }
        if PANIC_SCOPE.contains(&krate.name.as_str()) {
            panic_freedom(krate, out);
        }
        crate_attrs(krate, out);
        cfg_balance(krate, out);
        static_span_names(krate, out);
    }
}

/// Lines of `file` that rules should look at: library code outside
/// `#[cfg(test)]`, with 1-based numbering.
fn live_lines(file: &SourceFile) -> impl Iterator<Item = (usize, &crate::scan::Line)> {
    file.lines
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.in_test)
        .map(|(i, l)| (i + 1, l))
}

/// Whether byte `i` in `s` starts `needle` at an identifier boundary on
/// the left (the right side is the caller's business — needles end in
/// punctuation).
fn at_boundary(s: &str, i: usize, _needle: &str) -> bool {
    i == 0
        || !s.as_bytes()[i - 1].is_ascii_alphanumeric()
            && s.as_bytes()[i - 1] != b'_'
            && s.as_bytes()[i - 1] != b':'
}

/// All start offsets of `needle` in `s` at identifier boundaries.
fn boundary_matches<'a>(s: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    s.match_indices(needle)
        .map(|(i, _)| i)
        .filter(move |&i| at_boundary(s, i, needle))
}

/// Whether `needle` occurs in `s` at an identifier boundary.
fn has_boundary_match(s: &str, needle: &str) -> bool {
    boundary_matches(s, needle).next().is_some()
}

// ---------------------------------------------------------------------------
// hash-iteration
// ---------------------------------------------------------------------------

/// Iteration-order-exposing methods on hash containers.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
];

/// Determinism: a `HashMap`/`HashSet` may serve keyed lookups, but
/// iterating one in algorithm code lets the hasher's order leak into
/// output. The scanner builds a per-file table of identifiers bound to a
/// hash container (via `: HashMap<…>` annotations and
/// `= HashMap::new()`-style initializers) and flags order-exposing calls
/// on them, plus `for … in` loops over them.
fn hash_iteration(krate: &CrateInfo, out: &mut Vec<Finding>) {
    for file in &krate.files {
        if file.kind != FileKind::Lib {
            continue;
        }
        // Pass 1: identifiers bound to a hash container anywhere in the file.
        let mut bound: Vec<String> = Vec::new();
        for (_, line) in live_lines(file) {
            let s = &line.code_nostr;
            for ty in ["HashMap", "HashSet"] {
                for at in boundary_matches(s, ty) {
                    if let Some(id) = binding_ident(&s[..at]) {
                        if !bound.contains(&id) {
                            bound.push(id);
                        }
                    }
                }
            }
        }
        // Pass 2: order-exposing uses of those identifiers.
        for (ln, line) in live_lines(file) {
            if file.allowed("hash-iteration", ln) {
                continue;
            }
            let s = &line.code_nostr;
            for id in &bound {
                let mut hit = ITER_METHODS
                    .iter()
                    .find(|m| has_boundary_match(s, &format!("{id}{m}")))
                    .map(|m| format!("{id}{m}"));
                if hit.is_none() && s.contains("for ") {
                    for pre in ["in &mut ", "in &", "in "] {
                        let pat = format!("{pre}{id}");
                        let looped = s.match_indices(&pat).any(|(i, _)| {
                            let open = i == 0
                                || s.as_bytes()[i - 1] == b' '
                                || s.as_bytes()[i - 1] == b'(';
                            open && ident_ends_after(s, i + pat.len())
                        });
                        if looped {
                            hit = Some(format!("for … in {id}"));
                            break;
                        }
                    }
                }
                if let Some(what) = hit {
                    out.push(Finding::new(
                        "hash-iteration",
                        file.path.clone(),
                        ln,
                        format!(
                            "`{what}` iterates a hash container ({id} is HashMap/HashSet); \
                             order leaks into output — use BTreeMap/BTreeSet or sort keys first"
                        ),
                    ));
                    break; // one finding per line is enough
                }
            }
        }
    }
}

/// Whether the identifier ending at byte `end` is not continued (so `in m`
/// does not match `in map2`).
fn ident_ends_after(s: &str, end: usize) -> bool {
    s.as_bytes()
        .get(end)
        .is_none_or(|&c| !c.is_ascii_alphanumeric() && c != b'_')
}

/// Given text preceding a `HashMap`/`HashSet` token, extracts the
/// identifier being bound to it: handles `name: HashMap<…>` (fields,
/// params, let-annotations) and `name = HashMap::new()` initializers.
/// Returns `None` for return types, generic bounds, and turbofish uses.
fn binding_ident(before: &str) -> Option<String> {
    let t = before.trim_end();
    let t = t.strip_suffix(':').or_else(|| t.strip_suffix('='))?;
    // `=` also matches `==`, `+=` … — reject those.
    let t = t.trim_end();
    if t.ends_with(['=', '<', '>', '!', '+', '-', '*', '/', '&', '|']) {
        return None;
    }
    let id: String = t
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    // Skip keywords that can precede `:`/`=` without naming a binding.
    if ["mut", "ref", "pub", "in", "where", "dyn", "impl"].contains(&id.as_str()) {
        return None;
    }
    Some(id)
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

/// Determinism: reading the wall clock in algorithm code makes runs
/// unreproducible, and sleeping is the write half of the same dependence
/// (pacing against real time); both belong in rbpc-obs / rbpc-bench.
/// Consumers pace through `rbpc_obs::Ticker` and measure with
/// `rbpc_obs::monotonic_ns`, so ticks are injected and replayable.
fn wall_clock(krate: &CrateInfo, out: &mut Vec<Finding>) {
    for file in &krate.files {
        if file.kind != FileKind::Lib {
            continue;
        }
        for (ln, line) in live_lines(file) {
            if file.allowed("wall-clock", ln) {
                continue;
            }
            let s = &line.code_nostr;
            for pat in ["Instant::now", "SystemTime", "thread::sleep"] {
                // Unlike the identifier rules, a `::`-qualified path
                // (`std::time::Instant::now()`) must still match, so only
                // a preceding identifier character defuses the pattern.
                let hit = s.match_indices(pat).any(|(i, _)| {
                    i == 0 || {
                        let b = s.as_bytes()[i - 1];
                        !b.is_ascii_alphanumeric() && b != b'_'
                    }
                });
                if hit {
                    out.push(Finding::new(
                        "wall-clock",
                        file.path.clone(),
                        ln,
                        format!(
                            "`{pat}` in algorithm code; wall-clock reads and sleeps belong \
                             in rbpc-obs/rbpc-bench (pass timings/ticks in, don't sample \
                             or pace here)"
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// panic
// ---------------------------------------------------------------------------

/// Panic-freedom: restoration code must degrade, not abort. `unwrap()` is
/// always flagged; `expect(…)` passes only with a message starting
/// `invariant: ` (a documented proof obligation); the `panic!` macro
/// family is flagged outright. `assert!`/`debug_assert!` are fine — they
/// are the sanctioned way to state invariants.
fn panic_freedom(krate: &CrateInfo, out: &mut Vec<Finding>) {
    for file in &krate.files {
        if file.kind != FileKind::Lib {
            continue;
        }
        for (ln, line) in live_lines(file) {
            if file.allowed("panic", ln) {
                continue;
            }
            let s = &line.code_nostr;
            let mut flag = |what: &str, hint: &str| {
                out.push(Finding::new(
                    "panic",
                    file.path.clone(),
                    ln,
                    format!("`{what}` in non-test code; {hint}"),
                ))
            };
            if s.contains(".unwrap()") {
                flag(
                    ".unwrap()",
                    "return a typed error or use expect(\"invariant: …\") with a proof",
                );
                continue;
            }
            for mac in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
                if boundary_matches(s, mac).next().is_some() {
                    flag(mac.trim_end_matches('('), "restoration code must not abort");
                    break;
                }
            }
            if s.contains(".expect(") {
                // Detect via the blanked form (so a string mentioning
                // `.expect(` can't trip it), but read the message from the
                // string-preserving form; rustfmt may wrap the literal onto
                // the next line. The two forms can differ in byte offsets
                // (multi-byte chars blank to one space), so re-find here.
                let at = line.code.find(".expect(").unwrap_or(0);
                let after = line.code[at + ".expect(".len()..].trim_start();
                let msg = if after.is_empty() {
                    file.lines
                        .get(ln) // ln is 1-based: this is the next line
                        .map(|l| l.code.trim_start().to_string())
                        .unwrap_or_default()
                } else {
                    after.to_string()
                };
                if !msg.starts_with("\"invariant: ") {
                    flag(
                        ".expect(…)",
                        "message must start with \"invariant: \" and state why it cannot fail",
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// crate-attrs
// ---------------------------------------------------------------------------

/// Hygiene: every crate root must carry `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs)]` so neither can regress silently.
fn crate_attrs(krate: &CrateInfo, out: &mut Vec<Finding>) {
    let Some(root) = krate.root_file.map(|i| &krate.files[i]) else {
        out.push(Finding::new(
            "crate-attrs",
            format!("{}/Cargo.toml", krate.dir),
            1,
            "crate has no src/lib.rs or src/main.rs to carry crate attributes".into(),
        ));
        return;
    };
    for attr in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
        let present = root.lines.iter().any(|l| l.code_nostr.contains(attr));
        if !present && !root.lines.is_empty() {
            out.push(Finding::new(
                "crate-attrs",
                root.path.clone(),
                1,
                format!("crate root is missing `{attr}`"),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// cfg-balance
// ---------------------------------------------------------------------------

/// Hygiene: every `#[cfg(feature = "x")]` in library code needs a
/// `#[cfg(not(feature = "x"))]` twin (so `--no-default-features` swaps in
/// a no-op instead of deleting the item), and every feature named in any
/// cfg must be declared in the crate's `[features]` table.
fn cfg_balance(krate: &CrateInfo, out: &mut Vec<Finding>) {
    for file in &krate.files {
        // (feature, positive count, negative count, first line)
        let mut seen: Vec<(String, usize, usize, usize)> = Vec::new();
        for (ln, line) in live_lines(file) {
            if file.allowed("cfg-balance", ln) {
                continue;
            }
            // Feature names are string literals, so parse the
            // string-preserving form (comments are still stripped).
            let s = &line.code;
            for (feat, negated) in cfg_features(s) {
                if !krate.features.contains(&feat) {
                    out.push(Finding::new(
                        "cfg-balance",
                        file.path.clone(),
                        ln,
                        format!(
                            "cfg references feature \"{feat}\" which {} does not declare",
                            krate.name
                        ),
                    ));
                }
                // Balance is only meaningful for items compiled into the
                // library; tests/benches pick one side by design, and
                // `cfg_attr` is intrinsically optional.
                if file.kind == FileKind::Lib && !s.contains("cfg_attr") {
                    match seen.iter_mut().find(|(f, ..)| *f == feat) {
                        Some(e) => {
                            if negated {
                                e.2 += 1
                            } else {
                                e.1 += 1
                            }
                        }
                        None => seen.push((feat, usize::from(!negated), usize::from(negated), ln)),
                    }
                }
            }
        }
        for (feat, pos, neg, ln) in seen {
            if pos != neg {
                out.push(Finding::new(
                    "cfg-balance",
                    file.path.clone(),
                    ln,
                    format!(
                        "unbalanced gates for feature \"{feat}\": {pos}× cfg(feature) vs \
                         {neg}× cfg(not(feature)) — a --no-default-features build diverges"
                    ),
                ));
            }
        }
    }
}

/// Extracts `(feature_name, negated)` pairs from `#[cfg(...)]` /
/// `#![cfg(...)]` / `#[cfg_attr(...)]` attributes on one line.
fn cfg_features(s: &str) -> Vec<(String, bool)> {
    let mut found = Vec::new();
    if !s.contains("cfg(") && !s.contains("cfg_attr(") {
        return found;
    }
    let mut rest = s;
    while let Some(at) = rest.find("feature") {
        let tail = rest[at + "feature".len()..].trim_start();
        if let Some(tail) = tail.strip_prefix('=') {
            let tail = tail.trim_start();
            if let Some(tail) = tail.strip_prefix('"') {
                if let Some(end) = tail.find('"') {
                    let negated = rest[..at].contains("not(");
                    found.push((tail[..end].to_string(), negated));
                }
            }
        }
        rest = &rest[at + "feature".len()..];
    }
    found
}

// ---------------------------------------------------------------------------
// static-span-names
// ---------------------------------------------------------------------------

/// Observability hygiene: `obs_span!`/`obs_trace!` names become
/// aggregation keys — registry histogram names, span-profiler stack
/// frames, trace-viewer track names. A dynamically built name (`format!`,
/// a variable) makes that key space unbounded, so profiles stop
/// aggregating and the metrics registry grows without limit. The first
/// argument must be a static string literal.
fn static_span_names(krate: &CrateInfo, out: &mut Vec<Finding>) {
    for file in &krate.files {
        if file.kind != FileKind::Lib {
            continue;
        }
        for (ln, line) in live_lines(file) {
            if file.allowed("static-span-names", ln) {
                continue;
            }
            for mac in ["obs_span!(", "obs_trace!("] {
                // Detect via the blanked form (a string mentioning the
                // macro can't trip it); read the argument from the
                // string-preserving form — rustfmt wraps long call sites
                // so the name may sit on the next line.
                if boundary_matches(&line.code_nostr, mac).next().is_none() {
                    continue;
                }
                let Some(at) = line.code.find(mac) else {
                    continue;
                };
                let after = line.code[at + mac.len()..].trim_start();
                let arg = if after.is_empty() {
                    file.lines
                        .get(ln) // ln is 1-based: this is the next line
                        .map(|l| l.code.trim_start().to_string())
                        .unwrap_or_default()
                } else {
                    after.to_string()
                };
                if !arg.starts_with('"') {
                    out.push(Finding::new(
                        "static-span-names",
                        file.path.clone(),
                        ln,
                        format!(
                            "`{}` name must be a static string literal; dynamic names make \
                             profiler/registry aggregation keys unbounded",
                            mac.trim_end_matches('(')
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_ident_extracts_fields_and_lets() {
        assert_eq!(binding_ident("    by_pair: "), Some("by_pair".into()));
        assert_eq!(binding_ident("let mut cache = "), Some("cache".into()));
        assert_eq!(binding_ident("pub fn f() -> "), None);
        assert_eq!(binding_ident("x == "), None);
        assert_eq!(binding_ident("impl "), None);
    }

    #[test]
    fn cfg_features_parses_both_polarities() {
        assert_eq!(
            cfg_features("#[cfg(feature = \"obs\")]"),
            vec![("obs".into(), false)]
        );
        assert_eq!(
            cfg_features("#[cfg(not(feature = \"obs\"))]"),
            vec![("obs".into(), true)]
        );
        assert!(cfg_features("let feature = 3;").is_empty());
    }
}
