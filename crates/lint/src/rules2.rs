//! The second analysis tier: four token-aware concurrency & hot-path
//! rules built on [`crate::token`] and [`crate::tree`].
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | `atomics-order` | `Ordering::Relaxed` on atomics shared across threads (written from a `spawn` closure, a `static`, or a shared type) without an allow + safety note |
//! | `lock-discipline` | `Mutex`/`RwLock` guards held across calls to other locking functions (ordering-inversion candidates) and guards bound with `let _ =` (dropped immediately) |
//! | `hot-path` | heap allocation, truncating `as` casts, and compound index expressions inside `// lint:hot` regions |
//! | `debug-invariants` | `debug_assert!` in a hot region with no release-mode test registered in `crates/lint/lint-invariants.txt` |
//!
//! Unlike the v1 line rules these pattern-match *token sequences*, so a
//! string literal mentioning `.lock()` or a nested closure cannot trip
//! them, and spans are exact. All four run on library code only and skip
//! `#[cfg(test)]` regions.
//!
//! `atomics-order` has a stricter escape hatch than the other rules: the
//! `// lint:allow(atomics-order)` comment must carry a one-line safety
//! note (why Relaxed is sufficient at this site) or the allow itself is
//! reported.

use crate::scan::{FileKind, SourceFile};
use crate::token::{TokKind, Tokens};
use crate::{CrateInfo, Finding, Workspace};

/// Names of the second-tier rules, in the order they run.
pub const RULES2: &[&str] = &[
    "atomics-order",
    "lock-discipline",
    "hot-path",
    "debug-invariants",
];

/// Crates whose atomics are shared by construction (metric registries,
/// profiler rings): every Relaxed write there needs a safety note even
/// without a visible `spawn` in the same file.
const SHARED_CRATES: &[&str] = &["rbpc-obs"];

/// Atomic methods that take an `Ordering` argument.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// The five memory orderings.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs the four token rules over the workspace, appending to `out`.
pub fn run_all(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        let locking_fns = crate_locking_fns(krate);
        for file in &krate.files {
            if file.kind != FileKind::Lib {
                continue;
            }
            atomics_order(krate, file, out);
            lock_discipline(file, &locking_fns, out);
            hot_path(file, out);
            debug_invariants(ws, file, out);
        }
    }
    stale_invariant_entries(ws, out);
}

// ---------------------------------------------------------------------------
// shared token helpers
// ---------------------------------------------------------------------------

/// 1-based column of token `tok`.
fn col_of(t: &Tokens, tok: usize) -> usize {
    let lo = t.toks[tok].lo as usize;
    let b = t.text.as_bytes();
    let start = b[..lo]
        .iter()
        .rposition(|&c| c == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    lo - start + 1
}

/// 1-based line of token `tok`.
fn line_of(t: &Tokens, tok: usize) -> usize {
    t.toks[tok].line as usize
}

/// Whether the line holding `tok` is inside a `#[cfg(test)]` region.
fn masked(file: &SourceFile, tok: usize) -> bool {
    let ln = line_of(&file.tokens, tok);
    file.lines
        .get(ln.wrapping_sub(1))
        .is_some_and(|l| l.in_test)
}

/// Nearest identifier left of the `.` at token `dot`, skipping balanced
/// `[…]` / `(…)` groups — the field/binding an atomic or lock method is
/// called on (`self.hits.load(…)` → `hits`, `recs[v].dist` → `recs`).
fn receiver_ident(t: &Tokens, dot: usize) -> Option<String> {
    let mut j = dot;
    let mut depth = 0i64;
    while j > 0 {
        j = t.prev_code(j)?;
        match t.toks[j].kind {
            TokKind::Punct => match t.text_of(j) {
                "]" | ")" => depth += 1,
                "[" | "(" => {
                    if depth == 0 {
                        return None;
                    }
                    depth -= 1;
                }
                "." | "::" if depth == 0 => {}
                _ if depth == 0 => return None,
                _ => {}
            },
            TokKind::Ident if depth == 0 => return Some(t.text_of(j).to_string()),
            _ if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Whether token `i` is a method call `.<name>(`, returning the index of
/// the opening paren.
fn method_call(t: &Tokens, i: usize, name: &str) -> Option<usize> {
    if !t.is_ident(i, name) {
        return None;
    }
    let dot = t.prev_code(i)?;
    if !t.is_punct(dot, ".") {
        return None;
    }
    t.next_code(i + 1).filter(|&o| t.is_punct(o, "("))
}

/// How a `lint:allow(<rule>)` on/above `line` is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AllowNote {
    /// No allow for this rule here.
    Absent,
    /// Allow present, no prose next to it.
    Bare,
    /// Allow present with a written note.
    WithNote,
}

/// Inspects the allow covering 1-based `line` (same line or the one
/// above) and reports whether it carries a prose note — text in the same
/// comment beyond the marker itself.
fn allow_note(file: &SourceFile, rule: &str, line: usize) -> AllowNote {
    let mut best = AllowNote::Absent;
    for idx in [line.wrapping_sub(1), line.wrapping_sub(2)] {
        let Some(l) = file.lines.get(idx) else {
            continue;
        };
        if !l.allows.iter().any(|a| a == rule) {
            continue;
        }
        let raw = &l.raw;
        let Some(at) = raw.find("lint:allow(") else {
            continue;
        };
        let after = raw[at..]
            .find(')')
            .map(|p| &raw[at + p + 1..])
            .unwrap_or("");
        let comment_start = raw[..at].rfind("//").or_else(|| raw[..at].rfind("/*"));
        let before = comment_start
            .map(|c| raw[c + 2..at].trim_start_matches(['/', '!']))
            .unwrap_or("");
        let is_note = |s: &str| {
            s.trim_matches([' ', '\t', '-', ':', ';', ',', '.', '*'])
                .len()
                >= 3
        };
        if is_note(after) || is_note(before) {
            return AllowNote::WithNote;
        }
        best = AllowNote::Bare;
    }
    best
}

// ---------------------------------------------------------------------------
// atomics-order
// ---------------------------------------------------------------------------

/// One atomic call site: method token, receiver, orderings in its args.
struct AtomicSite {
    tok: usize,
    method: &'static str,
    receiver: Option<String>,
    relaxed: bool,
}

/// Collects the atomic call sites of `file` — method calls from
/// [`ATOMIC_METHODS`] whose argument list names a memory ordering.
fn atomic_sites(file: &SourceFile) -> Vec<AtomicSite> {
    let t = &file.tokens;
    let mut sites = Vec::new();
    for i in 0..t.toks.len() {
        let Some(&method) = ATOMIC_METHODS.iter().find(|&&m| t.is_ident(i, m)) else {
            continue;
        };
        let Some(open) = method_call(t, i, method) else {
            continue;
        };
        let Some(close) = t.matching_close(open) else {
            continue;
        };
        let mut relaxed = false;
        let mut any_ordering = false;
        for k in open..close {
            if t.toks[k].kind == TokKind::Ident && ORDERINGS.contains(&t.text_of(k)) {
                any_ordering = true;
                if t.text_of(k) == "Relaxed" {
                    relaxed = true;
                }
            }
        }
        if !any_ordering {
            continue; // not an atomic call (e.g. io::Read::load-alikes)
        }
        let dot = t.prev_code(i).unwrap_or(i);
        sites.push(AtomicSite {
            tok: i,
            method,
            receiver: receiver_ident(t, dot),
            relaxed,
        });
    }
    sites
}

/// Relaxed-ordering audit. A `Relaxed` access is flagged when the atomic
/// is demonstrably cross-thread: the site sits inside a `spawn(…)`
/// closure, the receiver is a `static` atomic, or the file shares state
/// (`spawn`/`scope`/`Arc<`/`impl Sync`, or the crate is in
/// [`SHARED_CRATES`]) *and* the receiver is written somewhere in the
/// file. The escape hatch must carry a safety note.
fn atomics_order(krate: &CrateInfo, file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.tokens;
    let sites = atomic_sites(file);
    if sites.is_empty() {
        return;
    }
    // `spawn(…)` argument spans: token ranges running on another thread.
    let mut spawn_spans: Vec<(usize, usize)> = Vec::new();
    for i in 0..t.toks.len() {
        if t.is_ident(i, "spawn") {
            if let Some(open) = t.next_code(i + 1).filter(|&o| t.is_punct(o, "(")) {
                if let Some(close) = t.matching_close(open) {
                    spawn_spans.push((open, close));
                }
            }
        }
    }
    // `static NAME: …Atomic…` declarations.
    let mut statics: Vec<String> = Vec::new();
    for i in 0..t.toks.len() {
        if !t.is_ident(i, "static") {
            continue;
        }
        let Some(n) = t.next_code(i + 1) else {
            continue;
        };
        let name = if t.is_ident(n, "mut") {
            t.next_code(n + 1)
        } else {
            Some(n)
        };
        if let Some(n) = name.filter(|&n| t.toks[n].kind == TokKind::Ident) {
            // Type tokens up to `=` or `;`: any `Atomic*` ident counts.
            let mut k = n + 1;
            while let Some(j) = t.next_code(k) {
                if t.is_punct(j, "=") || t.is_punct(j, ";") {
                    break;
                }
                if t.toks[j].kind == TokKind::Ident && t.text_of(j).starts_with("Atomic") {
                    statics.push(t.text_of(n).to_string());
                    break;
                }
                k = j + 1;
            }
        }
    }
    let file_shared = SHARED_CRATES.contains(&krate.name.as_str())
        || file.lines.iter().any(|l| {
            let s = &l.code_nostr;
            s.contains("spawn(")
                || s.contains("scope(")
                || s.contains("Arc<")
                || s.contains("impl Sync")
        });
    let written: Vec<&String> = sites
        .iter()
        .filter(|s| s.method != "load")
        .filter_map(|s| s.receiver.as_ref())
        .collect();
    for site in &sites {
        if !site.relaxed || masked(file, site.tok) {
            continue;
        }
        let in_spawn = spawn_spans
            .iter()
            .any(|&(open, close)| open < site.tok && site.tok < close);
        let is_static = site
            .receiver
            .as_ref()
            .is_some_and(|r| statics.iter().any(|s| s == r));
        let receiver_written =
            site.method != "load" || site.receiver.as_ref().is_some_and(|r| written.contains(&r));
        let why = if in_spawn {
            "the access runs inside a spawn(…) closure"
        } else if is_static {
            "the receiver is a static atomic visible to every thread"
        } else if file_shared && receiver_written {
            "the file shares state across threads and the atomic is written here"
        } else {
            continue;
        };
        let ln = line_of(t, site.tok);
        match allow_note(file, "atomics-order", ln) {
            AllowNote::WithNote => continue,
            AllowNote::Bare => {
                out.push(
                    Finding::new(
                        "atomics-order",
                        file.path.clone(),
                        ln,
                        format!(
                            "`lint:allow(atomics-order)` on `{}.{}(Relaxed)` has no safety \
                             note; add one line saying why Relaxed is sufficient here",
                            site.receiver.as_deref().unwrap_or("<expr>"),
                            site.method
                        ),
                    )
                    .with_col(col_of(t, site.tok)),
                );
            }
            AllowNote::Absent => {
                out.push(
                    Finding::new(
                        "atomics-order",
                        file.path.clone(),
                        ln,
                        format!(
                            "`{}.{}(…Relaxed…)` on a cross-thread atomic ({why}); use \
                             Acquire/Release (or SeqCst), or allow-list with a one-line \
                             safety note",
                            site.receiver.as_deref().unwrap_or("<expr>"),
                            site.method
                        ),
                    )
                    .with_col(col_of(t, site.tok)),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------------

/// One lock acquisition: the method/function token and what it locks.
struct LockSite {
    tok: usize,
    what: String,
}

/// Collects the lock acquisitions of `file`: `.lock()` / `.read()` /
/// `.write()` with **empty** argument lists (gated on the file actually
/// naming `Mutex` / `RwLock`, so `io::stdout().lock()` and `Read::read`
/// stay out), plus `lock_unpoisoned(…)` calls.
fn lock_sites(file: &SourceFile) -> Vec<LockSite> {
    let t = &file.tokens;
    let has_mutex = file
        .lines
        .iter()
        .any(|l| l.code_nostr.contains("Mutex") || l.code_nostr.contains("lock_unpoisoned"));
    let has_rwlock = file.lines.iter().any(|l| l.code_nostr.contains("RwLock"));
    let mut sites = Vec::new();
    for i in 0..t.toks.len() {
        let is_lock = has_mutex && t.is_ident(i, "lock");
        let is_rw = has_rwlock && (t.is_ident(i, "read") || t.is_ident(i, "write"));
        if is_lock || is_rw {
            let name = t.text_of(i).to_string();
            let Some(open) = method_call(t, i, &name) else {
                continue;
            };
            // Guards come from zero-arg calls; `file.write(buf)` does not.
            if !t.next_code(open + 1).is_some_and(|c| t.is_punct(c, ")")) {
                continue;
            }
            let dot = t.prev_code(i).unwrap_or(i);
            let recv = receiver_ident(t, dot);
            if recv
                .as_deref()
                .is_some_and(|r| matches!(r, "stdout" | "stderr" | "stdin"))
            {
                continue;
            }
            sites.push(LockSite {
                tok: i,
                what: format!("{}.{name}()", recv.as_deref().unwrap_or("<expr>")),
            });
        } else if has_mutex
            && t.is_ident(i, "lock_unpoisoned")
            && t.next_code(i + 1).is_some_and(|o| t.is_punct(o, "("))
            && !t.prev_code(i).is_some_and(|p| t.is_ident(p, "fn"))
        {
            sites.push(LockSite {
                tok: i,
                what: "lock_unpoisoned(…)".to_string(),
            });
        }
    }
    sites
}

/// Names of this crate's functions whose bodies acquire a lock — calling
/// one while holding a guard is the cross-function half of the
/// inversion check. `lock_unpoisoned` itself is treated as a primitive.
fn crate_locking_fns(krate: &CrateInfo) -> Vec<String> {
    let mut fns = Vec::new();
    for file in &krate.files {
        if file.kind != FileKind::Lib {
            continue;
        }
        let sites = lock_sites(file);
        for blk in &file.tree.blocks {
            let Some(name) = blk.fn_name.as_deref() else {
                continue;
            };
            if name == "lock_unpoisoned" || fns.iter().any(|f| f == name) {
                continue;
            }
            if sites.iter().any(|s| blk.open < s.tok && s.tok < blk.close) {
                fns.push(name.to_string());
            }
        }
    }
    fns
}

/// Start-of-statement token index for the statement containing `tok`:
/// one past the previous `;` / `{` / `}` at group depth 0.
fn stmt_start(t: &Tokens, tok: usize) -> usize {
    let mut j = tok;
    let mut depth = 0i64;
    while let Some(p) = t.prev_code(j) {
        match t.text_of(p) {
            ")" | "]" if t.toks[p].kind == TokKind::Punct => depth += 1,
            "(" | "[" if t.toks[p].kind == TokKind::Punct => depth -= 1,
            ";" | "{" | "}" if t.toks[p].kind == TokKind::Punct && depth == 0 => {
                return p + 1;
            }
            _ => {}
        }
        j = p;
    }
    0
}

/// The `;` ending the statement that contains `tok` (group-depth aware).
fn stmt_end(t: &Tokens, tok: usize) -> Option<usize> {
    let mut depth = 0i64;
    for j in tok..t.toks.len() {
        if t.toks[j].kind != TokKind::Punct {
            continue;
        }
        match t.text_of(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return Some(j),
            _ => {}
        }
    }
    None
}

/// The binding pattern of the `let` statement starting at `start`, if it
/// is one: `Some((name, conditional))` where `name` is the last plain
/// identifier of the pattern (so `let Ok(g)` and tuples resolve to the
/// guard) or `"_"`, and `conditional` marks `if let` / `while let` —
/// whose scrutinee temporaries live across the body block, not to the
/// end of the enclosing one.
fn let_binding(t: &Tokens, start: usize) -> Option<(String, bool)> {
    let mut j = t.next_code(start)?;
    // `if let` / `while let` prefixes.
    let conditional = t.is_ident(j, "if") || t.is_ident(j, "while");
    if conditional {
        j = t.next_code(j + 1)?;
    }
    if !t.is_ident(j, "let") {
        return None;
    }
    let mut name: Option<String> = None;
    let mut k = j + 1;
    while let Some(n) = t.next_code(k) {
        if t.is_punct(n, "=") {
            return Some((name.unwrap_or_else(|| "_".to_string()), conditional));
        }
        if t.toks[n].kind == TokKind::Ident {
            let w = t.text_of(n);
            if !matches!(w, "mut" | "ref" | "Ok" | "Some" | "Err" | "_") {
                name = Some(w.to_string());
            } else if w == "_" && name.is_none() {
                // `_` lexes as an identifier.
                name = Some("_".to_string());
            }
        }
        k = n + 1;
    }
    None
}

/// The `{ … }` body following an `if let` / `while let` scrutinee whose
/// lock call closes at `close`: token indices of the `{` and its `}`.
fn body_block(t: &Tokens, close: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    for j in (close + 1)..t.toks.len() {
        if t.toks[j].kind != TokKind::Punct {
            continue;
        }
        match t.text_of(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return t.matching_close(j).map(|c| (j, c)),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Whether the call chain after the lock call closing at `close` ends in
/// the guard itself — only `.unwrap()` / `.expect(…)` may follow before
/// the `;`. (`stdout.lock().flush()` style chains consume the guard and
/// are fine to bind to `_`.)
fn chain_ends_in_guard(t: &Tokens, close: usize) -> bool {
    let mut j = match t.next_code(close + 1) {
        Some(j) => j,
        None => return false,
    };
    loop {
        if t.is_punct(j, ";") {
            return true;
        }
        if !t.is_punct(j, ".") {
            return false;
        }
        let Some(m) = t.next_code(j + 1) else {
            return false;
        };
        if !(t.is_ident(m, "unwrap") || t.is_ident(m, "expect")) {
            return false;
        }
        let Some(open) = t.next_code(m + 1).filter(|&o| t.is_punct(o, "(")) else {
            return false;
        };
        let Some(c) = t.matching_close(open) else {
            return false;
        };
        j = match t.next_code(c + 1) {
            Some(j) => j,
            None => return false,
        };
    }
}

/// Lock discipline: (a) a guard bound with `let _ =` is dropped on the
/// same line — the critical section is empty, which is almost never the
/// intent; (b) a named guard that stays live across *another* lock
/// acquisition (directly or through a crate-local locking function) is a
/// lock-ordering-inversion candidate.
fn lock_discipline(file: &SourceFile, locking_fns: &[String], out: &mut Vec<Finding>) {
    let t = &file.tokens;
    let sites = lock_sites(file);
    if sites.is_empty() {
        return;
    }
    let site_toks: Vec<usize> = sites.iter().map(|s| s.tok).collect();
    for site in &sites {
        if masked(file, site.tok) {
            continue;
        }
        let ln = line_of(t, site.tok);
        if file.allowed("lock-discipline", ln) {
            continue;
        }
        let start = stmt_start(t, site.tok);
        let Some((binding, conditional)) = let_binding(t, start) else {
            continue;
        };
        let close = match method_call(t, site.tok, t.text_of(site.tok))
            .or_else(|| t.next_code(site.tok + 1).filter(|&o| t.is_punct(o, "(")))
            .and_then(|o| t.matching_close(o))
        {
            Some(c) => c,
            None => continue,
        };
        if binding == "_" && !conditional {
            if chain_ends_in_guard(t, close) {
                let raw = &file.lines[ln - 1].raw;
                let suggestion = raw
                    .contains("let _ =")
                    .then(|| raw.replacen("let _ =", "let _guard =", 1));
                let mut f = Finding::new(
                    "lock-discipline",
                    file.path.clone(),
                    ln,
                    format!(
                        "`let _ = {}` drops the guard immediately — the critical section \
                         is empty; bind it (`let _guard = …`) or delete the call",
                        site.what
                    ),
                )
                .with_col(col_of(t, site.tok));
                f.suggestion = suggestion;
                out.push(f);
            }
            continue;
        }
        // Guard live range. Plain `let g = …lock();`: from the end of
        // the statement to the end of the enclosing block (or an
        // explicit `drop(g)`) — but only when the chain actually ends in
        // the guard (`let n = m.lock().map.len();` drops it at the `;`).
        // `if let` / `while let`: the scrutinee temporary (and any
        // binding into it) is lifetime-extended across the body block,
        // so that block is the range whether or not the chain ends in
        // the guard.
        let (range_start, range_end) = if conditional {
            match body_block(t, close) {
                Some((open, end)) => (open + 1, end),
                None => continue,
            }
        } else {
            if !chain_ends_in_guard(t, close) {
                continue;
            }
            let Some(semi) = stmt_end(t, site.tok) else {
                continue;
            };
            let block_close = file
                .tree
                .block_at(site.tok)
                .map(|b| file.tree.blocks[b].close)
                .unwrap_or(t.toks.len());
            (semi + 1, block_close)
        };
        let mut j = range_start;
        while j < range_end {
            if t.is_ident(j, "drop")
                && t.next_code(j + 1).is_some_and(|o| t.is_punct(o, "("))
                && t.next_code(j + 1)
                    .and_then(|o| t.next_code(o + 1))
                    .is_some_and(|a| t.is_ident(a, &binding))
            {
                break;
            }
            let conflict = if site_toks.contains(&j) {
                Some(
                    sites
                        .iter()
                        .find(|s| s.tok == j)
                        .map(|s| s.what.clone())
                        .unwrap_or_default(),
                )
            } else if t.toks[j].kind == TokKind::Ident
                && locking_fns.iter().any(|f| f == t.text_of(j))
                && t.next_code(j + 1).is_some_and(|o| t.is_punct(o, "("))
            {
                Some(format!("{}(…)", t.text_of(j)))
            } else {
                None
            };
            if let Some(what) = conflict {
                if !masked(file, j) && !file.allowed("lock-discipline", line_of(t, j)) {
                    out.push(
                        Finding::new(
                            "lock-discipline",
                            file.path.clone(),
                            line_of(t, j),
                            format!(
                                "guard `{binding}` (from {} at line {ln}) is still live \
                                 across `{what}` — lock-ordering inversion candidate; \
                                 scope the guard or drop({binding}) first",
                                site.what
                            ),
                        )
                        .with_col(col_of(t, j)),
                    );
                }
                break; // one conflict per guard is enough signal
            }
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// hot-path
// ---------------------------------------------------------------------------

/// Heap-allocating (or potentially allocating) method names.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "extend",
    "reserve",
    "insert",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
];

/// `Type::fn` constructors that allocate.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("Box", "new"),
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Casts to these targets can silently truncate (usize/u128 are exempt:
/// node ids and packed keys legitimately narrow *to* them).
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64"];

/// Keywords whose following `[` opens a slice pattern / attribute /
/// array type, not an index expression.
const NOT_INDEX_PREV: &[&str] = &[
    "let", "in", "return", "if", "while", "match", "else", "move", "mut", "ref", "for", "as",
    "break", "continue", "box", "static", "const",
];

/// Hot-path hygiene inside `// lint:hot` regions: no heap allocation,
/// no truncating `as` casts, no compound index expressions. Simple
/// indices (`xs[i]`, `xs[i as usize]`, `xs[3]`, ranges) pass — they are
/// the loop-bound accesses the kernels are built from; anything computed
/// (`offsets[u + 1]`) must be hoisted or allow-listed with a note.
fn hot_path(file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.tokens;
    if file.tree.blocks.iter().all(|b| !b.hot) {
        return;
    }
    let mut flag = |tok: usize, what: String| {
        let ln = line_of(t, tok);
        if masked(file, tok) || file.allowed("hot-path", ln) {
            return;
        }
        out.push(Finding::new("hot-path", file.path.clone(), ln, what).with_col(col_of(t, tok)));
    };
    for i in 0..t.toks.len() {
        if !file.tree.in_hot(i) {
            continue;
        }
        match t.toks[i].kind {
            TokKind::Ident => {
                let w = t.text_of(i);
                // `.push(…)` and friends.
                if ALLOC_METHODS.contains(&w) && method_call(t, i, w).is_some() {
                    flag(
                        i,
                        format!(
                            "`.{w}(…)` allocates (or may reallocate) in a hot region; \
                             pre-reserve outside the region or restructure"
                        ),
                    );
                    continue;
                }
                // `Vec::new()` and friends.
                if let Some((ty, _)) = ALLOC_CTORS.iter().find(|(ty, f)| {
                    *ty == w
                        && t.next_code(i + 1).is_some_and(|c| t.is_punct(c, "::"))
                        && t.next_code(i + 1)
                            .and_then(|c| t.next_code(c + 1))
                            .is_some_and(|n| t.is_ident(n, f))
                }) {
                    flag(
                        i,
                        format!("`{ty}::…` constructs a heap container in a hot region"),
                    );
                    continue;
                }
                // `vec![…]` / `format!(…)`.
                if ALLOC_MACROS.contains(&w)
                    && t.next_code(i + 1).is_some_and(|b| t.is_punct(b, "!"))
                {
                    flag(i, format!("`{w}!` allocates in a hot region"));
                    continue;
                }
                // `as u32` and other narrowing casts.
                if w == "as" {
                    if let Some(ty) = t
                        .next_code(i + 1)
                        .filter(|&n| t.toks[n].kind == TokKind::Ident)
                        .map(|n| t.text_of(n))
                    {
                        if NARROW_CASTS.contains(&ty) {
                            flag(
                                i,
                                format!(
                                    "`as {ty}` can silently truncate in a hot region; \
                                     prove the range (debug_assert + allow note) or use \
                                     try_into outside the region"
                                ),
                            );
                        }
                    }
                    continue;
                }
            }
            TokKind::Punct if t.text_of(i) == "[" => {
                // Index expression: previous code token is a value end.
                let Some(p) = t.prev_code(i) else { continue };
                let is_value_end = match t.toks[p].kind {
                    TokKind::Ident => !NOT_INDEX_PREV.contains(&t.text_of(p)),
                    TokKind::Punct => matches!(t.text_of(p), ")" | "]"),
                    _ => false,
                };
                if !is_value_end {
                    continue;
                }
                let Some(close) = t.matching_close(i) else {
                    continue;
                };
                if !simple_index(t, i, close) {
                    flag(
                        i,
                        "compound index expression in a hot region; hoist it into a \
                         named local with a bounds proof, or use a range"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Whether the index expression between `open` and `close` is simple:
/// a lone identifier, a lone integer literal, `ident as usize`, or any
/// range (`..` present).
fn simple_index(t: &Tokens, open: usize, close: usize) -> bool {
    let inner: Vec<usize> = ((open + 1)..close)
        .filter(|&k| !matches!(t.toks[k].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    // Ranges pass: two adjacent `.` puncts anywhere inside.
    for w in inner.windows(2) {
        if t.is_punct(w[0], ".") && t.is_punct(w[1], ".") {
            return true;
        }
    }
    match inner.as_slice() {
        [a] => matches!(t.toks[*a].kind, TokKind::Ident | TokKind::Num),
        [a, b, c] => {
            t.toks[*a].kind == TokKind::Ident && t.is_ident(*b, "as") && t.is_ident(*c, "usize")
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// debug-invariants
// ---------------------------------------------------------------------------

/// The `debug_assert!` family.
const DEBUG_ASSERTS: &[&str] = &["debug_assert", "debug_assert_eq", "debug_assert_ne"];

/// Debug-invariant drift: a `debug_assert!` inside a hot region states
/// an invariant the release build silently stops checking — so it must
/// have a release-mode test registered in `crates/lint/lint-invariants.txt`
/// (`<path>:<fn> <test-path>` per line) that pins the same property.
fn debug_invariants(ws: &Workspace, file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.tokens;
    if file.tree.blocks.iter().all(|b| !b.hot) {
        return;
    }
    for i in 0..t.toks.len() {
        if !(t.toks[i].kind == TokKind::Ident && DEBUG_ASSERTS.contains(&t.text_of(i))) {
            continue;
        }
        if !t.next_code(i + 1).is_some_and(|b| t.is_punct(b, "!")) {
            continue;
        }
        if !file.tree.in_hot(i) || masked(file, i) {
            continue;
        }
        let ln = line_of(t, i);
        if file.allowed("debug-invariants", ln) {
            continue;
        }
        let func = file.tree.enclosing_fn(i).unwrap_or("<file>").to_string();
        let entry = ws
            .invariants
            .iter()
            .find(|e| e.path == file.path && e.func == func);
        match entry {
            None => out.push(
                Finding::new(
                    "debug-invariants",
                    file.path.clone(),
                    ln,
                    format!(
                        "`{}!` in hot fn `{func}` has no release-mode test registered; \
                         add `{}:{func} <test-path>` to crates/lint/lint-invariants.txt",
                        t.text_of(i),
                        file.path
                    ),
                )
                .with_col(col_of(t, i)),
            ),
            Some(e) if !ws.root.join(&e.test).is_file() => out.push(
                Finding::new(
                    "debug-invariants",
                    file.path.clone(),
                    ln,
                    format!(
                        "invariant manifest points `{func}` at `{}`, which does not exist",
                        e.test
                    ),
                )
                .with_col(col_of(t, i)),
            ),
            Some(_) => {}
        }
    }
}

/// Flags manifest entries whose source location no longer has a hot
/// `debug_assert!` — or whose registered test file is gone — so the
/// manifest cannot rot silently.
fn stale_invariant_entries(ws: &Workspace, out: &mut Vec<Finding>) {
    for e in &ws.invariants {
        let file_exists = ws
            .crates
            .iter()
            .flat_map(|c| c.files.iter())
            .any(|f| f.path == e.path);
        if !file_exists {
            out.push(Finding::new(
                "debug-invariants",
                "crates/lint/lint-invariants.txt".to_string(),
                e.line,
                format!(
                    "stale manifest entry: `{}` is not a scanned source file",
                    e.path
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_walks_field_chains_and_index_groups() {
        let t = Tokens::lex("self.hits.load(x); recs[v].dist.store(y); NEXT.fetch_add(1);");
        let dot_before = |word: &str| {
            let i = (0..t.toks.len()).find(|&i| t.is_ident(i, word)).unwrap();
            t.prev_code(i).unwrap()
        };
        assert_eq!(
            receiver_ident(&t, dot_before("load")).as_deref(),
            Some("hits")
        );
        assert_eq!(
            receiver_ident(&t, dot_before("store")).as_deref(),
            Some("dist")
        );
        assert_eq!(
            receiver_ident(&t, dot_before("fetch_add")).as_deref(),
            Some("NEXT")
        );
    }

    #[test]
    fn simple_indices_pass_compound_fail() {
        let check = |src: &str| {
            let t = Tokens::lex(src);
            let open = (0..t.toks.len()).find(|&i| t.is_punct(i, "[")).unwrap();
            let close = t.matching_close(open).unwrap();
            simple_index(&t, open, close)
        };
        assert!(check("xs[i]"));
        assert!(check("xs[3]"));
        assert!(check("xs[u as usize]"));
        assert!(check("xs[lo..hi]"));
        assert!(check("xs[..]"));
        assert!(!check("xs[u + 1]"));
        assert!(!check("xs[self.k]"));
        assert!(!check("xs[f(i)]"));
    }

    #[test]
    fn chain_detection_allows_unwrap_only() {
        let ends = |src: &str| {
            let t = Tokens::lex(src);
            let i = (0..t.toks.len()).find(|&i| t.is_ident(i, "lock")).unwrap();
            let open = t.next_code(i + 1).unwrap();
            let close = t.matching_close(open).unwrap();
            chain_ends_in_guard(&t, close)
        };
        assert!(ends("let _ = m.lock();"));
        assert!(ends("let _ = m.lock().unwrap();"));
        assert!(ends("let _ = m.lock().expect(\"invariant: x\");"));
        assert!(!ends("let _ = m.lock().unwrap().flush();"));
    }

    #[test]
    fn let_binding_extracts_names_and_underscore() {
        let bind = |src: &str| {
            let t = Tokens::lex(src);
            let_binding(&t, 0)
        };
        assert_eq!(bind("let g = m.lock();"), Some(("g".into(), false)));
        assert_eq!(bind("let mut g = m.lock();"), Some(("g".into(), false)));
        assert_eq!(bind("let Ok(g) = m.lock();"), Some(("g".into(), false)));
        assert_eq!(bind("let _ = m.lock();"), Some(("_".into(), false)));
        assert_eq!(
            bind("if let Some(t) = m.lock().get(k) { use_it(t); }"),
            Some(("t".into(), true))
        );
        assert_eq!(bind("g.lock();"), None);
    }
}
