#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! `rbpc-lint` CLI: scan the workspace, print findings, exit non-zero on
//! any *new* finding (one not accepted by the committed baseline). Run
//! from anywhere inside the repo:
//!
//! ```text
//! cargo run -p rbpc-lint                      # lint the enclosing workspace
//! cargo run -p rbpc-lint -- PATH              # lint the workspace at PATH
//! cargo run -p rbpc-lint -- --json out.json   # machine-readable report
//! cargo run -p rbpc-lint -- --fix-dry-run     # unified-diff suggestions
//! ```
//!
//! The baseline defaults to `<root>/crates/lint/lint-baseline.json` when
//! that file exists; `--baseline PATH` overrides it and `--no-baseline`
//! disables it (every finding is then new). The summary line carries
//! machine-greppable counters (`lint.findings.total=…`) for check.sh.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rbpc_lint::{report, rules, rules2, Allowlist, Workspace};

struct Args {
    root: Option<PathBuf>,
    json_out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    fix_dry_run: bool,
}

fn usage() {
    println!(
        "usage: rbpc-lint [WORKSPACE_ROOT] [--json PATH] [--baseline PATH] \
         [--no-baseline] [--fix-dry-run]\n\nrules: {}, {}",
        rules::RULES.join(", "),
        rules2::RULES2.join(", ")
    );
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: None,
        json_out: None,
        baseline: None,
        no_baseline: false,
        fix_dry_run: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--json" => {
                args.json_out = Some(PathBuf::from(it.next().ok_or("--json needs a PATH")?));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a PATH")?));
            }
            "--no-baseline" => args.no_baseline = true,
            "--fix-dry-run" => args.fix_dry_run = true,
            other if args.root.is_none() && !other.starts_with('-') => {
                args.root = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rbpc-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let Some(args) = parse_args()? else {
        usage();
        return Ok(ExitCode::SUCCESS);
    };
    let root = match args.root {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    let ws =
        Workspace::load(&root).map_err(|e| format!("failed to load {}: {e}", root.display()))?;
    let allow = Allowlist::load(&root);
    let findings = ws.check(&allow);

    // Baseline: explicit flag wins; otherwise the committed default, if
    // present. `--no-baseline` treats every finding as new.
    let baseline = if args.no_baseline {
        None
    } else {
        let path = args
            .baseline
            .clone()
            .unwrap_or_else(|| root.join("crates/lint/lint-baseline.json"));
        report::Baseline::load(&path)?
    };
    let mut baseline_broken = false;
    if let Some(b) = &baseline {
        for e in b.unjustified() {
            println!(
                "crates/lint/lint-baseline.json: [baseline] entry `{}` has an empty \
                 justification — write one or fix the finding",
                e.allow_key
            );
            baseline_broken = true;
        }
    }
    let diff = match &baseline {
        Some(b) => report::diff_against(&findings, b),
        None => report::BaselineDiff {
            baselined: vec![false; findings.len()],
            new: (0..findings.len()).collect(),
            stale: Vec::new(),
        },
    };

    for &i in &diff.new {
        println!("{}", findings[i]);
    }
    for e in &diff.stale {
        println!(
            "note: baseline entry `{}` ({} in {}) no longer fires — delete it",
            e.allow_key, e.rule, e.path
        );
    }
    if args.fix_dry_run {
        let patch = report::fix_dry_run(&findings);
        if patch.is_empty() {
            println!("rbpc-lint: --fix-dry-run: no mechanical suggestions");
        } else {
            print!("{patch}");
        }
    }
    if let Some(path) = &args.json_out {
        let json = report::findings_to_json(&findings, &diff.baselined);
        std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    let n_rules = rules::RULES.len() + rules2::RULES2.len();
    let mut per_rule: Vec<(&str, usize)> = Vec::new();
    for f in &findings {
        match per_rule.iter_mut().find(|(r, _)| *r == f.rule) {
            Some((_, n)) => *n += 1,
            None => per_rule.push((f.rule, 1)),
        }
    }
    let mut counters = format!(
        "lint.findings.total={} lint.findings.new={} lint.findings.baselined={}",
        findings.len(),
        diff.new.len(),
        diff.baselined.iter().filter(|&&b| b).count()
    );
    for (rule, n) in &per_rule {
        counters.push_str(&format!(" lint.findings.rule.{rule}={n}"));
    }

    if diff.new.is_empty() && !baseline_broken {
        println!(
            "rbpc-lint: OK — {} files across {} crates, {n_rules} rules; {counters}",
            ws.file_count(),
            ws.crates.len(),
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "rbpc-lint: {} new finding(s) in {} files across {} crates; {counters}",
            diff.new.len(),
            ws.file_count(),
            ws.crates.len(),
        );
        Ok(ExitCode::FAILURE)
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        match dir.parent().map(Path::to_path_buf) {
            Some(parent) => dir = parent,
            None => return Err("no workspace Cargo.toml found above the current dir".into()),
        }
    }
}
