#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! `rbpc-lint` CLI: scan the workspace, print findings, exit non-zero if
//! any rule fires. Run from anywhere inside the repo:
//!
//! ```text
//! cargo run -p rbpc-lint            # lint the enclosing workspace
//! cargo run -p rbpc-lint -- PATH   # lint the workspace rooted at PATH
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rbpc_lint::{rules, Allowlist, Workspace};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-h" | "--help" => {
                println!(
                    "usage: rbpc-lint [WORKSPACE_ROOT]\n\nrules: {}",
                    rules::RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            other => {
                eprintln!("rbpc-lint: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match root.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rbpc-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("rbpc-lint: failed to load {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let allow = Allowlist::load(&root);
    let findings = ws.check(&allow);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!(
            "rbpc-lint: OK — {} files across {} crates, {} rules, 0 findings",
            ws.file_count(),
            ws.crates.len(),
            rules::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "rbpc-lint: {} finding(s) in {} files across {} crates",
            findings.len(),
            ws.file_count(),
            ws.crates.len()
        );
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        match dir.parent().map(Path::to_path_buf) {
            Some(parent) => dir = parent,
            None => return Err("no workspace Cargo.toml found above the current dir".into()),
        }
    }
}
