#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! rbpc-lint: a std-only, dependency-free analyzer for the RBPC workspace.
//!
//! RBPC's central promises — bit-identical parallel provisioning, unique
//! ε-perturbed shortest paths, concatenation bounds from Theorems 1/2 —
//! rest on source-level disciplines the compiler does not enforce: no
//! hash-order iteration in algorithm code, no wall-clock reads outside
//! the measurement crates, no panics in restoration paths, balanced
//! feature gates, sound atomic orderings, disciplined lock scopes, and
//! allocation-free hot kernels. This crate machine-checks those
//! disciplines in two tiers — six line rules (see [`rules`]) over the
//! line model in [`scan`], and four token rules (see [`rules2`]) over
//! the lexer/block-tree in [`token`] / [`tree`] — and `scripts/check.sh`
//! runs it as a hard gate before clippy.
//!
//! Escape hatches, in order of preference:
//! 1. fix the code;
//! 2. a `// lint:allow(<rule>)` comment on (or right above) the line,
//!    next to a justification (for `atomics-order` the note is
//!    *required*, see [`rules2`]);
//! 3. an entry in `crates/lint/lint-baseline.json` with a written
//!    justification — CI then fails only on findings *not* in the
//!    baseline (see [`report`]);
//! 4. a `<rule> <path>` line in `crates/lint/lint-allow.txt` for whole
//!    files that are legitimately exempt.
//!
//! The runtime half of the story — `CsrGraph::validate`,
//! `ShortestPathTree::validate_structure`, `Concatenation::validate_bounds`
//! — lives with the types it checks in rbpc-graph / rbpc-core and is
//! exercised by `debug_assert!`s, the csr_parallel suite, and
//! `rbpc-eval validate`.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod report;
pub mod rules;
pub mod rules2;
pub mod scan;
pub mod token;
pub mod tree;

use scan::{FileKind, SourceFile};

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`rules::RULES`] or [`rules2::RULES2`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token (0 for line rules).
    pub col: usize,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
    /// The offending source line, trimmed (filled by [`Workspace::check`]).
    pub snippet: String,
    /// The offending source line, verbatim (for `--fix-dry-run` diffs).
    pub raw_line: String,
    /// Content-stable baseline key (filled by [`Workspace::check`]).
    pub allow_key: String,
    /// Full replacement line for mechanical fixes (`--fix-dry-run`).
    pub suggestion: Option<String>,
}

impl Finding {
    /// A finding with only the universally known fields; `snippet` /
    /// `allow_key` are filled by the post-pass in [`Workspace::check`].
    pub fn new(rule: &'static str, path: String, line: usize, message: String) -> Finding {
        Finding {
            rule,
            path,
            line,
            col: 0,
            message,
            snippet: String::new(),
            raw_line: String::new(),
            allow_key: String::new(),
            suggestion: None,
        }
    }

    /// Sets the 1-based column.
    pub fn with_col(mut self, col: usize) -> Finding {
        self.col = col;
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One line of `crates/lint/lint-invariants.txt`: a hot-region
/// `debug_assert!` in `<path>:<func>` is release-covered by `<test>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantEntry {
    /// Workspace-relative source path.
    pub path: String,
    /// Function name containing the hot `debug_assert!`.
    pub func: String,
    /// Workspace-relative path of the release-mode test that pins the
    /// same property.
    pub test: String,
    /// 1-based line in the manifest (for stale-entry findings).
    pub line: usize,
}

/// A workspace member crate: manifest facts plus scanned sources.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name from `[package] name`.
    pub name: String,
    /// Workspace-relative crate directory (`"."` for the root package).
    pub dir: String,
    /// Keys of the `[features]` table.
    pub features: BTreeSet<String>,
    /// Scanned `.rs` files, sorted by path.
    pub files: Vec<SourceFile>,
    /// Index into `files` of `src/lib.rs` (or `src/main.rs`), if present.
    pub root_file: Option<usize>,
}

/// The loaded workspace: all member crates plus the root package.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Member crates sorted by directory, root package last.
    pub crates: Vec<CrateInfo>,
    /// Parsed `crates/lint/lint-invariants.txt` (empty if absent).
    pub invariants: Vec<InvariantEntry>,
}

impl Workspace {
    /// Loads the workspace rooted at `root` (must contain a `Cargo.toml`
    /// with a `[workspace]` table): every `crates/*` member with a
    /// manifest, plus the root package itself if the root manifest also
    /// declares `[package]`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
        if !manifest.contains("[workspace]") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a workspace root", root.display()),
            ));
        }
        let mut crates = Vec::new();
        let crates_dir = root.join("crates");
        let mut members: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect(),
            Err(_) => Vec::new(),
        };
        members.sort();
        for dir in members {
            crates.push(load_crate(root, &dir)?);
        }
        if manifest.contains("[package]") {
            crates.push(load_crate(root, root)?);
        }
        let invariants = load_invariants(root);
        Ok(Workspace {
            root: root.to_path_buf(),
            crates,
            invariants,
        })
    }

    /// Runs all rules (both tiers) and the allowlist filter; findings
    /// come back sorted by path, line, rule, with snippets and
    /// content-stable `allow_key`s filled in.
    pub fn check(&self, allow: &Allowlist) -> Vec<Finding> {
        let mut out = Vec::new();
        rules::run_all(self, &mut out);
        rules2::run_all(self, &mut out);
        out.retain(|f| !allow.is_allowed(f.rule, &f.path));
        out.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule, a.col).cmp(&(b.path.as_str(), b.line, b.rule, b.col))
        });
        out.dedup();
        self.fill_keys(&mut out);
        out
    }

    /// Post-pass: attaches the source line (trimmed + verbatim) and the
    /// content-stable `allow_key` to every finding. The occurrence index
    /// disambiguates identical lines within one file.
    fn fill_keys(&self, out: &mut [Finding]) {
        let mut seen: Vec<(String, usize)> = Vec::new();
        for f in out.iter_mut() {
            if f.snippet.is_empty() {
                if let Some(line) = self
                    .crates
                    .iter()
                    .flat_map(|c| c.files.iter())
                    .find(|file| file.path == f.path)
                    .and_then(|file| file.lines.get(f.line.wrapping_sub(1)))
                {
                    f.raw_line = line.raw.clone();
                    f.snippet = line.raw.trim().to_string();
                }
            }
            let content = if f.snippet.is_empty() {
                &f.message
            } else {
                &f.snippet
            };
            let base = report::allow_key(f.rule, &f.path, content, 0);
            let occurrence = match seen.iter_mut().find(|(k, _)| *k == base) {
                Some((_, n)) => {
                    *n += 1;
                    *n
                }
                None => {
                    seen.push((base.clone(), 0));
                    0
                }
            };
            f.allow_key = report::allow_key(f.rule, &f.path, content, occurrence);
        }
    }

    /// Total number of scanned source files.
    pub fn file_count(&self) -> usize {
        self.crates.iter().map(|c| c.files.len()).sum()
    }
}

/// Reads one crate: manifest name/features plus every `.rs` under `src/`
/// (library code) and `tests/`, `benches/`, `examples/` (test code).
/// `fixtures/` subtrees are skipped — they hold seeded violations for the
/// lint's own tests and are not part of the build.
fn load_crate(ws_root: &Path, dir: &Path) -> io::Result<CrateInfo> {
    let manifest = fs::read_to_string(dir.join("Cargo.toml"))?;
    let name = manifest_package_name(&manifest).unwrap_or_else(|| "<unnamed>".to_string());
    let features = manifest_features(&manifest);
    let rel_dir = rel_path(ws_root, dir);

    let mut files = Vec::new();
    for (sub, kind) in [
        ("src", FileKind::Lib),
        ("tests", FileKind::Test),
        ("benches", FileKind::Test),
        ("examples", FileKind::Test),
    ] {
        let base = dir.join(sub);
        if base.is_dir() {
            walk_rs(&base, &mut |path| {
                let text = fs::read_to_string(path)?;
                files.push(SourceFile::scan(&rel_path(ws_root, path), kind, &text));
                Ok(())
            })?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    let root_file = files
        .iter()
        .position(|f| f.path.ends_with("src/lib.rs"))
        .or_else(|| files.iter().position(|f| f.path.ends_with("src/main.rs")));
    Ok(CrateInfo {
        name,
        dir: rel_dir,
        features,
        files,
        root_file,
    })
}

/// Parses `crates/lint/lint-invariants.txt` under `root`: one
/// `<path>:<func> <test-path>` per line, `#` comments and blanks
/// skipped. Missing file means no entries.
fn load_invariants(root: &Path) -> Vec<InvariantEntry> {
    let Ok(text) = fs::read_to_string(root.join("crates/lint/lint-invariants.txt")) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((site, test)) = line.split_once(char::is_whitespace) else {
            continue;
        };
        let Some((path, func)) = site.rsplit_once(':') else {
            continue;
        };
        out.push(InvariantEntry {
            path: path.to_string(),
            func: func.to_string(),
            test: test.trim().to_string(),
            line: i + 1,
        });
    }
    out
}

/// Recursively visits `.rs` files under `dir` in sorted order, skipping
/// `fixtures/` and `target/` subtrees.
fn walk_rs(dir: &Path, visit: &mut dyn FnMut(&Path) -> io::Result<()>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n == "fixtures" || n == "target");
            if !skip {
                walk_rs(&path, visit)?;
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            visit(&path)?;
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated (falls back to the full path).
fn rel_path(root: &Path, path: &Path) -> String {
    let p = path.strip_prefix(root).unwrap_or(path);
    let s = p.to_string_lossy().replace('\\', "/");
    if s.is_empty() {
        ".".to_string()
    } else {
        s
    }
}

/// Extracts `[package] name = "…"` with a minimal section-aware scan.
fn manifest_package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim_start();
                let rest = rest.strip_prefix('"')?;
                return Some(rest[..rest.find('"')?].to_string());
            }
        }
    }
    None
}

/// Keys of the `[features]` table (empty set if absent).
fn manifest_features(manifest: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_features = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_features = t == "[features]";
            continue;
        }
        if in_features && !t.is_empty() && !t.starts_with('#') {
            if let Some(eq) = t.find('=') {
                let key = t[..eq].trim().trim_matches('"');
                if !key.is_empty() {
                    out.insert(key.to_string());
                }
            }
        }
    }
    out
}

/// File-level exemptions loaded from `crates/lint/lint-allow.txt`.
///
/// Each non-comment line is `<rule> <workspace-relative-path>`; a rule of
/// `*` exempts the path from every rule.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses the allowlist format; unknown rule names are kept verbatim
    /// (they simply never match).
    pub fn parse(text: &str) -> Allowlist {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                let (rule, path) = l.split_once(char::is_whitespace)?;
                Some((rule.to_string(), path.trim().to_string()))
            })
            .collect();
        Allowlist { entries }
    }

    /// Loads `crates/lint/lint-allow.txt` under `root`, or an empty list
    /// if the file does not exist.
    pub fn load(root: &Path) -> Allowlist {
        match fs::read_to_string(root.join("crates/lint/lint-allow.txt")) {
            Ok(text) => Allowlist::parse(&text),
            Err(_) => Allowlist::default(),
        }
    }

    /// Whether `path` is exempt from `rule`.
    pub fn is_allowed(&self, rule: &str, path: &str) -> bool {
        self.entries
            .iter()
            .any(|(r, p)| p == path && (r == rule || r == "*"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parsing() {
        let m = "[package]\nname = \"demo\"\n\n[features]\ndefault = [\"obs\"]\nobs = []\n";
        assert_eq!(manifest_package_name(m).as_deref(), Some("demo"));
        let f = manifest_features(m);
        assert!(f.contains("default") && f.contains("obs"));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn allowlist_matches_rule_and_wildcard() {
        let a = Allowlist::parse("# comment\npanic crates/x/src/lib.rs\n* crates/y/src/gen.rs\n");
        assert!(a.is_allowed("panic", "crates/x/src/lib.rs"));
        assert!(!a.is_allowed("wall-clock", "crates/x/src/lib.rs"));
        assert!(a.is_allowed("wall-clock", "crates/y/src/gen.rs"));
    }
}
