//! A std-only Rust lexer: the token stream under every v2 rule.
//!
//! The v1 scanner worked on characters per line; this pass produces a
//! real token stream — identifiers, literals, punctuation, comments —
//! with byte spans and line numbers, handling the constructs a char
//! scanner desyncs on: raw strings (`r#"…"#`, `br##"…"##`), byte
//! strings, raw identifiers (`r#fn`), nested block comments, lifetimes
//! vs char literals, and multi-line string literals. Everything
//! downstream ([`crate::tree`], [`crate::rules2`], the rebuilt line
//! model in [`crate::scan`]) is derived from this stream, so all layers
//! agree on what is code and what is comment or string content.
//!
//! The lexer never fails: unterminated literals and comments extend to
//! end of input, and unknown bytes become single-byte punctuation. It
//! is a *lexer*, not a parser — rules pattern-match token sequences and
//! stay robust to code they cannot fully understand.

/// Token classes. Keywords are ordinary [`TokKind::Ident`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// A lifetime such as `'a` (includes the quote).
    Lifetime,
    /// Integer or float literal, with suffix if any.
    Num,
    /// String literal: plain, byte, raw, or raw-byte, with delimiters.
    Str,
    /// Char or byte-char literal, with quotes.
    Char,
    /// Punctuation. `::` is one token; everything else one byte.
    Punct,
    /// `// …` comment (without the trailing newline). Doc comments too.
    LineComment,
    /// `/* … */` comment, nesting and newlines included.
    BlockComment,
}

/// One token: class plus byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub lo: u32,
    /// Byte offset one past the last byte.
    pub hi: u32,
    /// 1-based line of the first byte.
    pub line: u32,
}

/// A lexed file: the original text plus its token stream.
#[derive(Debug, Clone, Default)]
pub struct Tokens {
    /// The source text, verbatim.
    pub text: String,
    /// The tokens, in source order, comments included.
    pub toks: Vec<Token>,
}

impl Tokens {
    /// The text of token `i`.
    pub fn text_of(&self, i: usize) -> &str {
        let t = &self.toks[i];
        &self.text[t.lo as usize..t.hi as usize]
    }

    /// Index of the next non-comment token at or after `i`, if any.
    pub fn next_code(&self, mut i: usize) -> Option<usize> {
        while let Some(t) = self.toks.get(i) {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => i += 1,
                _ => return Some(i),
            }
        }
        None
    }

    /// Index of the previous non-comment token strictly before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        let mut j = i;
        while j > 0 {
            j -= 1;
            match self.toks[j].kind {
                TokKind::LineComment | TokKind::BlockComment => {}
                _ => return Some(j),
            }
        }
        None
    }

    /// Whether token `i` is the identifier `word`.
    pub fn is_ident(&self, i: usize, word: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && self.text_of(i) == word)
    }

    /// Whether token `i` is the punctuation `p`.
    pub fn is_punct(&self, i: usize, p: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && self.text_of(i) == p)
    }

    /// Given the index of an opening `(`, `[`, or `{`, returns the index
    /// of its matching closer, treating the three bracket kinds as one
    /// nesting family (good enough for span extraction; the input is
    /// rustc-accepted code, so brackets do balance).
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        let mut depth = 0i64;
        for i in open..self.toks.len() {
            if self.toks[i].kind != TokKind::Punct {
                continue;
            }
            match self.text_of(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Lexes `text`. Never fails; see the module docs for the error
    /// recovery rules.
    pub fn lex(text: &str) -> Tokens {
        let b = text.as_bytes();
        let mut toks = Vec::new();
        let mut i = 0usize;
        let mut line = 1u32;
        // Counts the newlines in `text[lo..hi]`.
        let newlines =
            |lo: usize, hi: usize| b[lo..hi].iter().filter(|&&c| c == b'\n').count() as u32;
        while i < b.len() {
            let lo = i;
            let start_line = line;
            let c = b[i];
            match c {
                b'\n' => {
                    line += 1;
                    i += 1;
                }
                c if c.is_ascii_whitespace() => i += 1,
                b'/' if b.get(i + 1) == Some(&b'/') => {
                    while i < b.len() && b[i] != b'\n' {
                        i += 1;
                    }
                    toks.push(tok(TokKind::LineComment, lo, i, start_line));
                }
                b'/' if b.get(i + 1) == Some(&b'*') => {
                    let mut depth = 1u32;
                    i += 2;
                    while i < b.len() && depth > 0 {
                        if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                            depth += 1;
                            i += 2;
                        } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    line += newlines(lo, i);
                    toks.push(tok(TokKind::BlockComment, lo, i, start_line));
                }
                b'"' => {
                    i = scan_string(b, i + 1, 0);
                    line += newlines(lo, i);
                    toks.push(tok(TokKind::Str, lo, i, start_line));
                }
                b'\'' => {
                    // Lifetime vs char literal: `'` + ident not followed
                    // by a closing quote is a lifetime.
                    let mut j = i + 1;
                    while j < b.len() && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    if j > i + 1 && b.get(j) != Some(&b'\'') {
                        i = j;
                        toks.push(tok(TokKind::Lifetime, lo, i, start_line));
                    } else {
                        i = scan_char(b, i + 1);
                        line += newlines(lo, i);
                        toks.push(tok(TokKind::Char, lo, i, start_line));
                    }
                }
                c if is_ident_start(c) => {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    let word = &text[i..j];
                    // String prefixes and raw identifiers bind to the
                    // quote that follows the (would-be) identifier.
                    if let Some(end) = string_after_prefix(b, i, word) {
                        i = end;
                        line += newlines(lo, i);
                        toks.push(tok(TokKind::Str, lo, i, start_line));
                    } else if word == "b" && b.get(j) == Some(&b'\'') {
                        i = scan_char(b, j + 1);
                        toks.push(tok(TokKind::Char, lo, i, start_line));
                    } else if word == "r"
                        && b.get(j) == Some(&b'#')
                        && b.get(j + 1).copied().is_some_and(is_ident_start)
                    {
                        // Raw identifier `r#loop`.
                        i = j + 2;
                        while i < b.len() && is_ident_cont(b[i]) {
                            i += 1;
                        }
                        toks.push(tok(TokKind::Ident, lo, i, start_line));
                    } else {
                        i = j;
                        toks.push(tok(TokKind::Ident, lo, i, start_line));
                    }
                }
                c if c.is_ascii_digit() => {
                    let mut j = i + 1;
                    while j < b.len() && (is_ident_cont(b[j]) || b[j] == b'.') {
                        if b[j] == b'.' {
                            // `1..n` is a range, `1.max()` a method call:
                            // the dot joins the number only before a digit.
                            if !b.get(j + 1).copied().is_some_and(|d| d.is_ascii_digit()) {
                                break;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                    toks.push(tok(TokKind::Num, lo, i, start_line));
                }
                b':' if b.get(i + 1) == Some(&b':') => {
                    i += 2;
                    toks.push(tok(TokKind::Punct, lo, i, start_line));
                }
                _ => {
                    i += 1;
                    toks.push(tok(TokKind::Punct, lo, i, start_line));
                }
            }
        }
        Tokens {
            text: text.to_string(),
            toks,
        }
    }
}

fn tok(kind: TokKind, lo: usize, hi: usize, line: u32) -> Token {
    Token {
        kind,
        lo: lo as u32,
        hi: hi as u32,
        line,
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Scans a (non-raw) string body starting just after the opening quote;
/// `_hashes` is unused but keeps the raw/cooked call shapes parallel.
/// Returns the index one past the closing quote (or `len`).
fn scan_string(b: &[u8], mut i: usize, _hashes: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Scans a raw string body starting just after the opening quote: ends at
/// `"` followed by `hashes` `#` marks. No escapes.
fn scan_raw_string(b: &[u8], mut i: usize, hashes: usize) -> usize {
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    b.len()
}

/// Scans a char literal body starting just after the opening quote.
fn scan_char(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => return i, // unterminated: don't eat the line
            _ => i += 1,
        }
    }
    b.len()
}

/// If the identifier `word` at byte offset `at` is a string prefix
/// (`b`, `r`, `br`) introducing a literal, returns the literal's end
/// offset; `None` means plain identifier.
fn string_after_prefix(b: &[u8], at: usize, word: &str) -> Option<usize> {
    let raw = matches!(word, "r" | "br");
    let cooked = word == "b";
    if !raw && !cooked {
        return None;
    }
    let mut j = at + word.len();
    let mut hashes = 0usize;
    if raw {
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    let scan = if raw { scan_raw_string } else { scan_string };
    Some(scan(b, j + 1, hashes))
}

/// Layout of a literal token: which bytes are delimiters (quotes, hash
/// marks, prefixes) and which are content. [`crate::scan`] uses this to
/// blank content while keeping delimiters visible.
pub fn literal_content_range(text: &str, t: &Token) -> (usize, usize) {
    let (lo, hi) = (t.lo as usize, t.hi as usize);
    let s = &text[lo..hi];
    match t.kind {
        TokKind::Str => {
            let prefix = s.bytes().take_while(|&c| c != b'"').count();
            let open = lo + prefix + 1;
            let hashes = s[..prefix].bytes().filter(|&c| c == b'#').count();
            let close = hi.saturating_sub(1 + hashes).max(open);
            (open, close)
        }
        // Char literals blank entirely (quotes included), matching the
        // v1 scanner: a quote is never structural.
        TokKind::Char => (lo, hi),
        _ => (lo, hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        let t = Tokens::lex(src);
        (0..t.toks.len())
            .map(|i| (t.toks[i].kind, t.text_of(i).to_string()))
            .collect()
    }

    #[test]
    fn idents_nums_puncts() {
        let k = kinds("let x2 = 3_000u64 + y.z::<T>();");
        assert_eq!(k[0], (TokKind::Ident, "let".into()));
        assert_eq!(k[1], (TokKind::Ident, "x2".into()));
        assert_eq!(k[3], (TokKind::Num, "3_000u64".into()));
        assert!(k.iter().any(|(kd, s)| *kd == TokKind::Punct && s == "::"));
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_prefix() {
        let k = kinds(r####"let a = r#"x "quoted" y"#; let b = br##"raw ## inside"##; done"####);
        let strs: Vec<&String> = k
            .iter()
            .filter(|(kd, _)| *kd == TokKind::Str)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(strs.len(), 2, "{k:?}");
        assert_eq!(strs[0], r###"r#"x "quoted" y"#"###);
        assert_eq!(strs[1], r####"br##"raw ## inside"##"####);
        // The trailing ident survives — no desync.
        assert!(k.iter().any(|(kd, s)| *kd == TokKind::Ident && s == "done"));
    }

    #[test]
    fn nested_block_comments_stay_one_token() {
        let k = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(k.len(), 3);
        assert_eq!(k[1].0, TokKind::BlockComment);
        assert_eq!(k[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = k.iter().filter(|(kd, _)| *kd == TokKind::Lifetime).count();
        let chars = k.iter().filter(|(kd, _)| *kd == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let k = kinds("let r#loop = 1;");
        assert!(k
            .iter()
            .any(|(kd, s)| *kd == TokKind::Ident && s == "r#loop"));
    }

    #[test]
    fn line_numbers_cross_multiline_tokens() {
        let t = Tokens::lex("a\n/* b\nc */\nd \"e\nf\" g");
        let find = |word: &str| {
            (0..t.toks.len())
                .find(|&i| t.text_of(i) == word)
                .map(|i| t.toks[i].line)
                .unwrap()
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("d"), 4);
        assert_eq!(find("g"), 5);
    }

    #[test]
    fn matching_close_spans_nests() {
        let t = Tokens::lex("f(a[b(c)], d)");
        let open = (0..t.toks.len()).find(|&i| t.is_punct(i, "(")).unwrap();
        let close = t.matching_close(open).unwrap();
        assert_eq!(close, t.toks.len() - 1);
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        for src in ["\"abc", "/* open", "r#\"raw", "'x", "b\"bytes"] {
            let t = Tokens::lex(src);
            assert!(!t.toks.is_empty(), "{src}");
        }
    }
}
