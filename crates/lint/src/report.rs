//! Machine-readable reports: JSON findings, the committed baseline, and
//! `--fix-dry-run` unified diffs.
//!
//! Findings are keyed by a *content-stable* `allow_key` —
//! `<rule>@<path>@<fnv64-of-trimmed-snippet>@<occurrence>` — so moving a
//! file around (line drift) does not invalidate the committed baseline,
//! while editing the offending line does. `crates/lint/lint-baseline.json`
//! holds the accepted findings; CI fails only on keys that are not in it,
//! and every baseline entry must carry a written justification.
//!
//! The crate stays dependency-free, so this module carries its own tiny
//! RFC 8259 subset parser for the baseline file (objects, arrays,
//! strings, numbers, true/false/null) and its own escaping serializer.
//! The round-trip against `rbpc_obs::json` is pinned by an integration
//! test (rbpc-obs is a dev-dependency only).

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::Finding;

/// 64-bit FNV-1a over `s` — the hash inside [`allow_key`] values.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the content-stable key for a finding: rule, path, hash of the
/// trimmed source line, and the occurrence index among same-hash
/// findings in the same file (so two identical lines get distinct keys).
pub fn allow_key(rule: &str, path: &str, snippet: &str, occurrence: usize) -> String {
    format!("{rule}@{path}@{:016x}@{occurrence}", fnv1a(snippet.trim()))
}

/// Escapes `s` as a JSON string body (no surrounding quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes findings (with their new/baselined status) to the report
/// JSON: `{"version":1,"total":…,"new":…,"baselined":…,"findings":[…]}`.
/// `baselined` flags parallel `findings`.
pub fn findings_to_json(findings: &[Finding], baselined: &[bool]) -> String {
    let n_base = baselined.iter().filter(|&&b| b).count();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"version\":1,\"total\":{},\"new\":{},\"baselined\":{},\"findings\":[",
        findings.len(),
        findings.len() - n_base,
        n_base
    );
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"span\":{{\"line\":{},\"col\":{}}},\
             \"snippet\":\"{}\",\"allow_key\":\"{}\",\"message\":\"{}\",\"status\":\"{}\"",
            esc(f.rule),
            esc(&f.path),
            f.line,
            f.line,
            f.col,
            esc(&f.snippet),
            esc(&f.allow_key),
            esc(&f.message),
            if baselined.get(i).copied().unwrap_or(false) {
                "baselined"
            } else {
                "new"
            },
        );
        if let Some(s) = &f.suggestion {
            let _ = write!(out, ",\"suggestion\":\"{}\"", esc(s));
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

// ---------------------------------------------------------------------------
// minimal JSON reader (baseline file only)
// ---------------------------------------------------------------------------

/// A parsed JSON value (subset sufficient for the baseline format).
#[derive(Debug, Clone, PartialEq)]
enum JVal {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn get<'a>(&'a self, key: &str) -> Option<&'a JVal> {
        match self {
            JVal::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} of baseline JSON",
                c as char, self.i
            ))
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => {
                self.i += 1;
                let mut kvs = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(JVal::Obj(kvs));
                }
                loop {
                    self.ws();
                    let key = match self.value()? {
                        JVal::Str(s) => s,
                        _ => return Err("object key must be a string".into()),
                    };
                    self.expect(b':')?;
                    kvs.push((key, self.value()?));
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(JVal::Obj(kvs));
                        }
                        _ => return Err(format!("unterminated object at byte {}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(JVal::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(JVal::Arr(items));
                        }
                        _ => return Err(format!("unterminated array at byte {}", self.i)),
                    }
                }
            }
            Some(b'"') => {
                self.i += 1;
                let mut s = String::new();
                loop {
                    match self.b.get(self.i) {
                        None => return Err("unterminated string".into()),
                        Some(b'"') => {
                            self.i += 1;
                            return Ok(JVal::Str(s));
                        }
                        Some(b'\\') => {
                            self.i += 1;
                            match self.b.get(self.i) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'r') => s.push('\r'),
                                Some(b'u') => {
                                    let hex = self
                                        .b
                                        .get(self.i + 1..self.i + 5)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                                        .ok_or("bad \\u escape")?;
                                    s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                                    self.i += 4;
                                }
                                Some(&c) => s.push(c as char),
                                None => return Err("dangling escape".into()),
                            }
                            self.i += 1;
                        }
                        Some(_) => {
                            // Copy one UTF-8 char.
                            let start = self.i;
                            self.i += 1;
                            while self.b.get(self.i).is_some_and(|&c| c & 0xc0 == 0x80) {
                                self.i += 1;
                            }
                            s.push_str(
                                std::str::from_utf8(&self.b[start..self.i])
                                    .map_err(|_| "invalid UTF-8 in string")?,
                            );
                        }
                    }
                }
            }
            Some(b't') if self.b[self.i..].starts_with(b"true") => {
                self.i += 4;
                Ok(JVal::Bool(true))
            }
            Some(b'f') if self.b[self.i..].starts_with(b"false") => {
                self.i += 5;
                Ok(JVal::Bool(false))
            }
            Some(b'n') if self.b[self.i..].starts_with(b"null") => {
                self.i += 4;
                Ok(JVal::Null)
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = self.i;
                self.i += 1;
                while self.b.get(self.i).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.i += 1;
                }
                std::str::from_utf8(&self.b[start..self.i])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(JVal::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            _ => Err(format!("unexpected byte {} in baseline JSON", self.i)),
        }
    }
}

// ---------------------------------------------------------------------------
// baseline
// ---------------------------------------------------------------------------

/// One accepted finding in `lint-baseline.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// The content-stable key (see [`allow_key`]).
    pub allow_key: String,
    /// Rule name, for human readers and stale-entry reports.
    pub rule: String,
    /// Path the finding was accepted in.
    pub path: String,
    /// Why this finding is accepted — must be non-empty.
    pub justification: String,
}

/// The committed set of accepted findings.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses `{"version":1,"entries":[{allow_key,rule,path,justification}…]}`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        let entries = v
            .get("entries")
            .ok_or("baseline JSON has no \"entries\" array")?;
        let JVal::Arr(items) = entries else {
            return Err("baseline \"entries\" is not an array".into());
        };
        let mut out = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let field = |k: &str| -> Result<String, String> {
                item.get(k)
                    .and_then(JVal::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry {i} is missing string field \"{k}\""))
            };
            out.push(BaselineEntry {
                allow_key: field("allow_key")?,
                rule: field("rule")?,
                path: field("path")?,
                justification: field("justification")?,
            });
        }
        Ok(Baseline { entries: out })
    }

    /// Loads a baseline file; `Ok(None)` when it does not exist.
    pub fn load(path: &Path) -> Result<Option<Baseline>, String> {
        match fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Entries whose justification is empty (or whitespace) — committing
    /// one is itself an error.
    pub fn unjustified(&self) -> Vec<&BaselineEntry> {
        self.entries
            .iter()
            .filter(|e| e.justification.trim().is_empty())
            .collect()
    }

    /// Serializes entries back to the committed format (stable order,
    /// one entry per line for reviewable diffs).
    pub fn render(&self) -> String {
        let mut out = String::from("{\"version\":1,\"entries\":[\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {{\"allow_key\":\"{}\",\"rule\":\"{}\",\"path\":\"{}\",\"justification\":\"{}\"}}{}",
                esc(&e.allow_key),
                esc(&e.rule),
                esc(&e.path),
                esc(&e.justification),
                if i + 1 < self.entries.len() { "," } else { "" },
            );
        }
        out.push_str("]}\n");
        out
    }
}

/// The result of diffing current findings against the baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Per-finding flags: `true` = accepted by the baseline.
    pub baselined: Vec<bool>,
    /// Indices of findings not in the baseline (these fail the build).
    pub new: Vec<usize>,
    /// Baseline entries that no longer match any finding.
    pub stale: Vec<BaselineEntry>,
}

/// Splits `findings` into baselined and new, and reports baseline
/// entries that no longer fire (stale — safe to delete).
pub fn diff_against(findings: &[Finding], baseline: &Baseline) -> BaselineDiff {
    let mut diff = BaselineDiff {
        baselined: vec![false; findings.len()],
        ..BaselineDiff::default()
    };
    let mut used = vec![false; baseline.entries.len()];
    for (i, f) in findings.iter().enumerate() {
        match baseline
            .entries
            .iter()
            .position(|e| e.allow_key == f.allow_key)
        {
            Some(j) => {
                diff.baselined[i] = true;
                used[j] = true;
            }
            None => diff.new.push(i),
        }
    }
    diff.stale = baseline
        .entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    diff
}

// ---------------------------------------------------------------------------
// --fix-dry-run
// ---------------------------------------------------------------------------

/// Renders unified-diff suggestions for the mechanical findings (those
/// carrying a replacement line). No file is written — this is a preview.
pub fn fix_dry_run(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let Some(replacement) = &f.suggestion else {
            continue;
        };
        let _ = write!(
            out,
            "--- a/{p}\n+++ b/{p}\n@@ -{l},1 +{l},1 @@ [{r}]\n-{old}\n+{new}\n",
            p = f.path,
            l = f.line,
            r = f.rule,
            old = if f.raw_line.is_empty() {
                &f.snippet
            } else {
                &f.raw_line
            },
            new = replacement,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_key_shape_holds() {
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        let k = allow_key("hot-path", "crates/x/src/lib.rs", "  let v = x;  ", 2);
        assert!(k.starts_with("hot-path@crates/x/src/lib.rs@"));
        assert!(k.ends_with("@2"));
        // Trimming means indentation changes don't move the key.
        assert_eq!(
            k,
            allow_key("hot-path", "crates/x/src/lib.rs", "let v = x;", 2)
        );
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let b = Baseline {
            entries: vec![BaselineEntry {
                allow_key: "r@p@00@0".into(),
                rule: "atomics-order".into(),
                path: "crates/obs/src/counter.rs".into(),
                justification: "statistics counter; no ordering dependency".into(),
            }],
        };
        let parsed = Baseline::parse(&b.render()).expect("parses");
        assert_eq!(parsed.entries, b.entries);
        assert!(parsed.unjustified().is_empty());
    }

    #[test]
    fn unjustified_entries_are_reported() {
        let text = r#"{"version":1,"entries":[
            {"allow_key":"k","rule":"r","path":"p","justification":"  "}
        ]}"#;
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.unjustified().len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("{\"version\":1}").is_err());
        assert!(Baseline::parse("{\"version\":1,\"entries\":[{\"rule\":\"r\"}]}").is_err());
    }

    #[test]
    fn escapes_survive_string_parsing() {
        let mut p = Parser {
            b: br#""a\"b\\c\ndA""#,
            i: 0,
        };
        assert_eq!(p.value().unwrap(), JVal::Str("a\"b\\c\ndA".into()));
    }
}
