//! Source model: turning a `.rs` file into analyzable lines.
//!
//! Since v2 the line model is *derived from the token stream* in
//! [`crate::token`] rather than from a per-line character state machine:
//! the file is lexed once, a [`FileTree`] block tree is built over the
//! tokens, and the per-line views are reconstructed by classifying every
//! byte through its covering token. That makes the line rules (v1) and
//! the token rules ([`crate::rules2`]) agree exactly on what is code,
//! comment, or string content — including the constructs the char pass
//! used to desync on (`br#"…"#`, nested block comments, lifetimes).
//!
//! Per line the scanner produces:
//!
//! * `code` — the line with comments removed but string contents kept
//!   (rules that inspect message literals, like the `panic` rule's
//!   `expect("invariant: …")` exemption, read this);
//! * `code_nostr` — comments removed **and** string/char contents blanked
//!   (structural rules match against this so a string mentioning
//!   `HashMap.iter()` cannot trip them);
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` item,
//!   taken from the block tree;
//! * `allows` — rule names granted by a `// lint:allow(rule, …)` escape
//!   hatch on this line (an allow also covers the following line, so it
//!   can sit above the offending statement).

use crate::token::{literal_content_range, TokKind, Tokens};
use crate::tree::FileTree;

/// How a file participates in the build — test-ish targets are exempt from
/// the behavioral rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of the crate's library or binary (`src/**`).
    Lib,
    /// Integration tests, benches, examples — panic/determinism rules do
    /// not apply.
    Test,
}

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The original text.
    pub raw: String,
    /// Comments stripped, string contents preserved.
    pub code: String,
    /// Comments stripped and string/char contents blanked with spaces.
    pub code_nostr: String,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Rules explicitly allowed on this line via `lint:allow(...)`.
    pub allows: Vec<String>,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Library or test-ish target.
    pub kind: FileKind,
    /// The analyzed lines, in order.
    pub lines: Vec<Line>,
    /// The token stream the line model was derived from.
    pub tokens: Tokens,
    /// The brace-block tree over `tokens`.
    pub tree: FileTree,
}

/// Per-byte classification used to rebuild the line views.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cls {
    /// Plain code or inter-token whitespace: kept in both views.
    Code,
    /// Comment bytes: omitted from both views.
    Comment,
    /// String/char literal *content*: kept in `code`, blanked in
    /// `code_nostr`.
    Blank,
}

impl SourceFile {
    /// Scans `text` into a [`SourceFile`]. `path` is stored verbatim.
    pub fn scan(path: &str, kind: FileKind, text: &str) -> SourceFile {
        let tokens = Tokens::lex(text);
        let tree = FileTree::build(&tokens);
        let cls = classify_bytes(text, &tokens);
        let mut lines = build_lines(text, &cls);
        mark_test_lines(&mut lines, &tokens, &tree);
        SourceFile {
            path: path.to_string(),
            kind,
            lines,
            tokens,
            tree,
        }
    }

    /// Whether `rule` is allowed on 1-based line `line` (an allow on the
    /// preceding line also counts).
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        let hit = |i: usize| {
            self.lines
                .get(i)
                .is_some_and(|l| l.allows.iter().any(|a| a == rule))
        };
        hit(line.wrapping_sub(1)) || (line >= 2 && hit(line - 2))
    }
}

/// Classifies every byte of `text` through its covering token.
fn classify_bytes(text: &str, tokens: &Tokens) -> Vec<Cls> {
    let mut cls = vec![Cls::Code; text.len()];
    for t in &tokens.toks {
        let (lo, hi) = (t.lo as usize, t.hi as usize);
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => {
                cls[lo..hi].fill(Cls::Comment);
            }
            TokKind::Str => {
                let (open, close) = literal_content_range(text, t);
                cls[open..close].fill(Cls::Blank);
            }
            // Char literals blank entirely (quotes included): a quote is
            // never structural, and `'{'` must not look like a brace.
            TokKind::Char => {
                cls[lo..hi].fill(Cls::Blank);
            }
            _ => {}
        }
    }
    cls
}

/// Rebuilds the per-line views by walking the classified bytes.
fn build_lines(text: &str, cls: &[Cls]) -> Vec<Line> {
    let b = text.as_bytes();
    let mut lines = Vec::new();
    let mut raw_start = 0usize;
    let mut code: Vec<u8> = Vec::new();
    let mut nostr: Vec<u8> = Vec::new();
    let mut flush = |raw_start: usize, raw_end: usize, code: &mut Vec<u8>, nostr: &mut Vec<u8>| {
        let raw = text[raw_start..raw_end].trim_end_matches('\r');
        lines.push(Line {
            raw: raw.to_string(),
            code: String::from_utf8_lossy(code).into_owned(),
            code_nostr: String::from_utf8_lossy(nostr).into_owned(),
            in_test: false,
            allows: parse_allows(raw),
        });
        code.clear();
        nostr.clear();
    };
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            flush(raw_start, i, &mut code, &mut nostr);
            raw_start = i + 1;
            continue;
        }
        match cls[i] {
            Cls::Comment => {}
            Cls::Code => {
                code.push(c);
                nostr.push(c);
            }
            Cls::Blank => {
                code.push(c);
                nostr.push(b' ');
            }
        }
    }
    if raw_start < b.len() {
        flush(raw_start, b.len(), &mut code, &mut nostr);
    }
    lines
}

/// Marks `in_test` from the block tree: a `#[cfg(test)]` item covers its
/// attribute line through the close of its brace block, and brace-less
/// items (`#[cfg(test)] use …;`) cover attribute through semicolon.
fn mark_test_lines(lines: &mut [Line], tokens: &Tokens, tree: &FileTree) {
    let mut ranges: Vec<(u32, u32)> = tree.braceless_test_lines.clone();
    for blk in &tree.blocks {
        if blk.test {
            let close_line = tokens
                .toks
                .get(blk.close)
                .map(|t| t.line)
                .unwrap_or(lines.len() as u32);
            ranges.push((blk.test_attr_line, close_line));
        }
    }
    for (first, last) in ranges {
        let lo = first.saturating_sub(1) as usize;
        let hi = (last as usize).min(lines.len());
        for line in &mut lines[lo..hi] {
            line.in_test = true;
        }
    }
}

/// Extracts rule names from a `lint:allow(a, b)` marker, if any.
fn parse_allows(raw: &str) -> Vec<String> {
    let Some(at) = raw.find("lint:allow(") else {
        return Vec::new();
    };
    let rest = &raw[at + "lint:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan("t.rs", FileKind::Lib, text)
    }

    #[test]
    fn line_comments_are_stripped_strings_kept() {
        let f = scan("let x = \"a // not a comment\"; // real comment");
        assert_eq!(f.lines[0].code, "let x = \"a // not a comment\"; ");
        assert_eq!(f.lines[0].code_nostr, "let x = \"                  \"; ");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = scan("a /* x /* y */ z */ b\n/* open\nstill */ tail");
        assert_eq!(f.lines[0].code, "a  b");
        assert_eq!(f.lines[1].code, "");
        assert_eq!(f.lines[2].code, " tail");
    }

    #[test]
    fn raw_strings_do_not_hide_code() {
        let f = scan("let j = r#\"{ \"k\": 1 }\"#; j.iter()");
        assert!(f.lines[0].code_nostr.contains("j.iter()"));
        assert!(!f.lines[0].code_nostr.contains("\"k\""));
    }

    #[test]
    fn byte_raw_strings_do_not_desync_the_scanner() {
        // Regression: the v1 char pass treated `br#"…"#` as ordinary code
        // because the `r` followed an identifier byte (`b`), so the brace
        // inside leaked into brace tracking.
        let f = scan("let j = br#\"{ not code }\"#; j.iter()");
        assert!(f.lines[0].code_nostr.contains("j.iter()"));
        assert!(!f.lines[0].code_nostr.contains("not code"));
        assert!(!f.lines[0].code_nostr.contains('{'));
    }

    #[test]
    fn char_literals_do_not_break_tracking() {
        let f = scan("if c == '{' { x('\\n'); }");
        // Exactly one real open and one real close brace survive.
        let opens = f.lines[0].code_nostr.matches('{').count();
        assert_eq!(opens, 1);
    }

    #[test]
    fn cfg_test_region_is_masked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let f = scan(src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_braceless_item_only_masks_itself() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}";
        let f = scan(src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn allows_cover_same_and_next_line() {
        let src = "// lint:allow(panic, wall-clock)\nx.unwrap();\ny.unwrap();";
        let f = scan(src);
        assert!(f.allowed("panic", 1));
        assert!(f.allowed("panic", 2));
        assert!(f.allowed("wall-clock", 2));
        assert!(!f.allowed("panic", 3));
        assert!(!f.allowed("hash-iteration", 2));
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = scan("/// x.unwrap() in a doc\n//! Instant::now()\nlet a = 1;");
        assert_eq!(f.lines[0].code, "");
        assert_eq!(f.lines[1].code, "");
        assert_eq!(f.lines[2].code, "let a = 1;");
    }
}
