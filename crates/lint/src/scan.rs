//! Source model: turning a `.rs` file into analyzable lines.
//!
//! The analyzer deliberately avoids a real Rust parser — it must stay
//! dependency-free and robust to code it cannot fully understand. Instead
//! each file is run through a character-level state machine that tracks
//! comments (line, nested block), string literals (plain, raw, byte),
//! and char literals, producing per line:
//!
//! * `code` — the line with comments removed but string contents kept
//!   (rules that inspect message literals, like the `panic` rule's
//!   `expect("invariant: …")` exemption, read this);
//! * `code_nostr` — comments removed **and** string/char contents blanked
//!   (structural rules match against this so a string mentioning
//!   `HashMap.iter()` cannot trip them);
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` item, found
//!   by brace tracking from the attribute;
//! * `allows` — rule names granted by a `// lint:allow(rule, …)` escape
//!   hatch on this line (an allow also covers the following line, so it
//!   can sit above the offending statement).

/// How a file participates in the build — test-ish targets are exempt from
/// the behavioral rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of the crate's library or binary (`src/**`).
    Lib,
    /// Integration tests, benches, examples — panic/determinism rules do
    /// not apply.
    Test,
}

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The original text.
    pub raw: String,
    /// Comments stripped, string contents preserved.
    pub code: String,
    /// Comments stripped and string/char contents blanked with spaces.
    pub code_nostr: String,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Rules explicitly allowed on this line via `lint:allow(...)`.
    pub allows: Vec<String>,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Library or test-ish target.
    pub kind: FileKind,
    /// The analyzed lines, in order.
    pub lines: Vec<Line>,
}

/// Lexer state carried across characters (and lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lex {
    Code,
    /// Nested block comment depth.
    Block(u32),
    Str,
    /// Raw string with `n` `#` marks: ends at `"` followed by `n` `#`.
    RawStr(u32),
}

impl SourceFile {
    /// Scans `text` into a [`SourceFile`]. `path` is stored verbatim.
    pub fn scan(path: &str, kind: FileKind, text: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut lex = Lex::Code;
        for raw in text.lines() {
            let (code, code_nostr, next) = strip_line(raw, lex);
            lex = next;
            lines.push(Line {
                raw: raw.to_string(),
                code,
                code_nostr,
                in_test: false,
                allows: parse_allows(raw),
            });
        }
        mark_test_regions(&mut lines);
        SourceFile {
            path: path.to_string(),
            kind,
            lines,
        }
    }

    /// Whether `rule` is allowed on 1-based line `line` (an allow on the
    /// preceding line also counts).
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        let hit = |i: usize| {
            self.lines
                .get(i)
                .is_some_and(|l| l.allows.iter().any(|a| a == rule))
        };
        hit(line.wrapping_sub(1)) || (line >= 2 && hit(line - 2))
    }
}

/// Extracts rule names from a `lint:allow(a, b)` marker, if any.
fn parse_allows(raw: &str) -> Vec<String> {
    let Some(at) = raw.find("lint:allow(") else {
        return Vec::new();
    };
    let rest = &raw[at + "lint:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Strips comments (and, for the second output, string contents) from one
/// line, starting in lexer state `lex`; returns both forms plus the state
/// at end of line.
fn strip_line(raw: &str, mut lex: Lex) -> (String, String, Lex) {
    let b = raw.as_bytes();
    let mut code = String::with_capacity(raw.len());
    let mut nostr = String::with_capacity(raw.len());
    let mut i = 0;
    // Pushes a char to both outputs, blanking it in `nostr` if `blank`.
    macro_rules! put {
        ($c:expr, $blank:expr) => {{
            code.push($c);
            nostr.push(if $blank { ' ' } else { $c });
        }};
    }
    while i < b.len() {
        let c = b[i] as char;
        match lex {
            Lex::Block(depth) => {
                if c == '*' && b.get(i + 1) == Some(&b'/') {
                    lex = if depth == 1 {
                        Lex::Code
                    } else {
                        Lex::Block(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&b'*') {
                    lex = Lex::Block(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Lex::Str => {
                if c == '\\' {
                    put!('\\', true);
                    if let Some(&n) = b.get(i + 1) {
                        put!(n as char, true);
                    }
                    i += 2;
                } else if c == '"' {
                    put!('"', false);
                    lex = Lex::Code;
                    i += 1;
                } else {
                    put!(c, true);
                    i += 1;
                }
            }
            Lex::RawStr(hashes) => {
                if c == '"' && raw[i + 1..].starts_with(&"#".repeat(hashes as usize)) {
                    put!('"', false);
                    for _ in 0..hashes {
                        put!('#', false);
                    }
                    i += 1 + hashes as usize;
                    lex = Lex::Code;
                } else {
                    put!(c, true);
                    i += 1;
                }
            }
            Lex::Code => {
                if c == '/' && b.get(i + 1) == Some(&b'/') {
                    break; // line comment: drop the rest
                }
                if c == '/' && b.get(i + 1) == Some(&b'*') {
                    lex = Lex::Block(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    put!('"', false);
                    lex = Lex::Str;
                    i += 1;
                    continue;
                }
                // Raw (byte) strings: r"…", r#"…"#, br#"…"#.
                if c == 'r' && !prev_is_ident(&code) {
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        put!('r', false);
                        for _ in 0..hashes {
                            put!('#', false);
                        }
                        put!('"', false);
                        i = j + 1;
                        lex = Lex::RawStr(hashes);
                        continue;
                    }
                }
                // Char literals: skip 'x' or '\…' so a '{' or '"' inside
                // one cannot confuse the tracker. A lone `'` (lifetime)
                // passes through.
                if c == '\'' {
                    if b.get(i + 1) == Some(&b'\\') {
                        if let Some(close) = raw[i + 2..].find('\'') {
                            for ch in raw[i..i + 3 + close].chars() {
                                put!(ch, true);
                            }
                            i += 3 + close;
                            continue;
                        }
                    } else if b.get(i + 2) == Some(&b'\'') {
                        put!('\'', true);
                        put!(b[i + 1] as char, true);
                        put!('\'', true);
                        i += 3;
                        continue;
                    }
                }
                put!(c, false);
                i += 1;
            }
        }
    }
    // A line comment never carries over to the next line.
    (code, nostr, lex)
}

/// Whether the last char of `s` continues an identifier (so the `r` of
/// `ref r` is not taken for a raw-string prefix, but `for` / `var` are).
fn prev_is_ident(s: &str) -> bool {
    s.chars()
        .last()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Marks lines inside `#[cfg(test)]` items by brace tracking: from the
/// attribute, everything up to the close of the item's first brace block
/// (or the terminating `;` for brace-less items) is test code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    // `pending` = saw the attribute, waiting for the item's `{`.
    let mut pending = false;
    // Depth at which the active test region's block was opened.
    let mut region_open: Option<i64> = None;
    for line in lines.iter_mut() {
        let has_cfg_test =
            line.code_nostr.contains("#[cfg(test)]") || line.code_nostr.contains("#[cfg(all(test");
        if has_cfg_test && region_open.is_none() {
            pending = true;
        }
        let in_region_before = region_open.is_some();
        let mut this_line_test = pending || in_region_before;
        for c in line.code_nostr.chars() {
            match c {
                '{' => {
                    if pending {
                        region_open = Some(depth);
                        pending = false;
                        this_line_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_open == Some(depth) {
                        region_open = None;
                    }
                }
                // `#[cfg(test)] use …;` — a brace-less item ends here.
                ';' if pending && region_open.is_none() => {
                    pending = false;
                    this_line_test = true;
                }
                _ => {}
            }
        }
        line.in_test = this_line_test || region_open.is_some() || in_region_before;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan("t.rs", FileKind::Lib, text)
    }

    #[test]
    fn line_comments_are_stripped_strings_kept() {
        let f = scan("let x = \"a // not a comment\"; // real comment");
        assert_eq!(f.lines[0].code, "let x = \"a // not a comment\"; ");
        assert_eq!(f.lines[0].code_nostr, "let x = \"                  \"; ");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = scan("a /* x /* y */ z */ b\n/* open\nstill */ tail");
        assert_eq!(f.lines[0].code, "a  b");
        assert_eq!(f.lines[1].code, "");
        assert_eq!(f.lines[2].code, " tail");
    }

    #[test]
    fn raw_strings_do_not_hide_code() {
        let f = scan("let j = r#\"{ \"k\": 1 }\"#; j.iter()");
        assert!(f.lines[0].code_nostr.contains("j.iter()"));
        assert!(!f.lines[0].code_nostr.contains("\"k\""));
    }

    #[test]
    fn char_literals_do_not_break_tracking() {
        let f = scan("if c == '{' { x('\\n'); }");
        // Exactly one real open and one real close brace survive.
        let opens = f.lines[0].code_nostr.matches('{').count();
        assert_eq!(opens, 1);
    }

    #[test]
    fn cfg_test_region_is_masked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let f = scan(src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_braceless_item_only_masks_itself() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}";
        let f = scan(src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn allows_cover_same_and_next_line() {
        let src = "// lint:allow(panic, wall-clock)\nx.unwrap();\ny.unwrap();";
        let f = scan(src);
        assert!(f.allowed("panic", 1));
        assert!(f.allowed("panic", 2));
        assert!(f.allowed("wall-clock", 2));
        assert!(!f.allowed("panic", 3));
        assert!(!f.allowed("hash-iteration", 2));
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = scan("/// x.unwrap() in a doc\n//! Instant::now()\nlet a = 1;");
        assert_eq!(f.lines[0].code, "");
        assert_eq!(f.lines[1].code, "");
        assert_eq!(f.lines[2].code, "let a = 1;");
    }
}
