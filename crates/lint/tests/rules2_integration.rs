//! Integration tests for the tier-2 (token-aware) rules and the
//! machine-readable report pipeline: fixture counts, the clean twin,
//! JSON round-trip through an independent parser, baseline diffing, and
//! the binary's `--json` / `--baseline` / `--fix-dry-run` flags.

use rbpc_lint::{report, Allowlist, Finding, Workspace};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check(name: &str) -> Vec<Finding> {
    Workspace::load(&fixture(name))
        .expect("fixture workspace loads")
        .check(&Allowlist::default())
}

#[test]
fn conc_violations_fixture_trips_every_tier2_rule() {
    let findings = check("conc_violations");
    let count = |rule: &str| findings.iter().filter(|f| f.rule == rule).count();
    // obs: Relaxed write, Relaxed read, bare allow; sim: static, spawn.
    assert_eq!(count("atomics-order"), 5, "{findings:#?}");
    // A guard held across the second lock, and a `let _ =` guard.
    assert_eq!(count("lock-discipline"), 2, "{findings:#?}");
    // Alloc, compound index, narrowing cast in one hot region.
    assert_eq!(count("hot-path"), 3, "{findings:#?}");
    // Unregistered assert, missing test file, stale manifest entry.
    assert_eq!(count("debug-invariants"), 3, "{findings:#?}");
    assert_eq!(findings.len(), 13, "no unexpected findings\n{findings:#?}");
}

#[test]
fn conc_clean_fixture_has_no_findings() {
    assert_eq!(check("conc_clean"), vec![]);
}

#[test]
fn allow_keys_are_unique_and_content_stable() {
    let a = check("conc_violations");
    let b = check("conc_violations");
    let keys: Vec<&str> = a.iter().map(|f| f.allow_key.as_str()).collect();
    let mut deduped = keys.clone();
    deduped.sort();
    deduped.dedup();
    assert_eq!(deduped.len(), keys.len(), "keys must be unique: {keys:#?}");
    assert_eq!(
        keys,
        b.iter().map(|f| f.allow_key.as_str()).collect::<Vec<_>>(),
        "keys must be deterministic across runs"
    );
    assert!(keys.iter().all(|k| !k.is_empty()));
}

#[test]
fn json_report_round_trips_through_the_obs_parser() {
    let findings = check("conc_violations");
    let json = report::findings_to_json(&findings, &vec![false; findings.len()]);
    let v = rbpc_obs::json::parse(&json).expect("report is valid JSON");
    assert_eq!(
        v.get("total").and_then(|t| t.as_f64()),
        Some(findings.len() as f64)
    );
    let items = v
        .get("findings")
        .and_then(|f| f.as_arr())
        .expect("findings array");
    assert_eq!(items.len(), findings.len());
    for (item, f) in items.iter().zip(&findings) {
        assert_eq!(item.get("rule").and_then(|x| x.as_str()), Some(f.rule));
        assert_eq!(
            item.get("path").and_then(|x| x.as_str()),
            Some(f.path.as_str())
        );
        assert_eq!(
            item.get("line").and_then(|x| x.as_f64()),
            Some(f.line as f64)
        );
        assert_eq!(
            item.get("allow_key").and_then(|x| x.as_str()),
            Some(f.allow_key.as_str())
        );
        assert_eq!(item.get("status").and_then(|x| x.as_str()), Some("new"));
    }
}

#[test]
fn baseline_accepts_known_findings_and_reports_stale_entries() {
    let findings = check("conc_violations");
    let baseline = report::Baseline {
        entries: findings
            .iter()
            .map(|f| report::BaselineEntry {
                allow_key: f.allow_key.clone(),
                rule: f.rule.to_string(),
                path: f.path.clone(),
                justification: "fixture-accepted".to_string(),
            })
            .collect(),
    };
    // Round-trip through the committed text format first.
    let baseline = report::Baseline::parse(&baseline.render()).expect("render parses");
    let diff = report::diff_against(&findings, &baseline);
    assert!(diff.new.is_empty(), "all findings accepted: {:?}", diff.new);
    assert!(diff.baselined.iter().all(|&b| b));
    assert!(diff.stale.is_empty());

    // A key that no longer fires is stale; dropping an entry makes that
    // finding new again.
    let mut extra = baseline.clone();
    extra.entries.push(report::BaselineEntry {
        allow_key: "atomics-order@gone.rs@0000000000000000@0".into(),
        rule: "atomics-order".into(),
        path: "gone.rs".into(),
        justification: "obsolete".into(),
    });
    let diff = report::diff_against(&findings, &extra);
    assert_eq!(diff.stale.len(), 1);
    let mut short = baseline.clone();
    short.entries.pop();
    let diff = report::diff_against(&findings, &short);
    assert_eq!(diff.new.len(), 1);

    // Empty justifications are themselves an error.
    let mut unjust = baseline;
    unjust.entries[0].justification = "  ".into();
    assert_eq!(unjust.unjustified().len(), 1);
}

#[test]
fn fix_dry_run_suggests_binding_dropped_guards() {
    let findings = check("conc_violations");
    let dropped: Vec<&Finding> = findings.iter().filter(|f| f.suggestion.is_some()).collect();
    assert_eq!(dropped.len(), 1, "{findings:#?}");
    let patch = report::fix_dry_run(&findings);
    assert!(patch.contains("--- a/crates/sim/src/lib.rs"), "{patch}");
    assert!(patch.contains("-        let _ = self.a.lock()"), "{patch}");
    assert!(
        patch.contains("+        let _guard = self.a.lock()"),
        "{patch}"
    );
}

#[test]
fn binary_json_baseline_and_fix_flags_work_end_to_end() {
    let bin = env!("CARGO_BIN_EXE_rbpc-lint");
    let tmp = std::env::temp_dir().join("rbpc-lint-test");
    std::fs::create_dir_all(&tmp).expect("mkdir");
    let json_path = tmp.join("report.json");

    // Violations fixture: non-zero exit, JSON written, diff printed.
    let out = Command::new(bin)
        .args([fixture("conc_violations").as_os_str()])
        .args(["--json".as_ref(), json_path.as_os_str()])
        .arg("--fix-dry-run")
        .output()
        .expect("run rbpc-lint");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[hot-path]"), "{stdout}");
    assert!(
        stdout.contains("let _guard ="),
        "--fix-dry-run diff\n{stdout}"
    );
    assert!(stdout.contains("lint.findings.total=13"), "{stdout}");
    let json = std::fs::read_to_string(&json_path).expect("json written");
    let v = rbpc_obs::json::parse(&json).expect("valid JSON");
    assert_eq!(v.get("new").and_then(|x| x.as_f64()), Some(13.0));

    // Write a full baseline from the report keys; the same run passes.
    let findings = check("conc_violations");
    let baseline = report::Baseline {
        entries: findings
            .iter()
            .map(|f| report::BaselineEntry {
                allow_key: f.allow_key.clone(),
                rule: f.rule.to_string(),
                path: f.path.clone(),
                justification: "fixture-accepted".to_string(),
            })
            .collect(),
    };
    let base_path = tmp.join("baseline.json");
    std::fs::write(&base_path, baseline.render()).expect("write baseline");
    let out = Command::new(bin)
        .args([fixture("conc_violations").as_os_str()])
        .args(["--baseline".as_ref(), base_path.as_os_str()])
        .output()
        .expect("run rbpc-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "baselined run passes:\n{stdout}");
    assert!(stdout.contains("lint.findings.baselined=13"), "{stdout}");

    // An empty justification flips the run back to failure.
    let mut unjust = baseline;
    unjust.entries[0].justification = String::new();
    std::fs::write(&base_path, unjust.render()).expect("write baseline");
    let out = Command::new(bin)
        .args([fixture("conc_violations").as_os_str()])
        .args(["--baseline".as_ref(), base_path.as_os_str()])
        .output()
        .expect("run rbpc-lint");
    assert!(!out.status.success(), "unjustified baseline must fail");
}
