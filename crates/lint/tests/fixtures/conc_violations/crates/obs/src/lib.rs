#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Seeded atomics-order violations in a shared-by-construction crate
//! (`rbpc-obs` is in the rule's SHARED_CRATES list). Never compiled;
//! the integration tests assert the exact findings.

use std::sync::atomic::{AtomicU64, Ordering};

/// A counter whose atomic is written below, so every Relaxed access on
/// it is in scope for the shared-crate branch of `atomics-order`.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Relaxed write, no allow → atomics-order.
    pub fn bump(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read of a written atomic, no allow → atomics-order.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Allow without a safety note → atomics-order (the bare-allow form).
    pub fn bump_bare_allow(&self) {
        // lint:allow(atomics-order)
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Allow with a safety note → clean.
    pub fn bump_noted(&self) {
        // lint:allow(atomics-order) — display-only counter; atomicity alone suffices
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// SeqCst needs no allow at all → clean.
    pub fn bump_seqcst(&self) {
        self.value.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_in_tests_is_exempt() {
        let c = Counter {
            value: AtomicU64::new(0),
        };
        c.value.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.get(), 1);
    }
}
