#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Seeded lock-discipline, hot-path, debug-invariants, and spawn/static
//! atomics-order violations. Never compiled; the integration tests
//! assert the exact findings.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// A ticket dispenser shared by every thread.
static TICKETS: AtomicUsize = AtomicUsize::new(0);

/// Relaxed on a static atomic → atomics-order.
pub fn ticket() -> usize {
    TICKETS.fetch_add(1, Ordering::Relaxed)
}

/// Relaxed inside a spawn(…) closure → atomics-order.
pub fn race() -> usize {
    let n = AtomicUsize::new(0);
    thread::scope(|s| {
        s.spawn(|| {
            n.fetch_add(1, Ordering::Relaxed);
        });
    });
    n.load(Ordering::Acquire)
}

/// Two locks with no fixed order.
pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    /// Guard `g` held across the second lock → lock-discipline.
    pub fn cross(&self) -> u64 {
        let g = self.a.lock().expect("invariant: never poisoned");
        let h = self.b.lock().expect("invariant: never poisoned");
        *g + *h
    }

    /// `let _ =` drops the guard immediately → lock-discipline.
    pub fn empty_section(&self) {
        let _ = self.a.lock().expect("invariant: never poisoned");
    }

    /// Dropping `g` before the second lock → clean.
    pub fn ordered(&self) -> u64 {
        let g = self.a.lock().expect("invariant: never poisoned");
        let x = *g;
        drop(g);
        let h = self.b.lock().expect("invariant: never poisoned");
        x + *h
    }
}

/// Alloc, compound index, narrowing cast, and an unregistered
/// debug_assert in one hot region → 3× hot-path + 1× debug-invariants.
// lint:hot
pub fn kernel(xs: &mut Vec<u64>, offsets: &[u32], u: usize) -> u64 {
    xs.push(1);
    let d = offsets[u + 1];
    let t = d as u16;
    debug_assert!(u < offsets.len());
    u64::from(t)
}

/// Registered invariant with an existing test file → clean.
// lint:hot
pub fn kernel_registered(v: &[u64], i: usize) -> u64 {
    debug_assert!(i < v.len());
    v[i]
}

/// Registered invariant whose test file is missing → debug-invariants.
// lint:hot
pub fn kernel_missing_test(v: &[u64], i: usize) -> u64 {
    debug_assert!(i < v.len());
    v[i]
}

/// Hot-region violations under line allows with notes → clean.
// lint:hot
pub fn kernel_allowed(xs: &mut Vec<u64>, offsets: &[u32], u: usize) -> u64 {
    // lint:allow(hot-path) — buffer is pre-reserved by the caller
    xs.push(1);
    // lint:allow(hot-path) — offsets has n+1 entries, u+1 is in bounds
    let d = offsets[u + 1];
    u64::from(d)
}
