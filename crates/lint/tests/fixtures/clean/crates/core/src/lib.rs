#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Clean fixture: the disciplined twin of the violations workspace.

use std::collections::BTreeMap;

/// Deterministic iteration via an ordered map.
pub fn in_order(by_pair: &BTreeMap<u32, u32>) -> Vec<u32> {
    by_pair.values().copied().collect()
}

/// A justified `expect` carrying a documented proof obligation.
pub fn head(v: &[u32]) -> u32 {
    *v.first().expect("invariant: callers pass nonempty slices")
}

/// Feature-gated pair: the instrumented side.
#[cfg(feature = "obs")]
pub fn gated() -> bool {
    true
}

/// Feature-gated pair: the no-op side.
#[cfg(not(feature = "obs"))]
pub fn gated() -> bool {
    false
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
