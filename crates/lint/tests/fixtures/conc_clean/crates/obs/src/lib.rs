#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Clean twin of the conc_violations obs crate: every Relaxed access
//! carries an allow with a safety note, or uses a stronger ordering.

use std::sync::atomic::{AtomicU64, Ordering};

/// A counter whose Relaxed accesses are all justified.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Justified Relaxed write.
    pub fn bump(&self) {
        // lint:allow(atomics-order) — display-only counter; atomicity alone suffices
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Justified Relaxed read.
    pub fn get(&self) -> u64 {
        // lint:allow(atomics-order) — display-only total; cross-counter skew is acceptable
        self.value.load(Ordering::Relaxed)
    }

    /// SeqCst needs no justification.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::SeqCst)
    }
}
