#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Clean twin of the conc_violations sim crate: ordered locking, a
//! disciplined hot region, and a registered hot-region invariant.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Acquire/Release on the shared flag — no allow needed.
pub fn publish(flag: &AtomicUsize) -> usize {
    thread::scope(|s| {
        s.spawn(|| {
            flag.store(1, Ordering::Release);
        });
    });
    flag.load(Ordering::Acquire)
}

/// Two locks taken in a fixed, non-overlapping order.
pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    /// The first guard is dropped before the second lock.
    pub fn ordered(&self) -> u64 {
        let g = self.a.lock().expect("invariant: never poisoned");
        let x = *g;
        drop(g);
        let h = self.b.lock().expect("invariant: never poisoned");
        x + *h
    }

    /// A named guard with a real critical section.
    pub fn bump(&self) {
        let mut g = self.a.lock().expect("invariant: never poisoned");
        *g += 1;
    }
}

/// Hot region built from simple indices, widening casts, and a
/// registered debug_assert — nothing to flag.
// lint:hot
pub fn kernel(offsets: &[u32], v: &[u64], u: usize) -> u64 {
    debug_assert!(u < v.len());
    let d = offsets[u];
    v[u] + u64::from(d)
}
