//! Scanner-regression stress: every rule trigger below is inert because
//! it sits inside a raw string, byte string, or nested block comment. A
//! char-level scanner desyncs here; the token scanner must report zero
//! findings for this file.

/// Rule triggers quoted in strings are not code.
pub fn doc_examples() -> [&'static str; 4] {
    [
        r#"self.value.fetch_add(1, Ordering::Relaxed); // "quoted""#,
        r##"a raw string with a # quote: r#"inner"# and .lock().unwrap()"##,
        "an escaped quote \" then panic!(\"nope\") and Instant::now()",
        r"Vec::new() inside a hot region? only if it were code",
    ]
}

/// Byte strings with hashes must not desync the lexer.
pub fn byte_examples() -> &'static [u8] {
    br#"b"bytes" with .write() and debug_assert!(false)"#
}

/* A nested /* block comment */ mentioning TICKETS.fetch_add(1, Relaxed)
   and let _ = m.lock(); stays one token. */

/// Lifetimes are not char literals: 'a here, b'x' there.
pub fn lifetimes<'a>(s: &'a str) -> (&'a str, u8) {
    (s, b'\'')
}
