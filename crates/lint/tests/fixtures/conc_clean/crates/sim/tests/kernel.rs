//! Release-mode twin of `kernel`'s debug_assert. Never compiled; only
//! its existence is checked by the invariant manifest.

#[test]
fn index_stays_in_bounds() {
    let v = [1u64, 2, 3];
    assert!(2 < v.len());
}
