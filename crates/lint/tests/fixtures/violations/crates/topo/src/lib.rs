#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Out-of-scope crate: `unwrap()` and hash iteration are legal here
//! (fixture-topo is in neither the panic nor the hash-iteration scope),
//! but the wall clock is still off-limits.

use std::collections::HashSet;

/// Not flagged: this crate is outside the panic and hash scopes.
pub fn out_of_scope(set: HashSet<u32>) -> u32 {
    set.iter().copied().max().unwrap()
}

/// Flagged: wall-clock applies to every non-measurement crate.
pub fn still_flagged() -> std::time::Instant {
    std::time::Instant::now()
}

/// Flagged: sleeping paces against real time — same determinism hazard.
pub fn paced() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
