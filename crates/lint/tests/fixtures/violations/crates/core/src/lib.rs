// Seeded violations for every rbpc-lint rule. This file is never
// compiled; the integration tests assert the exact findings it trips.
// Missing crate attrs here → 2× crate-attrs.

use std::collections::HashMap;
use std::time::Instant;

pub fn leak_order(by_pair: HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (_, v) in by_pair.iter() {
        out.push(*v);
    }
    out
}

pub fn sample_clock() -> Instant {
    Instant::now()
}

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("should not happen")
}

pub fn boom() {
    panic!("nope");
}

pub fn allowed_boom() {
    // lint:allow(panic) — fixture: the line-level escape hatch works
    panic!("allowed");
}

pub fn dynamic_span(name: &str) {
    let _s = obs_span!(name);
}

pub fn dynamic_trace(kind: u32) {
    let _t = obs_trace!(format!("outage.{kind}"));
}

pub fn wrapped_static_name_is_fine() {
    let _t = obs_trace!(
        "outage.window",
    );
}

#[cfg(feature = "obs")]
pub fn gated() {}

#[cfg(feature = "missing")]
pub fn ghost() {}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        Some(1).unwrap();
        let _ = std::time::Instant::now();
    }
}
