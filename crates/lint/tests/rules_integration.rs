//! Integration tests: the six rules against the seeded fixture
//! workspaces under `tests/fixtures/`, plus the binary's exit codes —
//! non-zero on the violations fixture, zero on the clean one.

use rbpc_lint::{Allowlist, Finding, Workspace};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check(name: &str, allow: &Allowlist) -> Vec<Finding> {
    Workspace::load(&fixture(name))
        .expect("fixture workspace loads")
        .check(allow)
}

#[test]
fn violations_fixture_trips_every_rule() {
    let findings = check("violations", &Allowlist::default());
    let count = |rule: &str| findings.iter().filter(|f| f.rule == rule).count();
    assert_eq!(count("crate-attrs"), 2, "{findings:#?}");
    assert_eq!(count("hash-iteration"), 1, "{findings:#?}");
    assert_eq!(count("wall-clock"), 3, "{findings:#?}");
    assert_eq!(count("panic"), 3, "{findings:#?}");
    assert_eq!(count("cfg-balance"), 3, "{findings:#?}");
    // Two dynamic span names; the rustfmt-wrapped literal is fine.
    assert_eq!(count("static-span-names"), 2, "{findings:#?}");
    assert_eq!(findings.len(), 14, "{findings:#?}");
}

#[test]
fn scoping_exempts_out_of_scope_crates_and_test_code() {
    let findings = check("violations", &Allowlist::default());
    // fixture-topo is outside the panic/hash scopes: only its wall-clock
    // read may be reported.
    assert!(findings
        .iter()
        .filter(|f| f.path.starts_with("crates/topo/"))
        .all(|f| f.rule == "wall-clock"));
    // The `#[cfg(test)]` module (fixture line 57) never surfaces its
    // unwrap/Instant::now.
    assert!(!findings.iter().any(|f| f.line >= 57));
    // The `// lint:allow(panic)` line is suppressed: exactly one panic!
    // finding (fn boom), none for fn allowed_boom.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.message.contains("`panic!`"))
            .count(),
        1,
        "{findings:#?}"
    );
}

#[test]
fn allowlist_suppresses_whole_files() {
    let full = check("violations", &Allowlist::default()).len();
    let findings = check(
        "violations",
        &Allowlist::parse("* crates/core/src/lib.rs\n"),
    );
    assert!(findings.len() < full);
    assert!(findings.iter().all(|f| f.path != "crates/core/src/lib.rs"));
    // A single-rule entry keeps the other rules' findings.
    let findings = check(
        "violations",
        &Allowlist::parse("panic crates/core/src/lib.rs\n"),
    );
    assert!(!findings.iter().any(|f| f.rule == "panic"));
    assert!(findings.iter().any(|f| f.rule == "hash-iteration"));
}

#[test]
fn clean_fixture_has_no_findings() {
    assert_eq!(check("clean", &Allowlist::default()), vec![]);
}

#[test]
fn binary_exit_codes_gate_on_findings() {
    let bin = env!("CARGO_BIN_EXE_rbpc-lint");
    let bad = Command::new(bin)
        .arg(fixture("violations"))
        .output()
        .expect("run rbpc-lint");
    assert!(
        !bad.status.success(),
        "violations fixture must fail:\n{}",
        String::from_utf8_lossy(&bad.stdout)
    );
    let good = Command::new(bin)
        .arg(fixture("clean"))
        .output()
        .expect("run rbpc-lint");
    assert!(
        good.status.success(),
        "clean fixture must pass:\n{}",
        String::from_utf8_lossy(&good.stdout)
    );
    assert!(String::from_utf8_lossy(&good.stdout).contains("rbpc-lint: OK"));
}
