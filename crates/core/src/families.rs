//! Route families over subnet restrictions (§1 of the paper).
//!
//! The deployments that motivated RBPC maintain *several* families of
//! shortest paths simultaneously: the plain IGP paths, plus "shortest
//! paths over all the OC48 links", "over links with available capacity",
//! "over links with delay below a threshold", and so on. Each family is
//! RBPC over a subgraph on the same routers; restoration stays **within
//! the family** (a premium route must not fail over to slow links).
//!
//! [`RouteFamily`] packages the subgraph extraction, a base-path oracle
//! over it, and restoration that accepts failures in parent-graph terms
//! and returns paths in parent-graph terms — so a multi-family deployment
//! shares one topology, one failure feed, and one MPLS domain.

use crate::{greedy_decompose, BasePathOracle, Concatenation, DenseBasePaths, RestoreError};
use rbpc_graph::{
    extract_subgraph, shortest_path, CostModel, EdgeId, EdgeRecord, FailureSet, Graph, NodeId,
    Path, Subgraph, Topology,
};

/// A restoration outcome within one family, expressed in parent-graph
/// terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyRestoration {
    /// The family's pre-failure canonical path (parent edge ids).
    pub original: Path,
    /// The post-failure canonical path within the family (parent edge
    /// ids).
    pub backup: Path,
    /// The concatenation over the family's base LSPs (paths in parent
    /// edge ids).
    pub concatenation: Concatenation,
    /// Whether the failures disrupted the family's original path.
    pub affected: bool,
}

/// One family of routes: RBPC over a subnet restriction.
#[derive(Debug)]
pub struct RouteFamily {
    name: String,
    subgraph: Subgraph,
    oracle: DenseBasePaths,
}

impl RouteFamily {
    /// Builds a family over the edges of `parent` for which `keep`
    /// returns `true`, with its own canonical base set.
    pub fn new(
        name: impl Into<String>,
        parent: &Graph,
        model: CostModel,
        keep: impl FnMut(EdgeId, &EdgeRecord) -> bool,
    ) -> Self {
        let subgraph = extract_subgraph(parent, keep);
        let oracle = DenseBasePaths::build(subgraph.graph.clone(), model);
        RouteFamily {
            name: name.into(),
            subgraph,
            oracle,
        }
    }

    /// The family's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The family's restricted subgraph.
    pub fn subgraph(&self) -> &Subgraph {
        &self.subgraph
    }

    /// The family's base-path oracle (subgraph edge ids).
    pub fn oracle(&self) -> &DenseBasePaths {
        &self.oracle
    }

    /// Whether the family connects `s` to `t` at all.
    pub fn connects(&self, s: NodeId, t: NodeId) -> bool {
        self.oracle.base_dist(s, t).is_some()
    }

    /// The family's canonical path `s → t` in parent-graph terms.
    pub fn base_path(&self, s: NodeId, t: NodeId) -> Option<Path> {
        self.oracle
            .base_path(s, t)
            .map(|p| self.subgraph.path_to_parent(&p))
    }

    /// Restores `s → t` within the family under `failures` (parent-graph
    /// ids). Failed edges outside the family are ignored — they cannot
    /// affect family routes.
    ///
    /// # Errors
    ///
    /// * [`RestoreError::EndpointFailed`] when an endpoint router failed;
    /// * [`RestoreError::Disconnected`] when the *family* has no surviving
    ///   route (even if the full topology does — restoration must not
    ///   leave the subnet).
    pub fn restore(
        &self,
        s: NodeId,
        t: NodeId,
        failures: &FailureSet,
    ) -> Result<FamilyRestoration, RestoreError> {
        for node in [s, t] {
            if node.index() >= self.subgraph.graph.node_count() {
                return Err(RestoreError::UnknownNode { node });
            }
            if failures.node_failed(node) {
                return Err(RestoreError::EndpointFailed { node });
            }
        }
        let local_failures = self.subgraph.failures_from_parent(failures);
        let original = self
            .oracle
            .base_path(s, t)
            .ok_or(RestoreError::Disconnected {
                source: s,
                target: t,
            })?;
        let affected = !original.edges().iter().all(|&e| {
            let view = local_failures.view(&self.subgraph.graph);
            view.edge_alive(e)
        }) || original
            .nodes()
            .iter()
            .any(|&v| local_failures.node_failed(v));
        let backup = if affected {
            let view = local_failures.view(&self.subgraph.graph);
            shortest_path(&view, self.oracle.cost_model(), s, t).ok_or(
                RestoreError::Disconnected {
                    source: s,
                    target: t,
                },
            )?
        } else {
            original.clone()
        };
        let concatenation = greedy_decompose(&self.oracle, &backup);
        // Map everything back to parent ids.
        let mapped_segments: Vec<crate::Segment> = concatenation
            .segments()
            .iter()
            .map(|seg| crate::Segment {
                kind: seg.kind,
                path: self.subgraph.path_to_parent(&seg.path),
            })
            .collect();
        Ok(FamilyRestoration {
            original: self.subgraph.path_to_parent(&original),
            backup: self.subgraph.path_to_parent(&backup),
            concatenation: Concatenation::from_segments(mapped_segments),
            affected,
        })
    }
}

/// A set of route families over one parent topology, restored together
/// from one failure feed.
#[derive(Debug, Default)]
pub struct FamilySet {
    families: Vec<RouteFamily>,
}

impl FamilySet {
    /// An empty set.
    pub fn new() -> Self {
        FamilySet::default()
    }

    /// Adds a family; returns `self` for chaining.
    pub fn with(mut self, family: RouteFamily) -> Self {
        self.families.push(family);
        self
    }

    /// The families in insertion order.
    pub fn families(&self) -> &[RouteFamily] {
        &self.families
    }

    /// Restores `s → t` in every family; returns `(name, result)` pairs.
    pub fn restore_all(
        &self,
        s: NodeId,
        t: NodeId,
        failures: &FailureSet,
    ) -> Vec<(&str, Result<FamilyRestoration, RestoreError>)> {
        self.families
            .iter()
            .map(|f| (f.name(), f.restore(s, t, failures)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::Metric;
    use rbpc_topo::{isp_topology, IspParams};

    /// ISP with its weight classes: 1 = core, 4 = uplink, 2/8 = PoP.
    fn fixture() -> (Graph, CostModel) {
        let g = isp_topology(
            IspParams {
                pops: 8,
                core_routers: 6,
                ..IspParams::default()
            },
            3,
        )
        .graph;
        (g, CostModel::new(Metric::Weighted, 3))
    }

    #[test]
    fn backbone_family_stays_on_backbone() {
        let (g, model) = fixture();
        // "OC48 family": core + uplink links only (weights 1 and 4).
        let family = RouteFamily::new("oc48", &g, model, |_, rec| rec.weight <= 4);
        for e in family.subgraph().graph.edge_ids() {
            assert!(family.subgraph().graph.weight(e) <= 4);
        }
        // Core routers are connected within the family.
        assert!(family.connects(0.into(), 5.into()));
        let p = family.base_path(0.into(), 5.into()).unwrap();
        for &e in p.edges() {
            assert!(g.weight(e) <= 4, "family path left the subnet");
        }
    }

    #[test]
    fn family_restoration_respects_the_subnet() {
        let (g, model) = fixture();
        let family = RouteFamily::new("oc48", &g, model, |_, rec| rec.weight <= 4);
        let (s, t) = (NodeId::new(0), NodeId::new(3));
        let base = family.base_path(s, t).unwrap();
        let failed = base.edges()[0];
        let failures = FailureSet::of_edge(failed);
        let r = family.restore(s, t, &failures).unwrap();
        assert!(r.affected);
        assert!(!r.backup.contains_edge(failed));
        for &e in r.backup.edges() {
            assert!(g.weight(e) <= 4, "restoration left the subnet");
        }
        assert_eq!(r.concatenation.full_path().unwrap(), r.backup);
    }

    #[test]
    fn failures_outside_the_family_do_not_affect_it() {
        let (g, model) = fixture();
        let family = RouteFamily::new("oc48", &g, model, |_, rec| rec.weight <= 4);
        // Fail an access link (weight 8): not in the family.
        let access = g
            .edge_ids()
            .find(|&e| g.weight(e) == 8)
            .expect("access links exist");
        let r = family
            .restore(0.into(), 4.into(), &FailureSet::of_edge(access))
            .unwrap();
        assert!(!r.affected);
        assert_eq!(r.backup, r.original);
    }

    #[test]
    fn family_disconnection_is_not_papered_over() {
        // A family with a bridge must report Disconnected even though the
        // full graph has a detour.
        let mut g = Graph::new(3);
        let fast = g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(0, 2, 10).unwrap(); // slow detour, outside the family
        let model = CostModel::new(Metric::Weighted, 1);
        let family = RouteFamily::new("fast", &g, model, |_, rec| rec.weight == 1);
        let err = family
            .restore(0.into(), 1.into(), &FailureSet::of_edge(fast))
            .unwrap_err();
        assert!(matches!(err, RestoreError::Disconnected { .. }));
        // The unrestricted graph restores fine, by contrast.
        let full = RouteFamily::new("all", &g, model, |_, _| true);
        assert!(full
            .restore(0.into(), 1.into(), &FailureSet::of_edge(fast))
            .is_ok());
    }

    #[test]
    fn family_set_reports_per_family() {
        let (g, model) = fixture();
        let set = FamilySet::new()
            .with(RouteFamily::new("all", &g, model, |_, _| true))
            .with(RouteFamily::new("oc48", &g, model, |_, rec| {
                rec.weight <= 4
            }))
            .with(RouteFamily::new("core", &g, model, |_, rec| {
                rec.weight == 1
            }));
        assert_eq!(set.families().len(), 3);
        let (s, t) = (NodeId::new(0), NodeId::new(5));
        let results = set.restore_all(s, t, &FailureSet::new());
        assert_eq!(results.len(), 3);
        for (name, r) in &results {
            assert!(r.is_ok(), "family {name} failed: {r:?}");
        }
        // The restricted family's route can never be cheaper than the
        // unrestricted one.
        let all_cost = results[0].1.as_ref().unwrap().backup.cost(&g, &model).base;
        let oc48_cost = results[1].1.as_ref().unwrap().backup.cost(&g, &model).base;
        assert!(oc48_cost >= all_cost);
    }

    #[test]
    fn theorem_bounds_hold_within_families() {
        let (g, model) = fixture();
        let family = RouteFamily::new("oc48", &g, model, |_, rec| rec.weight <= 4);
        let (s, t) = (NodeId::new(0), NodeId::new(4));
        let base = family.base_path(s, t).unwrap();
        for &e in base.edges() {
            let failures = FailureSet::of_edge(e);
            let Ok(r) = family.restore(s, t, &failures) else {
                continue;
            };
            assert!(r.concatenation.len() <= 3); // k = 1 within the family
            assert!(r.concatenation.raw_edge_count() <= 1);
        }
    }
}
