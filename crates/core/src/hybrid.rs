//! The hybrid restoration scheme (§4.2, last paragraph).
//!
//! Local RBPC restores *instantly* — the router adjacent to the failure
//! rewrites one ILM entry as soon as its interface goes down — but may
//! route sub-optimally. Source RBPC restores *optimally* — one FEC rewrite
//! onto the post-failure shortest path — but only after the link-state
//! flood reaches the source. The hybrid does both: packets ride the local
//! splice during the flood interval, then the source takes over.
//!
//! [`hybrid_restore`] computes both phases; [`HybridRestoration`] reports
//! the interim penalty (how much longer packets travel until the source
//! reacts) and the flood distance (how many hops the failure notification
//! must travel — a proxy for how long the interim lasts).

use crate::{
    edge_bypass, end_route, BasePathOracle, LocalRestoration, Restoration, RestoreError, Restorer,
};
use rbpc_graph::{EdgeId, FailureSet, PathCost};
use rbpc_obs::{obs_trace, obs_trace_attr};

/// Which local variant phase 1 ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalVariant {
    /// The failed link was patched around and the original LSP resumed.
    EdgeBypass,
    /// The adjacent router re-routed straight to the destination.
    EndRoute,
}

/// Both phases of a hybrid restoration.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridRestoration {
    /// Phase 1: the instant local splice at the router adjacent to the
    /// failure.
    pub local: LocalRestoration,
    /// Which local variant was used (edge-bypass preferred; end-route when
    /// the LSP tail is also broken).
    pub variant: LocalVariant,
    /// Phase 2: the optimal source restoration.
    pub source: Restoration,
    /// End-to-end cost of the interim (phase 1) route.
    pub interim_cost: PathCost,
    /// Hop distance from the splicing router back to the LSP source — the
    /// distance the link-state notification travels before phase 2 can
    /// happen.
    pub flood_hops: u32,
}

impl HybridRestoration {
    /// Interim cost penalty: phase-1 route cost over the optimal backup
    /// cost (≥ 1).
    pub fn interim_stretch(&self) -> f64 {
        if self.source.backup_cost.base == 0 {
            1.0
        } else {
            self.interim_cost.base as f64 / self.source.backup_cost.base as f64
        }
    }

    /// Whether phase 2 actually improves on phase 1.
    pub fn source_improves(&self) -> bool {
        self.source.backup_cost.base < self.interim_cost.base
    }
}

/// Computes the hybrid restoration for the LSP `s → t` whose link `failed`
/// died, under the full failure set `failures`.
///
/// Phase 1 prefers **edge-bypass** (smallest ILM churn, resumes the
/// original LSP) and falls back to **end-route** when the LSP's tail is
/// also broken; phase 2 is plain source RBPC.
///
/// ```
/// use rbpc_core::{hybrid_restore, BasePathOracle, DenseBasePaths, Restorer};
/// use rbpc_graph::{CostModel, FailureSet, Metric};
///
/// # fn main() -> Result<(), rbpc_core::RestoreError> {
/// let g = rbpc_topo::cycle(8);
/// let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Unweighted, 2));
/// let restorer = Restorer::new(&oracle);
/// let lsp = oracle.base_path(0.into(), 3.into()).expect("connected");
/// let failed = lsp.edges()[1];
/// let h = hybrid_restore(&oracle, &restorer, failed, &FailureSet::of_edge(failed), 0.into(), 3.into())?;
/// assert!(h.interim_stretch() >= 1.0);
/// assert_eq!(h.flood_hops, 1); // the notification travels one hop back
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates [`RestoreError`] when neither local variant can restore or
/// the pair is disconnected.
pub fn hybrid_restore<O: BasePathOracle>(
    oracle: &O,
    restorer: &Restorer<'_, O>,
    failed: EdgeId,
    failures: &FailureSet,
    s: rbpc_graph::NodeId,
    t: rbpc_graph::NodeId,
) -> Result<HybridRestoration, RestoreError> {
    let mut trace = obs_trace!(
        "restore.hybrid",
        cat: "restore",
        src = s.index(),
        dst = t.index(),
        k_failures = failures.failed_edge_count(),
    );
    let lsp_path = {
        let _t = obs_trace!("base_path.lookup", cat: "lookup");
        oracle.base_path(s, t).ok_or(RestoreError::Disconnected {
            source: s,
            target: t,
        })?
    };
    let (local, variant) = match edge_bypass(oracle, &lsp_path, failed, failures) {
        Ok(l) => (l, LocalVariant::EdgeBypass),
        Err(_) => (
            end_route(oracle, &lsp_path, failed, failures)?,
            LocalVariant::EndRoute,
        ),
    };
    let source = restorer.restore(s, t, failures)?;
    obs_trace_attr!(trace, stack_depth = source.concatenation.len());
    let interim_cost = local.end_to_end.cost(oracle.graph(), oracle.cost_model());
    // The notification travels back along the (surviving) LSP prefix.
    let flood_hops = lsp_path
        .position_of(local.r1)
        .expect("invariant: r1 lies on the LSP") as u32;
    Ok(HybridRestoration {
        local,
        variant,
        source,
        interim_cost,
        flood_hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseBasePaths, ProvisionedDomain};
    use rbpc_graph::{CostModel, Metric, NodeId};
    use rbpc_topo::{cycle, gnm_connected};

    fn fixture(seed: u64) -> DenseBasePaths {
        let g = gnm_connected(25, 55, 8, seed);
        DenseBasePaths::build(g, CostModel::new(Metric::Weighted, seed))
    }

    #[test]
    fn hybrid_phases_are_consistent() {
        for seed in 0..8 {
            let oracle = fixture(seed);
            let restorer = Restorer::new(&oracle);
            let (s, t) = (NodeId::new(0), NodeId::new(24));
            let base = oracle.base_path(s, t).unwrap();
            for &failed in base.edges() {
                let failures = FailureSet::of_edge(failed);
                let Ok(h) = hybrid_restore(&oracle, &restorer, failed, &failures, s, t) else {
                    continue;
                };
                // Interim route is never better than the optimum.
                assert!(h.interim_stretch() >= 1.0 - 1e-12, "seed {seed}");
                assert!(h.interim_cost.base >= h.source.backup_cost.base);
                // Phase-1 route really avoids the failure and connects s to t.
                assert!(!h.local.end_to_end.contains_edge(failed));
                assert_eq!(h.local.end_to_end.source(), s);
                assert_eq!(h.local.end_to_end.target(), t);
                // Flood distance is within the LSP length.
                assert!((h.flood_hops as usize) < base.nodes().len());
                if h.source_improves() {
                    assert!(h.interim_stretch() > 1.0);
                }
            }
        }
    }

    #[test]
    fn edge_bypass_preferred_single_failure() {
        let g = cycle(8);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 2));
        let restorer = Restorer::new(&oracle);
        let (s, t) = (NodeId::new(0), NodeId::new(3));
        let base = oracle.base_path(s, t).unwrap();
        let failed = base.edges()[1];
        let failures = FailureSet::of_edge(failed);
        let h = hybrid_restore(&oracle, &restorer, failed, &failures, s, t).unwrap();
        assert_eq!(h.variant, LocalVariant::EdgeBypass);
        assert_eq!(h.flood_hops, 1);
    }

    #[test]
    fn falls_back_to_end_route_on_broken_tail() {
        let g = cycle(8);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 2));
        let restorer = Restorer::new(&oracle);
        let (s, t) = (NodeId::new(0), NodeId::new(3));
        let base = oracle.base_path(s, t).unwrap();
        assert_eq!(base.hop_count(), 3);
        // First and last hop both fail: edge-bypass of the first cannot
        // resume, so the hybrid uses end-route.
        let mut failures = FailureSet::of_edge(base.edges()[0]);
        failures.fail_edge(base.edges()[2]);
        let h = hybrid_restore(&oracle, &restorer, base.edges()[0], &failures, s, t).unwrap();
        assert_eq!(h.variant, LocalVariant::EndRoute);
        assert!(!h.local.end_to_end.contains_edge(base.edges()[0]));
        assert!(!h.local.end_to_end.contains_edge(base.edges()[2]));
    }

    #[test]
    fn hybrid_runs_end_to_end_in_mpls() {
        let oracle = fixture(3);
        let restorer = Restorer::new(&oracle);
        let mut dom = ProvisionedDomain::new(&oracle);
        dom.provision_all_pairs(&oracle).unwrap();
        let (s, t) = (NodeId::new(0), NodeId::new(24));
        let base = oracle.base_path(s, t).unwrap();
        let failed = base.edges()[base.hop_count() / 2];
        let failures = FailureSet::of_edge(failed);
        let h = hybrid_restore(&oracle, &restorer, failed, &failures, s, t).unwrap();
        // Phase 1.
        let lsp = dom.lsp_for_pair(s, t).unwrap();
        dom.apply_local_restoration(lsp, &h.local).unwrap();
        let interim = dom.forward(s, t, &failures).unwrap();
        assert_eq!(interim.route(), h.local.end_to_end.nodes());
        // Phase 2.
        dom.apply_source_restoration(&h.source).unwrap();
        let final_trace = dom.forward(s, t, &failures).unwrap();
        assert_eq!(final_trace.route(), h.source.backup.nodes());
        assert!(final_trace.hop_count() <= interim.hop_count());
    }

    #[test]
    fn disconnected_pair_errors() {
        let mut g = rbpc_graph::Graph::new(3);
        let bridge = g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 1));
        let restorer = Restorer::new(&oracle);
        let failures = FailureSet::of_edge(bridge);
        assert!(hybrid_restore(
            &oracle,
            &restorer,
            bridge,
            &failures,
            NodeId::new(0),
            NodeId::new(2)
        )
        .is_err());
    }
}
