//! Source-router RBPC: restore disrupted routes by rewriting one FEC entry
//! at the source with a stack of base-LSP labels.

use crate::decompose::path_survives;
use crate::{greedy_decompose, BasePathOracle, Concatenation, RestoreError, SegmentKind};
use rbpc_graph::{EdgeId, FailureSet, NodeId, Path, PathCost};
use rbpc_obs::{
    obs_count, obs_event, obs_flight, obs_flight_now, obs_record, obs_span, obs_trace,
    obs_trace_attr, FlightKind, FlightRecord,
};

/// The result of restoring one source–destination route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Restoration {
    /// The route's source router.
    pub source: NodeId,
    /// The route's destination router.
    pub target: NodeId,
    /// The pre-failure base path.
    pub original: Path,
    /// The post-failure canonical shortest path (equals `original` when the
    /// route was unaffected).
    pub backup: Path,
    /// The backup expressed as base LSPs + raw edges — the label stack.
    pub concatenation: Concatenation,
    /// Whether the failures actually disrupted the original path.
    pub affected: bool,
    /// Cost of the original path.
    pub original_cost: PathCost,
    /// Cost of the backup path.
    pub backup_cost: PathCost,
}

impl Restoration {
    /// The paper's **PC length**: number of concatenated pieces.
    pub fn pc_length(&self) -> usize {
        self.concatenation.len()
    }

    /// Whether the backup costs exactly as much as the original (the
    /// paper's **redundancy** predicate: an equal-cost alternative existed).
    pub fn cost_preserved(&self) -> bool {
        self.backup_cost.base == self.original_cost.base
    }

    /// Hop-count stretch `backup_hops / original_hops`.
    pub fn hop_stretch(&self) -> f64 {
        if self.original_cost.hops == 0 {
            1.0
        } else {
            f64::from(self.backup_cost.hops) / f64::from(self.original_cost.hops)
        }
    }

    /// A deterministic 64-bit fingerprint of the restoration *plan* —
    /// endpoints, the backup path (nodes and edges), and the label-stack
    /// decomposition — with no timing in the mix. Two restores that pick
    /// the same backup and the same segment structure hash identically,
    /// so a replayed incident can assert plan equality without shipping
    /// whole paths. FNV-1a over the structural fields.
    pub fn plan_hash(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: u64, x: u64) -> u64 {
            (h ^ x).wrapping_mul(PRIME)
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        h = mix(h, self.source.index() as u64);
        h = mix(h, self.target.index() as u64);
        h = mix(h, u64::from(self.affected));
        h = mix(h, self.backup.hop_count() as u64);
        for n in self.backup.nodes() {
            h = mix(h, n.index() as u64);
        }
        for e in self.backup.edges() {
            h = mix(h, e.index() as u64);
        }
        for seg in self.concatenation.segments() {
            h = mix(
                h,
                match seg.kind {
                    SegmentKind::BasePath => 1,
                    SegmentKind::RawEdge => 2,
                },
            );
            h = mix(h, seg.source().index() as u64);
            h = mix(h, seg.target().index() as u64);
            h = mix(h, seg.path.hop_count() as u64);
        }
        h
    }
}

/// Computes restorations against a base-path oracle.
///
/// ```
/// use rbpc_core::{BasePathOracle, DenseBasePaths, Restorer};
/// use rbpc_graph::{CostModel, FailureSet, Metric};
///
/// # fn main() -> Result<(), rbpc_core::RestoreError> {
/// let g = rbpc_topo::cycle(6);
/// let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Unweighted, 1));
/// let restorer = Restorer::new(&oracle);
///
/// let base = oracle.base_path(0.into(), 2.into()).expect("connected");
/// let r = restorer.restore(0.into(), 2.into(), &FailureSet::of_edge(base.edges()[0]))?;
/// assert!(r.affected);
/// assert!(r.pc_length() <= 2); // Theorem 1, k = 1: at most two base paths
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Restorer<'a, O> {
    oracle: &'a O,
}

impl<'a, O: BasePathOracle> Restorer<'a, O> {
    /// Creates a restorer over the given oracle.
    pub fn new(oracle: &'a O) -> Self {
        Restorer { oracle }
    }

    /// The oracle in use.
    pub fn oracle(&self) -> &'a O {
        self.oracle
    }

    /// Restores the route `s → t` under `failures`: computes the
    /// post-failure canonical shortest path and its decomposition into
    /// surviving base LSPs (Theorems 1–3 bound the stack depth).
    ///
    /// # Errors
    ///
    /// * [`RestoreError::UnknownNode`] for out-of-range endpoints;
    /// * [`RestoreError::EndpointFailed`] when `s` or `t` failed;
    /// * [`RestoreError::Disconnected`] when no surviving path exists
    ///   (including pairs that were never connected).
    pub fn restore(
        &self,
        s: NodeId,
        t: NodeId,
        failures: &FailureSet,
    ) -> Result<Restoration, RestoreError> {
        let _span = obs_span!("core.restore.ns");
        let mut trace = obs_trace!(
            "restore.source",
            cat: "restore",
            src = s.index(),
            dst = t.index(),
            k_failures = failures.failed_edge_count(),
        );
        obs_count!("core.restore.calls");
        obs_event!(
            "restore_start",
            src = s.index(),
            dst = t.index(),
            failed_edges = failures.failed_edge_count(),
        );
        let flight_start = obs_flight_now!();
        let result = self.restore_inner(s, t, failures);
        match &result {
            Ok(r) => {
                obs_count!("core.restore.ok");
                if r.affected {
                    obs_count!("core.restore.affected");
                }
                obs_record!("core.restore.segments", r.concatenation.len());
                obs_trace_attr!(trace, stack_depth = r.concatenation.len());
                obs_trace_attr!(trace, stretch = r.hop_stretch());
                obs_event!(
                    "restore_done",
                    src = s.index(),
                    dst = t.index(),
                    affected = r.affected,
                    segments = r.concatenation.len(),
                    raw_edges = r.concatenation.raw_edge_count(),
                );
                // Black-box record: the full failure set plus the plan
                // fingerprint, enough for a bit-for-bit incident replay.
                // The builder only runs when a recorder is installed.
                obs_flight!(FlightRecord {
                    src: s.index() as u64,
                    dst: t.index() as u64,
                    failed_edges: failures.failed_edges().map(|e| e.index() as u64).collect(),
                    failed_nodes: failures.failed_nodes().map(|n| n.index() as u64).collect(),
                    ok: true,
                    segments: r.concatenation.len() as u64,
                    plan_hash: r.plan_hash(),
                    latency_ns: rbpc_obs::monotonic_ns().saturating_sub(flight_start),
                    ..FlightRecord::new(FlightKind::Restore)
                });
            }
            Err(e) => {
                obs_count!("core.restore.err");
                obs_event!(
                    "restore_done",
                    src = s.index(),
                    dst = t.index(),
                    error = e.to_string(),
                );
                obs_flight!(FlightRecord {
                    src: s.index() as u64,
                    dst: t.index() as u64,
                    failed_edges: failures.failed_edges().map(|e| e.index() as u64).collect(),
                    failed_nodes: failures.failed_nodes().map(|n| n.index() as u64).collect(),
                    ok: false,
                    latency_ns: rbpc_obs::monotonic_ns().saturating_sub(flight_start),
                    detail: e.to_string(),
                    ..FlightRecord::new(FlightKind::Restore)
                });
            }
        }
        result
    }

    // lint:hot: the per-LSP restore fast path — lookup, repair, decompose.
    fn restore_inner(
        &self,
        s: NodeId,
        t: NodeId,
        failures: &FailureSet,
    ) -> Result<Restoration, RestoreError> {
        let graph = self.oracle.graph();
        let model = self.oracle.cost_model();
        for node in [s, t] {
            if node.index() >= graph.node_count() {
                return Err(RestoreError::UnknownNode { node });
            }
            if failures.node_failed(node) {
                return Err(RestoreError::EndpointFailed { node });
            }
        }
        let original = {
            let _t = obs_trace!("base_path.lookup", cat: "lookup");
            self.oracle
                .base_path(s, t)
                .ok_or(RestoreError::Disconnected {
                    source: s,
                    target: t,
                })?
        };
        let affected = !path_survives(&original, failures);
        let backup = if affected {
            // Repair the source's cached tree instead of running Dijkstra
            // over the failed view from scratch (see `with_spt_under`).
            let _t = obs_trace!("backup.search", cat: "lookup");
            self.oracle
                .path_under(s, t, failures)
                .ok_or(RestoreError::Disconnected {
                    source: s,
                    target: t,
                })?
        } else {
            // lint:allow(hot-path) — the caller gets an owned copy of the base path; one clone is the API contract
            original.clone()
        };
        let concatenation = greedy_decompose(self.oracle, &backup);
        // Machine-check the paper's bound on every debug-build restore:
        // for edge-only failure sets the concatenation must satisfy
        // Theorem 2 (node failures make the stack depth unbounded — see
        // the star construction — so they are exempt). The release-mode
        // twin of this check lives in tests/theorem_bounds.rs.
        if failures.failed_node_count() == 0 {
            debug_assert_eq!(
                concatenation.validate_bounds(failures.failed_edge_count()),
                Ok(()),
                "restoration {s} -> {t} violates the Theorem 2 stack bound"
            );
        }
        Ok(Restoration {
            source: s,
            target: t,
            original_cost: original.cost(graph, model),
            backup_cost: backup.cost(graph, model),
            original,
            backup,
            concatenation,
            affected,
        })
    }

    /// Builds the failover plan for a single link: for every given pair
    /// whose base path crosses `link`, the restoration (FEC update) its
    /// source must apply when the link fails. This is what the paper
    /// pre-computes and indexes by link.
    pub fn failover_plan(
        &self,
        link: EdgeId,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> FailoverPlan {
        let failures = FailureSet::of_edge(link);
        let mut updates = Vec::new();
        let mut unrestorable = Vec::new();
        for (s, t) in pairs {
            self.plan_pair(link, &failures, s, t, &mut updates, &mut unrestorable);
        }
        FailoverPlan {
            link,
            updates,
            unrestorable,
        }
    }

    /// One pair's contribution to a failover plan (shared by the
    /// sequential and parallel builders).
    fn plan_pair(
        &self,
        link: EdgeId,
        failures: &FailureSet,
        s: NodeId,
        t: NodeId,
        updates: &mut Vec<FecUpdate>,
        unrestorable: &mut Vec<(NodeId, NodeId)>,
    ) {
        let Some(original) = self.oracle.base_path(s, t) else {
            return;
        };
        if !original.contains_edge(link) {
            return;
        }
        match self.restore(s, t, failures) {
            Ok(r) => updates.push(FecUpdate {
                source: s,
                dest: t,
                restoration: r,
            }),
            Err(_) => unrestorable.push((s, t)),
        }
    }
}

/// One chunk's share of a parallel failover plan: the chunk index (for
/// the input-order merge), its FEC updates, and its unrestorable pairs.
type PlanPart = (usize, Vec<FecUpdate>, Vec<(NodeId, NodeId)>);

impl<'a, O: BasePathOracle + Sync> Restorer<'a, O> {
    /// [`Restorer::failover_plan`] on `threads` worker threads.
    ///
    /// Pairs are cut into chunks claimed through an atomic index (as in
    /// [`rbpc_graph::par_all_sources`]); each worker restores its chunks
    /// independently and the chunk results are concatenated in input
    /// order, so the plan — updates, unrestorable list, and their order —
    /// is identical to the sequential builder for every thread count.
    pub fn failover_plan_par(
        &self,
        link: EdgeId,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> FailoverPlan {
        let threads = threads.max(1);
        if threads == 1 || pairs.len() < 2 {
            return self.failover_plan(link, pairs.iter().copied());
        }
        let failures = FailureSet::of_edge(link);
        let chunk = pairs.len().div_ceil(threads * 4).max(1);
        let chunks: Vec<&[(NodeId, NodeId)]> = pairs.chunks(chunk).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut parts: Vec<PlanPart> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            // lint:allow(atomics-order) — pure ticket counter; the scope join publishes each worker's results
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(chunk_pairs) = chunks.get(i) else {
                                break;
                            };
                            let mut updates = Vec::new();
                            let mut unrestorable = Vec::new();
                            for &(s, t) in *chunk_pairs {
                                self.plan_pair(
                                    link,
                                    &failures,
                                    s,
                                    t,
                                    &mut updates,
                                    &mut unrestorable,
                                );
                            }
                            mine.push((i, updates, unrestorable));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(part) => part,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        parts.sort_unstable_by_key(|(i, _, _)| *i);
        let mut updates = Vec::new();
        let mut unrestorable = Vec::new();
        for (_, mut u, mut r) in parts {
            updates.append(&mut u);
            unrestorable.append(&mut r);
        }
        FailoverPlan {
            link,
            updates,
            unrestorable,
        }
    }
}

/// One FEC-table update triggered by a link failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FecUpdate {
    /// The router whose FEC table changes.
    pub source: NodeId,
    /// The destination whose entry changes.
    pub dest: NodeId,
    /// The restoration to encode (label stack = its concatenation).
    pub restoration: Restoration,
}

/// All FEC updates associated with one link's failure, pre-computable and
/// indexable by link as §4.1 of the paper describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverPlan {
    /// The link this plan responds to.
    pub link: EdgeId,
    /// FEC updates to apply at the affected sources.
    pub updates: Vec<FecUpdate>,
    /// Pairs left disconnected by the failure (no restoration exists).
    pub unrestorable: Vec<(NodeId, NodeId)>,
}

impl FailoverPlan {
    /// Number of routes this link failure disrupts (restorable or not).
    pub fn affected_routes(&self) -> usize {
        self.updates.len() + self.unrestorable.len()
    }
}

/// The destinations whose base path from `source` traverses `edge` — the
/// subtree hanging below `edge` in the source's shortest-path tree.
///
/// Useful for discovering affected pairs without scanning all of them.
pub fn destinations_through_edge<O: BasePathOracle>(
    oracle: &O,
    source: NodeId,
    edge: EdgeId,
) -> Vec<NodeId> {
    let (u, v) = oracle.graph().endpoints(edge);
    oracle.with_spt(source, |spt| {
        for below in [u, v] {
            if spt.parent_edge(below) == Some(edge) {
                return spt.subtree(below);
            }
        }
        Vec::new()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseBasePaths;
    use rbpc_graph::{CostModel, Graph, Metric};
    use rbpc_topo::{cycle, gnm_connected, two_hop_star};

    fn model() -> CostModel {
        CostModel::new(Metric::Weighted, 13)
    }

    fn oracle(g: &Graph) -> DenseBasePaths {
        DenseBasePaths::build(g.clone(), model())
    }

    #[test]
    fn unaffected_route_passes_through() {
        let g = gnm_connected(20, 45, 8, 3);
        let o = oracle(&g);
        let r = Restorer::new(&o);
        let base = o.base_path(0.into(), 19.into()).unwrap();
        // Fail an edge NOT on the base path.
        let off_path = g.edge_ids().find(|e| !base.contains_edge(*e)).unwrap();
        let res = r
            .restore(0.into(), 19.into(), &FailureSet::of_edge(off_path))
            .unwrap();
        assert!(!res.affected);
        assert_eq!(res.backup, res.original);
        assert_eq!(res.pc_length(), 1);
        assert!(res.cost_preserved());
        assert!((res.hop_stretch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_link_failure_restores_with_short_stack() {
        for seed in 0..6 {
            let g = gnm_connected(25, 55, 7, seed);
            let o = oracle(&g);
            let r = Restorer::new(&o);
            let base = o.base_path(1.into(), 24.into()).unwrap();
            for &e in base.edges() {
                match r.restore(1.into(), 24.into(), &FailureSet::of_edge(e)) {
                    Ok(res) => {
                        assert!(res.affected);
                        assert!(!res.backup.contains_edge(e));
                        // Theorem 3, k = 1: ≤ 3 components, ≤ 1 raw edge.
                        assert!(res.concatenation.len() <= 3);
                        assert!(res.concatenation.raw_edge_count() <= 1);
                        assert!(res.backup_cost.base >= res.original_cost.base);
                        assert_eq!(res.concatenation.full_path().unwrap(), res.backup);
                    }
                    Err(RestoreError::Disconnected { .. }) => {} // bridge edge
                    Err(other) => panic!("unexpected {other}"),
                }
            }
        }
    }

    #[test]
    fn node_failure_restores_around_router() {
        let star = two_hop_star(10);
        let o = DenseBasePaths::build(star.graph.clone(), CostModel::new(Metric::Unweighted, 1));
        let r = Restorer::new(&o);
        let failures = FailureSet::of_nodes([star.hub.index()]);
        let res = r.restore(star.s, star.t, &failures).unwrap();
        assert!(res.affected || !res.original.contains_node(star.hub));
        assert!(!res.backup.contains_node(star.hub));
        // The line is the only survivor: 8 hops, pieces of ≤ 2 hops.
        assert_eq!(res.backup.hop_count(), 8);
        assert!(res.pc_length() >= 4);
    }

    #[test]
    fn endpoint_failure_is_an_error() {
        let g = cycle(5);
        let o = oracle(&g);
        let r = Restorer::new(&o);
        let f = FailureSet::of_nodes([0usize]);
        assert_eq!(
            r.restore(0.into(), 2.into(), &f).unwrap_err(),
            RestoreError::EndpointFailed { node: 0.into() }
        );
        assert_eq!(
            r.restore(2.into(), 0.into(), &f).unwrap_err(),
            RestoreError::EndpointFailed { node: 0.into() }
        );
    }

    #[test]
    fn unknown_node_is_an_error() {
        let g = cycle(4);
        let o = oracle(&g);
        let r = Restorer::new(&o);
        assert_eq!(
            r.restore(0.into(), 9.into(), &FailureSet::new())
                .unwrap_err(),
            RestoreError::UnknownNode { node: 9.into() }
        );
    }

    #[test]
    fn disconnection_is_an_error() {
        let mut g = Graph::new(3);
        let bridge = g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let o = oracle(&g);
        let r = Restorer::new(&o);
        assert_eq!(
            r.restore(0.into(), 2.into(), &FailureSet::of_edge(bridge))
                .unwrap_err(),
            RestoreError::Disconnected {
                source: 0.into(),
                target: 2.into()
            }
        );
    }

    #[test]
    fn failover_plan_covers_exactly_crossing_pairs() {
        let g = cycle(6);
        let o = oracle(&g);
        let r = Restorer::new(&o);
        let link = g.find_edge(0.into(), 1.into()).unwrap();
        let all_pairs: Vec<_> = (0..6)
            .flat_map(|s| (0..6).map(move |t| (NodeId::new(s), NodeId::new(t))))
            .filter(|(s, t)| s != t)
            .collect();
        let plan = r.failover_plan(link, all_pairs.iter().copied());
        assert_eq!(plan.link, link);
        assert!(plan.unrestorable.is_empty()); // a cycle survives any one edge
        assert!(!plan.updates.is_empty());
        for u in &plan.updates {
            assert!(u.restoration.original.contains_edge(link));
            assert!(!u.restoration.backup.contains_edge(link));
            assert_eq!(u.source, u.restoration.source);
            assert_eq!(u.dest, u.restoration.target);
        }
        assert_eq!(plan.affected_routes(), plan.updates.len());
        // Cross-check affected-pair discovery via SPT subtrees.
        let mut via_subtree = 0usize;
        for s in g.nodes() {
            via_subtree += destinations_through_edge(&o, s, link).len();
        }
        assert_eq!(via_subtree, plan.updates.len());
    }

    #[test]
    fn parallel_plan_is_identical_to_sequential() {
        let g = gnm_connected(25, 55, 7, 4);
        let o = oracle(&g);
        let r = Restorer::new(&o);
        let pairs: Vec<_> = (0..25)
            .flat_map(|s| (0..25).map(move |t| (NodeId::new(s), NodeId::new(t))))
            .filter(|(s, t)| s != t)
            .collect();
        for link in g.edge_ids().take(5) {
            let seq = r.failover_plan(link, pairs.iter().copied());
            for threads in [1usize, 2, 8] {
                let par = r.failover_plan_par(link, &pairs, threads);
                assert_eq!(par, seq, "link {link}, threads {threads}");
            }
        }
    }

    #[test]
    fn plan_records_unrestorable_pairs() {
        let mut g = Graph::new(3);
        let bridge = g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let o = oracle(&g);
        let r = Restorer::new(&o);
        let plan = r.failover_plan(
            bridge,
            [
                (NodeId::new(0), NodeId::new(2)),
                (NodeId::new(2), NodeId::new(0)),
            ],
        );
        assert_eq!(plan.updates.len(), 0);
        assert_eq!(plan.unrestorable.len(), 2);
        assert_eq!(plan.affected_routes(), 2);
    }

    #[test]
    fn destinations_through_edge_matches_paths() {
        let g = gnm_connected(20, 40, 6, 9);
        let o = oracle(&g);
        for e in g.edge_ids().take(10) {
            let got = destinations_through_edge(&o, 0.into(), e);
            for t in g.nodes() {
                let crosses = o
                    .base_path(0.into(), t)
                    .map(|p| p.contains_edge(e))
                    .unwrap_or(false);
                assert_eq!(got.contains(&t), crosses, "edge {e} target {t}");
            }
        }
    }

    #[test]
    fn plan_hash_is_deterministic_and_structural() {
        let g = gnm_connected(25, 55, 7, 2);
        let o = oracle(&g);
        let r = Restorer::new(&o);
        let base = o.base_path(1.into(), 24.into()).unwrap();
        let f = FailureSet::of_edge(base.edges()[0]);
        let a = r.restore(1.into(), 24.into(), &f).unwrap();
        let b = r.restore(1.into(), 24.into(), &f).unwrap();
        // Same query, same failures: identical plans, identical hashes.
        assert_eq!(a.plan_hash(), b.plan_hash());
        assert_ne!(a.plan_hash(), 0);
        // A different query hashes differently (structural sensitivity).
        let unaffected = r.restore(1.into(), 24.into(), &FailureSet::new()).unwrap();
        assert_ne!(a.plan_hash(), unaffected.plan_hash());
        // Mutating the plan structure changes the hash.
        let mut tweaked = a.clone();
        tweaked.affected = !tweaked.affected;
        assert_ne!(a.plan_hash(), tweaked.plan_hash());
    }

    // Without the `obs` feature the probe compiles to a no-op.
    #[cfg(feature = "obs")]
    #[test]
    fn restore_feeds_the_flight_recorder() {
        use rbpc_obs::{set_flight_recorder, FlightKind, FlightRecorder};
        use std::sync::Arc;

        let g = cycle(6);
        let o = oracle(&g);
        let rst = Restorer::new(&o);
        let link = g.find_edge(0.into(), 1.into()).unwrap();

        let ring = Arc::new(FlightRecorder::new(8));
        let prev = set_flight_recorder(Some(Arc::clone(&ring)));
        let res = rst.restore(0.into(), 2.into(), &FailureSet::of_edge(link));
        set_flight_recorder(prev);

        let res = res.unwrap();
        // Other tests restoring in parallel may also have recorded while
        // the global ring was installed; find our record by its query.
        let frozen = ring.freeze();
        let rec = frozen
            .iter()
            .find(|r| (r.src, r.dst) == (0, 2) && r.failed_edges == vec![link.index() as u64])
            .expect("our restore was recorded");
        assert_eq!(rec.kind, FlightKind::Restore);
        assert!(rec.ok);
        assert_eq!(rec.segments, res.concatenation.len() as u64);
        assert_eq!(rec.plan_hash, res.plan_hash());
    }

    #[test]
    fn two_link_failures_stay_bounded() {
        for seed in 0..4 {
            let g = gnm_connected(25, 60, 1, seed); // unweighted-ish (w=1)
            let o = DenseBasePaths::build(g.clone(), CostModel::new(Metric::Unweighted, 2));
            let r = Restorer::new(&o);
            let base = o.base_path(0.into(), 24.into()).unwrap();
            if base.hop_count() < 2 {
                continue;
            }
            let mut f = FailureSet::new();
            f.fail_edge(base.edges()[0]);
            f.fail_edge(base.edges()[base.hop_count() - 1]);
            if let Ok(res) = r.restore(0.into(), 24.into(), &f) {
                // Theorem 3, k = 2: ≤ 5 components, ≤ 2 raw edges.
                assert!(res.concatenation.len() <= 5, "seed {seed}");
                assert!(res.concatenation.raw_edge_count() <= 2, "seed {seed}");
            }
        }
    }
}
