//! Checkers for the paper's theorems.
//!
//! These compute the *minimum* decomposition of a path into pieces that are
//! shortest paths of the original network `G` (any shortest path — not just
//! the provisioned base paths), with single non-shortest edges allowed as
//! their own pieces:
//!
//! * **Theorem 1** (unweighted): after `k` edge failures, the new shortest
//!   path splits into at most `k + 1` original shortest paths (and in an
//!   unweighted graph every edge is a shortest path, so no edge pieces
//!   appear);
//! * **Theorem 2** (weighted): at most `k + 1` original shortest paths
//!   interleaved with at most `k` edges.
//!
//! The minimum cover is computed greedily: "subpath of `P` is a shortest
//! path of `G`" is closed under taking subpaths, so longest-prefix is
//! optimal — the same argument as for base-path decomposition.
//!
//! See `docs/PAPER_MAP.md` (repository root) for the full map from the
//! paper's results to modules and tests.

use crate::BasePathOracle;
use rbpc_graph::{Metric, Path};

/// The minimum cover of a path by original shortest paths and raw edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShortestPathCover {
    /// Pieces that are shortest paths of the original network.
    pub path_segments: usize,
    /// Single-edge pieces that are not shortest paths (weighted case only).
    pub edge_segments: usize,
}

impl ShortestPathCover {
    /// Total pieces.
    pub fn total(&self) -> usize {
        self.path_segments + self.edge_segments
    }

    /// Whether this cover witnesses Theorem 1's bound for `k` failures
    /// (unweighted: at most `k + 1` shortest paths, no edge pieces).
    pub fn within_theorem1(&self, k: usize) -> bool {
        self.edge_segments == 0 && self.path_segments <= k + 1
    }

    /// Whether this cover is consistent with Theorem 2's bound for `k`
    /// failures. The theorem promises *some* decomposition into at most
    /// `k + 1` shortest paths and `k` single edges; since a one-hop
    /// shortest-path piece can serve as one of the theorem's "edges", the
    /// certifiable consequences of the theorem for the *minimum* cover are
    /// `total ≤ 2k + 1` and at most `k` forced edge pieces (edges that are
    /// not shortest paths must be their own piece in every decomposition).
    pub fn within_theorem2(&self, k: usize) -> bool {
        self.total() <= 2 * k + 1 && self.edge_segments <= k
    }
}

/// Computes the minimum cover of `path` by shortest paths of the oracle's
/// graph (under its metric), with non-shortest edges as their own pieces.
///
/// A trivial path has an empty cover.
pub fn min_shortest_path_cover<O: BasePathOracle>(oracle: &O, path: &Path) -> ShortestPathCover {
    let graph = oracle.graph();
    let model = oracle.cost_model();
    let nodes = path.nodes();
    let edges = path.edges();
    // Prefix sums of base costs along the path.
    let mut prefix = Vec::with_capacity(edges.len() + 1);
    let mut acc = 0u64;
    prefix.push(acc);
    for &e in edges {
        acc += model.base_weight(graph, e);
        prefix.push(acc);
    }

    let mut cover = ShortestPathCover {
        path_segments: 0,
        edge_segments: 0,
    };
    let mut i = 0;
    while i + 1 < nodes.len() {
        // Extend j as far as the subpath cost matches the true distance.
        let mut j = i;
        while j + 1 < nodes.len() {
            let sub_cost = prefix[j + 1] - prefix[i];
            match oracle.base_dist(nodes[i], nodes[j + 1]) {
                Some(d) if d == sub_cost => j += 1,
                _ => break,
            }
        }
        if j == i {
            // Not even one edge is a shortest path (strictly heavier than
            // the true distance): a raw edge piece.
            cover.edge_segments += 1;
            i += 1;
        } else {
            cover.path_segments += 1;
            i = j;
        }
    }
    cover
}

/// Convenience: `true` iff every edge of the oracle's graph is a shortest
/// path between its endpoints (always true under [`Metric::Unweighted`]).
pub fn all_edges_are_shortest<O: BasePathOracle>(oracle: &O) -> bool {
    let graph = oracle.graph();
    let model = oracle.cost_model();
    if model.metric() == Metric::Unweighted {
        return true;
    }
    graph
        .edges()
        .all(|(e, rec)| oracle.base_dist(rec.u, rec.v) == Some(model.base_weight(graph, e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseBasePaths;
    use rbpc_graph::{shortest_path, CostModel, FailureSet, Metric, NodeId};
    use rbpc_topo::{comb, gnm_connected, two_hop_star, weighted_tight};

    #[test]
    fn theorem1_on_random_unweighted_graphs() {
        for seed in 0..10 {
            let g = gnm_connected(25, 55, 1, seed);
            let model = CostModel::new(Metric::Unweighted, seed);
            let oracle = DenseBasePaths::build(g.clone(), model);
            let base = oracle.base_path(0.into(), 24.into()).unwrap();
            for k in 1..=3.min(base.hop_count()) {
                let failures = FailureSet::of_edges(base.edges()[..k].iter().copied());
                let view = failures.view(&g);
                let Some(backup) = shortest_path(&view, &model, 0.into(), 24.into()) else {
                    continue;
                };
                let cover = min_shortest_path_cover(&oracle, &backup);
                assert!(
                    cover.within_theorem1(k),
                    "seed {seed} k {k}: {cover:?} for {backup}"
                );
            }
        }
    }

    #[test]
    fn theorem2_on_random_weighted_graphs() {
        for seed in 0..10 {
            let g = gnm_connected(25, 55, 9, seed);
            let model = CostModel::new(Metric::Weighted, seed);
            let oracle = DenseBasePaths::build(g.clone(), model);
            let base = oracle.base_path(0.into(), 24.into()).unwrap();
            for k in 1..=3.min(base.hop_count()) {
                let failures = FailureSet::of_edges(base.edges()[..k].iter().copied());
                let view = failures.view(&g);
                let Some(backup) = shortest_path(&view, &model, 0.into(), 24.into()) else {
                    continue;
                };
                let cover = min_shortest_path_cover(&oracle, &backup);
                assert!(
                    cover.within_theorem2(k),
                    "seed {seed} k {k}: {cover:?} for {backup}"
                );
            }
        }
    }

    #[test]
    fn comb_is_exactly_tight() {
        for k in 1..=6 {
            let c = comb(k);
            let model = CostModel::new(Metric::Unweighted, 0);
            let oracle = DenseBasePaths::build(c.graph.clone(), model);
            let failures = FailureSet::of_edges(c.spine_edges.iter().copied());
            let view = failures.view(&c.graph);
            let backup = shortest_path(&view, &model, c.s, c.t).unwrap();
            let cover = min_shortest_path_cover(&oracle, &backup);
            assert_eq!(cover.path_segments, k + 1, "comb({k})");
            assert_eq!(cover.edge_segments, 0);
            assert!(cover.within_theorem1(k));
            assert!(!cover.within_theorem1(k - 1));
        }
    }

    #[test]
    fn weighted_tight_is_exactly_tight() {
        for k in 1..=4 {
            let w = weighted_tight(k);
            let model = CostModel::new(Metric::Weighted, 0);
            let oracle = DenseBasePaths::build(w.graph.clone(), model);
            let failures = FailureSet::of_edges(w.cheap_edges.iter().copied());
            let view = failures.view(&w.graph);
            let backup = shortest_path(&view, &model, w.s, w.t).unwrap();
            let cover = min_shortest_path_cover(&oracle, &backup);
            assert_eq!(cover.path_segments, k + 1, "weighted_tight({k})");
            assert_eq!(cover.edge_segments, k);
            assert!(cover.within_theorem2(k));
            assert!(!cover.within_theorem2(k - 1));
        }
    }

    #[test]
    fn star_shows_node_failures_unbounded() {
        // Figure 4: after the hub dies, the line of n-2 edges needs at
        // least (n-2)/2 pieces even though only ONE router failed.
        let n = 12;
        let star = two_hop_star(n);
        let model = CostModel::new(Metric::Unweighted, 0);
        let oracle = DenseBasePaths::build(star.graph.clone(), model);
        let failures = FailureSet::of_nodes([star.hub.index()]);
        let view = failures.view(&star.graph);
        let backup = shortest_path(&view, &model, star.s, star.t).unwrap();
        let cover = min_shortest_path_cover(&oracle, &backup);
        assert!(cover.path_segments >= (n - 2) / 2);
    }

    #[test]
    fn base_path_covers_itself() {
        let g = gnm_connected(15, 30, 7, 2);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 2));
        let p = oracle.base_path(0.into(), 14.into()).unwrap();
        let cover = min_shortest_path_cover(&oracle, &p);
        assert_eq!(cover.path_segments, 1);
        assert_eq!(cover.edge_segments, 0);
        assert_eq!(cover.total(), 1);
    }

    #[test]
    fn trivial_path_has_empty_cover() {
        let g = gnm_connected(5, 8, 3, 0);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 0));
        let cover = min_shortest_path_cover(&oracle, &Path::trivial(NodeId::new(1)));
        assert_eq!(cover.total(), 0);
    }

    #[test]
    fn edges_are_shortest_in_unweighted_graphs() {
        let g = gnm_connected(12, 30, 1, 3);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Unweighted, 3));
        assert!(all_edges_are_shortest(&oracle));
    }

    #[test]
    fn heavy_edge_is_not_shortest() {
        let mut g = rbpc_graph::Graph::new(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let heavy = g.add_edge(0, 2, 10).unwrap();
        let oracle = DenseBasePaths::build(g.clone(), CostModel::new(Metric::Weighted, 1));
        assert!(!all_edges_are_shortest(&oracle));
        // A path over the heavy edge needs an edge piece.
        let p = Path::from_edges(&g, 0.into(), &[heavy]).unwrap();
        let cover = min_shortest_path_cover(&oracle, &p);
        assert_eq!(cover.edge_segments, 1);
        assert_eq!(cover.path_segments, 0);
    }
}
