//! **Restoration by Path Concatenation (RBPC)** — the contribution of
//! Afek, Bremler-Barr, Cohen, Kaplan & Merritt (PODC 2001), implemented
//! over the [`rbpc_graph`] and [`rbpc_mpls`] substrates.
//!
//! The idea: statically provision a *base set* of LSPs — one canonical
//! shortest path per ordered pair of routers (Theorem 3's padded base set,
//! realized by [`rbpc_graph::CostModel`]'s deterministic perturbation).
//! When links or routers fail, every disrupted route is restored by
//! **concatenating surviving base LSPs** with the MPLS label stack:
//!
//! * after `k` edge failures in an unweighted network, `k + 1` base paths
//!   suffice (Theorem 1);
//! * in the weighted case, `k + 1` base paths interleaved with `k` raw
//!   edges suffice (Theorems 2 & 3);
//! * so a single link failure needs a stack of at most two or three labels.
//!
//! # Modules
//!
//! * [`basepaths`] — the [`BasePathOracle`] abstraction with a dense
//!   (precomputed all-pairs) and a lazy (on-demand, cached) implementation;
//! * [`store`] — the [`BasePathStore`] residency/budget surface and the
//!   implicit [`ShardedBasePaths`] store that provisions the paper's
//!   40 377-node Internet router map under a bounded memory budget;
//! * [`decompose`] — greedy longest-prefix decomposition (§4.1 of the
//!   paper) and an optimal jump-graph search for comparison;
//! * [`restore`] — source-router RBPC: compute the post-failure shortest
//!   path and its base-path concatenation; build per-link failover plans;
//! * [`local`] — local RBPC at the router adjacent to the failure:
//!   *end-route* and *edge-bypass* variants (§4.2);
//! * [`provision`] — drive a simulated [`rbpc_mpls::MplsNetwork`]: install
//!   the base LSPs, apply FEC rewrites and ILM splices, forward packets;
//! * [`baseline`] — the two schemes the paper compares against (explicit
//!   backup pre-provisioning; online teardown + re-establishment) with
//!   signaling/table cost models;
//! * [`theory`] — checkers for the paper's theorems: minimum covers of a
//!   path by original shortest paths and edges.
//!
//! # Quickstart
//!
//! ```
//! use rbpc_core::{BasePathOracle, DenseBasePaths, Restorer};
//! use rbpc_graph::{CostModel, FailureSet, Metric};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = rbpc_topo_fixture();
//! let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 7));
//! let restorer = Restorer::new(&oracle);
//!
//! // Fail the first link of the 0 -> 3 base path and restore.
//! let base = oracle.base_path(0.into(), 3.into()).expect("connected");
//! let failures = FailureSet::of_edge(base.edges()[0]);
//! let r = restorer.restore(0.into(), 3.into(), &failures)?;
//! assert!(r.affected);
//! assert!(r.concatenation.len() <= 3); // Theorem 2: k+1 paths + k edges
//! # Ok(())
//! # }
//! # fn rbpc_topo_fixture() -> rbpc_graph::Graph {
//! #     let mut g = rbpc_graph::Graph::new(4);
//! #     for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)] {
//! #         g.add_edge(a, b, 1).unwrap();
//! #     }
//! #     g
//! # }
//! ```
//!
//! The full paper-to-code map (theorems, figures, tables -> modules and
//! tests) is in `docs/PAPER_MAP.md` at the repository root;
//! `docs/ARCHITECTURE.md` shows how the crates fit together.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod basepaths;
pub mod churn;
pub mod decompose;
mod error;
pub mod expanded;
pub mod families;
pub mod hybrid;
pub mod local;
pub mod provision;
pub mod restore;
pub mod store;
pub mod theory;

pub use basepaths::{default_threads, BasePathOracle, DenseBasePaths, LazyBasePaths};
pub use churn::ChurnDriver;
pub use decompose::{greedy_decompose, optimal_decompose, Concatenation, Segment, SegmentKind};
pub use error::RestoreError;
pub use expanded::{
    expanded_base_set_size, expanded_decompose, ExpandedConcatenation, ExpandedKind,
    ExpandedSegment,
};
pub use families::{FamilyRestoration, FamilySet, RouteFamily};
pub use hybrid::{hybrid_restore, HybridRestoration, LocalVariant};
pub use local::{edge_bypass, end_route, LocalRestoration};
pub use provision::{ProvisionedDomain, TableReport};
pub use restore::{destinations_through_edge, FailoverPlan, FecUpdate, Restoration, Restorer};
pub use store::{
    dense_store_bytes, directed_pairs, BasePathStore, ShardedBasePaths, ShardedStoreStats,
    TREE_BYTES_PER_NODE,
};
