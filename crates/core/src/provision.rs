//! Driving a simulated MPLS domain with RBPC.
//!
//! [`ProvisionedDomain`] owns an [`MplsNetwork`], tracks which base LSPs
//! exist, and applies the restoration schemes as real table operations —
//! so every computed restoration can be validated by forwarding a packet
//! through the (failed) network.

use crate::{Concatenation, LocalRestoration, Restoration, SegmentKind};
use rbpc_graph::{EdgeId, FailureSet, NodeId};
use rbpc_mpls::{ForwardError, ForwardTrace, Label, LspId, MplsError, MplsNetwork, SinkTreeId};
use rbpc_obs::{obs_count, obs_span};
use std::collections::BTreeMap;

use crate::BasePathOracle;

/// Per-router ILM table occupancy of a provisioned domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableReport {
    /// Number of routers.
    pub routers: usize,
    /// Total ILM entries in the domain.
    pub ilm_total: usize,
    /// Smallest per-router ILM table.
    pub ilm_min: usize,
    /// Largest per-router ILM table (the hardware-constrained figure).
    pub ilm_max: usize,
    /// Mean per-router ILM table size.
    pub ilm_avg: f64,
}

/// An MPLS domain provisioned with RBPC base LSPs.
#[derive(Debug)]
pub struct ProvisionedDomain {
    net: MplsNetwork,
    // Ordered maps: provisioning sweeps and table dumps must visit LSPs
    // in the same order on every run, independent of any hasher.
    by_pair: BTreeMap<(NodeId, NodeId), LspId>,
    by_edge: BTreeMap<(EdgeId, NodeId), LspId>,
    sink_by_dest: BTreeMap<NodeId, SinkTreeId>,
}

impl ProvisionedDomain {
    /// Creates an empty domain over the oracle's graph.
    pub fn new<O: BasePathOracle>(oracle: &O) -> Self {
        ProvisionedDomain {
            net: MplsNetwork::new(oracle.graph().clone()),
            by_pair: BTreeMap::new(),
            by_edge: BTreeMap::new(),
            sink_by_dest: BTreeMap::new(),
        }
    }

    /// The underlying MPLS network (tables, stats, forwarding).
    pub fn net(&self) -> &MplsNetwork {
        &self.net
    }

    /// Mutable access to the underlying MPLS network.
    pub fn net_mut(&mut self) -> &mut MplsNetwork {
        &mut self.net
    }

    /// The base LSP provisioned for an ordered pair, if any.
    pub fn lsp_for_pair(&self, s: NodeId, t: NodeId) -> Option<LspId> {
        self.by_pair.get(&(s, t)).copied()
    }

    /// Provisions the base LSP for `s → t` (idempotent) and installs the
    /// default FEC entry at `s`. Returns the LSP, or `None` for `s == t`
    /// or disconnected pairs.
    ///
    /// # Errors
    ///
    /// Propagates [`MplsError`] from LSP establishment.
    pub fn provision_pair<O: BasePathOracle>(
        &mut self,
        oracle: &O,
        s: NodeId,
        t: NodeId,
    ) -> Result<Option<LspId>, MplsError> {
        if s == t {
            return Ok(None);
        }
        if let Some(&id) = self.by_pair.get(&(s, t)) {
            return Ok(Some(id));
        }
        let Some(path) = oracle.base_path(s, t) else {
            return Ok(None);
        };
        let id = self.net.establish_lsp(&path)?;
        obs_count!("core.provision.pair_lsps");
        self.by_pair.insert((s, t), id);
        self.net.set_fec_via_lsps(s, t, &[id])?;
        Ok(Some(id))
    }

    /// Provisions base LSPs and default FEC entries for every ordered pair
    /// of a (small) network — the paper's topology-based static MPLS.
    ///
    /// # Errors
    ///
    /// Propagates [`MplsError`] from LSP establishment.
    pub fn provision_all_pairs<O: BasePathOracle>(&mut self, oracle: &O) -> Result<(), MplsError> {
        let _span = obs_span!("core.provision.all_pairs.ns");
        let n = oracle.graph().node_count();
        for s in 0..n {
            for t in 0..n {
                self.provision_pair(oracle, NodeId::new(s), NodeId::new(t))?;
            }
        }
        Ok(())
    }

    /// Provisions the **merged** base set (§2's LSP merging): one
    /// per-destination sink tree built from the destination's canonical
    /// shortest-path tree, plus default FEC entries at every source. One
    /// ILM entry per (router, destination) instead of one per (router,
    /// LSP) — the label-frugal deployment of RBPC.
    ///
    /// # Errors
    ///
    /// Propagates [`MplsError`] from tree establishment.
    pub fn provision_merged<O: BasePathOracle>(&mut self, oracle: &O) -> Result<(), MplsError> {
        let _span = obs_span!("core.provision.merged.ns");
        let n = oracle.graph().node_count();
        for t in 0..n {
            let dest = NodeId::new(t);
            if self.sink_by_dest.contains_key(&dest) {
                continue;
            }
            // The sink tree of `dest` is its shortest-path tree reversed:
            // by symmetry of the perturbed weights, the canonical path
            // s -> dest is the reverse of dest -> s, so each router's next
            // hop toward dest is its tree parent edge.
            let next_hop: Vec<Option<EdgeId>> = oracle.with_spt(dest, |spt| {
                (0..n).map(|r| spt.parent_edge(NodeId::new(r))).collect()
            });
            let id = self.net.establish_sink_tree(dest, next_hop)?;
            obs_count!("core.provision.sink_trees");
            self.sink_by_dest.insert(dest, id);
            let tree = self.net.sink_tree(id)?.clone();
            for s in 0..n {
                if s == t {
                    continue;
                }
                if let Some(label) = tree.label_at(NodeId::new(s)) {
                    self.net.set_fec_raw(NodeId::new(s), dest, vec![label])?;
                }
            }
        }
        Ok(())
    }

    /// The label under which router `at` enters the merged LSP toward
    /// `dest` (requires [`ProvisionedDomain::provision_merged`]).
    pub fn merged_label(&self, at: NodeId, dest: NodeId) -> Option<Label> {
        let id = self.sink_by_dest.get(&dest)?;
        self.net.sink_tree(*id).ok()?.label_at(at)
    }

    /// Applies a source RBPC restoration against the **merged** base set:
    /// each base-path segment becomes the sink-tree label of its target at
    /// its source; raw-edge segments get one-hop LSPs as usual.
    ///
    /// # Errors
    ///
    /// Propagates [`MplsError`]; fails with
    /// [`MplsError::NoSuchIlmEntry`]-style errors if the merged set was
    /// not provisioned.
    pub fn apply_source_restoration_merged(&mut self, r: &Restoration) -> Result<(), MplsError> {
        let _span = obs_span!("core.apply.source_merged.ns");
        obs_count!("core.apply.source_merged");
        let mut labels = Vec::with_capacity(r.concatenation.len());
        for seg in r.concatenation.segments() {
            let label = match seg.kind {
                SegmentKind::BasePath => self.merged_label(seg.source(), seg.target()).ok_or(
                    MplsError::UnknownRouter {
                        router: seg.target(),
                    },
                )?,
                SegmentKind::RawEdge => {
                    let key = (seg.path.edges()[0], seg.source());
                    let id = match self.by_edge.get(&key) {
                        Some(&id) => id,
                        None => {
                            let id = self.net.establish_lsp(&seg.path)?;
                            self.by_edge.insert(key, id);
                            id
                        }
                    };
                    self.net.lsp(id)?.entry_label()
                }
            };
            labels.push(label);
        }
        labels.reverse(); // bottom-first: first segment on top
        self.net.set_fec_raw(r.source, r.target, labels)
    }

    /// Resolves (establishing on demand) the LSP for each segment of a
    /// concatenation: base-path segments map to pair LSPs, raw-edge
    /// segments to one-hop LSPs.
    ///
    /// # Errors
    ///
    /// Propagates [`MplsError`] from LSP establishment.
    pub fn lsps_for_concatenation(
        &mut self,
        conc: &Concatenation,
    ) -> Result<Vec<LspId>, MplsError> {
        let mut out = Vec::with_capacity(conc.len());
        for seg in conc.segments() {
            let id = match seg.kind {
                SegmentKind::BasePath => {
                    let key = (seg.source(), seg.target());
                    match self.by_pair.get(&key) {
                        Some(&id) => id,
                        None => {
                            let id = self.net.establish_lsp(&seg.path)?;
                            obs_count!("core.provision.on_demand_lsps");
                            self.by_pair.insert(key, id);
                            id
                        }
                    }
                }
                SegmentKind::RawEdge => {
                    let key = (seg.path.edges()[0], seg.source());
                    match self.by_edge.get(&key) {
                        Some(&id) => id,
                        None => {
                            let id = self.net.establish_lsp(&seg.path)?;
                            obs_count!("core.provision.on_demand_lsps");
                            self.by_edge.insert(key, id);
                            id
                        }
                    }
                }
            };
            out.push(id);
        }
        Ok(out)
    }

    /// Applies a **source RBPC** restoration: one FEC rewrite at the
    /// source, pushing the concatenation's label stack.
    ///
    /// # Errors
    ///
    /// Propagates [`MplsError`] from the FEC update.
    pub fn apply_source_restoration(&mut self, r: &Restoration) -> Result<(), MplsError> {
        let _span = obs_span!("core.apply.source.ns");
        obs_count!("core.apply.source");
        let chain = self.lsps_for_concatenation(&r.concatenation)?;
        self.net.set_fec_via_lsps(r.source, r.target, &chain)
    }

    /// Applies a **local RBPC** splice for the broken LSP `lsp`: rewrites
    /// the ILM entry at `R1`. For end-route restorations the splice goes
    /// all the way to the destination; for edge-bypass it is followed by
    /// the original LSP's label at the far endpoint (resuming the LSP).
    ///
    /// Returns the previous ILM entry so the caller can reverse the splice
    /// on recovery.
    ///
    /// # Errors
    ///
    /// Propagates [`MplsError`]; in particular the broken LSP must hold a
    /// label at `R1`.
    pub fn apply_local_restoration(
        &mut self,
        lsp: LspId,
        lr: &LocalRestoration,
    ) -> Result<rbpc_mpls::IlmEntry, MplsError> {
        let _span = obs_span!("core.apply.local.ns");
        obs_count!("core.apply.local");
        let record = self.net.lsp(lsp)?;
        let broken_label = record.label_at(lr.r1).ok_or(MplsError::NoSuchIlmEntry {
            router: lr.r1,
            label: rbpc_mpls::Label::new(0),
        })?;
        let splice_target = lr
            .concatenation
            .segments()
            .last()
            .map(|s| s.target())
            .unwrap_or(lr.r1);
        // Edge-bypass resumes the original LSP at the splice target (when
        // the LSP continues past it); end-route reaches the destination.
        let tail: Vec<rbpc_mpls::Label> = if splice_target == record.path().target() {
            Vec::new()
        } else {
            match record.label_at(splice_target) {
                Some(l) => vec![l],
                None => Vec::new(),
            }
        };
        let chain = self.lsps_for_concatenation(&lr.concatenation)?;
        self.net.ilm_splice(lr.r1, broken_label, &chain, &tail)
    }

    /// Summary of per-router table occupancy — the operational view of
    /// the paper's label-scarcity discussion.
    pub fn table_report(&self) -> TableReport {
        let sizes = self.net.ilm_sizes();
        let total: usize = sizes.iter().sum();
        TableReport {
            routers: sizes.len(),
            ilm_total: total,
            ilm_min: sizes.iter().copied().min().unwrap_or(0),
            ilm_max: sizes.iter().copied().max().unwrap_or(0),
            ilm_avg: if sizes.is_empty() {
                0.0
            } else {
                total as f64 / sizes.len() as f64
            },
        }
    }

    /// Forwards a packet, delegating to the MPLS network.
    ///
    /// # Errors
    ///
    /// Any [`ForwardError`].
    pub fn forward(
        &self,
        src: NodeId,
        dest: NodeId,
        failures: &FailureSet,
    ) -> Result<ForwardTrace, ForwardError> {
        self.net.forward_with_failures(src, dest, failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{edge_bypass, end_route, DenseBasePaths, Restorer};
    use rbpc_graph::{CostModel, Metric};
    use rbpc_topo::{cycle, gnm_connected};

    fn oracle(seed: u64) -> DenseBasePaths {
        let g = gnm_connected(15, 35, 6, seed);
        DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 5))
    }

    #[test]
    fn provision_and_forward_all_pairs() {
        let o = oracle(1);
        let mut dom = ProvisionedDomain::new(&o);
        dom.provision_all_pairs(&o).unwrap();
        let none = FailureSet::new();
        for s in 0..15usize {
            for t in 0..15usize {
                if s == t {
                    continue;
                }
                let trace = dom.forward(s.into(), t.into(), &none).unwrap();
                let base = o.base_path(s.into(), t.into()).unwrap();
                assert_eq!(trace.route(), base.nodes(), "{s}->{t}");
            }
        }
    }

    #[test]
    fn provisioning_is_idempotent() {
        let o = oracle(2);
        let mut dom = ProvisionedDomain::new(&o);
        let a = dom.provision_pair(&o, 0.into(), 5.into()).unwrap();
        let entries = dom.net().total_ilm_entries();
        let b = dom.provision_pair(&o, 0.into(), 5.into()).unwrap();
        assert_eq!(a, b);
        assert_eq!(dom.net().total_ilm_entries(), entries);
        assert_eq!(dom.provision_pair(&o, 3.into(), 3.into()).unwrap(), None);
        assert_eq!(dom.lsp_for_pair(0.into(), 5.into()), a);
        assert_eq!(dom.lsp_for_pair(5.into(), 0.into()), None);
    }

    #[test]
    fn source_restoration_delivers_around_failure() {
        let o = oracle(3);
        let g = o.graph().clone();
        let mut dom = ProvisionedDomain::new(&o);
        dom.provision_all_pairs(&o).unwrap();
        let restorer = Restorer::new(&o);
        let base = o.base_path(0.into(), 14.into()).unwrap();
        let failed = base.edges()[0];
        let failures = FailureSet::of_edge(failed);
        // Before restoration: the packet black-holes.
        assert!(dom.forward(0.into(), 14.into(), &failures).is_err());
        // Apply the FEC rewrite and try again.
        let r = restorer.restore(0.into(), 14.into(), &failures).unwrap();
        dom.apply_source_restoration(&r).unwrap();
        let trace = dom.forward(0.into(), 14.into(), &failures).unwrap();
        assert_eq!(trace.route(), r.backup.nodes());
        assert!(!trace.links().contains(&failed));
        let _ = g;
    }

    #[test]
    fn local_end_route_splice_delivers() {
        let g = cycle(6);
        let o = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 5));
        let mut dom = ProvisionedDomain::new(&o);
        dom.provision_all_pairs(&o).unwrap();
        let base = o.base_path(0.into(), 2.into()).unwrap();
        let lsp = dom.lsp_for_pair(0.into(), 2.into()).unwrap();
        let failed = base.edges()[1];
        let failures = FailureSet::of_edge(failed);
        let lr = end_route(&o, &base, failed, &failures).unwrap();
        dom.apply_local_restoration(lsp, &lr).unwrap();
        let trace = dom.forward(0.into(), 2.into(), &failures).unwrap();
        assert_eq!(trace.route(), lr.end_to_end.nodes());
    }

    #[test]
    fn local_edge_bypass_splice_delivers_and_reverses() {
        let g = cycle(6);
        let o = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 5));
        let mut dom = ProvisionedDomain::new(&o);
        dom.provision_all_pairs(&o).unwrap();
        let base = o.base_path(0.into(), 3.into()).unwrap();
        let lsp = dom.lsp_for_pair(0.into(), 3.into()).unwrap();
        let failed = base.edges()[1];
        let failures = FailureSet::of_edge(failed);
        let lr = edge_bypass(&o, &base, failed, &failures).unwrap();
        let old = dom.apply_local_restoration(lsp, &lr).unwrap();
        let trace = dom.forward(0.into(), 3.into(), &failures).unwrap();
        assert_eq!(trace.route(), lr.end_to_end.nodes());
        // Link recovers: reverse the splice, original path works again.
        let broken_label = dom.net().lsp(lsp).unwrap().label_at(lr.r1).unwrap();
        dom.net_mut()
            .install_ilm_entry(lr.r1, broken_label, old)
            .unwrap();
        let trace2 = dom.forward(0.into(), 3.into(), &FailureSet::new()).unwrap();
        assert_eq!(trace2.route(), base.nodes());
    }

    #[test]
    fn raw_edge_segments_get_one_hop_lsps() {
        use rbpc_topo::parallel_chain;
        let p = parallel_chain(1);
        let o = DenseBasePaths::build(p.graph.clone(), CostModel::new(Metric::Unweighted, 5));
        let mut dom = ProvisionedDomain::new(&o);
        dom.provision_all_pairs(&o).unwrap();
        let restorer = Restorer::new(&o);
        // Fail the canonical 0-1 edge so the twin (a raw edge) is needed.
        let canonical = o.base_path(0.into(), 1.into()).unwrap().edges()[0];
        let failures = FailureSet::of_edge(canonical);
        let r = restorer.restore(0.into(), 3.into(), &failures).unwrap();
        assert!(r.concatenation.raw_edge_count() >= 1);
        dom.apply_source_restoration(&r).unwrap();
        let trace = dom.forward(0.into(), 3.into(), &failures).unwrap();
        assert_eq!(trace.last(), 3.into());
        assert!(!trace.links().contains(&canonical));
    }

    #[test]
    fn fec_rewrite_is_cheap_vs_reestablishment() {
        let o = oracle(4);
        let mut dom = ProvisionedDomain::new(&o);
        dom.provision_all_pairs(&o).unwrap();
        let restorer = Restorer::new(&o);
        let base = o.base_path(0.into(), 14.into()).unwrap();
        let failed = base.edges()[0];
        let failures = FailureSet::of_edge(failed);
        let r = restorer.restore(0.into(), 14.into(), &failures).unwrap();
        let before = dom.net().stats();
        dom.apply_source_restoration(&r).unwrap();
        let delta = dom.net().stats().since(&before);
        // All segments already exist as pair LSPs: zero messages, zero ILM
        // writes, exactly one FEC write.
        assert_eq!(delta.messages, 0);
        assert_eq!(delta.ilm_writes, 0);
        assert_eq!(delta.fec_writes, 1);
    }
}

#[cfg(test)]
mod merged_tests {
    use super::*;
    use crate::{DenseBasePaths, Restorer};
    use rbpc_graph::{CostModel, Metric};
    use rbpc_topo::gnm_connected;

    fn oracle(seed: u64) -> DenseBasePaths {
        let g = gnm_connected(18, 40, 7, seed);
        DenseBasePaths::build(g, CostModel::new(Metric::Weighted, seed))
    }

    #[test]
    fn merged_forwards_all_pairs_canonically() {
        let o = oracle(6);
        let mut dom = ProvisionedDomain::new(&o);
        dom.provision_merged(&o).unwrap();
        let none = FailureSet::new();
        for s in 0..18usize {
            for t in 0..18usize {
                if s == t {
                    continue;
                }
                let trace = dom.forward(s.into(), t.into(), &none).unwrap();
                let base = o.base_path(s.into(), t.into()).unwrap();
                assert_eq!(trace.route(), base.nodes(), "{s}->{t}");
            }
        }
    }

    #[test]
    fn merged_uses_far_fewer_ilm_entries() {
        let o = oracle(7);
        let mut merged = ProvisionedDomain::new(&o);
        merged.provision_merged(&o).unwrap();
        let mut pairs = ProvisionedDomain::new(&o);
        pairs.provision_all_pairs(&o).unwrap();
        let m = merged.net().total_ilm_entries();
        let p = pairs.net().total_ilm_entries();
        // Merged: n entries per destination = n^2. Pairs: sum of path
        // lengths + 1, strictly more whenever any base path has >= 2 hops.
        assert!(m < p, "merged {m} !< pairs {p}");
        assert_eq!(m, 18 * 18); // connected graph: every router in every tree
    }

    #[test]
    fn merged_restoration_delivers() {
        let o = oracle(8);
        let g = o.graph().clone();
        let mut dom = ProvisionedDomain::new(&o);
        dom.provision_merged(&o).unwrap();
        let restorer = Restorer::new(&o);
        let mut verified = 0;
        for t in [5usize, 11, 17] {
            let base = o.base_path(0.into(), t.into()).unwrap();
            if base.is_trivial() {
                continue;
            }
            for &failed in base.edges() {
                let failures = FailureSet::of_edge(failed);
                let Ok(r) = restorer.restore(0.into(), t.into(), &failures) else {
                    continue;
                };
                dom.apply_source_restoration_merged(&r).unwrap();
                let trace = dom.forward(0.into(), t.into(), &failures).unwrap();
                assert_eq!(trace.route(), r.backup.nodes());
                assert_eq!(trace.max_stack_depth() as usize, r.pc_length());
                verified += 1;
            }
        }
        assert!(verified >= 3, "verified only {verified}");
        let _ = g;
    }

    #[test]
    fn merged_label_lookup() {
        let o = oracle(9);
        let mut dom = ProvisionedDomain::new(&o);
        assert_eq!(dom.merged_label(0.into(), 5.into()), None); // not provisioned
        dom.provision_merged(&o).unwrap();
        assert!(dom.merged_label(0.into(), 5.into()).is_some());
        // The destination itself holds the tree's pop label.
        assert!(dom.merged_label(5.into(), 5.into()).is_some());
        assert!(dom.merged_label(5.into(), 0.into()).is_some());
    }

    #[test]
    fn merged_is_idempotent() {
        let o = oracle(10);
        let mut dom = ProvisionedDomain::new(&o);
        dom.provision_merged(&o).unwrap();
        let entries = dom.net().total_ilm_entries();
        dom.provision_merged(&o).unwrap();
        assert_eq!(dom.net().total_ilm_entries(), entries);
    }
}
