//! Corollary 4: the **expanded base set**.
//!
//! Theorem 2 leaves `k` raw edges in the weighted-case decomposition. The
//! paper's Corollary 4 removes them by enlarging the base set: for every
//! edge, append it to every base path starting or terminating at one of
//! its endpoints. With directed base paths (the Remark) the expanded set
//! has `n(n−1) + 2m(n−1)` LSPs, and every restoration after `k` failures
//! is a concatenation of at most `k + 1` *expanded* base paths — at the
//! cost of a base set roughly `1 + 2m/n` times larger.
//!
//! The expanded set is closed under taking subpaths, so the greedy
//! longest-prefix decomposition is again optimal; a prefix is either a
//! base path, a base path plus one appended edge, or one prepended edge
//! plus a base path.
//!
//! See `docs/PAPER_MAP.md` (repository root) for the full map from the
//! paper's results to modules and tests.

use crate::BasePathOracle;
use rbpc_graph::{Graph, Path};

/// What an expanded-set segment is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpandedKind {
    /// A plain base path.
    BasePath,
    /// A base path with one edge appended at its end (possibly a lone
    /// edge, when the base part is trivial).
    BaseThenEdge,
    /// One edge prepended to a base path.
    EdgeThenBase,
}

/// One segment of an expanded-set concatenation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandedSegment {
    /// The segment's flavor in the expanded set.
    pub kind: ExpandedKind,
    /// The segment itself (a subpath of the restoration path).
    pub path: Path,
}

/// A restoration path as a concatenation of expanded base-set LSPs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandedConcatenation {
    segments: Vec<ExpandedSegment>,
}

impl ExpandedConcatenation {
    /// The segments in order.
    pub fn segments(&self) -> &[ExpandedSegment] {
        &self.segments
    }

    /// Number of segments (Corollary 4 bounds this by `k + 1`).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether there are no segments (trivial restoration).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Reassembles the full path, or `None` when empty.
    pub fn full_path(&self) -> Option<Path> {
        let mut iter = self.segments.iter();
        let mut path = iter.next()?.path.clone();
        for seg in iter {
            path = path
                .concat(&seg.path)
                .expect("invariant: segments are contiguous by construction");
        }
        Some(path)
    }
}

/// The size of the expanded base set for a graph, per the paper's Remark
/// (directed base paths): `n(n−1)` primaries plus `2m(n−1)` edge-extended
/// paths.
pub fn expanded_base_set_size(graph: &Graph) -> u64 {
    let n = graph.node_count() as u64;
    let m = graph.edge_count() as u64;
    if n == 0 {
        return 0;
    }
    n * (n - 1) + 2 * m * (n - 1)
}

/// Greedy decomposition of `path` over the expanded base set of
/// Corollary 4. Produces the minimum number of expanded segments; after
/// `k` failures this is at most `k + 1` (versus `k + 1` paths *plus* `k`
/// edges for the plain base set).
///
/// ```
/// use rbpc_core::{expanded_decompose, greedy_decompose, DenseBasePaths};
/// use rbpc_graph::{shortest_path, CostModel, FailureSet, Metric};
///
/// let w = rbpc_topo::weighted_tight(2); // Figure 3, k = 2
/// let model = CostModel::new(Metric::Weighted, 0);
/// let oracle = DenseBasePaths::build(w.graph.clone(), model);
/// let failures = FailureSet::of_edges(w.cheap_edges.iter().copied());
/// let backup = shortest_path(&failures.view(&w.graph), &model, w.s, w.t).unwrap();
/// assert_eq!(greedy_decompose(&oracle, &backup).len(), 5);   // 2k + 1 plain pieces
/// assert_eq!(expanded_decompose(&oracle, &backup).len(), 3); // k + 1 expanded
/// ```
pub fn expanded_decompose<O: BasePathOracle>(oracle: &O, path: &Path) -> ExpandedConcatenation {
    let last = path.nodes().len() - 1;
    let mut segments = Vec::new();
    let mut i = 0;
    while i < last {
        let j0 = oracle.longest_base_prefix(path, i);
        let mut end = j0;
        let mut kind = ExpandedKind::BasePath;
        if j0 < last {
            // Base (possibly trivial) plus one appended edge.
            if j0 + 1 > end {
                end = j0 + 1;
                kind = ExpandedKind::BaseThenEdge;
            }
            // One prepended edge plus the longest base path after it.
            let alt_end = oracle.longest_base_prefix(path, i + 1);
            if alt_end > end {
                end = alt_end;
                kind = ExpandedKind::EdgeThenBase;
            }
        }
        debug_assert!(end > i, "expanded prefixes always advance");
        segments.push(ExpandedSegment {
            kind,
            path: path.subpath(i, end),
        });
        i = end;
    }
    ExpandedConcatenation { segments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_decompose, DenseBasePaths};
    use rbpc_graph::{shortest_path, CostModel, FailureSet, Metric, NodeId};
    use rbpc_topo::{gnm_connected, weighted_tight};

    #[test]
    fn size_formula() {
        let g = gnm_connected(10, 20, 5, 0);
        assert_eq!(expanded_base_set_size(&g), 10 * 9 + 2 * 20 * 9);
        assert_eq!(expanded_base_set_size(&rbpc_graph::Graph::new(0)), 0);
    }

    #[test]
    fn weighted_tight_drops_to_k_plus_one() {
        // The whole point: the Figure 3 chain needed 2k+1 plain segments;
        // the expanded set needs exactly k+1.
        for k in 1..=5 {
            let w = weighted_tight(k);
            let model = CostModel::new(Metric::Weighted, 3);
            let oracle = DenseBasePaths::build(w.graph.clone(), model);
            let failures = FailureSet::of_edges(w.cheap_edges.iter().copied());
            let view = failures.view(&w.graph);
            let backup = shortest_path(&view, &model, w.s, w.t).unwrap();
            let plain = greedy_decompose(&oracle, &backup);
            let expanded = expanded_decompose(&oracle, &backup);
            assert_eq!(plain.len(), 2 * k + 1, "plain, k = {k}");
            assert_eq!(expanded.len(), k + 1, "expanded, k = {k}");
            assert_eq!(expanded.full_path().unwrap(), backup);
        }
    }

    #[test]
    fn expanded_never_worse_than_plain() {
        for seed in 0..12u64 {
            let g = gnm_connected(20, 45, 9, seed);
            let model = CostModel::new(Metric::Weighted, seed);
            let oracle = DenseBasePaths::build(g.clone(), model);
            let base = oracle.base_path(NodeId::new(0), NodeId::new(19)).unwrap();
            for &e in base.edges() {
                let failures = FailureSet::of_edge(e);
                let view = failures.view(&g);
                let Some(backup) = shortest_path(&view, &model, NodeId::new(0), NodeId::new(19))
                else {
                    continue;
                };
                let plain = greedy_decompose(&oracle, &backup);
                let expanded = expanded_decompose(&oracle, &backup);
                assert!(expanded.len() <= plain.len(), "seed {seed}");
                assert!(expanded.len() <= 2, "seed {seed}: k=1 gives k+1=2");
                assert_eq!(expanded.full_path().unwrap(), backup);
            }
        }
    }

    #[test]
    fn base_paths_stay_single_segments() {
        let g = gnm_connected(15, 30, 6, 4);
        let model = CostModel::new(Metric::Weighted, 4);
        let oracle = DenseBasePaths::build(g, model);
        let p = oracle.base_path(NodeId::new(0), NodeId::new(14)).unwrap();
        let c = expanded_decompose(&oracle, &p);
        assert_eq!(c.len(), 1);
        assert_eq!(c.segments()[0].kind, ExpandedKind::BasePath);
        assert!(!c.is_empty());
    }

    #[test]
    fn trivial_path_is_empty() {
        let g = gnm_connected(5, 8, 3, 1);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 1));
        let c = expanded_decompose(&oracle, &Path::trivial(NodeId::new(2)));
        assert!(c.is_empty());
        assert_eq!(c.full_path(), None);
    }

    #[test]
    fn kinds_are_classified() {
        // On the Figure 3 chain the k+1 segments after failure are
        // base-plus-edge (or edge-plus-base) except the last one.
        let w = weighted_tight(2);
        let model = CostModel::new(Metric::Weighted, 3);
        let oracle = DenseBasePaths::build(w.graph.clone(), model);
        let failures = FailureSet::of_edges(w.cheap_edges.iter().copied());
        let view = failures.view(&w.graph);
        let backup = shortest_path(&view, &model, w.s, w.t).unwrap();
        let c = expanded_decompose(&oracle, &backup);
        let extended = c
            .segments()
            .iter()
            .filter(|s| s.kind != ExpandedKind::BasePath)
            .count();
        assert_eq!(
            extended, 2,
            "each failed junction contributes one extension"
        );
    }
}
