//! The baselines RBPC is compared against.
//!
//! The paper positions RBPC between two conventional schemes:
//!
//! 1. **Online re-establishment** — on failure, tear down every affected
//!    LSP and signal a new one along the recomputed route. Slow: signaling
//!    along both old and new paths, ILM writes at every hop.
//! 2. **Explicit backup pre-provisioning** — for every link and every LSP
//!    crossing it, pre-establish the backup LSP. Fast on failure but the
//!    ILM tables balloon (the paper's *ILM stretch factor*) and multiple
//!    faults still fall back to scheme 1.
//!
//! RBPC gets the speed of (2) at (almost) the table cost of plain
//! provisioning. The functions here compute the control-plane cost of each
//! scheme for one failure event, in the same units as
//! [`SignalingStats`](rbpc_mpls::SignalingStats).

use crate::{BasePathOracle, FailoverPlan};
use rbpc_graph::{k_shortest_paths, FailureSet, NodeId, Path};

/// Control-plane work for one restoration event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlPlaneCost {
    /// Label-distribution messages exchanged.
    pub messages: u64,
    /// ILM (hardware) table writes.
    pub ilm_writes: u64,
    /// FEC table writes.
    pub fec_writes: u64,
}

impl ControlPlaneCost {
    /// Total table writes.
    pub fn table_writes(&self) -> u64 {
        self.ilm_writes + self.fec_writes
    }
}

/// Cost of restoring every route in `plan` by **source RBPC**: one FEC
/// rewrite per affected source, no signaling, no ILM churn (all segments
/// are pre-provisioned base LSPs; raw-edge segments missing from the base
/// set cost one extra one-hop LSP each, counted here).
pub fn rbpc_source_cost(plan: &FailoverPlan) -> ControlPlaneCost {
    let mut cost = ControlPlaneCost {
        messages: 0,
        ilm_writes: 0,
        fec_writes: plan.updates.len() as u64,
    };
    for u in &plan.updates {
        // A raw edge not in the base set must be established once: a
        // one-hop LSP (2 messages, 2 ILM entries). Conservatively charge
        // every raw-edge segment; in practice they are cached after the
        // first use and extremely rare.
        let raw = u.restoration.concatenation.raw_edge_count() as u64;
        cost.messages += 2 * raw;
        cost.ilm_writes += 2 * raw;
    }
    cost
}

/// Cost of restoring every route in `plan` by **local RBPC**: one ILM
/// splice at the router adjacent to the failure per affected LSP, no
/// signaling.
pub fn rbpc_local_cost(plan: &FailoverPlan) -> ControlPlaneCost {
    ControlPlaneCost {
        messages: 0,
        ilm_writes: plan.updates.len() as u64,
        fec_writes: 0,
    }
}

/// Cost of **online re-establishment** for the same event: per affected
/// route, release messages along the old path (1/hop), request+mapping
/// along the new path (2/hop), ILM removals along the old path and
/// installs along the new one, plus the FEC rewrite at the source.
pub fn reestablish_cost(plan: &FailoverPlan) -> ControlPlaneCost {
    let mut cost = ControlPlaneCost::default();
    for u in &plan.updates {
        let old_hops = u.restoration.original.hop_count() as u64;
        let new_hops = u.restoration.backup.hop_count() as u64;
        cost.messages += old_hops + 2 * new_hops;
        cost.ilm_writes += (old_hops + 1) + (new_hops + 1);
        cost.fec_writes += 1;
    }
    cost
}

/// ILM entries that **explicit backup pre-provisioning** would install for
/// this single link's failure: one entry per router of each backup path.
/// Summed over all links this is the denominator of the paper's ILM
/// stretch factor.
pub fn preprovision_ilm_entries(plan: &FailoverPlan) -> u64 {
    plan.updates
        .iter()
        .map(|u| u.restoration.backup.hop_count() as u64 + 1)
        .sum()
}

/// The pre-RBPC **k-shortest-paths** restoration baseline (the scheme the
/// paper's related work compares against): pre-provision the `j` shortest
/// simple paths per pair; on failure, switch to the first pre-provisioned
/// path that survived. Fast, but the survivor is generally *not* a
/// shortest path of the failed network, and with no survivor the scheme
/// falls back to online re-establishment.
#[derive(Debug, Clone)]
pub struct KspBackupSet {
    source: NodeId,
    target: NodeId,
    paths: Vec<Path>,
}

impl KspBackupSet {
    /// Pre-computes the `j` shortest paths for a pair over the intact
    /// network.
    pub fn precompute<O: BasePathOracle>(oracle: &O, s: NodeId, t: NodeId, j: usize) -> Self {
        KspBackupSet {
            source: s,
            target: t,
            paths: k_shortest_paths(oracle.graph(), oracle.cost_model(), s, t, j),
        }
    }

    /// The pair this set protects.
    pub fn pair(&self) -> (NodeId, NodeId) {
        (self.source, self.target)
    }

    /// The pre-provisioned paths, best first.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// ILM entries this set consumes (one per router per path).
    pub fn ilm_entries(&self) -> u64 {
        self.paths.iter().map(|p| p.hop_count() as u64 + 1).sum()
    }

    /// The restoration this scheme produces under `failures`: the first
    /// surviving pre-provisioned path, or `None` (fall back to online
    /// re-establishment).
    pub fn restore(&self, failures: &FailureSet) -> Option<&Path> {
        self.paths
            .iter()
            .find(|p| crate::decompose::path_survives(p, failures))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BasePathOracle, DenseBasePaths, Restorer};
    use rbpc_graph::{CostModel, Metric, NodeId};
    use rbpc_topo::gnm_connected;

    fn plan_fixture() -> FailoverPlan {
        let g = gnm_connected(20, 45, 6, 11);
        let oracle = DenseBasePaths::build(g.clone(), CostModel::new(Metric::Weighted, 3));
        let restorer = Restorer::new(&oracle);
        let base = oracle.base_path(0.into(), 19.into()).unwrap();
        let link = base.edges()[0];
        let pairs: Vec<_> = (0..20)
            .flat_map(|s| (0..20).map(move |t| (NodeId::new(s), NodeId::new(t))))
            .filter(|(s, t)| s != t)
            .collect();
        restorer.failover_plan(link, pairs)
    }

    #[test]
    fn rbpc_is_message_free() {
        let plan = plan_fixture();
        assert!(!plan.updates.is_empty());
        let src = rbpc_source_cost(&plan);
        let local = rbpc_local_cost(&plan);
        // Raw edges are rare; on this fixture there are none, so RBPC is
        // pure table rewrites.
        assert_eq!(src.fec_writes, plan.updates.len() as u64);
        assert_eq!(local.ilm_writes, plan.updates.len() as u64);
        assert_eq!(local.messages, 0);
    }

    #[test]
    fn reestablishment_dwarfs_rbpc() {
        let plan = plan_fixture();
        let rbpc = rbpc_source_cost(&plan);
        let re = reestablish_cost(&plan);
        assert!(re.messages > 0);
        assert!(re.messages >= 3 * plan.updates.len() as u64);
        assert!(re.table_writes() > rbpc.table_writes());
        assert!(re.messages > rbpc.messages);
    }

    #[test]
    fn preprovision_counts_backup_state() {
        let plan = plan_fixture();
        let entries = preprovision_ilm_entries(&plan);
        // Each backup path has ≥ 2 routers.
        assert!(entries >= 2 * plan.updates.len() as u64);
    }

    #[test]
    fn empty_plan_costs_nothing() {
        let plan = FailoverPlan {
            link: rbpc_graph::EdgeId::new(0),
            updates: Vec::new(),
            unrestorable: Vec::new(),
        };
        assert_eq!(rbpc_source_cost(&plan), ControlPlaneCost::default());
        assert_eq!(reestablish_cost(&plan).table_writes(), 0);
        assert_eq!(preprovision_ilm_entries(&plan), 0);
    }
}

#[cfg(test)]
mod ksp_tests {
    use super::*;
    use crate::{DenseBasePaths, Restorer};
    use rbpc_graph::{CostModel, Metric};
    use rbpc_topo::gnm_connected;

    fn oracle(seed: u64) -> DenseBasePaths {
        let g = gnm_connected(25, 60, 8, seed);
        DenseBasePaths::build(g, CostModel::new(Metric::Weighted, seed))
    }

    #[test]
    fn first_path_is_the_base_path() {
        let o = oracle(1);
        let set = KspBackupSet::precompute(&o, NodeId::new(0), NodeId::new(24), 3);
        assert_eq!(set.paths()[0], o.base_path(0.into(), 24.into()).unwrap());
        assert_eq!(set.pair(), (NodeId::new(0), NodeId::new(24)));
        assert!(set.ilm_entries() >= 3 * 2);
    }

    #[test]
    fn survivor_selection() {
        let o = oracle(2);
        let set = KspBackupSet::precompute(&o, NodeId::new(0), NodeId::new(24), 4);
        // No failure: primary survives.
        assert_eq!(set.restore(&FailureSet::new()), Some(&set.paths()[0]));
        // Fail the primary's first edge: the survivor avoids it.
        let failures = FailureSet::of_edge(set.paths()[0].edges()[0]);
        if let Some(p) = set.restore(&failures) {
            assert!(!p.contains_edge(set.paths()[0].edges()[0]));
        }
    }

    #[test]
    fn rbpc_restores_where_ksp_gives_up_or_stretches() {
        // Aggregate comparison: over many single-link failures, RBPC always
        // finds the min-cost restoration; KSP(j) sometimes has no survivor
        // and is never cheaper.
        let o = oracle(3);
        let restorer = Restorer::new(&o);
        let model = *o.cost_model();
        let graph = o.graph().clone();
        let mut ksp_missing = 0usize;
        let mut ksp_worse = 0usize;
        let mut events = 0usize;
        for t in [10usize, 17, 24] {
            let set = KspBackupSet::precompute(&o, NodeId::new(0), NodeId::new(t), 3);
            let base = set.paths()[0].clone();
            for &e in base.edges() {
                let failures = FailureSet::of_edge(e);
                let Ok(r) = restorer.restore(NodeId::new(0), NodeId::new(t), &failures) else {
                    continue;
                };
                events += 1;
                match set.restore(&failures) {
                    None => ksp_missing += 1,
                    Some(p) => {
                        let ksp_cost = p.cost(&graph, &model).base;
                        assert!(ksp_cost >= r.backup_cost.base);
                        if ksp_cost > r.backup_cost.base {
                            ksp_worse += 1;
                        }
                    }
                }
            }
        }
        assert!(events > 0);
        // RBPC restored every event; KSP's totals just get reported.
        let _ = (ksp_missing, ksp_worse);
    }
}
