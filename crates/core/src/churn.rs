//! Failure/recovery churn: keeping the domain correct over time.
//!
//! The paper notes that every restoration action "is reversed when the
//! link recovers". [`ChurnDriver`] manages that statefulness: it tracks a
//! live failure set, applies source-RBPC FEC rewrites for routes the
//! current failures disrupt, restores the *default* FEC entries for routes
//! they no longer disrupt, and can verify the whole domain by forwarding a
//! packet for every tracked pair after every event.

use crate::{BasePathOracle, ProvisionedDomain, RestoreError, Restorer};
use rbpc_graph::{EdgeId, FailureSet, NodeId};
use rbpc_mpls::MplsError;
use std::collections::HashSet;

/// Drives a provisioned domain through a sequence of link failures and
/// recoveries, keeping every tracked route restored (or reverted).
#[derive(Debug)]
pub struct ChurnDriver<'a, O> {
    oracle: &'a O,
    domain: ProvisionedDomain,
    failures: FailureSet,
    pairs: Vec<(NodeId, NodeId)>,
    /// Pairs currently riding a restoration FEC entry.
    rerouted: HashSet<(NodeId, NodeId)>,
    /// Pairs currently unrestorable (disconnected by the failures).
    dark: HashSet<(NodeId, NodeId)>,
}

impl<'a, O: BasePathOracle> ChurnDriver<'a, O> {
    /// Provisions the tracked pairs and starts with everything healthy.
    ///
    /// # Errors
    ///
    /// Propagates [`MplsError`] from provisioning.
    pub fn new(oracle: &'a O, pairs: Vec<(NodeId, NodeId)>) -> Result<Self, MplsError> {
        let mut domain = ProvisionedDomain::new(oracle);
        for &(s, t) in &pairs {
            domain.provision_pair(oracle, s, t)?;
        }
        Ok(ChurnDriver {
            oracle,
            domain,
            failures: FailureSet::new(),
            pairs,
            rerouted: HashSet::new(),
            dark: HashSet::new(),
        })
    }

    /// The current failure set.
    pub fn failures(&self) -> &FailureSet {
        &self.failures
    }

    /// The tracked pairs.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Pairs currently riding restoration state.
    pub fn rerouted_count(&self) -> usize {
        self.rerouted.len()
    }

    /// Pairs currently disconnected.
    pub fn dark_count(&self) -> usize {
        self.dark.len()
    }

    /// Access to the underlying domain (read-only).
    pub fn domain(&self) -> &ProvisionedDomain {
        &self.domain
    }

    /// Fails a link and reconciles every tracked route.
    ///
    /// # Errors
    ///
    /// Propagates [`MplsError`] from table updates.
    pub fn fail_link(&mut self, e: EdgeId) -> Result<(), MplsError> {
        self.failures.fail_edge(e);
        self.reconcile()
    }

    /// Recovers a link and reconciles every tracked route (reverting
    /// restorations that are no longer needed).
    ///
    /// # Errors
    ///
    /// Propagates [`MplsError`] from table updates.
    pub fn recover_link(&mut self, e: EdgeId) -> Result<(), MplsError> {
        self.failures.restore_edge(e);
        self.reconcile()
    }

    fn reconcile(&mut self) -> Result<(), MplsError> {
        let restorer = Restorer::new(self.oracle);
        for &(s, t) in &self.pairs {
            let Some(base) = self.oracle.base_path(s, t) else {
                continue;
            };
            let disrupted = base.edges().iter().any(|&e| self.failures.edge_failed(e));
            if disrupted {
                match restorer.restore(s, t, &self.failures) {
                    Ok(r) => {
                        self.domain.apply_source_restoration(&r)?;
                        self.rerouted.insert((s, t));
                        self.dark.remove(&(s, t));
                    }
                    Err(RestoreError::Disconnected { .. }) => {
                        self.dark.insert((s, t));
                        self.rerouted.remove(&(s, t));
                    }
                    Err(_) => {
                        self.dark.insert((s, t));
                        self.rerouted.remove(&(s, t));
                    }
                }
            } else if self.rerouted.remove(&(s, t)) || self.dark.remove(&(s, t)) {
                // Back to the default entry over the pair's base LSP.
                let lsp = self
                    .domain
                    .lsp_for_pair(s, t)
                    .expect("invariant: tracked pairs are provisioned");
                self.domain.net_mut().set_fec_via_lsps(s, t, &[lsp])?;
            }
        }
        Ok(())
    }

    /// Verifies every tracked, connected route by forwarding a packet:
    /// it must be delivered along the canonical shortest path of the
    /// *current* (failed) topology. Dark pairs must really be
    /// disconnected.
    ///
    /// # Panics
    ///
    /// Panics (with context) on any mismatch — intended for tests and
    /// validation harnesses.
    pub fn verify(&self) {
        let graph = self.oracle.graph();
        let model = self.oracle.cost_model();
        for &(s, t) in &self.pairs {
            let view = self.failures.view(graph);
            match rbpc_graph::shortest_path(&view, model, s, t) {
                Some(want) => {
                    let trace = self
                        .domain
                        .forward(s, t, &self.failures)
                        // Documented panic: verify() is a test/validation
                        // harness entry point. lint:allow(panic)
                        .unwrap_or_else(|e| panic!("{s}->{t} undeliverable: {e}"));
                    assert_eq!(
                        trace.route(),
                        want.nodes(),
                        "{s}->{t} not on the canonical current path"
                    );
                }
                None => {
                    assert!(
                        self.dark.contains(&(s, t)) || self.oracle.base_path(s, t).is_none(),
                        "{s}->{t} disconnected but not marked dark"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseBasePaths;
    use rbpc_graph::{CostModel, DetRng, Metric};
    use rbpc_topo::gnm_connected;

    fn driver(seed: u64) -> (DenseBasePaths, Vec<(NodeId, NodeId)>) {
        let g = gnm_connected(16, 36, 6, seed);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, seed));
        let pairs = (1..16)
            .step_by(2)
            .map(|t| (NodeId::new(0), NodeId::new(t)))
            .collect();
        (oracle, pairs)
    }

    #[test]
    fn fail_then_recover_round_trips() {
        let (oracle, pairs) = driver(1);
        let mut churn = ChurnDriver::new(&oracle, pairs).unwrap();
        churn.verify();
        let base = oracle.base_path(NodeId::new(0), NodeId::new(15)).unwrap();
        let e = base.edges()[0];
        churn.fail_link(e).unwrap();
        assert!(churn.rerouted_count() > 0 || churn.dark_count() > 0);
        churn.verify();
        churn.recover_link(e).unwrap();
        assert_eq!(churn.rerouted_count(), 0);
        assert_eq!(churn.dark_count(), 0);
        churn.verify();
    }

    #[test]
    fn overlapping_failures_and_partial_recovery() {
        let (oracle, pairs) = driver(2);
        let mut churn = ChurnDriver::new(&oracle, pairs).unwrap();
        let base = oracle.base_path(NodeId::new(0), NodeId::new(15)).unwrap();
        if base.hop_count() < 2 {
            return;
        }
        let (e1, e2) = (base.edges()[0], base.edges()[base.hop_count() - 1]);
        churn.fail_link(e1).unwrap();
        churn.verify();
        churn.fail_link(e2).unwrap();
        churn.verify();
        churn.recover_link(e1).unwrap();
        churn.verify();
        churn.recover_link(e2).unwrap();
        churn.verify();
        assert_eq!(churn.rerouted_count(), 0);
    }

    #[test]
    fn random_churn_sequences_stay_consistent() {
        for seed in 0..5u64 {
            let (oracle, pairs) = driver(10 + seed);
            let mut churn = ChurnDriver::new(&oracle, pairs).unwrap();
            let m = oracle.graph().edge_count();
            let mut rng = DetRng::seed_from_u64(seed);
            let mut down: Vec<EdgeId> = Vec::new();
            for _ in 0..30 {
                if !down.is_empty() && rng.gen_bool(0.4) {
                    let i = rng.gen_range(0..down.len());
                    let e = down.swap_remove(i);
                    churn.recover_link(e).unwrap();
                } else {
                    let e = EdgeId::new(rng.gen_range(0..m));
                    if !churn.failures().edge_failed(e) {
                        down.push(e);
                    }
                    churn.fail_link(e).unwrap();
                }
                churn.verify();
            }
            // Recover everything: the domain must return to baseline.
            for e in down {
                churn.recover_link(e).unwrap();
            }
            churn.verify();
            assert_eq!(churn.rerouted_count(), 0, "seed {seed}");
            assert_eq!(churn.dark_count(), 0, "seed {seed}");
        }
    }

    #[test]
    fn accessors() {
        let (oracle, pairs) = driver(3);
        let n_pairs = pairs.len();
        let churn = ChurnDriver::new(&oracle, pairs).unwrap();
        assert_eq!(churn.pairs().len(), n_pairs);
        assert!(churn.failures().is_empty());
        assert!(churn.domain().net().total_ilm_entries() > 0);
    }
}
