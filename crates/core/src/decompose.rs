//! Decomposing a restoration path into base-path concatenations.
//!
//! This is §4.1 of the paper. Because the base set (canonical shortest
//! paths under padded weights) is closed under taking subpaths, the greedy
//! longest-prefix strategy is optimal: if any decomposition covers the path
//! with `c` segments, so does the greedy one. [`greedy_decompose`] runs in
//! `O(len)` tree-step checks; [`optimal_decompose`] is the paper's
//! "Dijkstra over surviving base paths" fallback, which also searches over
//! *all* canonical shortest paths instead of one, and is used here to
//! validate the greedy result and for the ablation benchmarks.

use crate::BasePathOracle;
use rbpc_graph::{shortest_path_tree, FailureSet, NodeId, Path, PathCost, Topology};
use rbpc_obs::{obs_count, obs_event, obs_record, obs_trace, obs_trace_attr};
use std::collections::VecDeque;

/// What a segment of a concatenation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// A provisioned base LSP (a canonical shortest path of the original
    /// network).
    BasePath,
    /// A raw single edge that is not a base path — the "`k` edges" of
    /// Theorem 2, provisioned as one-hop LSPs.
    RawEdge,
}

/// One piece of a restoration concatenation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Whether this piece is a base LSP or a raw edge.
    pub kind: SegmentKind,
    /// The piece itself (a subpath of the restoration path).
    pub path: Path,
}

impl Segment {
    /// Start router of the segment.
    pub fn source(&self) -> NodeId {
        self.path.source()
    }

    /// End router of the segment.
    pub fn target(&self) -> NodeId {
        self.path.target()
    }
}

/// A restoration path expressed as a sequence of base LSPs and raw edges —
/// what the source router encodes as a label stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concatenation {
    segments: Vec<Segment>,
}

impl Concatenation {
    /// An empty concatenation (restoring a trivial path).
    pub fn empty() -> Self {
        Concatenation {
            segments: Vec::new(),
        }
    }

    pub(crate) fn from_segments(segments: Vec<Segment>) -> Self {
        debug_assert!(segments.windows(2).all(|w| w[0].target() == w[1].source()));
        Concatenation { segments }
    }

    /// The segments in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total number of segments — the paper's **PC length**.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether there are no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of base-path segments.
    pub fn base_path_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.kind == SegmentKind::BasePath)
            .count()
    }

    /// Number of raw-edge segments.
    pub fn raw_edge_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.kind == SegmentKind::RawEdge)
            .count()
    }

    /// Theorem 1 certificate: for `k` *edge* failures on an unweighted
    /// metric, the restoration path splits into at most `k + 1` base
    /// paths with no raw edges — the label stack is at most `k + 1` deep.
    pub fn within_theorem1(&self, k: usize) -> bool {
        self.raw_edge_count() == 0 && self.len() <= k + 1
    }

    /// Theorem 2 certificate: for `k` *edge* failures on a weighted
    /// metric, at most `k + 1` base paths interleaved with at most `k`
    /// raw edges — at most `2k + 1` segments in total. (Theorem 1's bound
    /// implies this one, so it holds for both metrics; see
    /// [`ShortestPathCover::within_theorem2`](crate::theory::ShortestPathCover::within_theorem2)
    /// for the same convention on covers.)
    pub fn within_theorem2(&self, k: usize) -> bool {
        self.len() <= 2 * k + 1 && self.raw_edge_count() <= k
    }

    /// Validates this concatenation as a label stack for a restoration
    /// under `k` equivalent edge failures: segments must be contiguous
    /// (each starts where the previous ended) and the Theorem 2 bound
    /// must hold. Node failures void the theorems (the paper's star
    /// example makes the stack unboundedly deep), so callers must pass
    /// the *edge-failure* `k` and only for edge-only failure sets.
    ///
    /// O(len); intended for `debug_assert!` and the validation harnesses.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate_bounds(&self, k: usize) -> Result<(), String> {
        for w in self.segments.windows(2) {
            if w[0].target() != w[1].source() {
                return Err(format!(
                    "segment ending at {} is followed by one starting at {}",
                    w[0].target(),
                    w[1].source()
                ));
            }
        }
        if !self.within_theorem2(k) {
            return Err(format!(
                "{} segments ({} raw edges) exceed the Theorem 2 bound of \
                 {} segments ({} raw edges) for k = {k}",
                self.len(),
                self.raw_edge_count(),
                2 * k + 1,
                k
            ));
        }
        Ok(())
    }

    /// Reassembles the full restoration path.
    ///
    /// Returns `None` for an empty concatenation (no endpoints to name).
    pub fn full_path(&self) -> Option<Path> {
        let mut iter = self.segments.iter();
        let mut path = iter.next()?.path.clone();
        for seg in iter {
            path = path
                .concat(&seg.path)
                .expect("invariant: segments are contiguous by construction");
        }
        Some(path)
    }
}

/// Greedy longest-prefix decomposition of `path` into base paths and raw
/// edges (the operational RBPC algorithm, §4.1).
///
/// Segments are subpaths of `path`; since the input is the post-failure
/// shortest path, every produced base-path segment automatically consists
/// of surviving elements. For a trivial `path` the result is empty.
///
/// With the padded (unique) shortest paths of this crate family, the
/// result has the minimum possible number of segments; Theorems 1–3 bound
/// it by `k + 1` base paths plus (in the weighted case) `k` raw edges.
///
/// ```
/// use rbpc_core::{greedy_decompose, BasePathOracle, DenseBasePaths};
/// use rbpc_graph::{shortest_path, CostModel, FailureSet, Metric};
///
/// let comb = rbpc_topo::comb(3); // Figure 2, k = 3
/// let model = CostModel::new(Metric::Unweighted, 0);
/// let oracle = DenseBasePaths::build(comb.graph.clone(), model);
/// let failures = FailureSet::of_edges(comb.spine_edges.iter().copied());
/// let backup =
///     shortest_path(&failures.view(&comb.graph), &model, comb.s, comb.t).unwrap();
/// let conc = greedy_decompose(&oracle, &backup);
/// assert_eq!(conc.len(), 4); // exactly k + 1 — the comb is tight
/// ```
pub fn greedy_decompose<O: BasePathOracle>(oracle: &O, path: &Path) -> Concatenation {
    let mut trace = obs_trace!("decompose.greedy", cat: "concat", hops = path.hop_count());
    let last = path.nodes().len() - 1;
    let mut segments = Vec::new();
    let mut i = 0;
    while i < last {
        let j = oracle.longest_base_prefix(path, i);
        if j == i {
            // Not even one hop agrees with the tree: this edge is not a
            // base path (e.g. a surviving parallel twin). Emit it raw.
            obs_count!("core.decompose.raw_edge_fallback");
            obs_event!("decompose_fallback", position = i, path_hops = last,);
            segments.push(Segment {
                kind: SegmentKind::RawEdge,
                path: path.subpath(i, i + 1),
            });
            i += 1;
        } else {
            segments.push(Segment {
                kind: SegmentKind::BasePath,
                path: path.subpath(i, j),
            });
            i = j;
        }
    }
    obs_count!("core.decompose.calls");
    obs_record!("core.decompose.segments", segments.len());
    obs_trace_attr!(trace, segments = segments.len());
    Concatenation::from_segments(segments)
}

/// Optimal decomposition by searching the *jump graph*: BFS from `s` where
/// one hop follows any surviving base path (or raw edge) that advances
/// along **some** post-failure shortest path. This is the paper's
/// "run Dijkstra on the graph in which the surviving base paths are edges",
/// restricted to shortest routes.
///
/// Returns `None` when `t` is not reachable in the post-failure network.
/// Cost: `O(n²·len)` in the worst case — meant for validation, ablation,
/// and sparse base sets, not the forwarding fast path.
pub fn optimal_decompose<O: BasePathOracle>(
    oracle: &O,
    s: NodeId,
    t: NodeId,
    failures: &FailureSet,
) -> Option<Concatenation> {
    let graph = oracle.graph();
    let model = oracle.cost_model();
    let view = failures.view(graph);
    if !view.node_alive(s) || !view.node_alive(t) {
        return None;
    }
    if s == t {
        return Some(Concatenation::empty());
    }
    // Post-failure distances from s (perturbed, so "on a canonical shortest
    // path" is well defined).
    let dist = shortest_path_tree(&view, model, s);
    dist.perturbed_dist(t)?;

    let n = graph.node_count();
    // BFS over jump counts.
    let mut prev: Vec<Option<(NodeId, Segment)>> = (0..n).map(|_| None).collect();
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[s.index()] = true;
    queue.push_back(s);

    'bfs: while let Some(u) = queue.pop_front() {
        let du = dist
            .perturbed_dist(u)
            .expect("invariant: queued nodes are reachable");
        // Jump 1: surviving raw edges that advance along a shortest path.
        for h in view.live_neighbors(u) {
            let v = h.to;
            if seen[v.index()] {
                continue;
            }
            let dv = match dist.perturbed_dist(v) {
                Some(d) => d,
                None => continue,
            };
            if du + model.perturbed_weight(graph, h.edge) != dv {
                continue;
            }
            let path = Path::from_edges(graph, u, &[h.edge])
                .expect("invariant: a single live edge is a walk");
            let kind = if oracle.is_base_path(&path) {
                SegmentKind::BasePath
            } else {
                SegmentKind::RawEdge
            };
            mark(
                &mut prev,
                &mut seen,
                &mut queue,
                u,
                v,
                Segment { kind, path },
            );
            if v == t {
                break 'bfs;
            }
        }
        // Jump 2: surviving base paths u -> v that advance along a shortest
        // path (checked by perturbed-distance additivity, then intactness).
        let candidates: Vec<(NodeId, PathCost)> = oracle.with_spt(u, |spt| {
            (0..n)
                .filter_map(|vi| {
                    let v = NodeId::new(vi);
                    if v == u || seen[vi] {
                        return None;
                    }
                    let c = spt.cost_to(v)?;
                    let dv = dist.perturbed_dist(v)?;
                    (du + c.perturbed == dv).then_some((v, c))
                })
                .collect()
        });
        for (v, _) in candidates {
            if seen[v.index()] {
                continue;
            }
            let path = oracle
                .base_path(u, v)
                .expect("invariant: cost_to succeeded, so the path exists");
            let intact = path.edges().iter().all(|&e| view.edge_alive(e))
                && path.nodes().iter().all(|&x| view.node_alive(x));
            if !intact {
                continue;
            }
            mark(
                &mut prev,
                &mut seen,
                &mut queue,
                u,
                v,
                Segment {
                    kind: SegmentKind::BasePath,
                    path,
                },
            );
            if v == t {
                break 'bfs;
            }
        }
    }

    if !seen[t.index()] {
        // Reachable by distance but BFS missed it — cannot happen, since
        // single surviving shortest-path edges are always valid jumps.
        // lint:allow(panic)
        unreachable!("jump BFS must reach every node the distance tree reaches");
    }
    // Reconstruct.
    let mut segments = Vec::new();
    let mut at = t;
    while at != s {
        let (p, seg) = prev[at.index()]
            .clone()
            .expect("invariant: reached nodes have prev");
        segments.push(seg);
        at = p;
    }
    segments.reverse();
    Some(Concatenation::from_segments(segments))
}

fn mark(
    prev: &mut [Option<(NodeId, Segment)>],
    seen: &mut [bool],
    queue: &mut VecDeque<NodeId>,
    u: NodeId,
    v: NodeId,
    seg: Segment,
) {
    seen[v.index()] = true;
    prev[v.index()] = Some((u, seg));
    queue.push_back(v);
}

/// Helper: can every edge of `path` survive `failures`?
pub(crate) fn path_survives(path: &Path, failures: &FailureSet) -> bool {
    path.edges().iter().all(|&e| !failures.edge_failed(e))
        && path.nodes().iter().all(|&v| !failures.node_failed(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseBasePaths;
    use rbpc_graph::{shortest_path, CostModel, Graph, Metric};
    use rbpc_topo::{comb, gnm_connected, parallel_chain, weighted_tight};

    fn model() -> CostModel {
        CostModel::new(Metric::Weighted, 9)
    }

    fn unweighted() -> CostModel {
        CostModel::new(Metric::Unweighted, 9)
    }

    #[test]
    fn base_path_decomposes_to_itself() {
        let g = gnm_connected(25, 60, 9, 2);
        let oracle = DenseBasePaths::build(g, model());
        let p = oracle.base_path(0.into(), 20.into()).unwrap();
        let c = greedy_decompose(&oracle, &p);
        assert_eq!(c.len(), 1);
        assert_eq!(c.segments()[0].kind, SegmentKind::BasePath);
        assert_eq!(c.full_path().unwrap(), p);
    }

    #[test]
    fn trivial_path_decomposes_empty() {
        let g = gnm_connected(5, 8, 3, 1);
        let oracle = DenseBasePaths::build(g, model());
        let c = greedy_decompose(&oracle, &Path::trivial(2.into()));
        assert!(c.is_empty());
        assert_eq!(c.full_path(), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn single_failure_needs_at_most_two_paths_unweighted() {
        // Theorem 1, k = 1: concatenation of at most 2 base paths.
        for seed in 0..8 {
            let g = gnm_connected(30, 70, 1, seed);
            let oracle = DenseBasePaths::build(g.clone(), unweighted());
            let base = oracle.base_path(0.into(), 29.into()).unwrap();
            for &e in base.edges() {
                let failures = FailureSet::of_edge(e);
                let view = failures.view(&g);
                if let Some(backup) = shortest_path(&view, &unweighted(), 0.into(), 29.into()) {
                    let c = greedy_decompose(&oracle, &backup);
                    // Theorem 3 bound for k = 1: at most 3 components in
                    // total, of which at most 1 is a raw edge.
                    assert!(
                        c.len() <= 3 && c.raw_edge_count() <= 1,
                        "seed {seed}: {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn comb_is_tight_for_theorem1() {
        // Figure 2: after k spine failures the decomposition needs exactly
        // k + 1 base paths.
        for k in 1..=5 {
            let c = comb(k);
            let oracle = DenseBasePaths::build(c.graph.clone(), unweighted());
            let failures = FailureSet::of_edges(c.spine_edges.iter().copied());
            let view = failures.view(&c.graph);
            let backup = shortest_path(&view, &unweighted(), c.s, c.t).unwrap();
            let conc = greedy_decompose(&oracle, &backup);
            assert_eq!(conc.len(), k + 1, "comb({k})");
            assert_eq!(conc.raw_edge_count(), 0);
        }
    }

    #[test]
    fn weighted_tight_needs_k_extra_edges() {
        // Figure 3: k + 1 base paths interleaved with k raw edges.
        for k in 1..=4 {
            let w = weighted_tight(k);
            let oracle = DenseBasePaths::build(w.graph.clone(), model());
            let failures = FailureSet::of_edges(w.cheap_edges.iter().copied());
            let view = failures.view(&w.graph);
            let backup = shortest_path(&view, &model(), w.s, w.t).unwrap();
            let conc = greedy_decompose(&oracle, &backup);
            assert_eq!(conc.raw_edge_count(), k, "weighted_tight({k})");
            assert_eq!(conc.base_path_count(), k + 1);
        }
    }

    #[test]
    fn parallel_twin_becomes_raw_edge() {
        let p = parallel_chain(1); // 4 nodes, parallel unit edges
        let oracle = DenseBasePaths::build(p.graph.clone(), unweighted());
        // Fail the canonical edge of position 0; the twin must be used and
        // is not a base path.
        let canonical = oracle.base_path(0.into(), 1.into()).unwrap().edges()[0];
        let failures = FailureSet::of_edge(canonical);
        let view = failures.view(&p.graph);
        let backup = shortest_path(&view, &unweighted(), 0.into(), 1.into()).unwrap();
        let conc = greedy_decompose(&oracle, &backup);
        assert_eq!(conc.len(), 1);
        assert_eq!(conc.raw_edge_count(), 1);
    }

    #[test]
    fn greedy_is_optimal_on_random_graphs() {
        for seed in 0..10 {
            let g = gnm_connected(18, 40, 6, seed);
            let oracle = DenseBasePaths::build(g.clone(), model());
            let base = oracle.base_path(0.into(), 17.into()).unwrap();
            for &e in base.edges() {
                let failures = FailureSet::of_edge(e);
                let view = failures.view(&g);
                let Some(backup) = shortest_path(&view, &model(), 0.into(), 17.into()) else {
                    continue;
                };
                let greedy = greedy_decompose(&oracle, &backup);
                let optimal =
                    optimal_decompose(&oracle, 0.into(), 17.into(), &failures).expect("reachable");
                assert_eq!(greedy.len(), optimal.len(), "seed {seed} edge {e}");
            }
        }
    }

    #[test]
    fn optimal_decompose_edge_cases() {
        let g = gnm_connected(10, 20, 4, 0);
        let oracle = DenseBasePaths::build(g.clone(), model());
        // Same endpoints: empty.
        let c = optimal_decompose(&oracle, 3.into(), 3.into(), &FailureSet::new()).unwrap();
        assert!(c.is_empty());
        // Failed endpoint: none.
        let f = FailureSet::of_nodes([3usize]);
        assert!(optimal_decompose(&oracle, 3.into(), 5.into(), &f).is_none());
        assert!(optimal_decompose(&oracle, 5.into(), 3.into(), &f).is_none());
        // No failures: single segment.
        let c2 = optimal_decompose(&oracle, 0.into(), 9.into(), &FailureSet::new()).unwrap();
        assert_eq!(c2.len(), 1);
    }

    #[test]
    fn disconnection_yields_none() {
        let mut g = Graph::new(3);
        let e = g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let oracle = DenseBasePaths::build(g, model());
        let f = FailureSet::of_edge(e);
        assert!(optimal_decompose(&oracle, 0.into(), 2.into(), &f).is_none());
    }

    #[test]
    fn segments_report_endpoints_and_survival() {
        let g = gnm_connected(12, 25, 5, 7);
        let oracle = DenseBasePaths::build(g, model());
        let p = oracle.base_path(0.into(), 11.into()).unwrap();
        let c = greedy_decompose(&oracle, &p);
        let seg = &c.segments()[0];
        assert_eq!(seg.source(), 0.into());
        assert_eq!(seg.target(), 11.into());
        assert!(path_survives(&seg.path, &FailureSet::new()));
        let mut f = FailureSet::new();
        f.fail_edge(seg.path.edges()[0]);
        assert!(!path_survives(&seg.path, &f));
        let fnode = FailureSet::of_nodes([0usize]);
        assert!(!path_survives(&seg.path, &fnode));
    }
}
