//! Implicit, sharded base-path storage — provisioning at paper scale.
//!
//! # Why a third storage shape
//!
//! The paper's largest topology, the Internet router map, has 40 377
//! nodes and 101 659 links. Its all-pairs base set covers
//! `n · (n − 1) ≈ 1.63 billion` directed pairs — materializing even one
//! `Vec` of nodes per pair is out of the question, and holding one
//! [`ShortestPathTree`] per source (the [`DenseBasePaths`] layout, 36
//! bytes per node per tree) would cost `40 377² · 36 ≈ 59 GB`. The paper
//! sampled 40 pairs and moved on; we want the same protocol *and* sweeps
//! the paper could not afford, under a memory budget we can state.
//!
//! # The implicit representation
//!
//! Nothing about RBPC needs per-pair storage. A shortest-path tree in
//! `parent[]`/`dist[]` form already encodes the canonical base path of
//! *every* destination implicitly: the base path `s → t` is the walk up
//! `parent[]` from `t` to `s`, reversed — `O(len)` to materialize, zero
//! bytes to store beyond the tree's five flat arrays. All query
//! primitives the restoration pipeline uses ([`base_dist`], [`path_to`],
//! [`is_tree_step`] for greedy decomposition) read those arrays
//! directly, so one resident tree answers `n − 1` pairs.
//!
//! [`ShardedBasePaths`] keeps the trees themselves implicit too: sources
//! are grouped into fixed *shards* (contiguous index ranges), each shard
//! is provisioned as one batch on the [`rbpc_graph::par`] thread pool
//! (every worker reuses one `DijkstraScratch` arena across its trees),
//! and at most a budgeted number of shards stay resident behind an LRU.
//! A query outside the resident set rebuilds its shard — bit-identical
//! by construction, because perturbed costs make every tree canonical
//! (see [`rbpc_graph::CostModel`]).
//!
//! The [`BasePathStore`] trait exposes the residency/budget surface on
//! every oracle, so `Restorer`, decomposition, and the sim/eval layers
//! can be handed any of the three shapes and report what the store did.
//!
//! [`base_dist`]: ShortestPathTree::base_dist
//! [`path_to`]: ShortestPathTree::path_to
//! [`is_tree_step`]: ShortestPathTree::is_tree_step

use crate::basepaths::{
    lock_unpoisoned, rebuilt_tree, record_par_stats, repaired_tree, BasePathOracle, DenseBasePaths,
    LazyBasePaths,
};
use rbpc_graph::{
    par_all_sources_csr, CostModel, CsrGraph, FailureSet, Graph, NodeId, ShortestPathTree,
};
use rbpc_obs::{obs_count, obs_span, obs_trace};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bytes one [`ShortestPathTree`] occupies per node: `dist` (u128) +
/// `base_dist` (u64) + `hops`, `parent_edge`, `parent_node` (u32 each).
/// Matches [`ShortestPathTree::approx_bytes`].
pub const TREE_BYTES_PER_NODE: usize = 16 + 8 + 4 + 4 + 4;

/// Bytes a *dense* all-sources store would need on an `n`-node graph:
/// one tree per source, [`TREE_BYTES_PER_NODE`] per node per tree. On
/// the paper's 40 377-node router map this is ≈ 59 GB — the number that
/// motivates the sharded store (see `docs/SCALE.md`).
pub fn dense_store_bytes(n: usize) -> u128 {
    (n as u128) * (n as u128) * (TREE_BYTES_PER_NODE as u128)
}

/// Directed source–destination pairs an all-pairs base set covers on an
/// `n`-node graph: `n · (n − 1)` (≈ 1.63 billion on the 40k router map).
pub fn directed_pairs(n: usize) -> u128 {
    let n = n as u128;
    n * n.saturating_sub(1)
}

/// The storage half of a base-path oracle: residency, budget, and batch
/// provisioning. Every [`BasePathOracle`] in the workspace implements
/// this, so callers can switch between the dense, lazy, and sharded
/// shapes without touching the query side — and report, after a run,
/// how much memory the base set actually held resident and how often
/// the budget forced recomputation.
pub trait BasePathStore: BasePathOracle {
    /// Shortest-path trees currently held in memory.
    fn resident_trees(&self) -> usize;

    /// Approximate bytes of resident tree storage
    /// ([`TREE_BYTES_PER_NODE`] per node per resident tree).
    fn resident_bytes(&self) -> usize {
        self.resident_trees() * self.graph().node_count() * TREE_BYTES_PER_NODE
    }

    /// The residency ceiling in trees, or `None` when the store is
    /// unbounded (the dense store keeps every tree forever).
    fn max_resident_trees(&self) -> Option<usize>;

    /// Trees evicted so far to stay under the budget. Evicted trees are
    /// not lost — a later query rebuilds them bit-identically — but each
    /// eviction converts future hits into recomputation, so this is the
    /// store's thrash gauge.
    fn evicted_trees(&self) -> u64;

    /// Ensures the trees of `sources` are resident, batch-building any
    /// that are not; returns how many trees were newly provisioned.
    ///
    /// For bounded stores a prefetch larger than the budget still
    /// succeeds — later sources evict earlier ones — so callers
    /// streaming a sweep should prefetch in budget-sized windows.
    fn prefetch(&self, sources: &[NodeId]) -> usize;
}

/// Forwarding impl so generic layers can take `&S` where a
/// [`BasePathStore`] is expected, mirroring the [`BasePathOracle`]
/// blanket impl.
impl<S: BasePathStore> BasePathStore for &S {
    fn resident_trees(&self) -> usize {
        (**self).resident_trees()
    }

    fn resident_bytes(&self) -> usize {
        (**self).resident_bytes()
    }

    fn max_resident_trees(&self) -> Option<usize> {
        (**self).max_resident_trees()
    }

    fn evicted_trees(&self) -> u64 {
        (**self).evicted_trees()
    }

    fn prefetch(&self, sources: &[NodeId]) -> usize {
        (**self).prefetch(sources)
    }
}

impl BasePathStore for DenseBasePaths {
    fn resident_trees(&self) -> usize {
        self.graph().node_count()
    }

    fn max_resident_trees(&self) -> Option<usize> {
        None
    }

    fn evicted_trees(&self) -> u64 {
        0
    }

    fn prefetch(&self, _sources: &[NodeId]) -> usize {
        0 // Everything is already resident, forever.
    }
}

impl BasePathStore for LazyBasePaths {
    fn resident_trees(&self) -> usize {
        self.cached_trees()
    }

    fn max_resident_trees(&self) -> Option<usize> {
        Some(self.capacity())
    }

    fn evicted_trees(&self) -> u64 {
        self.evictions()
    }

    fn prefetch(&self, sources: &[NodeId]) -> usize {
        // One Dijkstra per missing source; the lazy store has no batch
        // engine, which is exactly why the sharded store exists.
        let mut built = 0;
        for &s in sources {
            if self.with_spt_if_cached(s, |_| ()).is_none() {
                self.with_spt(s, |_| ());
                built += 1;
            }
        }
        built
    }
}

/// A provisioned shard: the trees of one contiguous block of sources.
#[derive(Debug)]
struct Shard {
    /// Index of the first source this shard covers.
    first: u32,
    /// Trees of sources `first .. first + trees.len()`, in order.
    trees: Vec<ShortestPathTree>,
}

/// LRU-ordered resident shard set. `order` runs cold → hot; `map` is a
/// `BTreeMap` (deterministic iteration, per the workspace's
/// hash-iteration lint) keyed by shard index.
#[derive(Debug, Default)]
struct ShardCache {
    map: BTreeMap<u32, Arc<Shard>>,
    order: VecDeque<u32>,
}

impl ShardCache {
    /// Marks `key` most-recently-used.
    fn touch(&mut self, key: u32) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }
}

/// The implicit, sharded base-path store: per-source shortest-path trees
/// in flat `parent[]`/`dist[]` form, provisioned shard-by-shard on the
/// parallel engine, behind a bounded LRU.
///
/// # Representation
///
/// No path is ever stored. A resident tree answers every query about its
/// source implicitly:
///
/// * `base_path(s, t)` walks `parent[]` up from `t` (materializing one
///   transient [`Path`](rbpc_graph::Path) of `O(len)` nodes);
/// * `base_dist`/`base_cost` are single array reads;
/// * greedy decomposition's `is_tree_step` is two array reads.
///
/// Sources are grouped into shards of [`shard_size`](Self::shard_size)
/// consecutive indices. A miss provisions the whole shard as one batch
/// via [`par_all_sources_csr`] over a [`CsrGraph`] built once at
/// construction, so every worker thread reuses a single
/// `DijkstraScratch` arena across the shard's trees. At most
/// [`max_resident_trees`](BasePathStore::max_resident_trees) trees
/// (rounded up to whole shards, minimum one shard) stay resident; the
/// least-recently-used shard is dropped first.
///
/// # Determinism
///
/// Perturbed costs make every tree canonical, so eviction and
/// re-provisioning — at any thread count — returns bit-identical trees
/// and therefore bit-identical base paths (property-tested against
/// [`DenseBasePaths`] in `tests/sharded_store.rs`).
///
/// Thread-safe: the cache is lock-protected, shards are shared via
/// [`Arc`], and shard builds happen outside the lock (racing threads may
/// duplicate a build; the first insert wins and the duplicate is
/// counted, never kept).
#[derive(Debug)]
pub struct ShardedBasePaths {
    graph: Graph,
    model: CostModel,
    csr: CsrGraph,
    shard_size: usize,
    max_shards: usize,
    threads: usize,
    cache: Mutex<ShardCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
    builds: AtomicU64,
}

/// A point-in-time residency/traffic snapshot of a [`ShardedBasePaths`],
/// for run reports (`rbpc-eval paper-scale` prints one per window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedStoreStats {
    /// Trees currently resident.
    pub resident_trees: usize,
    /// Approximate bytes of resident tree storage.
    pub resident_bytes: usize,
    /// Residency ceiling in trees.
    pub max_resident_trees: usize,
    /// Shard-cache hits so far.
    pub hits: u64,
    /// Shard-cache misses so far (each triggered a shard build).
    pub misses: u64,
    /// Trees evicted so far.
    pub evicted_trees: u64,
    /// Shard batch builds so far (misses + prefetches + duplicated
    /// racing builds).
    pub shard_builds: u64,
}

impl ShardedBasePaths {
    /// Default sources per shard: small enough that one shard of the 40k
    /// map is ~46 MB, large enough to amortize the parallel fan-out.
    pub const DEFAULT_SHARD_SIZE: usize = 32;

    /// Default residency budget in trees: 512 trees ≈ 0.74 GB on the
    /// 40 377-node router map, comfortably under commodity RAM while
    /// holding 16 default-size shards.
    pub const DEFAULT_MAX_RESIDENT_SPTS: usize = 512;

    /// Creates a sharded store with the default budget and shard size,
    /// building shards on [`default_threads`](crate::default_threads)
    /// workers.
    pub fn new(graph: Graph, model: CostModel) -> Self {
        Self::with_budget(
            graph,
            model,
            Self::DEFAULT_MAX_RESIDENT_SPTS,
            Self::DEFAULT_SHARD_SIZE,
            crate::default_threads(),
        )
    }

    /// Creates a sharded store holding at most `max_resident_spts` trees
    /// (rounded up to whole shards of `shard_size` sources, minimum one
    /// shard), building shards on `threads` workers (`0` means 1).
    ///
    /// The `--max-resident-spts` / `--shard-size` flags of
    /// `rbpc-eval paper-scale` land here.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size == 0` or the graph exceeds
    /// [`CostModel::MAX_NODES`] nodes.
    pub fn with_budget(
        graph: Graph,
        model: CostModel,
        max_resident_spts: usize,
        shard_size: usize,
        threads: usize,
    ) -> Self {
        assert!(shard_size >= 1, "shard size must be positive");
        let csr = CsrGraph::new(&graph, &model);
        ShardedBasePaths {
            graph,
            model,
            csr,
            shard_size,
            max_shards: max_resident_spts.div_ceil(shard_size).max(1),
            threads: threads.max(1),
            cache: Mutex::new(ShardCache::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            builds: AtomicU64::new(0),
        }
    }

    /// Sources per shard.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Total shards the source space divides into.
    pub fn shard_count(&self) -> usize {
        self.graph.node_count().div_ceil(self.shard_size)
    }

    /// Worker threads used per shard build.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of residency and cache traffic, for run reports.
    pub fn stats(&self) -> ShardedStoreStats {
        ShardedStoreStats {
            resident_trees: self.resident_trees(),
            resident_bytes: self.resident_bytes(),
            max_resident_trees: self.max_shards * self.shard_size,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evicted_trees: self.evicted.load(Ordering::Relaxed),
            shard_builds: self.builds.load(Ordering::Relaxed),
        }
    }

    /// The shard index covering `source`.
    fn shard_of(&self, source: NodeId) -> u32 {
        (source.index() / self.shard_size) as u32
    }

    /// Batch-provisions the shard `key` (outside any lock).
    fn build_shard(&self, key: u32) -> Shard {
        let _span = obs_span!("core.store.shard_build.ns");
        let first = key as usize * self.shard_size;
        let last = (first + self.shard_size).min(self.graph.node_count());
        let sources: Vec<NodeId> = (first..last).map(NodeId::new).collect();
        let (trees, stats) = par_all_sources_csr(&self.csr, None, &sources, self.threads);
        record_par_stats(&stats);
        self.builds.fetch_add(1, Ordering::Relaxed);
        Shard {
            first: first as u32,
            trees,
        }
    }

    /// Returns the resident shard covering `source`, provisioning (and
    /// possibly evicting) as needed.
    fn shard(&self, source: NodeId) -> Arc<Shard> {
        let key = self.shard_of(source);
        {
            let mut cache = lock_unpoisoned(&self.cache);
            if let Some(shard) = cache.map.get(&key) {
                let shard = Arc::clone(shard);
                cache.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs_count!("core.store.shard_hit");
                return shard;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs_count!("core.store.shard_miss");
        let _t = obs_trace!("store.shard_build", cat: "lookup", shard = key as usize);
        let built = Arc::new(self.build_shard(key));
        let mut cache = lock_unpoisoned(&self.cache);
        if let Some(shard) = cache.map.get(&key) {
            // A racing thread provisioned this shard while we did: keep
            // theirs (identical trees) and drop our duplicate work.
            obs_count!("core.store.duplicate_shard");
            return Arc::clone(shard);
        }
        while cache.map.len() >= self.max_shards {
            let Some(cold) = cache.order.pop_front() else {
                break;
            };
            if let Some(gone) = cache.map.remove(&cold) {
                self.evicted
                    .fetch_add(gone.trees.len() as u64, Ordering::Relaxed);
                obs_count!("core.store.shard_evict");
            }
        }
        cache.map.insert(key, Arc::clone(&built));
        cache.order.push_back(key);
        built
    }
}

impl BasePathOracle for ShardedBasePaths {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn cost_model(&self) -> &CostModel {
        &self.model
    }

    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        let shard = self.shard(source);
        f(&shard.trees[source.index() - shard.first as usize])
    }

    fn with_spt_under<R>(
        &self,
        source: NodeId,
        failures: &FailureSet,
        f: impl FnOnce(&ShortestPathTree) -> R,
    ) -> R {
        if failures.is_empty() {
            return self.with_spt(source, f);
        }
        if failures.node_failed(source) {
            // Not expressible as a repair; the rebuild early-exits anyway.
            return f(&rebuilt_tree(&self.graph, &self.model, source, failures));
        }
        // Repair a clone of the resident unfailed tree; the transient
        // failed tree is never cached, so the store stays canonical.
        let shard = self.shard(source);
        let base = &shard.trees[source.index() - shard.first as usize];
        let _t = obs_trace!("spt.repair", cat: "lookup", source = source.index());
        f(&repaired_tree(&self.graph, &self.model, base, failures))
    }
}

impl BasePathStore for ShardedBasePaths {
    fn resident_trees(&self) -> usize {
        lock_unpoisoned(&self.cache)
            .map
            .values()
            .map(|s| s.trees.len())
            .sum()
    }

    fn max_resident_trees(&self) -> Option<usize> {
        Some(self.max_shards * self.shard_size)
    }

    fn evicted_trees(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    fn prefetch(&self, sources: &[NodeId]) -> usize {
        let mut shards: Vec<u32> = sources.iter().map(|&s| self.shard_of(s)).collect();
        shards.sort_unstable();
        shards.dedup();
        let mut built = 0;
        for key in shards {
            let resident = lock_unpoisoned(&self.cache).map.contains_key(&key);
            if !resident {
                // `shard` handles build + LRU insert + eviction.
                let shard = self.shard(NodeId::new(key as usize * self.shard_size));
                built += shard.trees.len();
            }
        }
        built
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::Metric;
    use rbpc_topo::gnm_connected;

    fn model() -> CostModel {
        CostModel::new(Metric::Weighted, 21)
    }

    #[test]
    fn sharded_matches_dense_exactly() {
        let g = gnm_connected(50, 120, 12, 5);
        let dense = DenseBasePaths::build(g.clone(), model());
        // Budget of 8 trees / shards of 4: at most 2 shards resident, so
        // the sweep below evicts and rebuilds constantly.
        let sharded = ShardedBasePaths::with_budget(g.clone(), model(), 8, 4, 2);
        for s in g.nodes() {
            for t in g.nodes() {
                assert_eq!(dense.base_path(s, t), sharded.base_path(s, t));
                assert_eq!(dense.base_dist(s, t), sharded.base_dist(s, t));
            }
        }
        let stats = sharded.stats();
        assert!(stats.evicted_trees > 0, "tiny budget must evict");
        assert!(stats.resident_trees <= stats.max_resident_trees);
    }

    #[test]
    fn lru_keeps_hot_shards() {
        let g = gnm_connected(40, 90, 9, 3);
        // 2 shards resident max (budget 16, shard 8).
        let store = ShardedBasePaths::with_budget(g, model(), 16, 8, 1);
        let hot = NodeId::new(0);
        let _ = store.base_dist(hot, 1.into()); // shard 0 resident
        let _ = store.base_dist(NodeId::new(8), 1.into()); // shard 1
        let _ = store.base_dist(hot, 2.into()); // touch shard 0 → hot
        let _ = store.base_dist(NodeId::new(16), 1.into()); // shard 2: evicts shard 1
        let before = store.stats().misses;
        let _ = store.base_dist(hot, 3.into()); // must still be a hit
        assert_eq!(store.stats().misses, before);
        assert_eq!(store.resident_trees(), 16);
    }

    #[test]
    fn with_spt_under_matches_rebuild() {
        let g = gnm_connected(40, 90, 12, 5);
        let store = ShardedBasePaths::with_budget(g.clone(), model(), 8, 4, 2);
        let mut failures = FailureSet::new();
        failures.fail_edge(rbpc_graph::EdgeId::new(0));
        failures.fail_edge(rbpc_graph::EdgeId::new(17));
        failures.fail_node(7.into());
        for s in g.nodes() {
            let want = rbpc_graph::shortest_path_tree(&failures.view(&g), &model(), s);
            store.with_spt_under(s, &failures, |spt| assert_eq!(spt, &want, "source {s}"));
        }
    }

    #[test]
    fn prefetch_provisions_whole_shards() {
        let g = gnm_connected(30, 70, 9, 3);
        let store = ShardedBasePaths::with_budget(g, model(), 64, 8, 1);
        let built = store.prefetch(&[NodeId::new(0), NodeId::new(3), NodeId::new(9)]);
        assert_eq!(built, 16); // shards 0 and 1, 8 trees each
        assert_eq!(store.resident_trees(), 16);
        // Already resident: nothing new.
        assert_eq!(store.prefetch(&[NodeId::new(1)]), 0);
        let stats = store.stats();
        assert_eq!(stats.evicted_trees, 0);
        assert!(stats.shard_builds >= 2);
    }

    #[test]
    fn last_shard_may_be_short() {
        let g = gnm_connected(10, 25, 5, 1);
        let store = ShardedBasePaths::with_budget(g.clone(), model(), 64, 4, 1);
        assert_eq!(store.shard_count(), 3); // 4 + 4 + 2
        let d = store.base_dist(NodeId::new(9), 0.into());
        assert!(d.is_some());
        let _ = store.prefetch(&g.nodes().collect::<Vec<_>>());
        assert_eq!(store.resident_trees(), 10);
    }

    #[test]
    fn store_trait_surfaces_on_all_oracles() {
        let g = gnm_connected(20, 45, 6, 2);
        let dense = DenseBasePaths::build(g.clone(), model());
        assert_eq!(dense.resident_trees(), 20);
        assert_eq!(dense.max_resident_trees(), None);
        assert_eq!(dense.prefetch(&[NodeId::new(0)]), 0);
        assert_eq!(dense.resident_bytes(), 20 * 20 * TREE_BYTES_PER_NODE);

        let lazy = LazyBasePaths::with_capacity(g.clone(), model(), 3);
        assert_eq!(lazy.resident_trees(), 0);
        assert_eq!(lazy.max_resident_trees(), Some(3));
        assert_eq!(lazy.prefetch(&[NodeId::new(0), NodeId::new(1)]), 2);
        assert_eq!(lazy.prefetch(&[NodeId::new(1)]), 0);
        for s in 0..5usize {
            let _ = lazy.base_dist(s.into(), 0.into());
        }
        assert!(lazy.evicted_trees() > 0);

        // The &S forwarding impl must reach the underlying store.
        fn takes_store<S: BasePathStore>(s: S) -> usize {
            s.resident_trees()
        }
        assert_eq!(takes_store(&dense), 20);
    }

    #[test]
    fn sharded_is_shareable_across_threads() {
        let g = gnm_connected(24, 60, 7, 4);
        let dense = DenseBasePaths::build(g.clone(), model());
        let store = ShardedBasePaths::with_budget(g.clone(), model(), 8, 4, 1);
        std::thread::scope(|scope| {
            for chunk in 0..4usize {
                let store = &store;
                let dense = &dense;
                scope.spawn(move || {
                    for s in (0..24).filter(|s| s % 4 == chunk) {
                        for t in 0..24usize {
                            assert_eq!(
                                store.base_dist(s.into(), t.into()),
                                dense.base_dist(s.into(), t.into())
                            );
                        }
                    }
                });
            }
        });
        let stats = store.stats();
        assert!(stats.resident_trees <= stats.max_resident_trees);
    }

    #[test]
    fn memory_math_matches_the_paper_map() {
        // The numbers docs/SCALE.md quotes for the 40 377-node map.
        let n = 40_377usize;
        assert_eq!(directed_pairs(n), 40_377 * 40_376);
        assert!(directed_pairs(n) > 1_600_000_000);
        let dense_gb = dense_store_bytes(n) as f64 / (1u64 << 30) as f64;
        assert!((54.0..56.0).contains(&dense_gb), "dense ≈ {dense_gb} GiB");
        let budget = 512 * n * TREE_BYTES_PER_NODE;
        assert!(budget < (1 << 30), "512-tree budget fits in 1 GiB");
    }
}
