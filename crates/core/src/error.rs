//! Error type for restoration operations.

use core::fmt;
use rbpc_graph::{EdgeId, NodeId};

/// Error returned by restoration computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RestoreError {
    /// No surviving path connects the endpoints — restoration is
    /// impossible until repairs happen.
    Disconnected {
        /// The route's source.
        source: NodeId,
        /// The route's destination.
        target: NodeId,
    },
    /// An endpoint of the route itself failed.
    EndpointFailed {
        /// The failed endpoint.
        node: NodeId,
    },
    /// The named edge is not on the path being restored (local RBPC takes
    /// the failed edge together with the disrupted LSP's path).
    EdgeNotOnPath {
        /// The edge that was expected on the path.
        edge: EdgeId,
    },
    /// A node id was out of range for the oracle's graph.
    UnknownNode {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RestoreError::Disconnected { source, target } => {
                write!(f, "no surviving path from {source} to {target}")
            }
            RestoreError::EndpointFailed { node } => {
                write!(f, "route endpoint {node} has failed")
            }
            RestoreError::EdgeNotOnPath { edge } => {
                write!(f, "edge {edge} is not on the disrupted path")
            }
            RestoreError::UnknownNode { node } => write!(f, "unknown node {node}"),
        }
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = RestoreError::Disconnected {
            source: NodeId::new(0),
            target: NodeId::new(5),
        };
        assert!(e.to_string().contains("n0"));
        assert!(e.to_string().contains("n5"));
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<RestoreError>();
    }
}
