//! Local RBPC: restoration at the router adjacent to the failure (§4.2).
//!
//! When router `R1` detects that its downstream link on some LSP died, it
//! can restore *immediately* — before the link-state protocol reaches the
//! LSP's source — by rewriting one ILM entry:
//!
//! * **end-route** ([`end_route`]): splice onto a concatenation of base
//!   LSPs going straight to the LSP's destination;
//! * **edge-bypass** ([`edge_bypass`]): splice onto a concatenation that
//!   patches around the failed link, then resume the original LSP at the
//!   far endpoint.
//!
//! Both may yield a longer end-to-end route than source RBPC (the paper's
//! Figure 10 quantifies the stretch); the hybrid scheme applies a local
//! splice instantly and lets the source re-route optimally later.

use crate::{greedy_decompose, BasePathOracle, Concatenation, RestoreError};
use rbpc_graph::{EdgeId, FailureSet, NodeId, Path};
use rbpc_obs::{obs_trace, obs_trace_attr};

/// The result of a local (adjacent-router) restoration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalRestoration {
    /// The router adjacent to (upstream of) the failed link that acts.
    pub r1: NodeId,
    /// The splice: surviving base LSPs (+ raw edges) the packet follows
    /// from `r1`. For end-route it reaches the LSP destination; for
    /// edge-bypass it reaches the failed link's far endpoint.
    pub concatenation: Concatenation,
    /// The resulting end-to-end route of the disrupted LSP, from its
    /// original source to its destination (may be a non-simple walk).
    pub end_to_end: Path,
}

impl LocalRestoration {
    /// Number of spliced pieces (labels pushed at `r1`).
    pub fn pc_length(&self) -> usize {
        self.concatenation.len()
    }
}

/// Finds the index of `failed` on `lsp_path` and returns `(pos, r1, far)`:
/// the hop index, the upstream router, and the downstream endpoint.
fn locate(lsp_path: &Path, failed: EdgeId) -> Result<(usize, NodeId, NodeId), RestoreError> {
    let pos = lsp_path
        .edges()
        .iter()
        .position(|&e| e == failed)
        .ok_or(RestoreError::EdgeNotOnPath { edge: failed })?;
    Ok((pos, lsp_path.nodes()[pos], lsp_path.nodes()[pos + 1]))
}

/// **End-route** local RBPC: `R1` (upstream of `failed` on `lsp_path`)
/// re-routes straight to the LSP's destination over surviving base LSPs.
///
/// `failures` is the current failure set and must contain `failed`.
///
/// ```
/// use rbpc_core::{end_route, BasePathOracle, DenseBasePaths};
/// use rbpc_graph::{CostModel, FailureSet, Metric};
///
/// # fn main() -> Result<(), rbpc_core::RestoreError> {
/// let g = rbpc_topo::cycle(6);
/// let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Unweighted, 2));
/// let lsp = oracle.base_path(0.into(), 2.into()).expect("connected");
/// let failed = lsp.edges()[1];
/// let lr = end_route(&oracle, &lsp, failed, &FailureSet::of_edge(failed))?;
/// assert_eq!(lr.r1, lsp.nodes()[1]); // the router upstream of the failure acts
/// assert!(!lr.end_to_end.contains_edge(failed));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`RestoreError::EdgeNotOnPath`] if `failed` is not on `lsp_path`;
/// * [`RestoreError::Disconnected`] if no surviving route exists from `R1`.
pub fn end_route<O: BasePathOracle>(
    oracle: &O,
    lsp_path: &Path,
    failed: EdgeId,
    failures: &FailureSet,
) -> Result<LocalRestoration, RestoreError> {
    let (pos, r1, _) = locate(lsp_path, failed)?;
    let dest = lsp_path.target();
    let mut trace = obs_trace!(
        "local.end_route",
        cat: "restore",
        r1 = r1.index(),
        k_failures = failures.failed_edge_count(),
    );
    let detour = {
        // Repair r1's cached tree rather than re-running Dijkstra over the
        // failed view (see `BasePathOracle::with_spt_under`).
        let _t = obs_trace!("detour.search", cat: "lookup");
        oracle
            .path_under(r1, dest, failures)
            .ok_or(RestoreError::Disconnected {
                source: r1,
                target: dest,
            })?
    };
    let concatenation = greedy_decompose(oracle, &detour);
    obs_trace_attr!(trace, stack_depth = concatenation.len());
    let end_to_end = lsp_path
        .subpath(0, pos)
        .concat(&detour)
        .expect("invariant: detour starts at r1");
    Ok(LocalRestoration {
        r1,
        concatenation,
        end_to_end,
    })
}

/// **Edge-bypass** local RBPC: `R1` patches around the failed link with a
/// concatenation of surviving base LSPs, after which the packet resumes
/// the original LSP at the link's far endpoint.
///
/// The remainder of `lsp_path` past the failed link must itself survive
/// `failures` (with multiple failures, local patching alone cannot
/// guarantee loop-free delivery — the paper's hybrid scheme falls back to
/// the source).
///
/// # Errors
///
/// * [`RestoreError::EdgeNotOnPath`] if `failed` is not on `lsp_path`;
/// * [`RestoreError::Disconnected`] if the link cannot be bypassed or the
///   LSP's tail is also broken.
pub fn edge_bypass<O: BasePathOracle>(
    oracle: &O,
    lsp_path: &Path,
    failed: EdgeId,
    failures: &FailureSet,
) -> Result<LocalRestoration, RestoreError> {
    let (pos, r1, far) = locate(lsp_path, failed)?;
    let mut trace = obs_trace!(
        "local.edge_bypass",
        cat: "restore",
        r1 = r1.index(),
        k_failures = failures.failed_edge_count(),
    );
    let bypass = {
        let _t = obs_trace!("detour.search", cat: "lookup");
        oracle
            .path_under(r1, far, failures)
            .ok_or(RestoreError::Disconnected {
                source: r1,
                target: far,
            })?
    };
    let tail = lsp_path.subpath(pos + 1, lsp_path.nodes().len() - 1);
    if !crate::decompose::path_survives(&tail, failures) {
        return Err(RestoreError::Disconnected {
            source: far,
            target: lsp_path.target(),
        });
    }
    let concatenation = greedy_decompose(oracle, &bypass);
    obs_trace_attr!(trace, stack_depth = concatenation.len());
    let end_to_end = lsp_path
        .subpath(0, pos)
        .concat(&bypass)
        .expect("invariant: bypass starts at r1")
        .concat(&tail)
        .expect("invariant: bypass ends at the far endpoint");
    Ok(LocalRestoration {
        r1,
        concatenation,
        end_to_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseBasePaths, Restorer};
    use rbpc_graph::{CostModel, Graph, Metric};
    use rbpc_topo::{cycle, gnm_connected};

    fn model() -> CostModel {
        CostModel::new(Metric::Weighted, 31)
    }

    fn oracle(g: &Graph) -> DenseBasePaths {
        DenseBasePaths::build(g.clone(), model())
    }

    #[test]
    fn end_route_restores_on_cycle() {
        let g = cycle(6);
        let o = oracle(&g);
        let base = o.base_path(0.into(), 2.into()).unwrap();
        let failed = base.edges()[0];
        let failures = FailureSet::of_edge(failed);
        let lr = end_route(&o, &base, failed, &failures).unwrap();
        assert_eq!(lr.r1, base.nodes()[0]);
        assert_eq!(lr.end_to_end.source(), 0.into());
        assert_eq!(lr.end_to_end.target(), 2.into());
        assert!(!lr.end_to_end.contains_edge(failed));
        // Around the cycle: 4 hops the other way.
        assert_eq!(lr.end_to_end.hop_count(), 4);
    }

    #[test]
    fn edge_bypass_resumes_original_path() {
        let g = cycle(6);
        let o = oracle(&g);
        let base = o.base_path(0.into(), 2.into()).unwrap();
        // Fail the middle link of the 2-hop path 0-1-2.
        let failed = base.edges()[1];
        let failures = FailureSet::of_edge(failed);
        let lr = edge_bypass(&o, &base, failed, &failures).unwrap();
        assert_eq!(lr.r1, base.nodes()[1]);
        // Bypass of 1-2 goes 1-0-5-4-3-2 (4... the other way around): the
        // end-to-end walk still starts 0-1 and ends at 2 without the edge.
        assert_eq!(lr.end_to_end.source(), 0.into());
        assert_eq!(lr.end_to_end.target(), 2.into());
        assert!(!lr.end_to_end.contains_edge(failed));
        assert!(lr.end_to_end.hop_count() > base.hop_count());
    }

    #[test]
    fn mid_path_failure_keeps_prefix() {
        for seed in 0..6 {
            let g = gnm_connected(30, 70, 9, seed);
            let o = oracle(&g);
            let base = o.base_path(0.into(), 29.into()).unwrap();
            if base.hop_count() < 3 {
                continue;
            }
            let failed = base.edges()[base.hop_count() / 2];
            let failures = FailureSet::of_edge(failed);
            let pos = base.edges().iter().position(|&e| e == failed).unwrap();
            for result in [
                end_route(&o, &base, failed, &failures),
                edge_bypass(&o, &base, failed, &failures),
            ] {
                let Ok(lr) = result else { continue };
                // Prefix up to R1 is untouched.
                assert_eq!(
                    &lr.end_to_end.nodes()[..=pos],
                    &base.nodes()[..=pos],
                    "seed {seed}"
                );
                assert!(!lr.end_to_end.contains_edge(failed));
                assert!(lr.pc_length() >= 1);
            }
        }
    }

    #[test]
    fn local_is_never_shorter_than_source_rbpc() {
        for seed in 0..6 {
            let g = gnm_connected(25, 60, 9, seed);
            let o = oracle(&g);
            let restorer = Restorer::new(&o);
            let base = o.base_path(2.into(), 20.into()).unwrap();
            for &failed in base.edges() {
                let failures = FailureSet::of_edge(failed);
                let Ok(source_res) = restorer.restore(2.into(), 20.into(), &failures) else {
                    continue;
                };
                for result in [
                    end_route(&o, &base, failed, &failures),
                    edge_bypass(&o, &base, failed, &failures),
                ] {
                    let Ok(lr) = result else { continue };
                    let local_cost = lr.end_to_end.cost(&g, &model()).base;
                    assert!(
                        local_cost >= source_res.backup_cost.base,
                        "seed {seed}: local beat optimal"
                    );
                }
            }
        }
    }

    #[test]
    fn wrong_edge_is_rejected() {
        let g = cycle(5);
        let o = oracle(&g);
        let base = o.base_path(0.into(), 1.into()).unwrap();
        let other = g.find_edge(2.into(), 3.into()).unwrap();
        let failures = FailureSet::of_edge(other);
        assert_eq!(
            end_route(&o, &base, other, &failures).unwrap_err(),
            RestoreError::EdgeNotOnPath { edge: other }
        );
        assert_eq!(
            edge_bypass(&o, &base, other, &failures).unwrap_err(),
            RestoreError::EdgeNotOnPath { edge: other }
        );
    }

    #[test]
    fn unbypassable_bridge_errors() {
        let mut g = Graph::new(3);
        let bridge = g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let o = oracle(&g);
        let base = o.base_path(0.into(), 2.into()).unwrap();
        let failures = FailureSet::of_edge(bridge);
        assert!(matches!(
            end_route(&o, &base, bridge, &failures),
            Err(RestoreError::Disconnected { .. })
        ));
        assert!(matches!(
            edge_bypass(&o, &base, bridge, &failures),
            Err(RestoreError::Disconnected { .. })
        ));
    }

    #[test]
    fn edge_bypass_rejects_broken_tail() {
        let g = cycle(6);
        let o = oracle(&g);
        let base = o.base_path(0.into(), 3.into()).unwrap();
        assert_eq!(base.hop_count(), 3);
        // Fail the first hop AND a later hop of the LSP.
        let mut failures = FailureSet::of_edge(base.edges()[0]);
        failures.fail_edge(base.edges()[2]);
        assert!(matches!(
            edge_bypass(&o, &base, base.edges()[0], &failures),
            Err(RestoreError::Disconnected { .. })
        ));
        // End-route handles it: it ignores the broken tail entirely.
        // (0-1 and 3-... wait: with two of six cycle edges down the graph
        // may split; just assert it doesn't panic.)
        let _ = end_route(&o, &base, base.edges()[0], &failures);
    }

    #[test]
    fn node_failure_end_route() {
        let g = cycle(6);
        let o = DenseBasePaths::build(g.clone(), CostModel::new(Metric::Unweighted, 4));
        let base = o.base_path(0.into(), 3.into()).unwrap();
        // The router after R1 on the path dies; its incident link on the
        // path is the failed element R1 detects.
        let dead = base.nodes()[2];
        let failures = FailureSet::of_nodes([dead.index()]);
        let failed_edge = base.edges()[1]; // link into the dead router
        let lr = end_route(&o, &base, failed_edge, &failures).unwrap();
        assert!(!lr.end_to_end.contains_node(dead));
        assert_eq!(lr.end_to_end.target(), 3.into());
    }
}
