//! Base-path oracles: the provisioned set of canonical shortest paths.
//!
//! Theorem 3 of the paper shows a base set with **exactly one** shortest
//! path per ordered pair suffices, provided shortest paths are made unique
//! by infinitesimal padding. Our [`CostModel`] realizes the padding, so the
//! base set is simply "the shortest-path tree of every source", and a path
//! is a base path iff it is a tree path of its own source — an `O(len)`
//! check that never materializes the set.
//!
//! Two implementations trade memory for latency:
//!
//! * [`DenseBasePaths`] precomputes every source's tree — right for graphs
//!   up to a few thousand nodes (the paper's ISP);
//! * [`LazyBasePaths`] computes trees on demand behind a bounded cache —
//!   right for the 4 746-node AS graph and the 40 377-node Internet map,
//!   where the paper (and we) sample pairs rather than enumerate them.
//!
//! Both return bit-identical answers because the trees are canonical for a
//! given `(metric, seed)`.

use rbpc_graph::{
    par_all_sources, repair_after_failures, shortest_path_tree, CostModel, EdgeId, FailureSet,
    Graph, NodeId, ParStats, Path, PathCost, ShortestPathTree,
};
use rbpc_obs::{obs_count, obs_record, obs_span, obs_trace};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// The caches guarded here are always left consistent between operations
/// (a panicked holder can at worst have skipped an insert), so continuing
/// past poison is safe and keeps one crashed experiment thread from
/// wedging every other one.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Default worker-thread count for batch provisioning: the machine's
/// available parallelism, or 1 if that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Records a provisioning batch's [`ParStats`] into the obs registry.
pub(crate) fn record_par_stats(stats: &ParStats) {
    obs_count!("core.provision.chunk_claims", stats.total_chunks_claimed());
    obs_count!(
        "core.provision.scratch_reuses",
        stats.total_scratch_reuses()
    );
    for &settled in &stats.settled {
        obs_record!("core.provision.settled_per_thread", settled);
    }
    // Frontier traffic of the batched SPT kernel: pops equal settles by
    // construction (decrease-key, no duplicate entries), so any gap
    // between pushes and decrease-keys in live telemetry is the
    // duplicate-pop work the batch kernel eliminated.
    obs_count!("core.provision.heap_pushes", stats.total_heap_pushes());
    obs_count!("core.provision.heap_pops", stats.total_heap_pops());
    obs_count!("core.provision.decrease_keys", stats.total_decrease_keys());
    // Silence unused-variable lint when the obs feature is off.
    let _ = stats;
}

/// Repairs a clone of `base` to reflect `failures`, via
/// [`repair_after_failures`] — the shared fast path behind
/// [`BasePathOracle::with_spt_under`] for oracles that store unfailed
/// trees. The caller must have ruled out a failed `source` (not
/// expressible as a repair).
pub(crate) fn repaired_tree(
    graph: &Graph,
    model: &CostModel,
    base: &ShortestPathTree,
    failures: &FailureSet,
) -> ShortestPathTree {
    // A node failure is equivalent to failing all of its incident edges;
    // the dead node itself never re-attaches because the view masks them.
    let mut edges: Vec<EdgeId> = failures.failed_edges().collect();
    for v in failures.failed_nodes() {
        edges.extend(graph.neighbors(v).map(|h| h.edge));
    }
    edges.sort_unstable();
    edges.dedup();
    let view = failures.view(graph);
    let _span = obs_span!("spt.repair.ns");
    let mut tree = base.clone();
    let stats = repair_after_failures(&mut tree, &view, model, &edges);
    obs_record!("spt.repair.nodes_touched", stats.nodes_touched as u64);
    tree
}

/// Rebuilds a tree from scratch over the failed view — the slow path used
/// when no unfailed tree is available or the source itself is failed.
pub(crate) fn rebuilt_tree(
    graph: &Graph,
    model: &CostModel,
    source: NodeId,
    failures: &FailureSet,
) -> ShortestPathTree {
    let _span = obs_span!("spt.rebuild.ns");
    shortest_path_tree(&failures.view(graph), model, source)
}

/// The provisioned base set: one canonical shortest path per ordered pair.
///
/// All methods are derived from [`BasePathOracle::with_spt`]; implementors
/// only supply tree storage.
pub trait BasePathOracle {
    /// The graph the base set was computed over.
    fn graph(&self) -> &Graph;

    /// The cost model (metric + padding seed) defining canonical paths.
    fn cost_model(&self) -> &CostModel;

    /// Runs `f` with the shortest-path tree rooted at `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R;

    /// Runs `f` with the shortest-path tree rooted at `source` over the
    /// graph with `failures` applied — the tree a router recomputes when
    /// links go down.
    ///
    /// The default implementation rebuilds from scratch (recorded under the
    /// `spt.rebuild.ns` histogram). [`DenseBasePaths`] and
    /// [`LazyBasePaths`] override it to *repair* their cached unfailed tree
    /// incrementally (`spt.repair.ns` / `spt.repair.nodes_touched`), which
    /// yields a bit-identical tree because padded costs make shortest paths
    /// unique — see [`rbpc_graph::repair_after_failures`].
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    fn with_spt_under<R>(
        &self,
        source: NodeId,
        failures: &FailureSet,
        f: impl FnOnce(&ShortestPathTree) -> R,
    ) -> R {
        if failures.is_empty() {
            return self.with_spt(source, f);
        }
        f(&rebuilt_tree(
            self.graph(),
            self.cost_model(),
            source,
            failures,
        ))
    }

    /// The canonical shortest path from `s` to `t` over the failed view,
    /// or `None` if the failures disconnect the pair.
    fn path_under(&self, s: NodeId, t: NodeId, failures: &FailureSet) -> Option<Path> {
        self.with_spt_under(s, failures, |spt| spt.path_to(t))
    }

    /// The canonical base path from `s` to `t`, or `None` if disconnected.
    fn base_path(&self, s: NodeId, t: NodeId) -> Option<Path> {
        self.with_spt(s, |spt| spt.path_to(t))
    }

    /// Original-metric distance from `s` to `t`.
    fn base_dist(&self, s: NodeId, t: NodeId) -> Option<u64> {
        self.with_spt(s, |spt| spt.base_dist(t))
    }

    /// Full cost (base, perturbed, hops) from `s` to `t`.
    fn base_cost(&self, s: NodeId, t: NodeId) -> Option<PathCost> {
        self.with_spt(s, |spt| spt.cost_to(t))
    }

    /// Whether `path` is exactly the canonical base path between its
    /// endpoints. `O(len)` via tree-step checks; trivial paths qualify.
    fn is_base_path(&self, path: &Path) -> bool {
        self.longest_base_prefix(path, 0) == path.nodes().len() - 1
    }

    /// The largest node index `j ≥ from` such that `path[from..=j]` is a
    /// base path. Returns `from` itself when not even one hop matches the
    /// tree of `path.nodes()[from]`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range for the path.
    fn longest_base_prefix(&self, path: &Path, from: usize) -> usize {
        let nodes = path.nodes();
        let edges = path.edges();
        assert!(from < nodes.len(), "from out of range");
        self.with_spt(nodes[from], |spt| {
            let mut j = from;
            while j + 1 < nodes.len() && spt.is_tree_step(nodes[j], edges[j], nodes[j + 1]) {
                j += 1;
            }
            j
        })
    }
}

/// Precomputed all-pairs base paths: one [`ShortestPathTree`] per source.
///
/// Memory is `O(n²)`; see [`LazyBasePaths`] for large graphs.
#[derive(Debug, Clone)]
pub struct DenseBasePaths {
    graph: Graph,
    model: CostModel,
    trees: Vec<ShortestPathTree>,
}

impl DenseBasePaths {
    /// Computes every source's tree up front, on
    /// [`default_threads`] worker threads.
    ///
    /// The trees are bit-identical for every thread count (padded costs
    /// make them canonical), so parallel provisioning is an invisible
    /// speedup — see [`rbpc_graph::par_all_sources`].
    pub fn build(graph: Graph, model: CostModel) -> Self {
        Self::build_with_threads(graph, model, default_threads())
    }

    /// [`DenseBasePaths::build`] on an explicit number of worker threads
    /// (the eval binary's `--threads` flag lands here). `0` means 1.
    pub fn build_with_threads(graph: Graph, model: CostModel, threads: usize) -> Self {
        let _span = obs_span!("core.provision.build.ns");
        let sources: Vec<NodeId> = graph.nodes().collect();
        let (trees, stats) = par_all_sources(&graph, &model, &sources, threads);
        record_par_stats(&stats);
        DenseBasePaths {
            graph,
            model,
            trees,
        }
    }

    /// Direct access to a source's tree.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn spt(&self, source: NodeId) -> &ShortestPathTree {
        &self.trees[source.index()]
    }
}

impl BasePathOracle for DenseBasePaths {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn cost_model(&self) -> &CostModel {
        &self.model
    }

    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        f(&self.trees[source.index()])
    }

    fn with_spt_under<R>(
        &self,
        source: NodeId,
        failures: &FailureSet,
        f: impl FnOnce(&ShortestPathTree) -> R,
    ) -> R {
        if failures.is_empty() {
            return self.with_spt(source, f);
        }
        if failures.node_failed(source) {
            // Not expressible as a repair; the rebuild early-exits anyway.
            return f(&rebuilt_tree(&self.graph, &self.model, source, failures));
        }
        let _t = obs_trace!("spt.repair", cat: "lookup", source = source.index());
        f(&repaired_tree(
            &self.graph,
            &self.model,
            &self.trees[source.index()],
            failures,
        ))
    }
}

/// On-demand base paths with a bounded FIFO tree cache.
///
/// Answers are identical to [`DenseBasePaths`] (trees are canonical); only
/// memory and latency differ. Thread-safe: the cache is lock-protected and
/// trees are shared via [`Arc`], so parallel experiment sampling can share
/// one oracle.
#[derive(Debug)]
pub struct LazyBasePaths {
    graph: Graph,
    model: CostModel,
    cache: Mutex<LazyCache>,
    capacity: usize,
    evicted: std::sync::atomic::AtomicU64,
}

#[derive(Debug, Default)]
struct LazyCache {
    map: BTreeMap<u32, Arc<ShortestPathTree>>,
    order: VecDeque<u32>,
}

impl LazyBasePaths {
    /// Default number of cached trees.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Creates a lazy oracle with the default cache capacity.
    pub fn new(graph: Graph, model: CostModel) -> Self {
        Self::with_capacity(graph, model, Self::DEFAULT_CAPACITY)
    }

    /// Creates a lazy oracle caching at most `capacity` trees.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(graph: Graph, model: CostModel, capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be positive");
        LazyBasePaths {
            graph,
            model,
            cache: Mutex::new(LazyCache::default()),
            capacity,
            evicted: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of trees currently cached (for tests and monitoring).
    pub fn cached_trees(&self) -> usize {
        lock_unpoisoned(&self.cache).map.len()
    }

    /// The cache's capacity in trees.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Trees evicted from the cache so far.
    pub fn evictions(&self) -> u64 {
        self.evicted.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Runs `f` with `source`'s tree only if it is already cached;
    /// returns `None` (computing nothing) otherwise. Lets batch layers
    /// probe residency without triggering a Dijkstra.
    pub fn with_spt_if_cached<R>(
        &self,
        source: NodeId,
        f: impl FnOnce(&ShortestPathTree) -> R,
    ) -> Option<R> {
        let key = source.index() as u32;
        let cached = lock_unpoisoned(&self.cache).map.get(&key).map(Arc::clone);
        cached.map(|t| f(&t))
    }

    fn tree(&self, source: NodeId) -> Arc<ShortestPathTree> {
        let key = source.index() as u32;
        if let Some(t) = lock_unpoisoned(&self.cache).map.get(&key) {
            obs_count!("core.basepaths.cache_hit");
            return Arc::clone(t);
        }
        obs_count!("core.basepaths.cache_miss");
        // Compute outside the lock; a racing thread may duplicate the work
        // but the result is identical either way.
        let _t = obs_trace!("spt.build", cat: "lookup", source = source.index());
        let computed = Arc::new(shortest_path_tree(&self.graph, &self.model, source));
        let mut cache = lock_unpoisoned(&self.cache);
        if let Some(t) = cache.map.get(&key) {
            // A racing thread built this tree while we were computing it:
            // our Dijkstra was duplicated work. Keep theirs (identical
            // contents, and it is already in FIFO order) and count it.
            obs_count!("core.basepaths.duplicate_spt");
            return Arc::clone(t);
        }
        while cache.map.len() >= self.capacity {
            if let Some(old) = cache.order.pop_front() {
                if cache.map.remove(&old).is_some() {
                    self.evicted
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            } else {
                break;
            }
        }
        cache.map.insert(key, Arc::clone(&computed));
        cache.order.push_back(key);
        computed
    }
}

impl BasePathOracle for LazyBasePaths {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn cost_model(&self) -> &CostModel {
        &self.model
    }

    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        let tree = self.tree(source);
        f(&tree)
    }

    fn with_spt_under<R>(
        &self,
        source: NodeId,
        failures: &FailureSet,
        f: impl FnOnce(&ShortestPathTree) -> R,
    ) -> R {
        if failures.is_empty() {
            return self.with_spt(source, f);
        }
        if failures.node_failed(source) {
            return f(&rebuilt_tree(&self.graph, &self.model, source, failures));
        }
        // Repair a clone of the cached unfailed tree; the (transient)
        // failed tree is never cached, so the cache stays canonical.
        let base = self.tree(source);
        let _t = obs_trace!("spt.repair", cat: "lookup", source = source.index());
        f(&repaired_tree(&self.graph, &self.model, &base, failures))
    }
}

impl<O: BasePathOracle> BasePathOracle for &O {
    fn graph(&self) -> &Graph {
        (**self).graph()
    }

    fn cost_model(&self) -> &CostModel {
        (**self).cost_model()
    }

    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        (**self).with_spt(source, f)
    }

    fn with_spt_under<R>(
        &self,
        source: NodeId,
        failures: &FailureSet,
        f: impl FnOnce(&ShortestPathTree) -> R,
    ) -> R {
        (**self).with_spt_under(source, failures, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::Metric;
    use rbpc_topo::gnm_connected;

    fn model() -> CostModel {
        CostModel::new(Metric::Weighted, 21)
    }

    #[test]
    fn dense_and_lazy_agree_exactly() {
        let g = gnm_connected(40, 90, 12, 5);
        let dense = DenseBasePaths::build(g.clone(), model());
        let lazy = LazyBasePaths::with_capacity(g.clone(), model(), 4);
        for s in g.nodes() {
            for t in g.nodes() {
                assert_eq!(dense.base_path(s, t), lazy.base_path(s, t));
                assert_eq!(dense.base_dist(s, t), lazy.base_dist(s, t));
            }
        }
    }

    #[test]
    fn lazy_cache_evicts_fifo() {
        let g = gnm_connected(20, 40, 5, 1);
        let lazy = LazyBasePaths::with_capacity(g, model(), 3);
        for s in 0..6usize {
            let _ = lazy.base_dist(s.into(), 0.into());
        }
        assert_eq!(lazy.cached_trees(), 3);
        // Re-query an evicted source: still correct.
        let d = lazy.base_dist(0.into(), 5.into());
        assert!(d.is_some());
    }

    #[test]
    fn base_paths_are_recognized() {
        let g = gnm_connected(30, 70, 9, 3);
        let oracle = DenseBasePaths::build(g.clone(), model());
        for t in [5usize, 17, 29] {
            let p = oracle.base_path(0.into(), t.into()).unwrap();
            assert!(oracle.is_base_path(&p));
            // Subpaths of base paths are base paths (padding uniqueness).
            if p.hop_count() >= 2 {
                assert!(oracle.is_base_path(&p.subpath(1, p.nodes().len() - 1)));
            }
        }
    }

    #[test]
    fn non_base_paths_are_rejected() {
        // A square with one heavy edge: the heavy detour is not a base path.
        let mut g = Graph::new(4);
        for (a, b, w) in [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 10)] {
            g.add_edge(a, b, w).unwrap();
        }
        let oracle = DenseBasePaths::build(g.clone(), model());
        let heavy = Path::from_edges(&g, 0.into(), &[3.into()]).unwrap();
        assert!(!oracle.is_base_path(&heavy)); // 0-3 direct costs 10 vs 3
        assert_eq!(oracle.base_dist(0.into(), 3.into()), Some(3));
    }

    #[test]
    fn longest_base_prefix_walks_maximally() {
        let mut g = Graph::new(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            g.add_unit_edge(a, b).unwrap();
        }
        let oracle = DenseBasePaths::build(g.clone(), model());
        let p = oracle.base_path(0.into(), 3.into()).unwrap();
        assert_eq!(oracle.longest_base_prefix(&p, 0), 3);
        assert_eq!(oracle.longest_base_prefix(&p, 2), 3);
        assert_eq!(oracle.longest_base_prefix(&p, 3), 3);
    }

    #[test]
    fn trivial_path_is_base() {
        let g = gnm_connected(5, 6, 3, 0);
        let oracle = DenseBasePaths::build(g, model());
        assert!(oracle.is_base_path(&Path::trivial(2.into())));
    }

    #[test]
    fn disconnected_pairs_have_no_base_path() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1).unwrap();
        let oracle = DenseBasePaths::build(g, model());
        assert_eq!(oracle.base_path(0.into(), 2.into()), None);
        assert_eq!(oracle.base_dist(0.into(), 2.into()), None);
        assert_eq!(oracle.base_cost(0.into(), 2.into()), None);
    }

    #[test]
    // The double borrow deliberately exercises the `&O` blanket impl.
    #[allow(clippy::needless_borrows_for_generic_args)]
    fn oracle_by_reference_works() {
        fn takes_oracle<O: BasePathOracle>(o: O) -> usize {
            o.graph().node_count()
        }
        let g = gnm_connected(5, 6, 3, 0);
        let oracle = DenseBasePaths::build(g, model());
        assert_eq!(takes_oracle(&oracle), 5);
        assert_eq!(takes_oracle(&&oracle), 5);
    }

    #[test]
    fn with_spt_under_matches_rebuild_for_all_oracles() {
        let g = gnm_connected(40, 90, 12, 5);
        let dense = DenseBasePaths::build(g.clone(), model());
        let lazy = LazyBasePaths::with_capacity(g.clone(), model(), 4);
        let mut failures = FailureSet::new();
        // A couple of edge failures plus a node failure.
        failures.fail_edge(rbpc_graph::EdgeId::new(0));
        failures.fail_edge(rbpc_graph::EdgeId::new(17));
        failures.fail_node(7.into());
        // Generic so `O = &DenseBasePaths` goes through the `&O` blanket
        // impl, which must forward the override, not fall back to the
        // default rebuild.
        fn check<O: BasePathOracle>(
            oracle: O,
            failures: &FailureSet,
            s: NodeId,
            want: &ShortestPathTree,
        ) {
            oracle.with_spt_under(s, failures, |spt| assert_eq!(spt, want));
        }
        for s in g.nodes() {
            let want = shortest_path_tree(&failures.view(&g), &model(), s);
            dense.with_spt_under(s, &failures, |spt| assert_eq!(spt, &want, "dense, {s}"));
            lazy.with_spt_under(s, &failures, |spt| assert_eq!(spt, &want, "lazy, {s}"));
            check(&dense, &failures, s, &want);
        }
    }

    #[test]
    fn with_spt_under_empty_failures_is_base_tree() {
        let g = gnm_connected(20, 40, 5, 1);
        let dense = DenseBasePaths::build(g.clone(), model());
        let none = FailureSet::new();
        for s in g.nodes() {
            dense.with_spt_under(s, &none, |spt| assert_eq!(spt, dense.spt(s)));
        }
    }

    #[test]
    fn path_under_avoids_failures() {
        let g = gnm_connected(30, 70, 9, 3);
        let oracle = DenseBasePaths::build(g.clone(), model());
        let p = oracle.base_path(0.into(), 20.into()).unwrap();
        let mut failures = FailureSet::new();
        failures.fail_edge(p.edges()[0]);
        if let Some(q) = oracle.path_under(0.into(), 20.into(), &failures) {
            assert!(!q.contains_edge(p.edges()[0]));
            assert_eq!(
                Some(&q),
                rbpc_graph::shortest_path(&failures.view(&g), &model(), 0.into(), 20.into())
                    .as_ref()
            );
        }
    }

    #[test]
    fn dense_build_is_thread_count_invariant() {
        let g = gnm_connected(30, 70, 9, 3);
        let seq = DenseBasePaths::build_with_threads(g.clone(), model(), 1);
        for threads in [2usize, 4, 8] {
            let par = DenseBasePaths::build_with_threads(g.clone(), model(), threads);
            for s in g.nodes() {
                assert_eq!(seq.spt(s), par.spt(s), "threads = {threads}, source {s}");
            }
        }
        // `build` (auto thread count) must agree too.
        let auto = DenseBasePaths::build(g.clone(), model());
        for s in g.nodes() {
            assert_eq!(seq.spt(s), auto.spt(s));
        }
    }

    #[test]
    fn lazy_stress_never_over_caches() {
        // Many threads hammer a few sources through an ample cache; racing
        // misses may duplicate Dijkstra work, but the cache must never hold
        // more than one tree per source (and never exceed its capacity).
        let g = gnm_connected(16, 40, 6, 8);
        let n = g.node_count();
        let lazy = LazyBasePaths::with_capacity(g.clone(), model(), 2 * n);
        std::thread::scope(|scope| {
            for worker in 0..8usize {
                let lazy = &lazy;
                scope.spawn(move || {
                    for round in 0..50usize {
                        let s = (worker + round) % 4; // heavy collision on 4 sources
                        let t = (worker * 5 + round) % 16;
                        let _ = lazy.base_dist(s.into(), t.into());
                    }
                });
            }
        });
        assert!(
            lazy.cached_trees() <= n,
            "cache holds {} trees for an {n}-node graph",
            lazy.cached_trees()
        );
    }

    #[test]
    fn lazy_is_shareable_across_threads() {
        let g = gnm_connected(25, 60, 7, 2);
        let lazy = LazyBasePaths::new(g.clone(), model());
        let dense = DenseBasePaths::build(g.clone(), model());
        std::thread::scope(|scope| {
            for chunk in 0..4usize {
                let lazy = &lazy;
                let dense = &dense;
                scope.spawn(move || {
                    for s in (0..25).filter(|s| s % 4 == chunk) {
                        for t in 0..25usize {
                            assert_eq!(
                                lazy.base_dist(s.into(), t.into()),
                                dense.base_dist(s.into(), t.into())
                            );
                        }
                    }
                });
            }
        });
    }
}
