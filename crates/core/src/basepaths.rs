//! Base-path oracles: the provisioned set of canonical shortest paths.
//!
//! Theorem 3 of the paper shows a base set with **exactly one** shortest
//! path per ordered pair suffices, provided shortest paths are made unique
//! by infinitesimal padding. Our [`CostModel`] realizes the padding, so the
//! base set is simply "the shortest-path tree of every source", and a path
//! is a base path iff it is a tree path of its own source — an `O(len)`
//! check that never materializes the set.
//!
//! Two implementations trade memory for latency:
//!
//! * [`DenseBasePaths`] precomputes every source's tree — right for graphs
//!   up to a few thousand nodes (the paper's ISP);
//! * [`LazyBasePaths`] computes trees on demand behind a bounded cache —
//!   right for the 4 746-node AS graph and the 40 377-node Internet map,
//!   where the paper (and we) sample pairs rather than enumerate them.
//!
//! Both return bit-identical answers because the trees are canonical for a
//! given `(metric, seed)`.

use rbpc_graph::{shortest_path_tree, CostModel, Graph, NodeId, Path, PathCost, ShortestPathTree};
use rbpc_obs::{obs_count, obs_trace};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The provisioned base set: one canonical shortest path per ordered pair.
///
/// All methods are derived from [`BasePathOracle::with_spt`]; implementors
/// only supply tree storage.
pub trait BasePathOracle {
    /// The graph the base set was computed over.
    fn graph(&self) -> &Graph;

    /// The cost model (metric + padding seed) defining canonical paths.
    fn cost_model(&self) -> &CostModel;

    /// Runs `f` with the shortest-path tree rooted at `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R;

    /// The canonical base path from `s` to `t`, or `None` if disconnected.
    fn base_path(&self, s: NodeId, t: NodeId) -> Option<Path> {
        self.with_spt(s, |spt| spt.path_to(t))
    }

    /// Original-metric distance from `s` to `t`.
    fn base_dist(&self, s: NodeId, t: NodeId) -> Option<u64> {
        self.with_spt(s, |spt| spt.base_dist(t))
    }

    /// Full cost (base, perturbed, hops) from `s` to `t`.
    fn base_cost(&self, s: NodeId, t: NodeId) -> Option<PathCost> {
        self.with_spt(s, |spt| spt.cost_to(t))
    }

    /// Whether `path` is exactly the canonical base path between its
    /// endpoints. `O(len)` via tree-step checks; trivial paths qualify.
    fn is_base_path(&self, path: &Path) -> bool {
        self.longest_base_prefix(path, 0) == path.nodes().len() - 1
    }

    /// The largest node index `j ≥ from` such that `path[from..=j]` is a
    /// base path. Returns `from` itself when not even one hop matches the
    /// tree of `path.nodes()[from]`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range for the path.
    fn longest_base_prefix(&self, path: &Path, from: usize) -> usize {
        let nodes = path.nodes();
        let edges = path.edges();
        assert!(from < nodes.len(), "from out of range");
        self.with_spt(nodes[from], |spt| {
            let mut j = from;
            while j + 1 < nodes.len() && spt.is_tree_step(nodes[j], edges[j], nodes[j + 1]) {
                j += 1;
            }
            j
        })
    }
}

/// Precomputed all-pairs base paths: one [`ShortestPathTree`] per source.
///
/// Memory is `O(n²)`; see [`LazyBasePaths`] for large graphs.
#[derive(Debug, Clone)]
pub struct DenseBasePaths {
    graph: Graph,
    model: CostModel,
    trees: Vec<ShortestPathTree>,
}

impl DenseBasePaths {
    /// Computes every source's tree up front.
    pub fn build(graph: Graph, model: CostModel) -> Self {
        let trees = (0..graph.node_count())
            .map(|s| shortest_path_tree(&graph, &model, NodeId::new(s)))
            .collect();
        DenseBasePaths {
            graph,
            model,
            trees,
        }
    }

    /// Direct access to a source's tree.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn spt(&self, source: NodeId) -> &ShortestPathTree {
        &self.trees[source.index()]
    }
}

impl BasePathOracle for DenseBasePaths {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn cost_model(&self) -> &CostModel {
        &self.model
    }

    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        f(&self.trees[source.index()])
    }
}

/// On-demand base paths with a bounded FIFO tree cache.
///
/// Answers are identical to [`DenseBasePaths`] (trees are canonical); only
/// memory and latency differ. Thread-safe: the cache is lock-protected and
/// trees are shared via [`Arc`], so parallel experiment sampling can share
/// one oracle.
#[derive(Debug)]
pub struct LazyBasePaths {
    graph: Graph,
    model: CostModel,
    cache: Mutex<LazyCache>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct LazyCache {
    map: HashMap<u32, Arc<ShortestPathTree>>,
    order: VecDeque<u32>,
}

impl LazyBasePaths {
    /// Default number of cached trees.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Creates a lazy oracle with the default cache capacity.
    pub fn new(graph: Graph, model: CostModel) -> Self {
        Self::with_capacity(graph, model, Self::DEFAULT_CAPACITY)
    }

    /// Creates a lazy oracle caching at most `capacity` trees.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(graph: Graph, model: CostModel, capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be positive");
        LazyBasePaths {
            graph,
            model,
            cache: Mutex::new(LazyCache::default()),
            capacity,
        }
    }

    /// Number of trees currently cached (for tests and monitoring).
    pub fn cached_trees(&self) -> usize {
        self.cache.lock().unwrap().map.len()
    }

    fn tree(&self, source: NodeId) -> Arc<ShortestPathTree> {
        let key = source.index() as u32;
        if let Some(t) = self.cache.lock().unwrap().map.get(&key) {
            obs_count!("core.basepaths.cache_hit");
            return Arc::clone(t);
        }
        obs_count!("core.basepaths.cache_miss");
        // Compute outside the lock; a racing thread may duplicate the work
        // but the result is identical either way.
        let _t = obs_trace!("spt.build", cat: "lookup", source = source.index());
        let computed = Arc::new(shortest_path_tree(&self.graph, &self.model, source));
        let mut cache = self.cache.lock().unwrap();
        if let Some(t) = cache.map.get(&key) {
            return Arc::clone(t);
        }
        while cache.map.len() >= self.capacity {
            if let Some(old) = cache.order.pop_front() {
                cache.map.remove(&old);
            } else {
                break;
            }
        }
        cache.map.insert(key, Arc::clone(&computed));
        cache.order.push_back(key);
        computed
    }
}

impl BasePathOracle for LazyBasePaths {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn cost_model(&self) -> &CostModel {
        &self.model
    }

    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        let tree = self.tree(source);
        f(&tree)
    }
}

impl<O: BasePathOracle> BasePathOracle for &O {
    fn graph(&self) -> &Graph {
        (**self).graph()
    }

    fn cost_model(&self) -> &CostModel {
        (**self).cost_model()
    }

    fn with_spt<R>(&self, source: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        (**self).with_spt(source, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::Metric;
    use rbpc_topo::gnm_connected;

    fn model() -> CostModel {
        CostModel::new(Metric::Weighted, 21)
    }

    #[test]
    fn dense_and_lazy_agree_exactly() {
        let g = gnm_connected(40, 90, 12, 5);
        let dense = DenseBasePaths::build(g.clone(), model());
        let lazy = LazyBasePaths::with_capacity(g.clone(), model(), 4);
        for s in g.nodes() {
            for t in g.nodes() {
                assert_eq!(dense.base_path(s, t), lazy.base_path(s, t));
                assert_eq!(dense.base_dist(s, t), lazy.base_dist(s, t));
            }
        }
    }

    #[test]
    fn lazy_cache_evicts_fifo() {
        let g = gnm_connected(20, 40, 5, 1);
        let lazy = LazyBasePaths::with_capacity(g, model(), 3);
        for s in 0..6usize {
            let _ = lazy.base_dist(s.into(), 0.into());
        }
        assert_eq!(lazy.cached_trees(), 3);
        // Re-query an evicted source: still correct.
        let d = lazy.base_dist(0.into(), 5.into());
        assert!(d.is_some());
    }

    #[test]
    fn base_paths_are_recognized() {
        let g = gnm_connected(30, 70, 9, 3);
        let oracle = DenseBasePaths::build(g.clone(), model());
        for t in [5usize, 17, 29] {
            let p = oracle.base_path(0.into(), t.into()).unwrap();
            assert!(oracle.is_base_path(&p));
            // Subpaths of base paths are base paths (padding uniqueness).
            if p.hop_count() >= 2 {
                assert!(oracle.is_base_path(&p.subpath(1, p.nodes().len() - 1)));
            }
        }
    }

    #[test]
    fn non_base_paths_are_rejected() {
        // A square with one heavy edge: the heavy detour is not a base path.
        let mut g = Graph::new(4);
        for (a, b, w) in [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 10)] {
            g.add_edge(a, b, w).unwrap();
        }
        let oracle = DenseBasePaths::build(g.clone(), model());
        let heavy = Path::from_edges(&g, 0.into(), &[3.into()]).unwrap();
        assert!(!oracle.is_base_path(&heavy)); // 0-3 direct costs 10 vs 3
        assert_eq!(oracle.base_dist(0.into(), 3.into()), Some(3));
    }

    #[test]
    fn longest_base_prefix_walks_maximally() {
        let mut g = Graph::new(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            g.add_unit_edge(a, b).unwrap();
        }
        let oracle = DenseBasePaths::build(g.clone(), model());
        let p = oracle.base_path(0.into(), 3.into()).unwrap();
        assert_eq!(oracle.longest_base_prefix(&p, 0), 3);
        assert_eq!(oracle.longest_base_prefix(&p, 2), 3);
        assert_eq!(oracle.longest_base_prefix(&p, 3), 3);
    }

    #[test]
    fn trivial_path_is_base() {
        let g = gnm_connected(5, 6, 3, 0);
        let oracle = DenseBasePaths::build(g, model());
        assert!(oracle.is_base_path(&Path::trivial(2.into())));
    }

    #[test]
    fn disconnected_pairs_have_no_base_path() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1).unwrap();
        let oracle = DenseBasePaths::build(g, model());
        assert_eq!(oracle.base_path(0.into(), 2.into()), None);
        assert_eq!(oracle.base_dist(0.into(), 2.into()), None);
        assert_eq!(oracle.base_cost(0.into(), 2.into()), None);
    }

    #[test]
    // The double borrow deliberately exercises the `&O` blanket impl.
    #[allow(clippy::needless_borrows_for_generic_args)]
    fn oracle_by_reference_works() {
        fn takes_oracle<O: BasePathOracle>(o: O) -> usize {
            o.graph().node_count()
        }
        let g = gnm_connected(5, 6, 3, 0);
        let oracle = DenseBasePaths::build(g, model());
        assert_eq!(takes_oracle(&oracle), 5);
        assert_eq!(takes_oracle(&&oracle), 5);
    }

    #[test]
    fn lazy_is_shareable_across_threads() {
        let g = gnm_connected(25, 60, 7, 2);
        let lazy = LazyBasePaths::new(g.clone(), model());
        let dense = DenseBasePaths::build(g.clone(), model());
        std::thread::scope(|scope| {
            for chunk in 0..4usize {
                let lazy = &lazy;
                let dense = &dense;
                scope.spawn(move || {
                    for s in (0..25).filter(|s| s % 4 == chunk) {
                        for t in 0..25usize {
                            assert_eq!(
                                lazy.base_dist(s.into(), t.into()),
                                dense.base_dist(s.into(), t.into())
                            );
                        }
                    }
                });
            }
        });
    }
}
