//! With the `obs` feature disabled every instrumentation point compiles
//! to a no-op, so a full restore leaves the global registry untouched.
//! Run with `cargo test -p rbpc-core --no-default-features`.

#![cfg(not(feature = "obs"))]

use rbpc_core::{BasePathOracle, DenseBasePaths, Restorer};
use rbpc_graph::{CostModel, FailureSet, Metric, NodeId};
use rbpc_obs::Registry;
use rbpc_topo::gnm_connected;

#[test]
fn disabled_instrumentation_records_nothing() {
    let g = gnm_connected(12, 26, 5, 3);
    let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 7));
    let restorer = Restorer::new(&oracle);
    let (s, t) = (NodeId::new(0), NodeId::new(11));
    let base = oracle.base_path(s, t).expect("connected");
    let failures = FailureSet::of_edge(base.edges()[0]);
    let r = restorer.restore(s, t, &failures).expect("restorable");
    assert!(r.affected);

    let snap = Registry::global_snapshot();
    assert_eq!(snap.counter("core.restore.calls"), None);
    assert_eq!(snap.counter("core.restore.ok"), None);
    assert!(snap.histogram("core.restore.segments").is_none());
    assert!(snap.histogram("core.restore.ns").is_none());
}
