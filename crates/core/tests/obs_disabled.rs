//! With the `obs` feature disabled every instrumentation point compiles
//! to a no-op, so a full restore leaves the global registry untouched.
//! Run with `cargo test -p rbpc-core --no-default-features`.

#![cfg(not(feature = "obs"))]

use rbpc_core::{BasePathOracle, DenseBasePaths, Restorer};
use rbpc_graph::{CostModel, FailureSet, Metric, NodeId};
use rbpc_obs::{obs_trace, obs_trace_attr, Registry};
use rbpc_topo::gnm_connected;

#[test]
fn disabled_instrumentation_records_nothing() {
    let g = gnm_connected(12, 26, 5, 3);
    let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 7));
    let restorer = Restorer::new(&oracle);
    let (s, t) = (NodeId::new(0), NodeId::new(11));
    let base = oracle.base_path(s, t).expect("connected");
    let failures = FailureSet::of_edge(base.edges()[0]);
    let r = restorer.restore(s, t, &failures).expect("restorable");
    assert!(r.affected);

    let snap = Registry::global_snapshot();
    assert_eq!(snap.counter("core.restore.calls"), None);
    assert_eq!(snap.counter("core.restore.ok"), None);
    assert!(snap.histogram("core.restore.segments").is_none());
    assert!(snap.histogram("core.restore.ns").is_none());
}

#[test]
fn disabled_tracing_collects_nothing() {
    // Even with the collector explicitly armed, the traced restore paths
    // compile to no-ops and record no spans.
    rbpc_obs::start_tracing();
    let g = gnm_connected(12, 26, 5, 3);
    let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 7));
    let restorer = Restorer::new(&oracle);
    let (s, t) = (NodeId::new(0), NodeId::new(11));
    let base = oracle.base_path(s, t).expect("connected");
    let failures = FailureSet::of_edge(base.edges()[0]);
    restorer.restore(s, t, &failures).expect("restorable");
    assert!(rbpc_obs::stop_tracing().is_empty());
}

#[test]
fn disabled_trace_macros_are_zero_sized() {
    // `obs_trace!` expands to a unit value when the feature is off: no
    // guard object, no atomic load, nothing for the optimizer to keep.
    let mut span = obs_trace!("noop", cat: "test", answer = 42u64);
    assert_eq!(std::mem::size_of_val(&span), 0);
    obs_trace_attr!(span, more = 7u64);
    assert_eq!(std::mem::size_of_val(&span), 0);
}
