//! End-to-end checks that the restoration hot paths feed the global
//! metric registry: one restore call under a single failed link must show
//! up as exactly one restore, at most Theorem 3's `2k + 1 = 3` segments,
//! and the lazy oracle's cache counters must match its observable cache
//! behavior.

// The global registry only records when instrumentation is compiled in.
#![cfg(feature = "obs")]

use rbpc_core::{BasePathOracle, DenseBasePaths, LazyBasePaths, Restorer};
use rbpc_graph::{CostModel, FailureSet, Metric, NodeId};
use rbpc_obs::Registry;
use rbpc_topo::gnm_connected;
use std::sync::Mutex;

/// The registry is process-global; tests in this binary must not
/// interleave their delta measurements.
static SERIAL: Mutex<()> = Mutex::new(());

fn counter(name: &str) -> u64 {
    Registry::global_snapshot().counter(name).unwrap_or(0)
}

fn histogram(name: &str) -> (u64, u64) {
    Registry::global_snapshot()
        .histogram(name)
        .map(|s| (s.count, s.sum))
        .unwrap_or((0, 0))
}

#[test]
fn restore_under_one_failed_link_emits_expected_counters() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let g = gnm_connected(12, 26, 5, 3);
    let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 7));
    let restorer = Restorer::new(&oracle);
    let (s, t) = (NodeId::new(0), NodeId::new(11));
    let base = oracle.base_path(s, t).expect("connected");
    let failures = FailureSet::of_edge(base.edges()[0]);

    let calls = counter("core.restore.calls");
    let ok = counter("core.restore.ok");
    let err = counter("core.restore.err");
    let affected = counter("core.restore.affected");
    let decompose = counter("core.decompose.calls");
    let (seg_count, seg_sum) = histogram("core.restore.segments");
    let (lat_count, _) = histogram("core.restore.ns");

    let r = restorer.restore(s, t, &failures).expect("restorable");

    assert_eq!(counter("core.restore.calls"), calls + 1);
    assert_eq!(counter("core.restore.ok"), ok + 1);
    assert_eq!(counter("core.restore.err"), err);
    // The failed link is on the base path, so the LSP is affected.
    assert!(r.affected);
    assert_eq!(counter("core.restore.affected"), affected + 1);
    // An affected restore decomposes the backup path at least once.
    assert!(counter("core.decompose.calls") > decompose);
    // Exactly one segment-count sample, equal to the returned
    // concatenation and within Theorem 3's bound for k = 1.
    let (seg_count2, seg_sum2) = histogram("core.restore.segments");
    assert_eq!(seg_count2, seg_count + 1);
    assert_eq!(seg_sum2 - seg_sum, r.concatenation.len() as u64);
    assert!(
        r.concatenation.len() <= 3,
        "k = 1 allows at most 3 segments"
    );
    // The span recorded one latency sample.
    let (lat_count2, _) = histogram("core.restore.ns");
    assert_eq!(lat_count2, lat_count + 1);
}

#[test]
fn unaffected_restore_counts_ok_but_not_affected() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let g = gnm_connected(12, 26, 5, 3);
    let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 7));
    let restorer = Restorer::new(&oracle);
    let (s, t) = (NodeId::new(0), NodeId::new(11));
    let base = oracle.base_path(s, t).expect("connected");
    // Fail a link *off* the base path.
    let off_path = oracle
        .graph()
        .edge_ids()
        .find(|e| !base.edges().contains(e))
        .expect("graph has spare links");
    let failures = FailureSet::of_edge(off_path);

    let ok = counter("core.restore.ok");
    let affected = counter("core.restore.affected");
    let r = restorer.restore(s, t, &failures).expect("restorable");
    assert!(!r.affected);
    assert_eq!(counter("core.restore.ok"), ok + 1);
    assert_eq!(counter("core.restore.affected"), affected);
}

#[test]
fn lazy_oracle_cache_counters_match_observed_behavior() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let g = gnm_connected(15, 34, 6, 9);
    let lazy = LazyBasePaths::new(g, CostModel::new(Metric::Weighted, 2));

    let hits = counter("core.basepaths.cache_hit");
    let misses = counter("core.basepaths.cache_miss");
    // 5 sources x 15 targets = 75 tree lookups over 5 distinct trees.
    for s in 0..5usize {
        for t in 0..15usize {
            let _ = lazy.base_dist(s.into(), t.into());
        }
    }
    let hit_delta = counter("core.basepaths.cache_hit") - hits;
    let miss_delta = counter("core.basepaths.cache_miss") - misses;
    // Under the default capacity nothing evicts, so misses are exactly
    // the distinct sources — which is what the cache itself reports.
    assert_eq!(miss_delta, lazy.cached_trees() as u64);
    assert_eq!(miss_delta, 5);
    assert_eq!(hit_delta + miss_delta, 75);
}
