//! Release-mode twin of the Theorem 2 check in `Restorer::restore_inner`.
//!
//! The hot path guards the paper's stack-depth bound with a
//! `debug_assert!` that compiles away in release builds, so this test —
//! registered against that assert in `crates/lint/lint-invariants.txt`
//! (the `debug-invariants` lint rule enforces the pairing) — re-checks
//! the same invariant with real `assert!`s: for an edge-only failure set
//! of size k, every restoration's concatenation must satisfy
//! `validate_bounds(k)` (at most k + 1 segments, hence a label stack of
//! depth ≤ k + 1). Run from `scripts/check.sh` in release mode.

use rbpc_core::{BasePathOracle, DenseBasePaths, Restorer};
use rbpc_graph::{CostModel, EdgeId, FailureSet, Metric, NodeId};
use rbpc_topo::{gnm_connected, isp_topology, IspParams};

fn check_all_pairs(graph: rbpc_graph::Graph, seed: u64, k: usize) {
    let m = graph.edge_count();
    let oracle = DenseBasePaths::build(graph, CostModel::new(Metric::Weighted, seed));
    let restorer = Restorer::new(&oracle);
    let n = oracle.graph().node_count();
    // A deterministic spread of k failed edges, stepped so consecutive
    // failure sets overlap different parts of the topology.
    for round in 0..4usize {
        let failures = FailureSet::of_edges(
            (0..k).map(|i| EdgeId::new((round * 7 + i * (m / k.max(1)).max(1)) % m)),
        );
        let k_failed = failures.failed_edge_count();
        for s in 0..n {
            for t in (s + 1..n).step_by(3) {
                let Ok(r) = restorer.restore(NodeId::new(s), NodeId::new(t), &failures) else {
                    continue; // disconnected pairs are out of scope here
                };
                assert_eq!(
                    r.concatenation.validate_bounds(k_failed),
                    Ok(()),
                    "restoration {s} -> {t} under {k_failed} failed edges \
                     violates the Theorem 2 stack bound"
                );
            }
        }
    }
}

#[test]
fn theorem2_bound_holds_on_the_isp_topology() {
    let g = isp_topology(IspParams::default(), 21).graph;
    check_all_pairs(g, 21, 3);
}

#[test]
fn theorem2_bound_holds_on_gnm_under_heavier_failure_sets() {
    let g = gnm_connected(60, 150, 9, 21);
    check_all_pairs(g, 9, 6);
}
