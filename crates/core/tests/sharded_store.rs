//! Property test: the implicit sharded store is bit-identical to the
//! dense oracle.
//!
//! The sharded store never materializes a base path and may evict and
//! rebuild any tree at any time, on any number of worker threads — none
//! of which is allowed to change a single answer, because padded costs
//! make every shortest-path tree canonical. This test pins that down on
//! the two small families (the ~200-node ISP and a 1 000-node G(n,m)
//! that sits exactly at `PAR_SERIAL_CUTOFF`, so the parallel shard path
//! is exercised) across 1/2/8 threads, under a budget small enough to
//! force constant eviction. Run from `scripts/check.sh` in release mode.

use rbpc_core::{BasePathOracle, BasePathStore, DenseBasePaths, ShardedBasePaths};
use rbpc_graph::{CostModel, Metric, NodeId};
use rbpc_topo::{gnm_connected, isp_topology, IspParams};

const SEED: u64 = 21;

/// Every source's tree from the sharded store must equal the dense
/// oracle's, bit for bit, at every thread count — with the budget so
/// tight that most lookups rebuild an evicted shard.
fn assert_bit_identical(graph: rbpc_graph::Graph, metric: Metric, budget: usize, shard: usize) {
    let model = CostModel::new(metric, SEED);
    let dense = DenseBasePaths::build_with_threads(graph.clone(), model, 2);
    for threads in [1usize, 2, 8] {
        let sharded = ShardedBasePaths::with_budget(graph.clone(), model, budget, shard, threads);
        for s in graph.nodes() {
            sharded.with_spt(s, |tree| {
                assert_eq!(tree, dense.spt(s), "threads {threads}, source {s}")
            });
        }
        assert!(
            sharded.evicted_trees() > 0,
            "budget {budget} must evict on {} sources",
            graph.node_count()
        );
        assert!(sharded.resident_trees() <= budget.div_ceil(shard).max(1) * shard);
    }
}

#[test]
fn isp_200_sharded_matches_dense_across_thread_counts() {
    let g = isp_topology(IspParams::default(), SEED).graph;
    assert_bit_identical(g, Metric::Weighted, 24, 8);
}

#[test]
fn gnm_1000_sharded_matches_dense_across_thread_counts() {
    // 1 000 nodes is exactly rbpc_graph::PAR_SERIAL_CUTOFF: shard builds
    // take the parallel chunk-stealing path, not the serial inline one.
    let g = gnm_connected(1_000, 2_600, 12, SEED);
    assert_bit_identical(g, Metric::Weighted, 64, 32);
}

#[test]
fn sampled_base_paths_walk_identically() {
    // The materialized walks (not just the trees) agree pairwise, and
    // the dense oracle recognizes every sharded-store path as a base
    // path — the representation really is interchangeable.
    let g = isp_topology(IspParams::default(), SEED).graph;
    let model = CostModel::new(Metric::Unweighted, SEED);
    let dense = DenseBasePaths::build_with_threads(g.clone(), model, 2);
    let sharded = ShardedBasePaths::with_budget(g.clone(), model, 16, 8, 2);
    let n = g.node_count();
    for i in 0..400usize {
        let s = NodeId::new((i * 7) % n);
        let t = NodeId::new((i * 131 + 5) % n);
        let a = dense.base_path(s, t);
        let b = sharded.base_path(s, t);
        assert_eq!(a, b, "{s} -> {t}");
        if let Some(p) = b {
            assert!(dense.is_base_path(&p));
            assert!(sharded.is_base_path(&p));
        }
    }
}

#[test]
fn failed_trees_match_dense_under_failures() {
    // with_spt_under repairs a clone of the resident tree; the result
    // must equal the dense oracle's repair (itself validated against a
    // from-scratch rebuild in the unit tests).
    let g = gnm_connected(300, 800, 10, SEED);
    let model = CostModel::new(Metric::Weighted, SEED);
    let dense = DenseBasePaths::build_with_threads(g.clone(), model, 2);
    let sharded = ShardedBasePaths::with_budget(g.clone(), model, 32, 16, 2);
    let mut failures = rbpc_graph::FailureSet::new();
    failures.fail_edge(rbpc_graph::EdgeId::new(3));
    failures.fail_edge(rbpc_graph::EdgeId::new(41));
    failures.fail_node(NodeId::new(17));
    for s in (0..300usize).step_by(13) {
        let s = NodeId::new(s);
        dense.with_spt_under(s, &failures, |want| {
            sharded.with_spt_under(s, &failures, |got| assert_eq!(got, want, "source {s}"));
        });
    }
}
