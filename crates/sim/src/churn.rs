//! Churn workloads: failure/recovery *sequences*, not one-shot outages.
//!
//! The paper treats a single failure event and notes that every
//! restoration "is reversed when the link recovers"; follow-up work on
//! multi-failure recovery (e.g. the Enhanced-MRC line) evaluates schemes
//! under *sequences* of overlapping failures. This module provides that
//! workload: [`churn_sequence`] generates a deterministic stream of
//! [`ChurnEvent`]s with a bounded number of concurrently failed links, and
//! [`churn_under`] drives a scheme through it, simulating an
//! [`outage_under`](crate::outage_under) for every LSP each failure
//! disrupts and counting the routes each recovery lets revert to their
//! base LSP.
//!
//! Every failure here exercises the incremental-repair fast path: the
//! restoration schemes compute their backup routes through
//! `BasePathOracle::with_spt_under`, which repairs the source's cached
//! shortest-path tree instead of re-running Dijkstra (see
//! [`rbpc_graph::repair_after_failures`]).

use crate::{outage_under, LatencyModel, Scheme};
use rbpc_core::BasePathOracle;
use rbpc_graph::{DetRng, EdgeId, FailureSet, Graph, NodeId};
use rbpc_obs::{obs_count, obs_record, obs_trace, obs_trace_attr};

/// One link event in a churn sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnEvent {
    /// A live link goes down.
    Fail(EdgeId),
    /// A previously failed link comes back up.
    Recover(EdgeId),
}

impl ChurnEvent {
    /// The link the event concerns.
    pub fn edge(self) -> EdgeId {
        match self {
            ChurnEvent::Fail(e) | ChurnEvent::Recover(e) => e,
        }
    }
}

/// Generates a deterministic churn sequence of `len` events over `graph`'s
/// links.
///
/// Invariants: only live links fail, only failed links recover, and at
/// most `max_down` links are down at any point (with `max_down` clamped to
/// at least 1). Recoveries become more likely as the down set grows, so
/// long sequences oscillate rather than drift toward a fully failed
/// network. The same `(graph, len, max_down, seed)` always yields the same
/// sequence.
///
/// # Panics
///
/// Panics if the graph has no edges.
pub fn churn_sequence(graph: &Graph, len: usize, max_down: usize, seed: u64) -> Vec<ChurnEvent> {
    let m = graph.edge_count();
    assert!(m > 0, "cannot churn a graph with no edges");
    let max_down = max_down.clamp(1, m);
    let mut rng = DetRng::seed_from_u64(seed);
    let mut down: Vec<EdgeId> = Vec::new();
    let mut events = Vec::with_capacity(len);
    for _ in 0..len {
        let recover = !down.is_empty()
            && (down.len() >= max_down || rng.gen_bool(down.len() as f64 / max_down as f64 * 0.6));
        if recover {
            let i = rng.gen_range(0..down.len());
            events.push(ChurnEvent::Recover(down.swap_remove(i)));
        } else {
            let e = loop {
                let candidate = EdgeId::new(rng.gen_range(0..m));
                if !down.contains(&candidate) {
                    break candidate;
                }
            };
            down.push(e);
            events.push(ChurnEvent::Fail(e));
        }
    }
    events
}

/// What one churn event did to the tracked routes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEventReport {
    /// The event.
    pub event: ChurnEvent,
    /// Links down after the event (the instantaneous `k`).
    pub concurrent_down: usize,
    /// Routes whose base path crosses the failed link (0 for recoveries).
    pub disrupted: usize,
    /// Disrupted routes the scheme restored.
    pub restored: usize,
    /// Disrupted routes the scheme could not restore.
    pub unrestorable: usize,
    /// Routes whose base path is fully live again after a recovery — their
    /// restoration is reversed and the default FEC entry reinstated.
    pub reverted: usize,
    /// Mean outage (µs) over this event's restored routes, 0 if none.
    pub mean_outage_us: f64,
    /// Maximum outage (µs) over this event's restored routes.
    pub max_outage_us: u64,
}

/// Aggregate results of one scheme over a full churn sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSummary {
    /// The scheme driven through the sequence.
    pub scheme: Scheme,
    /// Failure events in the sequence.
    pub fail_events: usize,
    /// Recovery events in the sequence.
    pub recover_events: usize,
    /// Total route disruptions across all failure events.
    pub disrupted: usize,
    /// Disruptions the scheme restored.
    pub restored: usize,
    /// Disruptions the scheme could not restore.
    pub unrestorable: usize,
    /// Route reversions across all recovery events.
    pub reverted: usize,
    /// Mean outage (µs) over all restored disruptions.
    pub mean_outage_us: f64,
    /// Maximum outage (µs) observed.
    pub max_outage_us: u64,
    /// Per-event breakdown, in sequence order.
    pub per_event: Vec<ChurnEventReport>,
}

/// One chunk's tally of a failure event's disruptions (merged with sums
/// and maxima, so chunk order cannot affect the summary).
#[derive(Debug, Clone, Copy, Default)]
struct FailTally {
    disrupted: usize,
    restored: usize,
    unrestorable: usize,
    total_us: u64,
    max_us: u64,
}

/// Drives `scheme` through `events`, maintaining the live failure set and
/// evaluating restorations after every event.
///
/// On `Fail(e)`: every pair in `pairs` whose base path crosses `e` is
/// disrupted; its outage under the *full* current failure set is simulated
/// with [`outage_under`](crate::outage_under) (so overlapping failures
/// compound, and backup routes avoid everything that is currently down).
/// On `Recover(e)`: pairs whose base path crosses `e` and is now fully
/// live revert to their base LSP and are counted as `reverted`.
///
/// Each event runs inside a `churn.event` trace span (category `churn`),
/// so per-LSP `outage` spans nest beneath it in a trace export; counters
/// `sim.churn.*` and the `sim.churn.outage_us` histogram aggregate per
/// scheme.
pub fn churn_under<O: BasePathOracle + Sync>(
    oracle: &O,
    model: &LatencyModel,
    pairs: &[(NodeId, NodeId)],
    events: &[ChurnEvent],
    scheme: Scheme,
) -> ChurnSummary {
    churn_under_threads(oracle, model, pairs, events, scheme, 1)
}

/// [`churn_under`] with the per-event pair sweeps fanned out over up to
/// `threads` worker threads.
///
/// The event *sequence* is inherently serial (each event mutates the live
/// failure set), but within one event every tracked pair is independent:
/// a failure's per-LSP outages and a recovery's reversion checks read only
/// the oracle and the frozen failure set. Per-chunk tallies fold with sums
/// and maxima, so the summary — including every [`ChurnEventReport`] — is
/// **bit-identical** to the sequential drive for any thread count.
pub fn churn_under_threads<O: BasePathOracle + Sync>(
    oracle: &O,
    model: &LatencyModel,
    pairs: &[(NodeId, NodeId)],
    events: &[ChurnEvent],
    scheme: Scheme,
    threads: usize,
) -> ChurnSummary {
    let mut live = FailureSet::new();
    let mut down = 0usize;
    let mut per_event = Vec::with_capacity(events.len());
    let mut summary = ChurnSummary {
        scheme,
        fail_events: 0,
        recover_events: 0,
        disrupted: 0,
        restored: 0,
        unrestorable: 0,
        reverted: 0,
        mean_outage_us: 0.0,
        max_outage_us: 0,
        per_event: Vec::new(),
    };
    let mut total_outage_us = 0u64;
    for &event in events {
        let mut span = obs_trace!(
            "churn.event",
            cat: "churn",
            scheme = scheme.name(),
            edge = event.edge().index(),
        );
        obs_count!("sim.churn.events", label: scheme.name(), 1u64);
        let mut report = ChurnEventReport {
            event,
            concurrent_down: 0,
            disrupted: 0,
            restored: 0,
            unrestorable: 0,
            reverted: 0,
            mean_outage_us: 0.0,
            max_outage_us: 0,
        };
        match event {
            ChurnEvent::Fail(e) => {
                summary.fail_events += 1;
                live.fail_edge(e);
                down += 1;
                let mut event_total = 0u64;
                let live = &live;
                let tallies = crate::par::map_chunks(pairs, threads, |chunk| {
                    let mut tally = FailTally::default();
                    for &(s, t) in chunk {
                        let Some(base) = oracle.base_path(s, t) else {
                            continue;
                        };
                        if !base.contains_edge(e) {
                            continue;
                        }
                        tally.disrupted += 1;
                        match outage_under(oracle, model, s, t, e, live, scheme) {
                            Ok(r) => {
                                tally.restored += 1;
                                tally.total_us += r.restored_at_us;
                                tally.max_us = tally.max_us.max(r.restored_at_us);
                                obs_record!(
                                    "sim.churn.outage_us",
                                    label: scheme.name(),
                                    r.restored_at_us
                                );
                            }
                            Err(_) => {
                                tally.unrestorable += 1;
                                obs_count!("sim.churn.unrestorable", label: scheme.name(), 1u64);
                            }
                        }
                    }
                    tally
                });
                for tally in &tallies {
                    report.disrupted += tally.disrupted;
                    report.restored += tally.restored;
                    report.unrestorable += tally.unrestorable;
                    event_total += tally.total_us;
                    report.max_outage_us = report.max_outage_us.max(tally.max_us);
                }
                if report.restored > 0 {
                    report.mean_outage_us = event_total as f64 / report.restored as f64;
                }
                total_outage_us += event_total;
                obs_count!("sim.churn.disrupted", label: scheme.name(), report.disrupted);
            }
            ChurnEvent::Recover(e) => {
                summary.recover_events += 1;
                live.restore_edge(e);
                down = down.saturating_sub(1);
                let live = &live;
                let reverted = crate::par::map_chunks(pairs, threads, |chunk| {
                    chunk
                        .iter()
                        .filter(|&&(s, t)| {
                            oracle.base_path(s, t).is_some_and(|base| {
                                base.contains_edge(e)
                                    && base.edges().iter().all(|&b| !live.edge_failed(b))
                            })
                        })
                        .count()
                });
                report.reverted = reverted.iter().sum();
                obs_count!("sim.churn.reverted", label: scheme.name(), report.reverted);
            }
        }
        report.concurrent_down = down;
        obs_trace_attr!(span, concurrent_down = down);
        obs_trace_attr!(span, disrupted = report.disrupted);
        obs_trace_attr!(span, reverted = report.reverted);
        summary.disrupted += report.disrupted;
        summary.restored += report.restored;
        summary.unrestorable += report.unrestorable;
        summary.reverted += report.reverted;
        summary.max_outage_us = summary.max_outage_us.max(report.max_outage_us);
        per_event.push(report);
    }
    if summary.restored > 0 {
        summary.mean_outage_us = total_outage_us as f64 / summary.restored as f64;
    }
    summary.per_event = per_event;
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_core::DenseBasePaths;
    use rbpc_graph::{CostModel, Metric};
    use rbpc_topo::gnm_connected;
    use std::collections::HashSet;

    fn oracle(seed: u64) -> DenseBasePaths {
        let g = gnm_connected(24, 60, 8, seed);
        DenseBasePaths::build(g, CostModel::new(Metric::Weighted, seed))
    }

    fn pairs(n: usize) -> Vec<(NodeId, NodeId)> {
        (1..n)
            .map(|t| (NodeId::new(0), NodeId::new(t)))
            .chain((1..n / 2).map(|s| (NodeId::new(s), NodeId::new(n - 1))))
            .collect()
    }

    #[test]
    fn sequence_is_deterministic_and_well_formed() {
        let g = gnm_connected(20, 45, 7, 3);
        let a = churn_sequence(&g, 200, 5, 42);
        let b = churn_sequence(&g, 200, 5, 42);
        assert_eq!(a, b);
        assert_ne!(a, churn_sequence(&g, 200, 5, 43));
        let mut down: HashSet<EdgeId> = HashSet::new();
        for ev in &a {
            match *ev {
                ChurnEvent::Fail(e) => {
                    assert!(down.insert(e), "failed an already-failed edge");
                    assert!(down.len() <= 5, "exceeded max_down");
                }
                ChurnEvent::Recover(e) => {
                    assert!(down.remove(&e), "recovered a live edge");
                }
            }
            assert!(ev.edge().index() < g.edge_count());
        }
        assert!(a.iter().any(|e| matches!(e, ChurnEvent::Recover(_))));
    }

    #[test]
    fn max_down_one_alternates_strictly() {
        let g = gnm_connected(10, 20, 4, 1);
        let seq = churn_sequence(&g, 50, 1, 7);
        for (i, ev) in seq.iter().enumerate() {
            if i % 2 == 0 {
                assert!(matches!(ev, ChurnEvent::Fail(_)), "event {i}");
            } else {
                assert!(matches!(ev, ChurnEvent::Recover(_)), "event {i}");
            }
        }
    }

    #[test]
    fn churn_counts_are_consistent() {
        let o = oracle(9);
        let m = LatencyModel::default();
        let p = pairs(24);
        let events = churn_sequence(o.graph(), 60, 4, 11);
        let s = churn_under(&o, &m, &p, &events, Scheme::SourceRbpc);
        assert_eq!(s.fail_events + s.recover_events, events.len());
        assert_eq!(s.disrupted, s.restored + s.unrestorable);
        assert_eq!(s.per_event.len(), events.len());
        assert!(s.disrupted > 0, "sequence never hit a tracked route");
        if s.restored > 0 {
            assert!(s.mean_outage_us > 0.0);
            assert!(s.max_outage_us as f64 >= s.mean_outage_us);
        }
        let per_event_disrupted: usize = s.per_event.iter().map(|r| r.disrupted).sum();
        assert_eq!(per_event_disrupted, s.disrupted);
        let per_event_reverted: usize = s.per_event.iter().map(|r| r.reverted).sum();
        assert_eq!(per_event_reverted, s.reverted);
    }

    #[test]
    fn recovery_reverts_what_failure_disrupted() {
        let o = oracle(2);
        let m = LatencyModel::default();
        let p = pairs(24);
        // Pick a link on some tracked base path, fail it, recover it.
        let crossed = p
            .iter()
            .find_map(|&(s, t)| o.base_path(s, t).map(|b| b.edges()[0]))
            .unwrap();
        let events = [ChurnEvent::Fail(crossed), ChurnEvent::Recover(crossed)];
        let s = churn_under(&o, &m, &p, &events, Scheme::Hybrid);
        assert!(s.disrupted > 0);
        // Everything is live again after the single recovery, so every
        // disrupted route reverts.
        assert_eq!(s.reverted, s.disrupted);
        assert_eq!(s.per_event[0].concurrent_down, 1);
        assert_eq!(s.per_event[1].concurrent_down, 0);
    }

    #[test]
    fn churn_is_thread_count_invariant() {
        let o = oracle(3);
        let m = LatencyModel::default();
        let p = pairs(24);
        let events = churn_sequence(o.graph(), 40, 3, 17);
        for scheme in [Scheme::Hybrid, Scheme::SourceRbpc] {
            let sequential = churn_under(&o, &m, &p, &events, scheme);
            for threads in [2, 8] {
                let par = churn_under_threads(&o, &m, &p, &events, scheme, threads);
                assert_eq!(par, sequential, "{scheme:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn schemes_rank_as_in_single_failure() {
        let o = oracle(5);
        let m = LatencyModel::default();
        let p = pairs(24);
        let events = churn_sequence(o.graph(), 40, 3, 23);
        let source = churn_under(&o, &m, &p, &events, Scheme::SourceRbpc);
        let re = churn_under(&o, &m, &p, &events, Scheme::Reestablish);
        // Same disruptions, same restorability (both go through the source
        // restorer), strictly more signaling for re-establishment.
        assert_eq!(source.disrupted, re.disrupted);
        assert_eq!(source.restored, re.restored);
        if source.restored > 0 {
            assert!(source.mean_outage_us < re.mean_outage_us);
        }
    }
}
