//! Private chunk-stealing helper for the sweep entry points.
//!
//! The simulation sweeps ([`outage_summary_threads`](crate::outage_summary_threads),
//! [`churn_under_threads`](crate::churn_under_threads)) fan independent
//! per-pair work out over std threads. Workers claim fixed-size chunks via
//! an `AtomicUsize`, and per-chunk results come back in **chunk order**, so
//! any order-sensitive merge stays deterministic; the sweeps themselves
//! only fold commutative sums and maxima, which makes them bit-identical
//! for every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `work` to fixed-size chunks of `items` on up to `threads`
/// worker threads and returns the per-chunk results in chunk order.
///
/// `threads == 0` is treated as 1; with one thread (or fewer than two
/// items) everything runs inline on the caller's thread as a single chunk.
pub(crate) fn map_chunks<T, R>(
    items: &[T],
    threads: usize,
    work: impl Fn(&[T]) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = threads.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    if threads == 1 || items.len() < 2 {
        return vec![work(items)];
    }
    let chunk = items.len().div_ceil(threads * 4).max(1);
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| loop {
                // lint:allow(atomics-order) — pure ticket counter; results travel through the per-slot Mutex, which supplies the ordering
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(chunk) = chunks.get(i) else { break };
                let result = work(chunk);
                *slots[i]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(result);
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("every chunk is claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_results_come_back_in_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 8] {
            let sums = map_chunks(&items, threads, |chunk| chunk.iter().sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), 4950, "threads {threads}");
        }
        // Chunk order: concatenating the chunks reproduces the input.
        let echoed = map_chunks(&items, 4, <[usize]>::to_vec);
        assert_eq!(echoed.concat(), items);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(map_chunks::<u8, usize>(&[], 8, <[u8]>::len).is_empty());
        assert_eq!(map_chunks(&[7u8], 8, <[u8]>::len), vec![1]);
    }
}
