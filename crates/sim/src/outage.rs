//! Per-scheme outage windows.

use crate::{flood_timeline, LatencyModel};
use rbpc_core::{edge_bypass, end_route, BasePathOracle, RestoreError, Restorer};
use rbpc_graph::{EdgeId, FailureSet, NodeId};
use rbpc_obs::{
    obs_count, obs_flight, obs_record, obs_trace, obs_trace_attr, FlightKind, FlightRecord,
};

/// A restoration scheme whose outage window is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Local RBPC, edge-bypass splice at the adjacent router.
    LocalEdgeBypass,
    /// Local RBPC, end-route splice at the adjacent router.
    LocalEndRoute,
    /// Source-router RBPC (waits for the link-state flood).
    SourceRbpc,
    /// Hybrid: local splice first, source rewrite later — outage equals
    /// the local window, final route equals the source one.
    Hybrid,
    /// Teardown + re-establishment of the LSP along the new route.
    Reestablish,
}

impl Scheme {
    /// All simulated schemes, fastest-first by design.
    pub fn all() -> [Scheme; 5] {
        [
            Scheme::LocalEdgeBypass,
            Scheme::LocalEndRoute,
            Scheme::Hybrid,
            Scheme::SourceRbpc,
            Scheme::Reestablish,
        ]
    }

    /// Stable short name, used as the metric label in observability output.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::LocalEdgeBypass => "local_edge_bypass",
            Scheme::LocalEndRoute => "local_end_route",
            Scheme::SourceRbpc => "source_rbpc",
            Scheme::Hybrid => "hybrid",
            Scheme::Reestablish => "reestablish",
        }
    }
}

/// The outage a scheme leaves for one disrupted LSP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageReport {
    /// The scheme simulated.
    pub scheme: Scheme,
    /// Microseconds from the failure until packets flow again.
    pub restored_at_us: u64,
    /// Hop count of the route packets take right after restoration.
    pub interim_hops: u32,
}

impl OutageReport {
    /// Packets lost for a constant-rate flow of `pps` packets per second.
    pub fn packets_lost(&self, pps: u64) -> u64 {
        self.restored_at_us * pps / 1_000_000
    }
}

/// Simulates the outage window of `scheme` for the LSP `s → t` whose link
/// `failed` just died (single-failure scenario).
///
/// ```
/// use rbpc_core::{BasePathOracle, DenseBasePaths};
/// use rbpc_graph::{CostModel, Metric};
/// use rbpc_sim::{outage, LatencyModel, Scheme};
///
/// # fn main() -> Result<(), rbpc_core::RestoreError> {
/// let g = rbpc_topo::cycle(8);
/// let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Unweighted, 1));
/// let model = LatencyModel::default();
/// let lsp = oracle.base_path(0.into(), 3.into()).expect("connected");
/// let local = outage(&oracle, &model, 0.into(), 3.into(), lsp.edges()[1], Scheme::LocalEndRoute)?;
/// let re = outage(&oracle, &model, 0.into(), 3.into(), lsp.edges()[1], Scheme::Reestablish)?;
/// assert!(local.restored_at_us < re.restored_at_us);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates [`RestoreError`] when the scheme cannot restore the route at
/// all (e.g. the failure disconnects the pair, or edge-bypass cannot patch
/// a bridge).
pub fn outage<O: BasePathOracle>(
    oracle: &O,
    model: &LatencyModel,
    s: NodeId,
    t: NodeId,
    failed: EdgeId,
    scheme: Scheme,
) -> Result<OutageReport, RestoreError> {
    outage_under(
        oracle,
        model,
        s,
        t,
        failed,
        &FailureSet::of_edge(failed),
        scheme,
    )
}

/// Like [`outage`], but under an arbitrary [`FailureSet`] — `failed` is the
/// link on the LSP whose loss the adjacent router detects, while `failures`
/// may contain further failed elements (multi-failure scenarios).
///
/// This is where a restoration's **trace** is minted: injecting the failure
/// opens a root span (category `restore`, attributes `scheme`/`k_failures`)
/// and every step below — flood wait, base-path lookup, concatenation
/// search, FEC rewrite or ILM splice — records a child span, so the whole
/// recovery of one LSP can be followed end to end in `rbpc-eval trace` or
/// a Perfetto export.
///
/// # Errors
///
/// As [`outage`]; `failed` must be an element of `failures` for the
/// modeled timeline to make sense (not enforced).
pub fn outage_under<O: BasePathOracle>(
    oracle: &O,
    model: &LatencyModel,
    s: NodeId,
    t: NodeId,
    failed: EdgeId,
    failures: &FailureSet,
    scheme: Scheme,
) -> Result<OutageReport, RestoreError> {
    let mut root = obs_trace!(
        "outage",
        cat: "restore",
        scheme = scheme.name(),
        k_failures = failures.failed_edge_count(),
        src = s.index(),
        dst = t.index(),
    );
    let restorer = Restorer::new(oracle);
    let lsp_path = {
        let _t = obs_trace!("base_path.lookup", cat: "lookup");
        oracle.base_path(s, t).ok_or(RestoreError::Disconnected {
            source: s,
            target: t,
        })?
    };
    let source_aware = {
        let mut t_flood = obs_trace!("flood.timeline", cat: "flood");
        let flood = flood_timeline(oracle.graph(), failures, model);
        let aware = flood.at(s);
        if let Some(aware_us) = aware {
            obs_trace_attr!(t_flood, source_aware_us = aware_us);
        }
        aware
    };

    let (restored_at_us, interim_hops) = match scheme {
        Scheme::LocalEdgeBypass => {
            let lr = edge_bypass(oracle, &lsp_path, failed, failures)?;
            let _t = obs_trace!(
                "ilm.splice",
                cat: "splice",
                modeled_us = model.detection_us + model.ilm_write_us,
                labels = lr.pc_length(),
            );
            (
                model.detection_us + model.ilm_write_us,
                lr.end_to_end.hop_count() as u32,
            )
        }
        Scheme::LocalEndRoute => {
            let lr = end_route(oracle, &lsp_path, failed, failures)?;
            let _t = obs_trace!(
                "ilm.splice",
                cat: "splice",
                modeled_us = model.detection_us + model.ilm_write_us,
                labels = lr.pc_length(),
            );
            (
                model.detection_us + model.ilm_write_us,
                lr.end_to_end.hop_count() as u32,
            )
        }
        Scheme::Hybrid => {
            // Outage ends at the first successful local splice; fall back
            // to end-route when edge-bypass cannot patch.
            let lr = edge_bypass(oracle, &lsp_path, failed, failures)
                .or_else(|_| end_route(oracle, &lsp_path, failed, failures))?;
            let _t = obs_trace!(
                "ilm.splice",
                cat: "splice",
                modeled_us = model.detection_us + model.ilm_write_us,
                labels = lr.pc_length(),
            );
            (
                model.detection_us + model.ilm_write_us,
                lr.end_to_end.hop_count() as u32,
            )
        }
        Scheme::SourceRbpc => {
            let r = restorer.restore(s, t, failures)?;
            // The label stack the source router would push must respect
            // the paper's depth bound (edge-only failure sets).
            debug_assert!(
                failures.failed_node_count() > 0
                    || r.concatenation
                        .validate_bounds(failures.failed_edge_count())
                        .is_ok(),
                "simulated restoration violates the Theorem 2 stack bound"
            );
            let aware = source_aware.ok_or(RestoreError::Disconnected {
                source: s,
                target: t,
            })?;
            let _t = obs_trace!(
                "fec.rewrite",
                cat: "rewrite",
                modeled_us = model.fec_write_us,
                flood_wait_us = aware,
                stack_depth = r.concatenation.len(),
            );
            (aware + model.fec_write_us, r.backup_cost.hops)
        }
        Scheme::Reestablish => {
            let r = restorer.restore(s, t, failures)?;
            let aware = source_aware.ok_or(RestoreError::Disconnected {
                source: s,
                target: t,
            })?;
            // Label request travels to the egress and mappings come back:
            // two passes over the new path, one signaling delay per hop,
            // then ILM installs (pipelined with the mapping pass, charge
            // one write) and the FEC switch.
            let hops = u64::from(r.backup_cost.hops);
            let _t = obs_trace!(
                "lsp.reestablish",
                cat: "rewrite",
                modeled_us = 2 * hops * model.signal_hop_us
                    + model.ilm_write_us
                    + model.fec_write_us,
                flood_wait_us = aware,
                signal_hops = hops,
            );
            (
                aware + 2 * hops * model.signal_hop_us + model.ilm_write_us + model.fec_write_us,
                r.backup_cost.hops,
            )
        }
    };
    obs_count!("sim.outage.events", label: scheme.name(), 1u64);
    obs_record!("sim.outage.restored_us", label: scheme.name(), restored_at_us);
    // Black-box record of the simulated outage window: scheme in
    // `detail`, the *modeled* restoration latency (µs → ns) rather than
    // wall clock, no plan hash (the restore hook records that).
    obs_flight!(FlightRecord {
        src: s.index() as u64,
        dst: t.index() as u64,
        failed_edges: failures.failed_edges().map(|e| e.index() as u64).collect(),
        failed_nodes: failures.failed_nodes().map(|n| n.index() as u64).collect(),
        ok: true,
        // For outage records the segment slot carries the interim route's
        // hop count (outages have no label stack of their own).
        segments: u64::from(interim_hops),
        latency_ns: restored_at_us.saturating_mul(1_000),
        detail: scheme.name().to_string(),
        ..FlightRecord::new(FlightKind::Outage)
    });
    obs_trace_attr!(root, restored_at_us = restored_at_us);
    obs_trace_attr!(root, interim_hops = interim_hops);
    let base_hops = lsp_path.hop_count() as u32;
    if base_hops > 0 {
        obs_trace_attr!(
            root,
            stretch = f64::from(interim_hops) / f64::from(base_hops)
        );
    }
    Ok(OutageReport {
        scheme,
        restored_at_us,
        interim_hops,
    })
}

/// Aggregate outage statistics for a scheme over many failure events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageSummary {
    /// The scheme summarized.
    pub scheme: Scheme,
    /// Events measured.
    pub events: usize,
    /// Events the scheme could not restore.
    pub unrestorable: usize,
    /// Mean outage (microseconds) over restorable events.
    pub mean_us: f64,
    /// Maximum outage observed.
    pub max_us: u64,
}

/// Runs [`outage`] for every link of every sampled pair's base path and
/// summarizes per scheme.
pub fn outage_summary<O: BasePathOracle>(
    oracle: &O,
    model: &LatencyModel,
    pairs: &[(NodeId, NodeId)],
    scheme: Scheme,
) -> OutageSummary {
    outage_summary_fold(oracle, model, pairs, scheme)
}

/// [`outage_summary`], sweeping the sampled pairs on up to `threads`
/// worker threads.
///
/// Each pair's single-link outages are independent, and the summary only
/// folds sums and maxima, so the result is **bit-identical** to the
/// sequential sweep for every thread count (the `--threads` flag of
/// `rbpc-eval latency`).
pub fn outage_summary_threads<O: BasePathOracle + Sync>(
    oracle: &O,
    model: &LatencyModel,
    pairs: &[(NodeId, NodeId)],
    scheme: Scheme,
    threads: usize,
) -> OutageSummary {
    let per_chunk = crate::par::map_chunks(pairs, threads, |chunk| {
        outage_accum(oracle, model, chunk, scheme)
    });
    let mut events = 0usize;
    let mut unrestorable = 0usize;
    let mut total = 0u64;
    let mut max = 0u64;
    for s in &per_chunk {
        events += s.events;
        unrestorable += s.unrestorable;
        total += s.total_us;
        max = max.max(s.max_us);
    }
    finish_summary(scheme, events, unrestorable, total, max)
}

/// One chunk's worth of [`outage_summary`] accumulation, before the mean
/// is taken (so chunks can merge exactly).
struct OutageAccum {
    events: usize,
    unrestorable: usize,
    total_us: u64,
    max_us: u64,
}

fn outage_accum<O: BasePathOracle>(
    oracle: &O,
    model: &LatencyModel,
    pairs: &[(NodeId, NodeId)],
    scheme: Scheme,
) -> OutageAccum {
    let mut acc = OutageAccum {
        events: 0,
        unrestorable: 0,
        total_us: 0,
        max_us: 0,
    };
    for &(s, t) in pairs {
        let Some(base) = oracle.base_path(s, t) else {
            continue;
        };
        for &e in base.edges() {
            acc.events += 1;
            match outage(oracle, model, s, t, e, scheme) {
                Ok(r) => {
                    acc.total_us += r.restored_at_us;
                    acc.max_us = acc.max_us.max(r.restored_at_us);
                }
                Err(_) => {
                    acc.unrestorable += 1;
                    obs_count!("sim.outage.unrestorable", label: scheme.name(), 1u64);
                }
            }
        }
    }
    acc
}

fn outage_summary_fold<O: BasePathOracle>(
    oracle: &O,
    model: &LatencyModel,
    pairs: &[(NodeId, NodeId)],
    scheme: Scheme,
) -> OutageSummary {
    let acc = outage_accum(oracle, model, pairs, scheme);
    finish_summary(
        scheme,
        acc.events,
        acc.unrestorable,
        acc.total_us,
        acc.max_us,
    )
}

fn finish_summary(
    scheme: Scheme,
    events: usize,
    unrestorable: usize,
    total: u64,
    max: u64,
) -> OutageSummary {
    let restorable = events - unrestorable;
    OutageSummary {
        scheme,
        events,
        unrestorable,
        mean_us: if restorable == 0 {
            0.0
        } else {
            total as f64 / restorable as f64
        },
        max_us: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_core::DenseBasePaths;
    use rbpc_graph::{CostModel, Metric};
    use rbpc_topo::{cycle, gnm_connected};

    fn oracle(seed: u64) -> DenseBasePaths {
        let g = gnm_connected(20, 45, 7, seed);
        DenseBasePaths::build(g, CostModel::new(Metric::Weighted, seed))
    }

    #[test]
    fn scheme_ordering_holds() {
        let o = oracle(4);
        let m = LatencyModel::default();
        let (s, t) = (NodeId::new(0), NodeId::new(19));
        let base = o.base_path(s, t).unwrap();
        for &e in base.edges() {
            let Ok(local) = outage(&o, &m, s, t, e, Scheme::LocalEndRoute) else {
                continue;
            };
            let source = outage(&o, &m, s, t, e, Scheme::SourceRbpc).unwrap();
            let re = outage(&o, &m, s, t, e, Scheme::Reestablish).unwrap();
            assert!(local.restored_at_us <= source.restored_at_us);
            assert!(source.restored_at_us < re.restored_at_us);
        }
    }

    #[test]
    fn hybrid_is_as_fast_as_local() {
        let o = oracle(5);
        let m = LatencyModel::default();
        let (s, t) = (NodeId::new(1), NodeId::new(18));
        let base = o.base_path(s, t).unwrap();
        let e = base.edges()[0];
        let h = outage(&o, &m, s, t, e, Scheme::Hybrid).unwrap();
        assert_eq!(h.restored_at_us, m.detection_us + m.ilm_write_us);
    }

    #[test]
    fn failure_adjacent_to_source_restores_fast_via_source_too() {
        // When the failed link is the LSP's first hop, the source IS the
        // detector: source RBPC restores within detection + fec write.
        let o = oracle(6);
        let m = LatencyModel::default();
        let (s, t) = (NodeId::new(0), NodeId::new(19));
        let base = o.base_path(s, t).unwrap();
        let first = base.edges()[0];
        let r = outage(&o, &m, s, t, first, Scheme::SourceRbpc).unwrap();
        assert_eq!(r.restored_at_us, m.detection_us + m.fec_write_us);
    }

    #[test]
    fn source_outage_grows_with_flood_distance() {
        // On a long cycle, failing the far end of the LSP means the flood
        // must travel back to the source.
        let g = cycle(10);
        let o = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 1));
        let m = LatencyModel::default();
        let (s, t) = (NodeId::new(0), NodeId::new(4));
        let base = o.base_path(s, t).unwrap();
        assert_eq!(base.hop_count(), 4);
        let near = outage(&o, &m, s, t, base.edges()[0], Scheme::SourceRbpc).unwrap();
        let far = outage(&o, &m, s, t, base.edges()[3], Scheme::SourceRbpc).unwrap();
        assert!(far.restored_at_us > near.restored_at_us);
        // The flood from the far failure crosses 3 hops back to the source.
        assert_eq!(
            far.restored_at_us,
            m.detection_us + 3 * m.flood_hop_us + m.fec_write_us
        );
    }

    #[test]
    fn packets_lost_scales_with_rate() {
        let r = OutageReport {
            scheme: Scheme::SourceRbpc,
            restored_at_us: 50_000,
            interim_hops: 4,
        };
        assert_eq!(r.packets_lost(1_000), 50); // 50 ms at 1k pps
        assert_eq!(r.packets_lost(0), 0);
    }

    #[test]
    fn summary_aggregates() {
        let o = oracle(7);
        let m = LatencyModel::default();
        let pairs: Vec<_> = (1..6).map(|t| (NodeId::new(0), NodeId::new(t))).collect();
        for scheme in Scheme::all() {
            let sum = outage_summary(&o, &m, &pairs, scheme);
            assert_eq!(sum.scheme, scheme);
            assert!(sum.events > 0);
            if sum.events > sum.unrestorable {
                assert!(sum.mean_us > 0.0);
                assert!(sum.max_us as f64 >= sum.mean_us);
            }
        }
        // Local schemes' mean beats re-establishment's.
        let local = outage_summary(&o, &m, &pairs, Scheme::LocalEndRoute);
        let re = outage_summary(&o, &m, &pairs, Scheme::Reestablish);
        assert!(local.mean_us < re.mean_us);
    }

    #[test]
    fn summary_is_thread_count_invariant() {
        let o = oracle(11);
        let m = LatencyModel::default();
        let pairs: Vec<_> = (1..12).map(|t| (NodeId::new(0), NodeId::new(t))).collect();
        for scheme in Scheme::all() {
            let sequential = outage_summary(&o, &m, &pairs, scheme);
            for threads in [1, 2, 8] {
                let par = outage_summary_threads(&o, &m, &pairs, scheme, threads);
                assert_eq!(par, sequential, "{scheme:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn bridge_failures_error_for_local_bypass() {
        let mut g = rbpc_graph::Graph::new(3);
        let bridge = g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let o = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 1));
        let m = LatencyModel::default();
        assert!(outage(
            &o,
            &m,
            NodeId::new(0),
            NodeId::new(2),
            bridge,
            Scheme::LocalEdgeBypass
        )
        .is_err());
    }
}
