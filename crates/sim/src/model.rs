//! Delay model and link-state flood propagation.

use rbpc_graph::{bfs_distances, FailureSet, Graph, NodeId};

/// Control-plane delays, in microseconds.
///
/// Defaults are era-appropriate round numbers: millisecond-scale loss-of-
/// signal detection, a couple of milliseconds per flooding hop, and
/// milliseconds per signaling hop (LDP processing dominated); table writes
/// are fast. Absolute values only scale the results — the *ordering* of
/// the schemes is what the simulation establishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Loss-of-signal detection at the routers adjacent to a failure.
    pub detection_us: u64,
    /// Per-hop propagation + processing of a link-state advertisement.
    pub flood_hop_us: u64,
    /// One hardware ILM entry write.
    pub ilm_write_us: u64,
    /// One FEC table write.
    pub fec_write_us: u64,
    /// Per-hop label-distribution processing when signaling an LSP.
    pub signal_hop_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            detection_us: 10_000,
            flood_hop_us: 2_000,
            ilm_write_us: 500,
            fec_write_us: 500,
            signal_hop_us: 5_000,
        }
    }
}

/// When each router learns about a failure, relative to the failure
/// instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodTimeline {
    /// Per router: microseconds after the failure at which its link-state
    /// database reflects it; `None` if unreachable from every detection
    /// point over surviving links.
    pub aware_at: Vec<Option<u64>>,
}

impl FloodTimeline {
    /// When router `r` learns of the failure.
    pub fn at(&self, r: NodeId) -> Option<u64> {
        self.aware_at.get(r.index()).copied().flatten()
    }
}

/// Simulates the link-state flood for `failures`: the endpoints of each
/// failed link (and the neighbors of each failed router) detect after the
/// detection delay and flood over surviving links, one
/// [`LatencyModel::flood_hop_us`] per hop. Flooding is a shortest-delay
/// propagation, i.e. hop-count BFS from all detection points.
pub fn flood_timeline(graph: &Graph, failures: &FailureSet, model: &LatencyModel) -> FloodTimeline {
    let n = graph.node_count();
    let view = failures.view(graph);
    // Detection points: live endpoints of failed edges; live neighbors of
    // failed routers.
    let mut detectors = Vec::new();
    for e in failures.failed_edges() {
        let (u, v) = graph.endpoints(e);
        for x in [u, v] {
            if !failures.node_failed(x) {
                detectors.push(x);
            }
        }
    }
    for dead in failures.failed_nodes() {
        for h in graph.neighbors(dead) {
            if !failures.node_failed(h.to) {
                detectors.push(h.to);
            }
        }
    }
    let mut aware_at: Vec<Option<u64>> = vec![None; n];
    for d in detectors {
        let hops = bfs_distances(&view, d);
        for (r, h) in hops.iter().enumerate() {
            if let Some(h) = h {
                let t = model.detection_us + u64::from(*h) * model.flood_hop_us;
                if aware_at[r].is_none_or(|cur| t < cur) {
                    aware_at[r] = Some(t);
                }
            }
        }
    }
    FloodTimeline { aware_at }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::EdgeId;
    use rbpc_topo::{cycle, path};

    #[test]
    fn flood_radiates_from_failure() {
        let g = path(5); // 0-1-2-3-4, fail edge 2-3 (e2)
        let failures = FailureSet::of_edge(EdgeId::new(2));
        let m = LatencyModel::default();
        let t = flood_timeline(&g, &failures, &m);
        // Endpoints 2 and 3 detect immediately.
        assert_eq!(t.at(2.into()), Some(m.detection_us));
        assert_eq!(t.at(3.into()), Some(m.detection_us));
        // Router 0 is two surviving hops from detector 2.
        assert_eq!(t.at(0.into()), Some(m.detection_us + 2 * m.flood_hop_us));
        assert_eq!(t.at(4.into()), Some(m.detection_us + m.flood_hop_us));
    }

    #[test]
    fn flood_takes_the_surviving_detour() {
        let g = cycle(6);
        let e = g.find_edge(0.into(), 1.into()).unwrap();
        let failures = FailureSet::of_edge(e);
        let m = LatencyModel::default();
        let t = flood_timeline(&g, &failures, &m);
        // Router 3 is 3 hops from 0 and 2 hops from 1 (the long way counts
        // as surviving links only).
        assert_eq!(t.at(3.into()), Some(m.detection_us + 2 * m.flood_hop_us));
        // Every router learns eventually on a surviving cycle.
        for r in g.nodes() {
            assert!(t.at(r).is_some());
        }
    }

    #[test]
    fn node_failure_detected_by_neighbors() {
        let g = cycle(4);
        let failures = FailureSet::of_nodes([0usize]);
        let m = LatencyModel::default();
        let t = flood_timeline(&g, &failures, &m);
        assert_eq!(t.at(1.into()), Some(m.detection_us));
        assert_eq!(t.at(3.into()), Some(m.detection_us));
        assert_eq!(t.at(2.into()), Some(m.detection_us + m.flood_hop_us));
        // The dead router never learns anything.
        assert_eq!(t.at(0.into()), None);
    }

    #[test]
    fn partitioned_routers_never_learn() {
        let g = path(3);
        // Failing the middle router partitions 0 from 2.
        let failures = FailureSet::of_nodes([1usize]);
        let t = flood_timeline(&g, &failures, &LatencyModel::default());
        assert!(t.at(0.into()).is_some());
        assert!(t.at(2.into()).is_some());
        assert_eq!(t.at(1.into()), None);
    }
}
