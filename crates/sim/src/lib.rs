//! Restoration-latency simulation for RBPC.
//!
//! The paper's systems argument is about *time*: a broken LSP stays black
//! until some scheme rewrites forwarding state, and the schemes differ in
//! what has to happen first:
//!
//! * **local RBPC** — the adjacent router detects loss of signal and
//!   rewrites one ILM entry: restoration within the detection delay;
//! * **source RBPC** — the link-state flood must reach the LSP source,
//!   which then rewrites one FEC entry;
//! * **re-establishment** — the flood must reach the source *and* a new
//!   LSP must be signaled hop by hop (label request + mapping) before the
//!   FEC can switch over.
//!
//! This crate turns those narratives into numbers: a [`LatencyModel`] with
//! the relevant delays, a link-state [`flood_timeline`] (failure
//! notifications propagate along surviving links, which is a hop-count
//! Dijkstra), and per-scheme [`outage`] windows with packet-loss
//! estimates. See `examples/restoration_latency.rs` for the headline
//! comparison.
//!
//! The full paper-to-code map (theorems, figures, tables -> modules and
//! tests) is in `docs/PAPER_MAP.md` at the repository root;
//! `docs/ARCHITECTURE.md` shows how the crates fit together.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod churn;
mod flow;
mod model;
mod outage;
mod par;
mod storm;

pub use churn::{
    churn_sequence, churn_under, churn_under_threads, ChurnEvent, ChurnEventReport, ChurnSummary,
};
pub use flow::{simulate_flow, FlowConfig, FlowReport};
pub use model::{flood_timeline, FloodTimeline, LatencyModel};
pub use outage::{
    outage, outage_summary, outage_summary_threads, outage_under, OutageReport, OutageSummary,
    Scheme,
};
pub use storm::{storm_schedule, StormParams};
