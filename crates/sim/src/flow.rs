//! Packet-level flow simulation through a failure event.
//!
//! [`simulate_flow`] plays a constant-rate flow across a failure: packets
//! sent before the failure ride the original LSP; packets sent during the
//! outage window are dropped at the dead link; packets sent after the
//! scheme's repair time ride the restored route (the local splice first
//! and the source rewrite later, under [`Scheme::Hybrid`]). Beyond the
//! drop count this surfaces two effects the aggregate model cannot see:
//! the latency step while traffic rides a stretched interim route, and
//! **reordering** when the source's shorter final route overtakes packets
//! still in flight on the interim one.

use crate::{outage, LatencyModel, Scheme};
use rbpc_core::{edge_bypass, end_route, BasePathOracle, RestoreError, Restorer};
use rbpc_graph::{EdgeId, FailureSet, NodeId, Path};

/// Flow parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowConfig {
    /// Packets per second.
    pub rate_pps: u64,
    /// Total simulated time (microseconds).
    pub duration_us: u64,
    /// When the link fails, relative to the flow start.
    pub fail_at_us: u64,
    /// Per-hop forwarding latency of a data packet.
    pub per_hop_us: u64,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            rate_pps: 10_000,
            duration_us: 200_000, // 200 ms
            fail_at_us: 50_000,
            per_hop_us: 200,
        }
    }
}

/// What happened to a simulated flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowReport {
    /// Packets sent.
    pub sent: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped during the outage window.
    pub dropped: u64,
    /// Packets delivered before some earlier-sent packet (reordering
    /// caused by the route shortening mid-flow).
    pub reordered: u64,
    /// Mean delivery latency over delivered packets (microseconds).
    pub mean_latency_us: u64,
    /// Maximum delivery latency.
    pub max_latency_us: u64,
}

/// Simulates a constant-rate flow `s → t` across the failure of `failed`
/// under `scheme`. See the module docs.
///
/// # Errors
///
/// Propagates [`RestoreError`] when the scheme cannot restore the route.
pub fn simulate_flow<O: BasePathOracle>(
    oracle: &O,
    model: &LatencyModel,
    cfg: &FlowConfig,
    s: NodeId,
    t: NodeId,
    failed: EdgeId,
    scheme: Scheme,
) -> Result<FlowReport, RestoreError> {
    let failures = FailureSet::of_edge(failed);
    let base = oracle.base_path(s, t).ok_or(RestoreError::Disconnected {
        source: s,
        target: t,
    })?;
    let restorer = Restorer::new(oracle);
    let optimal = restorer.restore(s, t, &failures)?;

    // Route phases: (activation time relative to the failure, path).
    // Before the failure: the base path. After `restored_at`: the scheme's
    // route. Hybrid additionally switches to the optimal route once the
    // source reacts.
    let local_route = || -> Result<Path, RestoreError> {
        Ok(edge_bypass(oracle, &base, failed, &failures)
            .or_else(|_| end_route(oracle, &base, failed, &failures))?
            .end_to_end)
    };
    let mut phases: Vec<(u64, Path)> = Vec::new();
    match scheme {
        Scheme::LocalEdgeBypass => {
            let lr = edge_bypass(oracle, &base, failed, &failures)?;
            let o = outage(oracle, model, s, t, failed, scheme)?;
            phases.push((o.restored_at_us, lr.end_to_end));
        }
        Scheme::LocalEndRoute => {
            let lr = end_route(oracle, &base, failed, &failures)?;
            let o = outage(oracle, model, s, t, failed, scheme)?;
            phases.push((o.restored_at_us, lr.end_to_end));
        }
        Scheme::SourceRbpc | Scheme::Reestablish => {
            let o = outage(oracle, model, s, t, failed, scheme)?;
            phases.push((o.restored_at_us, optimal.backup.clone()));
        }
        Scheme::Hybrid => {
            let local = outage(oracle, model, s, t, failed, Scheme::Hybrid)?;
            phases.push((local.restored_at_us, local_route()?));
            let source = outage(oracle, model, s, t, failed, Scheme::SourceRbpc)?;
            phases.push((source.restored_at_us, optimal.backup.clone()));
        }
    }

    // Per-packet walk.
    let interval = 1_000_000 / cfg.rate_pps.max(1);
    let mut report = FlowReport {
        sent: 0,
        delivered: 0,
        dropped: 0,
        reordered: 0,
        mean_latency_us: 0,
        max_latency_us: 0,
    };
    let mut latency_sum = 0u64;
    let mut latest_delivery = 0u64;
    let mut send = 0u64;
    while send < cfg.duration_us {
        report.sent += 1;
        let route = if send < cfg.fail_at_us {
            Some(&base)
        } else {
            let since_failure = send - cfg.fail_at_us;
            phases
                .iter()
                .rev()
                .find(|(at, _)| since_failure >= *at)
                .map(|(_, p)| p)
        };
        match route {
            Some(p) => {
                let deliver = send + p.hop_count() as u64 * cfg.per_hop_us;
                let latency = deliver - send;
                report.delivered += 1;
                latency_sum += latency;
                report.max_latency_us = report.max_latency_us.max(latency);
                if deliver < latest_delivery {
                    report.reordered += 1;
                }
                latest_delivery = latest_delivery.max(deliver);
            }
            None => report.dropped += 1,
        }
        send += interval;
    }
    report.mean_latency_us = latency_sum.checked_div(report.delivered).unwrap_or(0);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_core::DenseBasePaths;
    use rbpc_graph::{CostModel, Metric};
    use rbpc_topo::{cycle, gnm_connected};

    fn oracle(seed: u64) -> DenseBasePaths {
        let g = gnm_connected(20, 45, 7, seed);
        DenseBasePaths::build(g, CostModel::new(Metric::Weighted, seed))
    }

    fn fixture(seed: u64) -> (DenseBasePaths, NodeId, NodeId, EdgeId) {
        let o = oracle(seed);
        let (s, t) = (NodeId::new(0), NodeId::new(19));
        let base = o.base_path(s, t).unwrap();
        let e = base.edges()[base.hop_count() / 2];
        (o, s, t, e)
    }

    #[test]
    fn drops_scale_with_outage() {
        let (o, s, t, e) = fixture(1);
        let m = LatencyModel::default();
        let cfg = FlowConfig::default();
        let fast = simulate_flow(&o, &m, &cfg, s, t, e, Scheme::Hybrid).unwrap();
        let slow = simulate_flow(&o, &m, &cfg, s, t, e, Scheme::Reestablish).unwrap();
        assert_eq!(fast.sent, slow.sent);
        assert!(fast.dropped < slow.dropped, "{fast:?} vs {slow:?}");
        assert_eq!(fast.sent, fast.delivered + fast.dropped);
        assert_eq!(slow.sent, slow.delivered + slow.dropped);
    }

    #[test]
    fn no_failure_before_fail_time_means_deliveries() {
        let (o, s, t, e) = fixture(2);
        let m = LatencyModel::default();
        let cfg = FlowConfig {
            fail_at_us: 150_000,
            duration_us: 100_000, // flow ends before the failure
            ..FlowConfig::default()
        };
        let r = simulate_flow(&o, &m, &cfg, s, t, e, Scheme::SourceRbpc).unwrap();
        assert_eq!(r.dropped, 0);
        assert_eq!(r.reordered, 0);
        assert_eq!(r.delivered, r.sent);
    }

    #[test]
    fn hybrid_can_reorder_when_route_shortens() {
        // On a cycle, the local end-route detour is much longer than the
        // optimal restoration; when the source takes over, packets on the
        // short route overtake those still on the detour.
        let g = cycle(12);
        let o = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 3));
        let (s, t) = (NodeId::new(0), NodeId::new(5));
        let base = o.base_path(s, t).unwrap();
        let e = base.edges()[base.hop_count() - 1]; // fail near the end
        let m = LatencyModel::default();
        let cfg = FlowConfig {
            per_hop_us: 3_000, // slow links accentuate in-flight overtaking
            ..FlowConfig::default()
        };
        let hybrid = simulate_flow(&o, &m, &cfg, s, t, e, Scheme::Hybrid).unwrap();
        let source = simulate_flow(&o, &m, &cfg, s, t, e, Scheme::SourceRbpc).unwrap();
        // The hybrid delivered more packets (shorter outage)...
        assert!(hybrid.dropped <= source.dropped);
        // ...at the price of reordering when the final route kicked in.
        assert!(hybrid.reordered > 0, "{hybrid:?}");
        assert_eq!(source.reordered, 0);
    }

    #[test]
    fn latency_reflects_route_length() {
        let (o, s, t, e) = fixture(4);
        let m = LatencyModel::default();
        let cfg = FlowConfig::default();
        let r = simulate_flow(&o, &m, &cfg, s, t, e, Scheme::SourceRbpc).unwrap();
        let base_hops = o.base_path(s, t).unwrap().hop_count() as u64;
        assert!(r.mean_latency_us >= base_hops * cfg.per_hop_us);
        assert!(r.max_latency_us >= r.mean_latency_us);
    }

    #[test]
    fn disconnected_flow_errors() {
        let mut g = rbpc_graph::Graph::new(2);
        let bridge = g.add_edge(0, 1, 1).unwrap();
        let o = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, 1));
        let m = LatencyModel::default();
        assert!(simulate_flow(
            &o,
            &m,
            &FlowConfig::default(),
            NodeId::new(0),
            NodeId::new(1),
            bridge,
            Scheme::SourceRbpc
        )
        .is_err());
    }
}
