//! Failure-storm schedules: deterministic per-window failure sets for
//! load testing.
//!
//! A load test wants failures with *shape*, not a constant drizzle: long
//! calm stretches with a failed link or two, punctuated by bursts where
//! many links die at once — the regime where the paper's
//! concatenation-count bounds (k+1 / 2k+1 segments under k failures)
//! actually bite. [`storm_schedule`] produces one [`FailureSet`] per
//! window from a candidate edge pool, cycling `calm` and `burst` phases
//! with a [`DetRng`], so the same seed always yields the same storm and
//! load-test runs are reproducible end to end.

use rbpc_graph::{DetRng, EdgeId, FailureSet};
use rbpc_obs::{obs_flight, FlightKind, FlightRecord};

/// Shape of a failure storm, in windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormParams {
    /// Length of one calm+burst cycle in windows (0 disables bursts).
    pub period: u64,
    /// Leading windows of each cycle that are bursts.
    pub burst_windows: u64,
    /// Concurrent failed links during a burst window.
    pub burst_links: usize,
    /// Concurrent failed links during a calm window.
    pub calm_links: usize,
    /// Storm seed (independent of the topology/metric seeds).
    pub seed: u64,
}

impl Default for StormParams {
    /// Bursts of 6 concurrent failures for 2 windows out of every 6;
    /// one failed link in calm windows so every window restores
    /// something.
    fn default() -> StormParams {
        StormParams {
            period: 6,
            burst_windows: 2,
            burst_links: 6,
            calm_links: 1,
            seed: 0xBAD_11E1,
        }
    }
}

impl StormParams {
    /// The number of links the storm fails in window `w`.
    pub fn links_in_window(&self, w: u64) -> usize {
        if self.period > 0 && w % self.period < self.burst_windows {
            self.burst_links
        } else {
            self.calm_links
        }
    }
}

/// Builds one [`FailureSet`] per window from `candidates` (typically the
/// edges on provisioned base paths, so failures are guaranteed to hit
/// traffic). Each window draws its links independently — storms move
/// around the network rather than pinning the same links down forever.
/// Deterministic in (`candidates` order, `windows`, `params`).
pub fn storm_schedule(
    candidates: &[EdgeId],
    windows: u64,
    params: &StormParams,
) -> Vec<FailureSet> {
    let mut rng = DetRng::seed_from_u64(params.seed);
    (0..windows)
        .map(|w| {
            let want = params.links_in_window(w).min(candidates.len());
            let mut set = FailureSet::new();
            let mut picked = 0usize;
            // Distinct draws by rejection: candidate pools are much
            // larger than burst sizes, so this terminates fast; the
            // attempt cap keeps degenerate pools (all-duplicate edge
            // ids) from looping forever.
            let mut attempts = 0usize;
            while picked < want && attempts < 64 * (want + 1) {
                attempts += 1;
                let edge = candidates[rng.gen_range(0..candidates.len())];
                if !set.edge_failed(edge) {
                    set.fail_edge(edge);
                    picked += 1;
                }
            }
            // Black-box record of the schedule itself (explicit tick:
            // schedules are built up front, before the windows run).
            obs_flight!(FlightRecord {
                tick: w,
                failed_edges: set.failed_edges().map(|e| e.index() as u64).collect(),
                detail: format!("storm seed {:#x}", params.seed),
                ..FlightRecord::new(FlightKind::StormWindow)
            });
            set
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<EdgeId> {
        (0..n).map(EdgeId::new).collect()
    }

    #[test]
    fn schedule_is_deterministic() {
        let params = StormParams::default();
        let a = storm_schedule(&pool(40), 12, &params);
        let b = storm_schedule(&pool(40), 12, &params);
        assert_eq!(a.len(), 12);
        assert_eq!(a, b);
    }

    #[test]
    fn cycle_shape_matches_params() {
        let params = StormParams {
            period: 4,
            burst_windows: 1,
            burst_links: 5,
            calm_links: 2,
            seed: 7,
        };
        let schedule = storm_schedule(&pool(100), 8, &params);
        for (w, set) in schedule.iter().enumerate() {
            let want = if w % 4 == 0 { 5 } else { 2 };
            assert_eq!(set.failed_edge_count(), want, "window {w}");
        }
    }

    #[test]
    fn small_pools_and_zero_period() {
        // Pool smaller than the burst: every candidate fails.
        let params = StormParams {
            period: 1,
            burst_windows: 1,
            burst_links: 10,
            calm_links: 0,
            seed: 3,
        };
        let schedule = storm_schedule(&pool(3), 2, &params);
        assert_eq!(schedule[0].failed_edge_count(), 3);
        // Empty pool: empty sets, no hang.
        assert!(storm_schedule(&[], 4, &params).iter().all(|s| s.is_empty()));
        // period == 0 means calm forever.
        let calm = StormParams {
            period: 0,
            calm_links: 1,
            ..StormParams::default()
        };
        let schedule = storm_schedule(&pool(10), 4, &calm);
        assert!(schedule.iter().all(|s| s.failed_edge_count() == 1));
    }
}
