//! Property tests for the latency simulation: the scheme ordering and the
//! flood/flow invariants must hold on arbitrary random topologies.

// Requires the external `proptest` crate: compiled only with `--features proptest`
// (offline builds ship without it).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use rbpc_core::{BasePathOracle, DenseBasePaths};
use rbpc_graph::{CostModel, FailureSet, Metric, NodeId};
use rbpc_sim::{flood_timeline, outage, simulate_flow, FlowConfig, LatencyModel, Scheme};
use rbpc_topo::{gnm_connected, waxman, WaxmanParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For any restorable single-link failure: local ≤ source < re-establish.
    #[test]
    fn scheme_ordering(n in 8usize..24, seed in 0u64..2000, which in 0usize..100) {
        let g = gnm_connected(n, 2 * n, 8, seed);
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, seed));
        let m = LatencyModel::default();
        let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
        let base = oracle.base_path(s, t).unwrap();
        if base.is_trivial() {
            return Ok(());
        }
        let e = base.edges()[which % base.hop_count()];
        let Ok(local) = outage(&oracle, &m, s, t, e, Scheme::LocalEndRoute) else {
            return Ok(());
        };
        let source = outage(&oracle, &m, s, t, e, Scheme::SourceRbpc).unwrap();
        let re = outage(&oracle, &m, s, t, e, Scheme::Reestablish).unwrap();
        prop_assert!(local.restored_at_us <= source.restored_at_us);
        prop_assert!(source.restored_at_us < re.restored_at_us);
        // Everyone's outage is at least the detection delay.
        prop_assert!(local.restored_at_us >= m.detection_us);
    }

    /// Flood awareness is detection-plus-hops and every connected router
    /// eventually learns.
    #[test]
    fn flood_reaches_connected_routers(n in 6usize..20, seed in 0u64..2000, which in 0usize..100) {
        let g = gnm_connected(n, 2 * n, 5, seed);
        let e = rbpc_graph::EdgeId::new(which % g.edge_count());
        let m = LatencyModel::default();
        let failures = FailureSet::of_edge(e);
        let tl = flood_timeline(&g, &failures, &m);
        let view = failures.view(&g);
        let (u, _) = g.endpoints(e);
        let reach = rbpc_graph::bfs_distances(&view, u);
        for r in g.nodes() {
            if reach[r.index()].is_some() {
                let at = tl.at(r);
                prop_assert!(at.is_some());
                prop_assert!(at.unwrap() >= m.detection_us);
            }
        }
        // Detectors are the earliest-informed routers.
        let min = g
            .nodes()
            .filter_map(|r| tl.at(r))
            .min()
            .unwrap();
        prop_assert_eq!(min, m.detection_us);
    }

    /// Flow conservation: sent = delivered + dropped; faster schemes never
    /// drop more; reordering only happens for the hybrid.
    #[test]
    fn flow_conservation(seed in 0u64..500, which in 0usize..100) {
        let g = waxman(
            WaxmanParams {
                nodes: 30,
                ..WaxmanParams::default()
            },
            seed,
        );
        let oracle = DenseBasePaths::build(g, CostModel::new(Metric::Weighted, seed));
        let m = LatencyModel::default();
        let cfg = FlowConfig::default();
        let (s, t) = (NodeId::new(0), NodeId::new(29));
        let base = oracle.base_path(s, t).unwrap();
        if base.is_trivial() {
            return Ok(());
        }
        let e = base.edges()[which % base.hop_count()];
        let mut drops = Vec::new();
        for scheme in [Scheme::Hybrid, Scheme::SourceRbpc, Scheme::Reestablish] {
            let Ok(r) = simulate_flow(&oracle, &m, &cfg, s, t, e, scheme) else {
                return Ok(());
            };
            prop_assert_eq!(r.sent, r.delivered + r.dropped);
            if scheme != Scheme::Hybrid {
                prop_assert_eq!(r.reordered, 0);
            }
            drops.push(r.dropped);
        }
        prop_assert!(drops[0] <= drops[1]);
        prop_assert!(drops[1] <= drops[2]);
    }
}
