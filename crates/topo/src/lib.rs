//! Topology generators and parsers for the RBPC reproduction.
//!
//! The paper evaluates RBPC on three networks whose details are proprietary
//! or were gathered from measurement infrastructure that no longer exists:
//! a large ISP backbone, the NLANR AS graph, and an Internet router-level
//! map. This crate provides faithful synthetic stand-ins plus every
//! adversarial construction from the paper's figures:
//!
//! * [`isp`] — a two-level hierarchical ISP backbone (core ring + chords,
//!   dual-homed PoPs) with OSPF-style inverse-capacity weights, tuned to the
//!   paper's ~200 nodes / ~400 links / avg degree ≈ 3.5;
//! * [`powerlaw`] — Barabási–Albert preferential attachment at the AS-graph
//!   and Internet-map scales (the property the paper's citations establish
//!   for those graphs is exactly their power-law degree mix);
//! * [`classic`] — the comb of Figure 2, the weighted tight chain of
//!   Figure 3, the two-hop star of Figure 4, the 4-cycle and the
//!   parallel-edge chain discussed around Theorem 3, plus standard shapes;
//! * [`random`] — seeded connected `G(n, m)` graphs for tests;
//! * [`io`] — a plain-text edge-list format so real topologies can be
//!   loaded.
//!
//! All generators are deterministic given their seed.
//!
//! The full paper-to-code map (theorems, figures, tables -> modules and
//! tests) is in `docs/PAPER_MAP.md` at the repository root;
//! `docs/ARCHITECTURE.md` shows how the crates fit together.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod classic;
pub mod io;
pub mod isp;
pub mod powerlaw;
pub mod random;
pub mod waxman;

pub use classic::{
    comb, complete, cycle, grid, parallel_chain, path, two_hop_star, CombTopology,
    ParallelChainTopology, StarTopology, WeightedTightTopology,
};
pub use classic::{directed_counterexample, weighted_tight, DirectedCounterexample};
pub use io::{parse_edge_list, write_edge_list, TopologyParseError};
pub use isp::{isp_topology, IspParams};
pub use powerlaw::{
    as_graph_like, ba_graph, ba_graph_clustered, internet_like, internet_like_scaled,
    INTERNET_TRIAD_PCT,
};
pub use random::gnm_connected;
pub use waxman::{waxman, WaxmanParams};
