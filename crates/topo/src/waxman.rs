//! Waxman random geometric graphs.
//!
//! The Waxman model (1988) was the standard synthetic internetwork of the
//! paper's era: routers scattered in the unit square, linked with
//! probability `β·exp(−d / (α·L))` where `d` is Euclidean distance and `L`
//! the diagonal. It complements the suite's hierarchical ISP and power-law
//! generators with a flat, distance-driven family — useful for checking
//! that RBPC's behaviour is not an artifact of one topology style.

use rbpc_graph::{DetRng, Graph, UnionFind};

/// Parameters of the Waxman generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaxmanParams {
    /// Number of routers.
    pub nodes: usize,
    /// `α` — larger values stretch the reach of long links (typical 0.1–0.3).
    pub alpha: f64,
    /// `β` — overall link density (typical 0.1–0.4).
    pub beta: f64,
    /// Whether link weights are the quantized Euclidean distance (`true`)
    /// or all 1 (`false`).
    pub distance_weights: bool,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams {
            nodes: 100,
            alpha: 0.15,
            beta: 0.25,
            distance_weights: true,
        }
    }
}

/// Generates a connected Waxman graph; deterministic per seed.
///
/// Connectivity is guaranteed by joining any leftover components with
/// their geometrically closest inter-component pair (a standard fix-up).
///
/// # Panics
///
/// Panics if `nodes == 0` or the parameters are not finite/positive.
///
/// ```
/// use rbpc_topo::{waxman, WaxmanParams};
/// use rbpc_graph::is_connected;
/// let g = waxman(WaxmanParams::default(), 7);
/// assert_eq!(g.node_count(), 100);
/// assert!(is_connected(&g));
/// ```
pub fn waxman(params: WaxmanParams, seed: u64) -> Graph {
    assert!(params.nodes >= 1, "need at least one node");
    assert!(
        params.alpha > 0.0 && params.alpha.is_finite(),
        "alpha must be positive"
    );
    assert!(
        params.beta > 0.0 && params.beta <= 1.0,
        "beta must be in (0, 1]"
    );
    let n = params.nodes;
    let mut rng = DetRng::seed_from_u64(seed);
    let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen_f64(), rng.gen_f64())).collect();
    let diag = 2f64.sqrt();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pos[a].0 - pos[b].0;
        let dy = pos[a].1 - pos[b].1;
        (dx * dx + dy * dy).sqrt()
    };
    let weight_of = |d: f64| -> u32 {
        if params.distance_weights {
            // Quantize distances into 1..=100 (OSPF-style integral costs).
            (d / diag * 99.0).round() as u32 + 1
        } else {
            1
        }
    };

    let mut g = Graph::new(n);
    let mut uf = UnionFind::new(n);
    for a in 0..n {
        for b in a + 1..n {
            let d = dist(a, b);
            let p = params.beta * (-d / (params.alpha * diag)).exp();
            if rng.gen_f64() < p {
                g.add_edge(a, b, weight_of(d)).expect("valid edge");
                uf.union(a, b);
            }
        }
    }
    // Connectivity fix-up: attach each remaining component via the closest
    // inter-component pair.
    while uf.set_count() > 1 {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..n {
            for b in a + 1..n {
                if uf.same(a, b) {
                    continue;
                }
                let d = dist(a, b);
                if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                    best = Some((a, b, d));
                }
            }
        }
        let (a, b, d) = best.expect("more than one component implies a crossing pair");
        g.add_edge(a, b, weight_of(d)).expect("valid fix-up edge");
        uf.union(a, b);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::is_connected;

    #[test]
    fn connected_and_sized() {
        for seed in 0..5 {
            let g = waxman(WaxmanParams::default(), seed);
            assert_eq!(g.node_count(), 100);
            assert!(is_connected(&g), "seed {seed}");
            assert!(g.edge_count() >= 99);
        }
    }

    #[test]
    fn deterministic() {
        let a = waxman(WaxmanParams::default(), 3);
        let b = waxman(WaxmanParams::default(), 3);
        assert_eq!(a, b);
        assert_ne!(a, waxman(WaxmanParams::default(), 4));
    }

    #[test]
    fn density_grows_with_beta() {
        let sparse = waxman(
            WaxmanParams {
                beta: 0.05,
                ..WaxmanParams::default()
            },
            1,
        );
        let dense = waxman(
            WaxmanParams {
                beta: 0.6,
                ..WaxmanParams::default()
            },
            1,
        );
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    fn distance_weights_span_range() {
        let g = waxman(WaxmanParams::default(), 9);
        let weights: Vec<u32> = g.edges().map(|(_, r)| r.weight).collect();
        assert!(weights.iter().all(|&w| (1..=100).contains(&w)));
        // Short links dominate under Waxman.
        let short = weights.iter().filter(|&&w| w <= 30).count();
        assert!(short * 2 > weights.len());
    }

    #[test]
    fn unit_weights_mode() {
        let g = waxman(
            WaxmanParams {
                distance_weights: false,
                nodes: 40,
                ..WaxmanParams::default()
            },
            2,
        );
        assert!(g.edges().all(|(_, r)| r.weight == 1));
    }

    #[test]
    fn single_node() {
        let g = waxman(
            WaxmanParams {
                nodes: 1,
                ..WaxmanParams::default()
            },
            0,
        );
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn rejects_bad_beta() {
        let _ = waxman(
            WaxmanParams {
                beta: 0.0,
                ..WaxmanParams::default()
            },
            0,
        );
    }
}
