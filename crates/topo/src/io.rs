//! Plain-text edge-list topology format.
//!
//! ```text
//! # comments and blank lines are ignored
//! nodes 4
//! edge 0 1 10
//! edge 1 2 1
//! edge 2 3 1
//! ```
//!
//! The format is line-oriented so real ISP or measurement-derived
//! topologies can be fed to the evaluation harness.

use core::fmt;
use rbpc_graph::{Graph, GraphError};

/// Error produced when parsing an edge-list document.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyParseError {
    /// A line did not match `nodes <n>` or `edge <u> <v> <w>`.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// The `nodes` header is missing or appears after an `edge` line.
    MissingHeader,
    /// An edge was rejected by the graph (self-loop, range, zero weight).
    Graph {
        /// 1-based line number.
        line: usize,
        /// The underlying graph error.
        source: GraphError,
    },
}

impl fmt::Display for TopologyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologyParseError::Malformed { line } => {
                write!(f, "malformed topology line {line}")
            }
            TopologyParseError::MissingHeader => {
                write!(f, "missing `nodes <n>` header before first edge")
            }
            TopologyParseError::Graph { line, source } => {
                write!(f, "invalid edge at line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for TopologyParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TopologyParseError::Graph { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses an edge-list document into a [`Graph`].
///
/// # Errors
///
/// Returns [`TopologyParseError`] on malformed lines, a missing header, or
/// edges the graph rejects.
///
/// ```
/// use rbpc_topo::parse_edge_list;
/// let g = parse_edge_list("nodes 3\nedge 0 1 5\nedge 1 2 5\n")?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), rbpc_topo::TopologyParseError>(())
/// ```
pub fn parse_edge_list(text: &str) -> Result<Graph, TopologyParseError> {
    let mut graph: Option<Graph> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("nodes") => {
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(TopologyParseError::Malformed { line: line_no })?;
                if parts.next().is_some() {
                    return Err(TopologyParseError::Malformed { line: line_no });
                }
                graph = Some(Graph::new(n));
            }
            Some("edge") => {
                let g = graph.as_mut().ok_or(TopologyParseError::MissingHeader)?;
                let mut field = || -> Result<u64, TopologyParseError> {
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(TopologyParseError::Malformed { line: line_no })
                };
                let u = field()? as usize;
                let v = field()? as usize;
                let w = field()? as u32;
                if parts.next().is_some() {
                    return Err(TopologyParseError::Malformed { line: line_no });
                }
                g.add_edge(u, v, w)
                    .map_err(|source| TopologyParseError::Graph {
                        line: line_no,
                        source,
                    })?;
            }
            _ => return Err(TopologyParseError::Malformed { line: line_no }),
        }
    }
    graph.ok_or(TopologyParseError::MissingHeader)
}

/// Serializes a graph to the edge-list format parsed by
/// [`parse_edge_list`]. Round-trips exactly.
pub fn write_edge_list(graph: &Graph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", graph.node_count());
    for (_, rec) in graph.edges() {
        let _ = writeln!(
            out,
            "edge {} {} {}",
            rec.u.index(),
            rec.v.index(),
            rec.weight
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let g = parse_edge_list("nodes 3\nedge 0 1 5\nedge 1 2 7\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.weight(0.into()), 5);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# topology\n\nnodes 2\n  # indented comment\nedge 0 1 1\n\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn missing_header() {
        assert_eq!(
            parse_edge_list("edge 0 1 1\n").unwrap_err(),
            TopologyParseError::MissingHeader
        );
        assert_eq!(
            parse_edge_list("").unwrap_err(),
            TopologyParseError::MissingHeader
        );
    }

    #[test]
    fn malformed_lines() {
        assert_eq!(
            parse_edge_list("nodes x\n").unwrap_err(),
            TopologyParseError::Malformed { line: 1 }
        );
        assert_eq!(
            parse_edge_list("nodes 2\nedge 0 1\n").unwrap_err(),
            TopologyParseError::Malformed { line: 2 }
        );
        assert_eq!(
            parse_edge_list("nodes 2\nedge 0 1 1 9\n").unwrap_err(),
            TopologyParseError::Malformed { line: 2 }
        );
        assert_eq!(
            parse_edge_list("link 0 1 1\n").unwrap_err(),
            TopologyParseError::Malformed { line: 1 }
        );
    }

    #[test]
    fn graph_errors_carry_line() {
        let err = parse_edge_list("nodes 2\nedge 0 0 1\n").unwrap_err();
        match err {
            TopologyParseError::Graph { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err2 = parse_edge_list("nodes 2\nedge 0 5 1\n").unwrap_err();
        assert!(matches!(err2, TopologyParseError::Graph { line: 2, .. }));
    }

    #[test]
    fn round_trip() {
        let g = crate::gnm_connected(12, 20, 9, 4);
        let text = write_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn round_trip_parallel_edges() {
        let p = crate::parallel_chain(2);
        let text = write_edge_list(&p.graph);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(p.graph, back);
    }
}
