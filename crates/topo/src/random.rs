//! Seeded connected random graphs for tests and fuzzing.

use rbpc_graph::{DetRng, Graph};

/// A connected random multigraph with `n` nodes and exactly `m ≥ n − 1`
/// edges: a uniformly random spanning tree skeleton (random attachment)
/// plus uniformly random extra edges. Weights are uniform in
/// `1..=max_weight`.
///
/// Deterministic for a given seed.
///
/// # Panics
///
/// Panics if `n == 0`, `m < n − 1`, or `max_weight == 0`.
///
/// ```
/// use rbpc_topo::gnm_connected;
/// use rbpc_graph::is_connected;
/// let g = gnm_connected(20, 35, 10, 7);
/// assert_eq!(g.node_count(), 20);
/// assert_eq!(g.edge_count(), 35);
/// assert!(is_connected(&g));
/// ```
pub fn gnm_connected(n: usize, m: usize, max_weight: u32, seed: u64) -> Graph {
    assert!(n >= 1, "need at least one node");
    assert!(m + 1 >= n, "need at least n - 1 edges for connectivity");
    assert!(max_weight >= 1, "weights are strictly positive");
    let mut rng = DetRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, m);
    // Random attachment spanning tree.
    for v in 1..n {
        let u = rng.gen_range(0..v);
        let w = rng.gen_range(1..=max_weight);
        g.add_edge(u, v, w).expect("tree edge");
    }
    while g.edge_count() < m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let w = rng.gen_range(1..=max_weight);
            g.add_edge(a, b, w).expect("extra edge");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::is_connected;

    #[test]
    fn counts_and_connectivity() {
        for seed in 0..5 {
            let g = gnm_connected(30, 60, 8, seed);
            assert_eq!(g.node_count(), 30);
            assert_eq!(g.edge_count(), 60);
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gnm_connected(15, 30, 5, 42);
        let b = gnm_connected(15, 30, 5, 42);
        let c = gnm_connected(15, 30, 5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tree_edge_case() {
        let g = gnm_connected(10, 9, 3, 1);
        assert_eq!(g.edge_count(), 9);
        assert!(is_connected(&g));
    }

    #[test]
    fn single_node() {
        let g = gnm_connected(1, 0, 1, 0);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "n - 1 edges")]
    fn too_few_edges_panics() {
        let _ = gnm_connected(10, 5, 3, 0);
    }
}
