//! Power-law graphs via Barabási–Albert preferential attachment.
//!
//! The paper's two measured Internet topologies — the NLANR AS graph
//! (4 746 nodes / 9 878 links) and the Govindan–Tangmunarunkit router map
//! (40 377 / 101 659) — are known to have power-law degree distributions
//! (Faloutsos et al., cited by the paper). We reproduce them with
//! preferential attachment at identical node/edge counts; attachment
//! preference is implemented by sampling a uniformly random endpoint of a
//! uniformly random existing edge, which is proportional to degree.

use rbpc_graph::{DetRng, Graph, NodeId};

/// Generates a connected Barabási–Albert-style graph with exactly `n`
/// nodes and `target_edges` edges (unit weights; the paper evaluates these
/// topologies by hop count).
///
/// Each arriving node attaches to `ceil(avg)` or `floor(avg)` distinct
/// existing nodes chosen preferentially by degree, where the mix is tuned
/// so the final edge count lands exactly on `target_edges` (topped up or
/// trimmed by preferential extra edges at the end).
///
/// # Panics
///
/// Panics if `n < 2` or `target_edges < n - 1`.
///
/// ```
/// use rbpc_topo::ba_graph;
/// use rbpc_graph::is_connected;
/// let g = ba_graph(500, 1040, 9);
/// assert_eq!(g.node_count(), 500);
/// assert_eq!(g.edge_count(), 1040);
/// assert!(is_connected(&g));
/// ```
pub fn ba_graph(n: usize, target_edges: usize, seed: u64) -> Graph {
    ba_graph_clustered(n, target_edges, 0, seed)
}

/// Barabási–Albert with **triad formation** (Holme–Kim): after each
/// preferential attachment, with probability `triad_pct`% the next link of
/// the same arriving node attaches to a random neighbor of the previous
/// target, closing a triangle. This reproduces the clustering of measured
/// Internet graphs — and with it the paper's observation that most links
/// have a two-hop bypass — while keeping the power-law degree mix.
///
/// `triad_pct == 0` is plain preferential attachment.
///
/// # Panics
///
/// Panics if `n < 2`, `target_edges < n - 1`, or `triad_pct > 100`.
pub fn ba_graph_clustered(n: usize, target_edges: usize, triad_pct: u32, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    assert!(
        target_edges >= n - 1,
        "need at least n - 1 edges for connectivity"
    );
    assert!(triad_pct <= 100, "triad_pct is a percentage");
    let mut rng = DetRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, target_edges);
    // Endpoint pool: each edge contributes both endpoints, so sampling a
    // pool element uniformly is degree-proportional sampling.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * target_edges);
    let add = |g: &mut Graph, pool: &mut Vec<u32>, a: usize, b: usize| {
        g.add_unit_edge(a, b).expect("generator edge");
        pool.push(a as u32);
        pool.push(b as u32);
    };

    // Seed: an edge between the first two nodes.
    add(&mut g, &mut pool, 0, 1);

    // Per-node attachment budget: (target - 1) remaining edges over (n - 2)
    // remaining nodes, spread as evenly as possible, at least 1 each.
    let remaining_nodes = n - 2;
    let remaining_edges = target_edges - 1;
    for v in 2..n {
        let i = v - 2;
        // Evenly spread: how many edges should have been used after i nodes.
        let quota_before = remaining_edges * i / remaining_nodes.max(1);
        let quota_after = remaining_edges * (i + 1) / remaining_nodes.max(1);
        let mut m = (quota_after - quota_before).max(1);
        m = m.min(v); // cannot attach to more distinct nodes than exist
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m + 100 {
            guard += 1;
            // Triad formation: follow a neighbor of the previous target.
            if let Some(&prev) = chosen.last() {
                if rng.gen_range(0..100u32) < triad_pct {
                    let deg = g.degree(NodeId::new(prev));
                    if deg > 0 {
                        let pick = rng.gen_range(0..deg);
                        let t = g
                            .neighbors(NodeId::new(prev))
                            .nth(pick)
                            .expect("degree-checked")
                            .to
                            .index();
                        if t != v && !chosen.contains(&t) {
                            chosen.push(t);
                            continue;
                        }
                    }
                }
            }
            let t = pool[rng.gen_range(0..pool.len())] as usize;
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        if chosen.is_empty() {
            chosen.push(rng.gen_range(0..v));
        }
        for t in chosen {
            add(&mut g, &mut pool, v, t);
        }
    }
    // Top up to the exact target with preferential extra edges.
    let mut guard = 0;
    while g.edge_count() < target_edges && guard < 100 * target_edges {
        guard += 1;
        let a = pool[rng.gen_range(0..pool.len())] as usize;
        let b = rng.gen_range(0..n);
        if a != b && g.find_edge(a.into(), b.into()).is_none() {
            add(&mut g, &mut pool, a, b);
        }
    }
    g
}

/// Triad-formation probability (percent) used for the measured-Internet
/// stand-ins; calibrated so the bypass-hopcount distribution lands in the
/// paper's regime (most links bypassable in 2–3 hops).
pub const INTERNET_TRIAD_PCT: u32 = 55;

/// The paper's AS-graph stand-in: 4 746 nodes and 9 878 links (Table 1),
/// with Holme–Kim clustering.
pub fn as_graph_like(seed: u64) -> Graph {
    ba_graph_clustered(4_746, 9_878, INTERNET_TRIAD_PCT, seed)
}

/// The paper's Internet router-map stand-in at full scale: 40 377 nodes and
/// 101 659 links (Table 1). Generation takes a few seconds; prefer
/// [`internet_like_scaled`] in tests.
pub fn internet_like(seed: u64) -> Graph {
    ba_graph_clustered(40_377, 101_659, INTERNET_TRIAD_PCT, seed)
}

/// A scaled-down Internet stand-in preserving the paper's edge/node ratio
/// (≈ 2.52 links per node).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn internet_like_scaled(n: usize, seed: u64) -> Graph {
    let m = ((n as f64) * 101_659.0 / 40_377.0).round() as usize;
    ba_graph_clustered(n, m.max(n - 1), INTERNET_TRIAD_PCT, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::is_connected;

    #[test]
    fn exact_counts() {
        let g = ba_graph(200, 420, 5);
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.edge_count(), 420);
    }

    #[test]
    fn connected_for_many_seeds() {
        for seed in 0..5 {
            let g = ba_graph(150, 310, seed);
            assert!(is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(ba_graph(100, 210, 8), ba_graph(100, 210, 8));
        assert_ne!(ba_graph(100, 210, 8), ba_graph(100, 210, 9));
    }

    #[test]
    fn heavy_tail_exists() {
        // Power-law-ish: the max degree should far exceed the average.
        let g = ba_graph(1000, 2100, 3);
        let stats = g.degree_stats().unwrap();
        assert!(
            stats.max as f64 > 4.0 * stats.avg,
            "max {} vs avg {}",
            stats.max,
            stats.avg
        );
        assert!(stats.min >= 1);
    }

    #[test]
    fn as_graph_scale_matches_table1() {
        let g = as_graph_like(1);
        assert_eq!(g.node_count(), 4_746);
        assert_eq!(g.edge_count(), 9_878);
        let avg = g.degree_stats().unwrap().avg;
        assert!((4.0..4.4).contains(&avg), "avg degree {avg}");
        assert!(is_connected(&g));
    }

    #[test]
    fn scaled_internet_preserves_ratio() {
        let g = internet_like_scaled(800, 2);
        assert_eq!(g.node_count(), 800);
        let ratio = g.edge_count() as f64 / 800.0;
        assert!((2.4..2.7).contains(&ratio), "ratio {ratio}");
        assert!(is_connected(&g));
    }

    #[test]
    fn tree_edge_case() {
        let g = ba_graph(10, 9, 0);
        assert_eq!(g.edge_count(), 9);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "n - 1 edges")]
    fn rejects_too_few_edges() {
        let _ = ba_graph(10, 5, 0);
    }
}
