//! The paper's adversarial constructions and standard graph shapes.
//!
//! See `docs/PAPER_MAP.md` (repository root) for the full map from the
//! paper's results to modules and tests.

use rbpc_graph::{ArcId, DiGraph, EdgeId, Graph, NodeId};

/// The "comb" of Figure 2 — the topology showing Theorem 1 is tight.
///
/// A bottom spine `b_0 … b_k` (unit edges), with a tooth node `c_i` above
/// each spine edge, connected to both its endpoints. The tooth tops can
/// never be interior nodes of a shortest path, so after the `k` spine edges
/// fail, the unique surviving `s → t` path (over the teeth) decomposes into
/// no fewer than `k + 1` original shortest paths.
#[derive(Debug, Clone)]
pub struct CombTopology {
    /// The graph: `2k + 1` nodes, `3k` unit edges.
    pub graph: Graph,
    /// Source `s = b_0`.
    pub s: NodeId,
    /// Destination `t = b_k`.
    pub t: NodeId,
    /// The `k` spine edges whose failure forces the over-the-teeth path.
    pub spine_edges: Vec<EdgeId>,
    /// Tooth-top nodes `c_1 … c_k`.
    pub teeth: Vec<NodeId>,
}

/// Builds the comb with `k ≥ 1` teeth; see [`CombTopology`].
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn comb(k: usize) -> CombTopology {
    assert!(k >= 1, "comb needs at least one tooth");
    // Nodes: b_0..b_k are 0..=k, teeth c_1..c_k are k+1..=2k.
    let mut g = Graph::new(2 * k + 1);
    let mut spine = Vec::with_capacity(k);
    let mut teeth = Vec::with_capacity(k);
    for i in 0..k {
        spine.push(g.add_unit_edge(i, i + 1).expect("valid spine edge"));
        let c = k + 1 + i;
        g.add_unit_edge(i, c).expect("valid tooth edge");
        g.add_unit_edge(c, i + 1).expect("valid tooth edge");
        teeth.push(NodeId::new(c));
    }
    CombTopology {
        graph: g,
        s: NodeId::new(0),
        t: NodeId::new(k),
        spine_edges: spine,
        teeth,
    }
}

/// The weighted chain of Figure 3 — the topology showing Theorem 2 is
/// tight: after `k` failures the new shortest path interleaves `k + 1`
/// original shortest paths with `k` raw edges that are *not* base paths.
///
/// Junction pairs are connected by a cheap edge of weight `SCALE`
/// (these fail) in parallel with an expensive edge of weight `SCALE + 1`
/// (the "`1 + ε`" edges: never on any original shortest path, because the
/// cheap parallel edge always improves a containing path). Between
/// junction pairs run two-hop segments of total weight `SCALE`.
#[derive(Debug, Clone)]
pub struct WeightedTightTopology {
    /// The constructed graph.
    pub graph: Graph,
    /// Source (left end of the chain).
    pub s: NodeId,
    /// Destination (right end of the chain).
    pub t: NodeId,
    /// The `k` cheap parallel edges whose failure triggers the bound.
    pub cheap_edges: Vec<EdgeId>,
    /// The `k` expensive (`1 + ε`) edges that must appear as raw edges.
    pub expensive_edges: Vec<EdgeId>,
}

/// The weight unit playing the role of "1" in Figure 3 (`ε = 1/SCALE`).
pub const WEIGHTED_TIGHT_SCALE: u32 = 1000;

/// Builds the Figure 3 chain with `k ≥ 1` failing links; see
/// [`WeightedTightTopology`].
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn weighted_tight(k: usize) -> WeightedTightTopology {
    assert!(k >= 1, "weighted_tight needs at least one failure");
    let scale = WEIGHTED_TIGHT_SCALE;
    // Layout per block i in 0..k: a_i --(s/2)-- m_i --(s/2)-- a_i'
    // then the junction pair a_i' = j_i  and  j_i --cheap/expensive-- a_{i+1}.
    // Segments have 2 hops so they are nontrivial shortest paths.
    // Node numbering: segment i start = 3i, middle = 3i+1, end = 3i+2;
    // segment i+1 start = 3(i+1). Total k+1 segments -> 3(k+1) nodes.
    let n = 3 * (k + 1);
    let mut g = Graph::new(n);
    let mut cheap = Vec::with_capacity(k);
    let mut expensive = Vec::with_capacity(k);
    for i in 0..=k {
        let a = 3 * i;
        g.add_edge(a, a + 1, scale / 2).expect("segment edge");
        g.add_edge(a + 1, a + 2, scale / 2).expect("segment edge");
        if i < k {
            let end = a + 2;
            let next = 3 * (i + 1);
            cheap.push(g.add_edge(end, next, scale).expect("cheap junction"));
            expensive.push(
                g.add_edge(end, next, scale + 1)
                    .expect("expensive junction"),
            );
        }
    }
    WeightedTightTopology {
        graph: g,
        s: NodeId::new(0),
        t: NodeId::new(n - 1),
        cheap_edges: cheap,
        expensive_edges: expensive,
    }
}

/// The two-hop star of Figure 4 — a router failure can force `Ω(n)`
/// concatenations.
///
/// A hub adjacent to every node of a line `p_0 … p_{n-2}`. Every shortest
/// path in the graph has at most two hops, so once the hub fails, the
/// unique `p_0 → p_{n-2}` path (the line, `n − 2` edges) needs at least
/// `(n − 2) / 2` base paths.
#[derive(Debug, Clone)]
pub struct StarTopology {
    /// The graph: a line plus a hub adjacent to every line node.
    pub graph: Graph,
    /// The hub router whose failure is pathological.
    pub hub: NodeId,
    /// Source `p_0`.
    pub s: NodeId,
    /// Destination `p_{n-2}` (other end of the line).
    pub t: NodeId,
}

/// Builds the Figure 4 star over `n ≥ 4` total nodes; see [`StarTopology`].
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn two_hop_star(n: usize) -> StarTopology {
    assert!(n >= 4, "two_hop_star needs at least 4 nodes");
    let mut g = Graph::new(n);
    let hub = n - 1;
    for i in 0..n - 1 {
        g.add_unit_edge(i, hub).expect("spoke");
        if i + 1 < n - 1 {
            g.add_unit_edge(i, i + 1).expect("line edge");
        }
    }
    StarTopology {
        graph: g,
        hub: NodeId::new(hub),
        s: NodeId::new(0),
        t: NodeId::new(n - 2),
    }
}

/// The parallel-edge chain discussed after Theorem 3: `2k + 2` nodes in a
/// line with **two** parallel unit edges between each consecutive pair.
///
/// With a padded (unique-shortest-path) base set, failing the "chosen" edge
/// in `k` alternating positions forces restoration paths of `2k + 1`
/// components, while a cleverer base set achieves 2 — the paper's example
/// that base-set choice matters.
#[derive(Debug, Clone)]
pub struct ParallelChainTopology {
    /// The chain graph.
    pub graph: Graph,
    /// `first[i]` is the first parallel edge of position `i`.
    pub first_edges: Vec<EdgeId>,
    /// `second[i]` is the second parallel edge of position `i`.
    pub second_edges: Vec<EdgeId>,
}

/// Builds the parallel chain for parameter `k ≥ 1`; see
/// [`ParallelChainTopology`].
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn parallel_chain(k: usize) -> ParallelChainTopology {
    assert!(k >= 1, "parallel_chain needs k >= 1");
    let n = 2 * k + 2;
    let mut g = Graph::new(n);
    let mut first = Vec::with_capacity(n - 1);
    let mut second = Vec::with_capacity(n - 1);
    for i in 0..n - 1 {
        first.push(g.add_unit_edge(i, i + 1).expect("first parallel edge"));
        second.push(g.add_unit_edge(i, i + 1).expect("second parallel edge"));
    }
    ParallelChainTopology {
        graph: g,
        first_edges: first,
        second_edges: second,
    }
}

/// The directed counterexample of Figure 5: Theorem 1 fails in directed
/// graphs — a **single** arc failure forces a new shortest path that is a
/// concatenation of `Ω(n)` original shortest paths.
///
/// Construction: a directed line `w_0 → w_1 → … → w_m` (unit arcs), a pair
/// `a → b` (unit), an arc `w_i → a` from every line node, and an arc
/// `b → w_i` to every line node. In the intact graph every pair `w_i → w_j`
/// with `j − i > 3` prefers the 3-hop shortcut `w_i → a → b → w_j`, so
/// line segments of more than 3 arcs are never shortest paths. When `a → b`
/// fails, the line is the unique route from `w_0` to `w_m`, and any cover
/// by original shortest paths needs at least `m / 3 ≈ (n − 3) / 3` pieces.
#[derive(Debug, Clone)]
pub struct DirectedCounterexample {
    /// The directed graph: `m + 3` nodes.
    pub graph: DiGraph,
    /// Source `w_0`.
    pub s: NodeId,
    /// Destination `w_m`.
    pub t: NodeId,
    /// The single arc `a → b` whose failure is catastrophic.
    pub critical_arc: ArcId,
    /// Length of the line (`m` arcs).
    pub line_len: usize,
}

/// Builds the Figure 5 digraph with a line of `m ≥ 4` arcs; see
/// [`DirectedCounterexample`].
///
/// # Panics
///
/// Panics if `m < 4`.
pub fn directed_counterexample(m: usize) -> DirectedCounterexample {
    assert!(m >= 4, "need a line of at least 4 arcs");
    // Nodes: w_0..w_m are 0..=m; a = m + 1; b = m + 2.
    let mut g = DiGraph::new(m + 3);
    let a = m + 1;
    let b = m + 2;
    for i in 0..m {
        g.add_arc(i, i + 1, 1).expect("line arc");
    }
    let critical = g.add_arc(a, b, 1).expect("critical arc");
    for i in 0..=m {
        g.add_arc(i, a, 1).expect("shortcut in-arc");
        g.add_arc(b, i, 1).expect("shortcut out-arc");
    }
    DirectedCounterexample {
        graph: g,
        s: NodeId::new(0),
        t: NodeId::new(m),
        critical_arc: critical,
        line_len: m,
    }
}

/// A simple path graph `0 — 1 — … — (n−1)` with unit weights.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "path needs at least one node");
    let mut g = Graph::new(n);
    for i in 0..n.saturating_sub(1) {
        g.add_unit_edge(i, i + 1).expect("path edge");
    }
    g
}

/// A cycle graph on `n ≥ 3` nodes with unit weights. `cycle(4)` is the
/// paper's example that undirected unweighted base sets cannot always avoid
/// the extra edge for `k = 1`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_unit_edge(i, (i + 1) % n).expect("cycle edge");
    }
    g
}

/// A complete graph on `n ≥ 1` nodes with unit weights.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            g.add_unit_edge(i, j).expect("complete edge");
        }
    }
    g
}

/// An `r × c` grid with unit weights; node `(i, j)` has index `i * c + j`.
///
/// # Panics
///
/// Panics if `r == 0` or `c == 0`.
pub fn grid(r: usize, c: usize) -> Graph {
    assert!(r >= 1 && c >= 1, "grid needs positive dimensions");
    let mut g = Graph::new(r * c);
    for i in 0..r {
        for j in 0..c {
            let v = i * c + j;
            if j + 1 < c {
                g.add_unit_edge(v, v + 1).expect("grid edge");
            }
            if i + 1 < r {
                g.add_unit_edge(v, v + c).expect("grid edge");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::{distance, is_connected, shortest_path, CostModel, FailureSet, Metric};

    fn um() -> CostModel {
        CostModel::new(Metric::Unweighted, 3)
    }

    fn wm() -> CostModel {
        CostModel::new(Metric::Weighted, 3)
    }

    #[test]
    fn comb_shape() {
        let c = comb(4);
        assert_eq!(c.graph.node_count(), 9);
        assert_eq!(c.graph.edge_count(), 12);
        assert_eq!(c.spine_edges.len(), 4);
        assert_eq!(c.teeth.len(), 4);
        assert!(is_connected(&c.graph));
        // Direct spine distance is k.
        assert_eq!(distance(&c.graph, &um(), c.s, c.t).unwrap().base, 4);
    }

    #[test]
    fn comb_survivor_is_unique_over_teeth() {
        let c = comb(3);
        let f = FailureSet::of_edges(c.spine_edges.iter().copied());
        let view = f.view(&c.graph);
        let p = shortest_path(&view, &um(), c.s, c.t).unwrap();
        assert_eq!(p.hop_count(), 2 * 3);
        for tooth in &c.teeth {
            assert!(p.contains_node(*tooth));
        }
    }

    #[test]
    fn comb_teeth_never_interior() {
        // Shortest paths between spine nodes never cross a tooth top.
        let c = comb(3);
        for a in 0..=3usize {
            for b in a + 1..=3 {
                let p = shortest_path(&c.graph, &um(), a.into(), b.into()).unwrap();
                for tooth in &c.teeth {
                    assert!(!p.contains_node(*tooth), "{a}->{b} crosses {tooth}");
                }
            }
        }
    }

    #[test]
    fn weighted_tight_shape() {
        let w = weighted_tight(3);
        assert_eq!(w.cheap_edges.len(), 3);
        assert_eq!(w.expensive_edges.len(), 3);
        assert_eq!(w.graph.node_count(), 12);
        assert!(is_connected(&w.graph));
        // Cheap edge is strictly cheaper than its parallel expensive twin.
        for (c, x) in w.cheap_edges.iter().zip(&w.expensive_edges) {
            assert!(w.graph.weight(*c) < w.graph.weight(*x));
            assert_eq!(w.graph.endpoints(*c), w.graph.endpoints(*x));
        }
    }

    #[test]
    fn weighted_tight_expensive_edges_not_on_shortest_paths() {
        let w = weighted_tight(2);
        // No shortest path between any pair uses an expensive edge.
        for a in w.graph.nodes() {
            for b in w.graph.nodes() {
                if a >= b {
                    continue;
                }
                let p = shortest_path(&w.graph, &wm(), a, b).unwrap();
                for x in &w.expensive_edges {
                    assert!(!p.contains_edge(*x));
                }
            }
        }
    }

    #[test]
    fn weighted_tight_survivor_uses_expensive_edges() {
        let w = weighted_tight(2);
        let f = FailureSet::of_edges(w.cheap_edges.iter().copied());
        let view = f.view(&w.graph);
        let p = shortest_path(&view, &wm(), w.s, w.t).unwrap();
        for x in &w.expensive_edges {
            assert!(p.contains_edge(*x));
        }
    }

    #[test]
    fn star_all_pairs_within_two_hops() {
        let s = two_hop_star(8);
        for a in s.graph.nodes() {
            for b in s.graph.nodes() {
                let d = distance(&s.graph, &um(), a, b).unwrap().base;
                assert!(d <= 2, "{a}->{b} = {d}");
            }
        }
    }

    #[test]
    fn star_hub_failure_leaves_long_line() {
        let s = two_hop_star(8);
        let f = FailureSet::of_nodes([s.hub.index()]);
        let view = f.view(&s.graph);
        let p = shortest_path(&view, &um(), s.s, s.t).unwrap();
        assert_eq!(p.hop_count(), 6); // the full line
    }

    #[test]
    fn parallel_chain_shape() {
        let p = parallel_chain(2);
        assert_eq!(p.graph.node_count(), 6);
        assert_eq!(p.graph.edge_count(), 10);
        for i in 0..5 {
            assert_eq!(
                p.graph
                    .edges_between(NodeId::new(i), NodeId::new(i + 1))
                    .len(),
                2
            );
        }
    }

    #[test]
    fn standard_shapes() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(cycle(4).edge_count(), 4);
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(complete(1).edge_count(), 0);
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(is_connected(&g));
        assert!(is_connected(&cycle(3)));
    }

    #[test]
    fn grid_distance_is_manhattan() {
        let g = grid(4, 4);
        let d = distance(&g, &um(), 0.into(), 15.into()).unwrap().base;
        assert_eq!(d, 6);
    }

    #[test]
    #[should_panic(expected = "at least one tooth")]
    fn comb_rejects_zero() {
        let _ = comb(0);
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn grid_rejects_zero() {
        let _ = grid(0, 3);
    }
}

#[cfg(test)]
mod directed_tests {
    use super::*;

    #[test]
    fn figure5_shape() {
        let d = directed_counterexample(6);
        assert_eq!(d.graph.node_count(), 9);
        // line 6 + critical 1 + 7 in + 7 out.
        assert_eq!(d.graph.arc_count(), 6 + 1 + 7 + 7);
        assert_eq!(d.line_len, 6);
    }

    #[test]
    // Indices feed both the expected value and the assertion message.
    #[allow(clippy::needless_range_loop)]
    fn figure5_shortcut_dominates_long_segments() {
        let d = directed_counterexample(8);
        let dist = d.graph.distance_matrix();
        // Any line pair further than 3 apart costs exactly 3 (via a, b).
        for i in 0..=8usize {
            for j in i + 1..=8 {
                let expect = (j - i).min(3) as u64;
                assert_eq!(dist[i][j], Some(expect), "{i}->{j}");
            }
        }
    }

    #[test]
    fn figure5_single_failure_forces_linear_cover() {
        for m in [9, 12, 18, 30] {
            let d = directed_counterexample(m);
            let p = d
                .graph
                .shortest_path(d.s, d.t, Some(d.critical_arc))
                .expect("line survives");
            // The unique survivor is the line itself.
            assert_eq!(p.len(), m + 1);
            let pieces = d.graph.min_shortest_cover(&p);
            assert!(
                pieces >= m.div_ceil(3),
                "m {m}: only {pieces} pieces, expected >= {}",
                m.div_ceil(3)
            );
            // ... far beyond Theorem 1's k + 1 = 2 bound for k = 1.
            assert!(pieces > 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 4 arcs")]
    fn figure5_rejects_tiny() {
        let _ = directed_counterexample(3);
    }
}
