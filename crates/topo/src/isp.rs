//! Synthetic ISP backbone generator.
//!
//! The paper's first (and, per the authors, most interesting) topology is a
//! proprietary snapshot of a large ISP: about 200 routers, about 400 links,
//! average degree 3.56, with OSPF weights. Real intra-AS backbones from
//! that era are two-level hierarchies: a meshed national **core** and
//! dual-homed points of presence (**PoPs**) containing aggregation and
//! access routers, with link weights set inversely to capacity. This
//! generator reproduces that structure and those aggregate statistics,
//! which are the only properties the paper's experiments depend on.

use rbpc_graph::{DetRng, Graph, NodeId};

/// Parameters of the ISP backbone generator.
///
/// The defaults produce a network matching the paper's Table 1 row:
/// ~200 nodes, ~400 links, average degree ≈ 3.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IspParams {
    /// Number of core (backbone) routers, connected in a ring plus chords.
    pub core_routers: usize,
    /// Number of PoPs; each has two aggregation routers dual-homed to the
    /// core.
    pub pops: usize,
    /// Minimum access routers per PoP.
    pub min_access_per_pop: usize,
    /// Maximum access routers per PoP.
    pub max_access_per_pop: usize,
    /// Fraction (percent, 0–100) of access routers that are dual-homed to
    /// both of their PoP's aggregation routers; the rest attach to one.
    pub dual_homed_access_pct: u32,
    /// Extra chords added across the core ring, per core router (halved).
    pub core_chords: usize,
    /// OSPF weight of core↔core links (highest capacity).
    pub core_weight: u32,
    /// OSPF weight of aggregation↔core uplinks.
    pub uplink_weight: u32,
    /// OSPF weight of the intra-PoP aggregation↔aggregation link (short,
    /// high-capacity, hence cheap — this is what makes two-hop bypasses
    /// prevalent, as in the paper's ISP).
    pub intra_pop_weight: u32,
    /// OSPF weight of access↔aggregation links.
    pub access_weight: u32,
}

impl Default for IspParams {
    fn default() -> Self {
        IspParams {
            core_routers: 12,
            pops: 30,
            min_access_per_pop: 3,
            max_access_per_pop: 5,
            dual_homed_access_pct: 100,
            core_chords: 12,
            core_weight: 1,
            uplink_weight: 4,
            intra_pop_weight: 2,
            access_weight: 8,
        }
    }
}

/// The generated ISP backbone with its structural annotations.
#[derive(Debug, Clone)]
pub struct IspTopology {
    /// The graph with OSPF-style weights.
    pub graph: Graph,
    /// Core router ids.
    pub core: Vec<NodeId>,
    /// Aggregation router ids, two per PoP (`agg[2p]`, `agg[2p+1]`).
    pub aggregation: Vec<NodeId>,
    /// Access router ids.
    pub access: Vec<NodeId>,
}

/// Generates a two-level hierarchical ISP backbone; deterministic per seed.
///
/// See [`IspParams`] for tuning. The result is always connected: the core
/// is a ring, every aggregation router is dual-homed to the core, and every
/// access router attaches to at least one aggregation router.
///
/// # Panics
///
/// Panics if `core_routers < 3`, `pops == 0`, or the access range is empty.
///
/// ```
/// use rbpc_topo::{isp_topology, IspParams};
/// use rbpc_graph::is_connected;
/// let isp = isp_topology(IspParams::default(), 1);
/// let n = isp.graph.node_count() as f64;
/// let stats = isp.graph.degree_stats().unwrap();
/// assert!(n >= 150.0 && n <= 260.0);
/// assert!(stats.avg > 3.0 && stats.avg < 4.2);
/// assert!(is_connected(&isp.graph));
/// ```
pub fn isp_topology(params: IspParams, seed: u64) -> IspTopology {
    assert!(params.core_routers >= 3, "core ring needs >= 3 routers");
    assert!(params.pops >= 1, "need at least one PoP");
    assert!(
        params.min_access_per_pop <= params.max_access_per_pop,
        "empty access range"
    );
    let mut rng = DetRng::seed_from_u64(seed);

    let mut g = Graph::new(0);
    let core: Vec<NodeId> = (0..params.core_routers).map(|_| g.add_node()).collect();

    // Core ring.
    for i in 0..core.len() {
        g.add_edge(core[i], core[(i + 1) % core.len()], params.core_weight)
            .expect("core ring edge");
    }
    // Core chords (skip already-adjacent pairs; duplicates allowed to fail
    // silently into re-picks).
    let mut chords = 0;
    let want_chords = params.core_chords.min(core.len() * (core.len() - 3) / 2);
    let mut attempts = 0;
    while chords < want_chords && attempts < 100 * (want_chords + 1) {
        attempts += 1;
        let a = rng.gen_range(0..core.len());
        let b = rng.gen_range(0..core.len());
        if a == b || g.find_edge(core[a], core[b]).is_some() {
            continue;
        }
        g.add_edge(core[a], core[b], params.core_weight)
            .expect("core chord");
        chords += 1;
    }

    // PoPs: two aggregation routers each, dual-homed to distinct core
    // routers, linked to each other.
    let mut aggregation = Vec::with_capacity(2 * params.pops);
    let mut access = Vec::new();
    for _ in 0..params.pops {
        let agg_a = g.add_node();
        let agg_b = g.add_node();
        aggregation.push(agg_a);
        aggregation.push(agg_b);
        let home = rng.gen_range(0..core.len());
        let alt = (home + 1 + rng.gen_range(0..core.len() - 1)) % core.len();
        g.add_edge(agg_a, core[home], params.uplink_weight)
            .expect("uplink");
        g.add_edge(agg_b, core[alt], params.uplink_weight)
            .expect("uplink");
        g.add_edge(agg_a, agg_b, params.intra_pop_weight)
            .expect("intra-pop link");

        let n_access = rng.gen_range(params.min_access_per_pop..=params.max_access_per_pop);
        for _ in 0..n_access {
            let acc = g.add_node();
            access.push(acc);
            g.add_edge(acc, agg_a, params.access_weight)
                .expect("access link");
            if rng.gen_range(0..100u32) < params.dual_homed_access_pct {
                g.add_edge(acc, agg_b, params.access_weight)
                    .expect("access backup link");
            }
        }
    }

    IspTopology {
        graph: g,
        core,
        aggregation,
        access,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbpc_graph::{is_connected, CostModel, Metric};

    #[test]
    fn matches_paper_scale() {
        let isp = isp_topology(IspParams::default(), 7);
        let n = isp.graph.node_count();
        let m = isp.graph.edge_count();
        let avg = isp.graph.degree_stats().unwrap().avg;
        assert!((150..=260).contains(&n), "nodes = {n}");
        assert!((280..=520).contains(&m), "links = {m}");
        assert!((3.0..4.2).contains(&avg), "avg degree = {avg}");
    }

    #[test]
    fn always_connected() {
        for seed in 0..10 {
            let isp = isp_topology(IspParams::default(), seed);
            assert!(is_connected(&isp.graph), "seed {seed}");
        }
    }

    #[test]
    fn deterministic() {
        let a = isp_topology(IspParams::default(), 3);
        let b = isp_topology(IspParams::default(), 3);
        assert_eq!(a.graph, b.graph);
        let c = isp_topology(IspParams::default(), 4);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn weights_follow_hierarchy() {
        let p = IspParams::default();
        let isp = isp_topology(p, 5);
        // Core-core links carry the core weight.
        let core_set: std::collections::HashSet<_> = isp.core.iter().copied().collect();
        for (_, rec) in isp.graph.edges() {
            if core_set.contains(&rec.u) && core_set.contains(&rec.v) {
                assert_eq!(rec.weight, p.core_weight);
            }
        }
    }

    #[test]
    fn role_partition_covers_all_nodes() {
        let isp = isp_topology(IspParams::default(), 9);
        let total = isp.core.len() + isp.aggregation.len() + isp.access.len();
        assert_eq!(total, isp.graph.node_count());
    }

    #[test]
    fn small_params_work() {
        let p = IspParams {
            core_routers: 3,
            pops: 1,
            min_access_per_pop: 0,
            max_access_per_pop: 0,
            core_chords: 0,
            ..IspParams::default()
        };
        let isp = isp_topology(p, 0);
        assert!(is_connected(&isp.graph));
        assert_eq!(isp.graph.node_count(), 5);
    }

    #[test]
    fn core_paths_prefer_core() {
        // Weighted shortest paths between core routers should stay in the
        // core (uplink detours are more expensive).
        let isp = isp_topology(IspParams::default(), 11);
        let m = CostModel::new(Metric::Weighted, 1);
        let core_set: std::collections::HashSet<_> = isp.core.iter().copied().collect();
        let p = rbpc_graph::shortest_path(&isp.graph, &m, isp.core[0], isp.core[5]).unwrap();
        for n in p.nodes() {
            assert!(core_set.contains(n), "core path detoured through {n}");
        }
    }
}
