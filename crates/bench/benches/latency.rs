//! Bench + artifact: restoration-latency simulation per scheme on the
//! synthetic ISP (the paper's "fast recovery" ordering, quantified).

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_sim::{outage_summary, LatencyModel, Scheme};
use std::hint::black_box;

fn bench_latency(c: &mut Criterion) {
    let oracle = rbpc_bench::isp_oracle();
    let pairs = rbpc_bench::pairs(rbpc_core::BasePathOracle::graph(&oracle), 60);
    let model = LatencyModel::default();

    // Emit the artifact once.
    println!();
    for scheme in Scheme::all() {
        let s = outage_summary(&oracle, &model, &pairs, scheme);
        println!(
            "{:<18} mean outage {:>8.1} ms   max {:>8.1} ms   ({} events, {} unrestorable)",
            format!("{:?}", s.scheme),
            s.mean_us / 1000.0,
            s.max_us as f64 / 1000.0,
            s.events,
            s.unrestorable,
        );
    }

    let mut g = c.benchmark_group("latency");
    g.sample_size(10);
    for scheme in [
        Scheme::LocalEdgeBypass,
        Scheme::SourceRbpc,
        Scheme::Reestablish,
    ] {
        g.bench_function(format!("{scheme:?}"), |b| {
            b.iter(|| outage_summary(black_box(&oracle), &model, black_box(&pairs), scheme))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
