//! Bench: regenerate Figure 10 (local-RBPC stretch histograms on the
//! weighted ISP).

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_eval::figure10;
use std::hint::black_box;

fn bench_figure10(c: &mut Criterion) {
    let oracle = rbpc_bench::isp_oracle();
    let pairs = rbpc_bench::pairs(rbpc_core::BasePathOracle::graph(&oracle), 60);

    // Emit the artifact once.
    let fig = figure10(&oracle, &pairs, 4);
    println!("\n{}", rbpc_eval::figure10::render(&fig));

    let mut g = c.benchmark_group("figure10");
    g.sample_size(10);
    g.bench_function("isp_weighted/60_pairs", |b| {
        b.iter(|| figure10(black_box(&oracle), black_box(&pairs), 4))
    });
    g.bench_function("isp_weighted/serial", |b| {
        b.iter(|| figure10(black_box(&oracle), black_box(&pairs), 1))
    });
    g.finish();
}

criterion_group!(benches, bench_figure10);
criterion_main!(benches);
