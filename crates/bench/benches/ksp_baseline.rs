//! Ablation: RBPC vs the k-shortest-paths pre-provisioning baseline —
//! restoration quality (cost stretch, coverage) and pre-provisioned state.

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_core::baseline::KspBackupSet;
use rbpc_core::{BasePathOracle, Restorer};
use rbpc_graph::FailureSet;
use std::hint::black_box;

fn bench_ksp(c: &mut Criterion) {
    let oracle = rbpc_bench::isp_oracle();
    let graph = oracle.graph().clone();
    let model = *oracle.cost_model();
    let restorer = Restorer::new(&oracle);
    let pairs = rbpc_bench::pairs(&graph, 60);

    // Quality/state comparison for j = 2..4, printed once.
    for j in [2usize, 3, 4] {
        let mut state = 0u64;
        let mut events = 0usize;
        let mut uncovered = 0usize;
        let mut stretch_sum = 0.0;
        for &(s, t) in &pairs {
            let set = KspBackupSet::precompute(&oracle, s, t, j);
            state += set.ilm_entries();
            let Some(primary) = set.paths().first().cloned() else {
                continue;
            };
            for &e in primary.edges() {
                let failures = FailureSet::of_edge(e);
                let Ok(opt) = restorer.restore(s, t, &failures) else {
                    continue;
                };
                events += 1;
                match set.restore(&failures) {
                    Some(p) => {
                        stretch_sum +=
                            p.cost(&graph, &model).base as f64 / opt.backup_cost.base.max(1) as f64;
                    }
                    None => uncovered += 1,
                }
            }
        }
        println!(
            "KSP(j={j}): state {state} ILM entries, {uncovered}/{events} events uncovered, avg cost stretch {:.3} (RBPC: 1.000 by construction)",
            stretch_sum / (events - uncovered).max(1) as f64,
        );
    }

    let (s, t) = pairs[0];
    let mut g = c.benchmark_group("ksp_baseline");
    g.bench_function("precompute_j3", |b| {
        b.iter(|| KspBackupSet::precompute(black_box(&oracle), s, t, 3))
    });
    let set = KspBackupSet::precompute(&oracle, s, t, 3);
    let primary = set.paths()[0].clone();
    let failures = FailureSet::of_edge(primary.edges()[0]);
    g.bench_function("failover_lookup", |b| {
        b.iter(|| set.restore(black_box(&failures)))
    });
    g.bench_function("rbpc_restore_same_event", |b| {
        b.iter(|| restorer.restore(s, t, black_box(&failures)))
    });
    g.finish();
}

criterion_group!(benches, bench_ksp);
criterion_main!(benches);
