//! Micro-bench: the parallel provisioning engine — dense all-pairs oracle
//! builds and raw all-sources SPT batches at 1 vs 8 threads.
//!
//! The isp_200 rows sit *below* [`rbpc_graph::PAR_SERIAL_CUTOFF`], so
//! both thread counts take the inline path and should read ~equal — they
//! document that the cutoff removed the old threads_8 regression. The
//! gnm_1000 rows sit *exactly at* the cutoff (1 000 nodes engages the
//! chunk-stealing pool), pinning the boundary at a mid size. The
//! powerlaw_5000 rows are the graphs parallelism is *for*: on an 8-core
//! runner bench-gate asserts their `threads_8` beats `threads_1` by ≥2×
//! (the rule is skipped on smaller boxes), and the `sharded/` rows
//! assert the same for whole-map provisioning through the implicit
//! sharded store ([`ShardedBasePaths::prefetch`] over every source).

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_core::{BasePathStore, DenseBasePaths, ShardedBasePaths};
use rbpc_graph::{par_all_sources_csr, CostModel, CsrGraph, Metric, NodeId};
use rbpc_topo::{gnm_connected, internet_like_scaled};
use std::hint::black_box;

fn bench_par_provision(c: &mut Criterion) {
    let isp = rbpc_bench::isp_graph();
    let model = CostModel::new(Metric::Weighted, rbpc_bench::SEED);
    let csr = CsrGraph::new(&isp, &model);
    let sources: Vec<NodeId> = (0..isp.node_count()).map(NodeId::new).collect();

    let mut g = c.benchmark_group("par_provision");
    for threads in [1usize, 8] {
        g.bench_function(format!("isp_200/threads_{threads}"), |b| {
            b.iter(|| DenseBasePaths::build_with_threads(black_box(isp.clone()), model, threads))
        });
        g.bench_function(format!("isp_200/all_sources/threads_{threads}"), |b| {
            b.iter(|| par_all_sources_csr(black_box(&csr), None, &sources, threads))
        });
    }

    // Exactly at the serial cutoff: 1 000 nodes engages the parallel
    // chunk-stealing path, so these rows watch the boundary itself.
    let gnm = gnm_connected(1_000, 2_600, 12, rbpc_bench::SEED);
    let gnm_csr = CsrGraph::new(&gnm, &model);
    let gnm_sources: Vec<NodeId> = (0..64).map(|i| NodeId::new(i * 15)).collect();
    for threads in [1usize, 8] {
        g.bench_function(format!("gnm_1000/all_sources/threads_{threads}"), |b| {
            b.iter(|| par_all_sources_csr(black_box(&gnm_csr), None, &gnm_sources, threads))
        });
    }

    // Above the serial cutoff: 64 sources over the 5000-node power-law
    // graph, the scale where the fan-out actually pays.
    let power = internet_like_scaled(5_000, rbpc_bench::SEED);
    let power_csr = CsrGraph::new(&power, &model);
    let power_sources: Vec<NodeId> = (0..64).map(|i| NodeId::new(i * 78)).collect();
    for threads in [1usize, 8] {
        g.bench_function(format!("powerlaw_5000/threads_{threads}"), |b| {
            b.iter(|| par_all_sources_csr(black_box(&power_csr), None, &power_sources, threads))
        });
    }

    // Whole-map provisioning through the implicit sharded store: 128
    // consecutive sources of the 5000-node graph prefetched shard by
    // shard (4 batch builds) under a budget that holds them all —
    // provisioning throughput, not eviction.
    let shard_sources: Vec<NodeId> = (0..128).map(NodeId::new).collect();
    for threads in [1usize, 8] {
        g.bench_function(format!("sharded/powerlaw_5000/threads_{threads}"), |b| {
            b.iter(|| {
                let store = ShardedBasePaths::with_budget(
                    black_box(power.clone()),
                    model,
                    512,
                    32,
                    threads,
                );
                store.prefetch(&shard_sources)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_par_provision);
criterion_main!(benches);
