//! Micro-bench: the parallel provisioning engine — dense all-pairs oracle
//! builds and raw all-sources SPT batches at 1 vs 8 threads. On an
//! 8-core runner bench-gate asserts `threads_8` beats `threads_1` by ≥3×
//! (the rule is skipped on smaller boxes, where these rows aren't run).

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_core::DenseBasePaths;
use rbpc_graph::{par_all_sources_csr, CostModel, CsrGraph, Metric, NodeId};
use std::hint::black_box;

fn bench_par_provision(c: &mut Criterion) {
    let isp = rbpc_bench::isp_graph();
    let model = CostModel::new(Metric::Weighted, rbpc_bench::SEED);
    let csr = CsrGraph::new(&isp, &model);
    let sources: Vec<NodeId> = (0..isp.node_count()).map(NodeId::new).collect();

    let mut g = c.benchmark_group("par_provision");
    for threads in [1usize, 8] {
        g.bench_function(format!("isp_200/threads_{threads}"), |b| {
            b.iter(|| DenseBasePaths::build_with_threads(black_box(isp.clone()), model, threads))
        });
        g.bench_function(format!("isp_200/all_sources/threads_{threads}"), |b| {
            b.iter(|| par_all_sources_csr(black_box(&csr), None, &sources, threads))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_par_provision);
criterion_main!(benches);
