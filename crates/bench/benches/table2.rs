//! Bench: regenerate Table 2 (source-router RBPC statistics), one
//! benchmark per failure class on the weighted ISP, plus the power-law
//! one-link block.

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_eval::{standard_suite, table2_block, EvalScale, FailureClass};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let suite = standard_suite(EvalScale::Quick, rbpc_bench::SEED);
    let isp = &suite[0];
    let oracle = isp.oracle(rbpc_bench::SEED);
    let pairs = rbpc_bench::pairs(&isp.graph, 40);

    // Emit the artifact once (all four classes on the ISP).
    let rows: Vec<_> = FailureClass::all()
        .into_iter()
        .map(|class| table2_block(&isp.name, &oracle, class, &pairs, 4))
        .collect();
    println!("\n{}", rbpc_eval::table2::render(&rows));

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for class in FailureClass::all() {
        g.bench_function(format!("isp_weighted/{class:?}"), |b| {
            b.iter(|| table2_block(&isp.name, &oracle, black_box(class), black_box(&pairs), 4))
        });
    }
    // Large-graph block through the lazy oracle.
    let asg = &suite[3];
    let lazy = asg.oracle(rbpc_bench::SEED);
    let as_pairs = rbpc_bench::pairs(&asg.graph, asg.samples);
    g.bench_function("as_graph/OneLink_lazy_oracle", |b| {
        b.iter(|| {
            table2_block(
                &asg.name,
                &lazy,
                FailureClass::OneLink,
                black_box(&as_pairs),
                4,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
