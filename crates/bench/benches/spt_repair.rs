//! Micro-bench: incremental SPT repair (`rbpc_graph::dynamic`) vs a full
//! Dijkstra rebuild after a single edge failure.
//!
//! The failed edge is a tree edge whose detached subtree has the *median*
//! size among all tree edges, so the repair workload is neither a leaf
//! (trivially cheap) nor a root-adjacent cut (rebuild-sized).
//!
//! * `full_tree` — Dijkstra from scratch over the failed view (baseline).
//! * `repair_single_edge` — repair of a pre-cloned tree; the clone happens
//!   in the untimed batch setup, so this is the pure algorithmic cost the
//!   bench gate holds ≥ 5× faster than `full_tree` on `powerlaw_5000`.
//! * `clone_repair` — clone + repair in the timed routine: the honest
//!   end-to-end cost the base-path oracles pay per `with_spt_under` call.

use rbpc_bench::{criterion_group, criterion_main, BatchSize, Criterion};
use rbpc_graph::{
    repair_after_failure, shortest_path_tree, CostModel, EdgeId, FailureSet, Metric, NodeId,
    ShortestPathTree,
};
use rbpc_topo::{gnm_connected, internet_like_scaled};
use std::hint::black_box;

/// Picks the tree edge whose subtree size is the median over all tree
/// edges of `tree` — a representative single-link failure.
fn median_subtree_edge(tree: &ShortestPathTree) -> EdgeId {
    let mut sized: Vec<(usize, EdgeId)> = (0..tree.node_count())
        .filter_map(|i| {
            let v = NodeId::new(i);
            let e = tree.parent_edge(v)?;
            Some((tree.subtree(v).len(), e))
        })
        .collect();
    sized.sort_unstable();
    sized[sized.len() / 2].1
}

fn bench_spt_repair(c: &mut Criterion) {
    let isp = rbpc_bench::isp_graph();
    let random = gnm_connected(1_000, 3_000, 20, rbpc_bench::SEED);
    let power = internet_like_scaled(5_000, rbpc_bench::SEED);
    let model = CostModel::new(Metric::Weighted, rbpc_bench::SEED);

    let mut g = c.benchmark_group("spt_repair");
    for (name, graph) in [
        ("isp_200", &isp),
        ("gnm_1000", &random),
        ("powerlaw_5000", &power),
    ] {
        let source = NodeId::new(0);
        let base = shortest_path_tree(graph, &model, source);
        let failed = median_subtree_edge(&base);
        let failures = FailureSet::of_edge(failed);
        let view = failures.view(graph);

        g.bench_function(format!("{name}/full_tree"), |b| {
            b.iter(|| shortest_path_tree(black_box(&view), &model, source))
        });
        g.bench_function(format!("{name}/repair_single_edge"), |b| {
            b.iter_batched(
                || base.clone(),
                |mut tree| {
                    repair_after_failure(&mut tree, black_box(&view), &model, failed);
                    tree
                },
                BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("{name}/clone_repair"), |b| {
            b.iter(|| {
                let mut tree = base.clone();
                repair_after_failure(&mut tree, black_box(&view), &model, failed);
                tree
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spt_repair);
criterion_main!(benches);
