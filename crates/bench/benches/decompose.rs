//! Ablation bench: greedy longest-prefix decomposition (the operational
//! RBPC path, `O(len)` tree-step checks) versus the optimal jump-graph
//! search (the paper's Dijkstra-over-base-paths fallback), and the
//! restoration pipeline end to end.

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_core::{greedy_decompose, optimal_decompose, BasePathOracle, Restorer};
use rbpc_graph::{shortest_path, FailureSet, NodeId};
use std::hint::black_box;

fn bench_decompose(c: &mut Criterion) {
    let oracle = rbpc_bench::isp_oracle();
    let graph = oracle.graph().clone();
    let model = *oracle.cost_model();
    let restorer = Restorer::new(&oracle);

    // A representative long LSP and a mid-path failure.
    let pairs = rbpc_bench::pairs(&graph, 200);
    let (s, t, base) = pairs
        .iter()
        .filter_map(|&(s, t)| oracle.base_path(s, t).map(|p| (s, t, p)))
        .max_by_key(|(_, _, p)| p.hop_count())
        .expect("pairs exist");
    let failed = base.edges()[base.hop_count() / 2];
    let failures = FailureSet::of_edge(failed);
    let view = failures.view(&graph);
    let backup = shortest_path(&view, &model, s, t).expect("restorable");

    let mut g = c.benchmark_group("decompose");
    g.bench_function("greedy", |b| {
        b.iter(|| greedy_decompose(black_box(&oracle), black_box(&backup)))
    });
    g.bench_function("optimal_jump_graph", |b| {
        b.iter(|| optimal_decompose(black_box(&oracle), s, t, black_box(&failures)))
    });
    g.bench_function("full_restore_pipeline", |b| {
        b.iter(|| restorer.restore(s, t, black_box(&failures)).unwrap())
    });
    // Whole failover plan for one link across all sampled pairs.
    g.sample_size(20);
    g.bench_function("failover_plan_200_pairs", |b| {
        b.iter(|| restorer.failover_plan(black_box(failed), pairs.iter().copied()))
    });
    g.finish();

    // Sanity print: the two decompositions agree on segment count.
    let gr = greedy_decompose(&oracle, &backup);
    let op = optimal_decompose(&oracle, s, t, &failures).unwrap();
    println!(
        "\ndecompose: greedy = {} segments, optimal = {} segments (LSP {} hops)",
        gr.len(),
        op.len(),
        backup.hop_count()
    );
    let _ = NodeId::new(0);
}

criterion_group!(benches, bench_decompose);
criterion_main!(benches);
