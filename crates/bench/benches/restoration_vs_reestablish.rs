//! The headline comparison: restoring a link failure by **RBPC** (one FEC
//! rewrite per affected source; local variant: one ILM splice) versus
//! **tearing down and re-establishing** every affected LSP — measured both
//! as wall-clock over the simulated MPLS control plane and as signaling
//! message counts.

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_core::baseline::{rbpc_local_cost, rbpc_source_cost, reestablish_cost};
use rbpc_core::{BasePathOracle, ProvisionedDomain, Restorer};
use rbpc_graph::NodeId;
use std::hint::black_box;

fn bench_restoration(c: &mut Criterion) {
    let oracle = rbpc_bench::isp_oracle();
    let graph = oracle.graph().clone();
    let restorer = Restorer::new(&oracle);
    let pairs = rbpc_bench::pairs(&graph, 150);

    // The busiest link among the sampled pairs.
    let mut usage = vec![0usize; graph.edge_count()];
    for &(s, t) in &pairs {
        if let Some(p) = oracle.base_path(s, t) {
            for &e in p.edges() {
                usage[e.index()] += 1;
            }
        }
    }
    let busiest = rbpc_graph::EdgeId::new(
        usage
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .map(|(i, _)| i)
            .unwrap(),
    );
    let plan = restorer.failover_plan(busiest, pairs.iter().copied());
    assert!(!plan.updates.is_empty());

    // Signaling-cost comparison, printed once.
    let rbpc = rbpc_source_cost(&plan);
    let local = rbpc_local_cost(&plan);
    let re = reestablish_cost(&plan);
    println!(
        "\nfailing {busiest}: {} affected routes\n  source RBPC:   {:>6} msgs {:>6} writes\n  local RBPC:    {:>6} msgs {:>6} writes\n  re-establish:  {:>6} msgs {:>6} writes",
        plan.updates.len(),
        rbpc.messages,
        rbpc.table_writes(),
        local.messages,
        local.table_writes(),
        re.messages,
        re.table_writes(),
    );

    let mut g = c.benchmark_group("restoration_vs_reestablish");
    g.sample_size(10);

    // RBPC: apply every FEC rewrite of the plan to a provisioned domain.
    g.bench_function("rbpc_apply_fec_rewrites", |b| {
        let mut dom = ProvisionedDomain::new(&oracle);
        for &(s, t) in &pairs {
            dom.provision_pair(&oracle, s, t).unwrap();
        }
        b.iter(|| {
            for update in &plan.updates {
                dom.apply_source_restoration(black_box(&update.restoration))
                    .unwrap();
            }
        })
    });

    // Re-establishment: tear down and re-signal every affected LSP.
    g.bench_function("teardown_and_reestablish", |b| {
        b.iter_batched(
            || {
                let mut dom = ProvisionedDomain::new(&oracle);
                let mut lsps = Vec::new();
                for update in &plan.updates {
                    let id = dom
                        .provision_pair(&oracle, update.source, update.dest)
                        .unwrap()
                        .unwrap();
                    lsps.push((id, update));
                }
                (dom, lsps)
            },
            |(mut dom, lsps)| {
                for (id, update) in lsps {
                    dom.net_mut().teardown_lsp(id).unwrap();
                    let new = dom
                        .net_mut()
                        .establish_lsp(&update.restoration.backup)
                        .unwrap();
                    dom.net_mut()
                        .set_fec_via_lsps(update.source, update.dest, &[new])
                        .unwrap();
                }
            },
            rbpc_bench::BatchSize::LargeInput,
        )
    });

    // Planning cost itself (what a router would precompute per link).
    g.bench_function("plan_computation", |b| {
        b.iter(|| restorer.failover_plan(black_box(busiest), pairs.iter().copied()))
    });
    g.finish();
    let _ = NodeId::new(0);
}

criterion_group!(benches, bench_restoration);
criterion_main!(benches);
