//! Micro-bench: the shortest-path substrate (Dijkstra trees, point
//! queries, failure views) across the evaluated topology families.

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_graph::{shortest_path, shortest_path_tree, CostModel, FailureSet, Metric, NodeId};
use rbpc_topo::{gnm_connected, internet_like_scaled};
use std::hint::black_box;

fn bench_dijkstra(c: &mut Criterion) {
    let isp = rbpc_bench::isp_graph();
    let power = internet_like_scaled(5_000, rbpc_bench::SEED);
    let random = gnm_connected(1_000, 3_000, 20, rbpc_bench::SEED);
    let model = CostModel::new(Metric::Weighted, rbpc_bench::SEED);

    let mut g = c.benchmark_group("dijkstra");
    for (name, graph) in [
        ("isp_200", &isp),
        ("powerlaw_5000", &power),
        ("gnm_1000", &random),
    ] {
        let t = NodeId::new(graph.node_count() - 1);
        g.bench_function(format!("{name}/full_tree"), |b| {
            b.iter(|| shortest_path_tree(black_box(graph), &model, NodeId::new(0)))
        });
        g.bench_function(format!("{name}/point_to_point"), |b| {
            b.iter(|| shortest_path(black_box(graph), &model, NodeId::new(0), t))
        });
        let failures = FailureSet::of_edge(rbpc_graph::EdgeId::new(0));
        let view = failures.view(graph);
        g.bench_function(format!("{name}/point_to_point_failed_view"), |b| {
            b.iter(|| shortest_path(black_box(&view), &model, NodeId::new(0), t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dijkstra);
criterion_main!(benches);
