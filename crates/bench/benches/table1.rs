//! Bench: regenerate Table 1 (topology generation + degree statistics).
//!
//! Prints the table once so `cargo bench` output doubles as a result log.

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_eval::{standard_suite, table1, EvalScale};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Emit the artifact once.
    let suite = standard_suite(EvalScale::Quick, rbpc_bench::SEED);
    println!("\n{}", rbpc_eval::table1::render(&table1(&suite)));

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("generate_suite_quick", |b| {
        b.iter(|| standard_suite(EvalScale::Quick, black_box(rbpc_bench::SEED)))
    });
    g.bench_function("degree_stats", |b| b.iter(|| table1(black_box(&suite))));
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
