//! Ablation: ILM footprint and wall-clock of the three base-set
//! provisioning strategies — per-pair LSPs, per-pair with penultimate-hop
//! popping, and merged per-destination sink trees (§2's LSP merging).

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_core::{BasePathOracle, DenseBasePaths, ProvisionedDomain};
use rbpc_graph::{CostModel, Metric, NodeId};
use rbpc_topo::{isp_topology, IspParams};
use std::hint::black_box;

fn small_isp_oracle() -> DenseBasePaths {
    // Scaled-down ISP so all-pairs provisioning stays benchable.
    let g = isp_topology(
        IspParams {
            pops: 10,
            core_routers: 8,
            ..IspParams::default()
        },
        rbpc_bench::SEED,
    )
    .graph;
    DenseBasePaths::build(g, CostModel::new(Metric::Weighted, rbpc_bench::SEED))
}

fn bench_provisioning(c: &mut Criterion) {
    let oracle = small_isp_oracle();
    let n = oracle.graph().node_count();

    // Print the footprint ablation once.
    let mut pairs = ProvisionedDomain::new(&oracle);
    pairs.provision_all_pairs(&oracle).unwrap();
    let mut merged = ProvisionedDomain::new(&oracle);
    merged.provision_merged(&oracle).unwrap();
    let mut php = ProvisionedDomain::new(&oracle);
    {
        // PHP variant: establish per-pair LSPs with penultimate-hop popping.
        for s in 0..n {
            for t in 0..n {
                if s == t {
                    continue;
                }
                if let Some(p) = oracle.base_path(NodeId::new(s), NodeId::new(t)) {
                    php.net_mut().establish_lsp_php(&p).unwrap();
                }
            }
        }
    }
    println!(
        "\nILM entries over {n} routers: per-pair = {}, per-pair+PHP = {}, merged sink trees = {}",
        pairs.net().total_ilm_entries(),
        php.net().total_ilm_entries(),
        merged.net().total_ilm_entries(),
    );

    let mut g = c.benchmark_group("provisioning");
    g.sample_size(10);
    g.bench_function("all_pairs", |b| {
        b.iter(|| {
            let mut dom = ProvisionedDomain::new(&oracle);
            dom.provision_all_pairs(black_box(&oracle)).unwrap();
            dom.net().total_ilm_entries()
        })
    });
    g.bench_function("merged_sink_trees", |b| {
        b.iter(|| {
            let mut dom = ProvisionedDomain::new(&oracle);
            dom.provision_merged(black_box(&oracle)).unwrap();
            dom.net().total_ilm_entries()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_provisioning);
criterion_main!(benches);
